//! # ending-anomaly
//!
//! A from-scratch Rust reproduction of *"Ending the Anomaly: Achieving Low
//! Latency and Airtime Fairness in WiFi"* (Høiland-Jørgensen, Kazior, Täht,
//! Hurtig, Brunstrom — USENIX ATC 2017).
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`core`](mod@crate::core) — the paper's contribution: the MAC-layer
//!   FQ-CoDel structure (Algorithms 1–2) and the airtime-fairness
//!   scheduler (Algorithm 3),
//! - [`codel`](mod@crate::codel) — the CoDel AQM with per-station parameters,
//! - [`qdisc`](mod@crate::qdisc) — pfifo_fast and FQ-CoDel qdisc baselines,
//! - [`phy`](mod@crate::phy) / [`mac`](mod@crate::mac) — the 802.11n PHY/MAC
//!   discrete-event simulator standing in for the paper's testbed,
//! - [`transport`](mod@crate::transport) — CUBIC/NewReno TCP with SACK,
//! - [`traffic`](mod@crate::traffic) — ping, UDP, VoIP and web workloads,
//! - [`model`](mod@crate::model) — the analytical model (eqs. 1–5),
//! - [`stats`](mod@crate::stats) — Jain's index, CDFs, the G.107 E-model,
//! - [`telemetry`](mod@crate::telemetry) — opt-in metrics registry and
//!   structured-event ring (counters, gauges, histograms; JSON/CSV export),
//! - [`harness`](mod@crate::harness) — parallel, cached, resumable
//!   experiment orchestration (worker pool, content-addressed result
//!   cache, journal),
//! - [`scale`](mod@crate::scale) — deterministic station churn and the
//!   sharded multi-BSS engine with cross-shard telemetry rollup,
//! - [`roam`](mod@crate::roam) — seeded inter-BSS roaming: mid-flow
//!   hand-offs that migrate queued downlink state across the shard set
//!   under a windowed-lockstep determinism guarantee,
//! - [`chaos`](mod@crate::chaos) — deterministic seeded fault injection
//!   (burst loss, rate collapse, stalls, backpressure, ACK loss) driven
//!   by a declarative fault schedule,
//! - [`policy`](mod@crate::policy) — hierarchical airtime policy
//!   (tenant slices, device-class groups, per-station weights) compiled
//!   into weighted deficit quanta, with runtime reconfiguration,
//! - [`experiments`](mod@crate::experiments) — harnesses for every table and
//!   figure in the paper's evaluation.
//!
//! See `examples/quickstart.rs` for a three-minute tour, DESIGN.md for the
//! system inventory, and EXPERIMENTS.md for paper-vs-measured results.

pub use wifiq_chaos as chaos;
pub use wifiq_codel as codel;
pub use wifiq_core as core;
pub use wifiq_experiments as experiments;
pub use wifiq_harness as harness;
pub use wifiq_mac as mac;
pub use wifiq_model as model;
pub use wifiq_phy as phy;
pub use wifiq_policy as policy;
pub use wifiq_qdisc as qdisc;
pub use wifiq_roam as roam;
pub use wifiq_scale as scale;
pub use wifiq_sim as sim;
pub use wifiq_stats as stats;
pub use wifiq_telemetry as telemetry;
pub use wifiq_traffic as traffic;
pub use wifiq_transport as transport;
