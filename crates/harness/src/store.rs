//! Persistence: the content-addressed result cache and the run journal.
//!
//! Both live under the workspace `results/` directory (overridable with
//! `WIFIQ_RESULTS_DIR`):
//!
//! - `results/cache/<sha256>.json` — one file per completed cell, holding
//!   the full canonical key (collision/config guard) and the cell's
//!   encoded output.
//! - `results/harness.manifest.jsonl` — an append-only journal with one
//!   line per cell completion (fresh, cached, or failed). It is the
//!   authority on what is done: a cell is only served from cache when the
//!   journal records a prior `ok` *and* the cache file decodes. Truncating
//!   the journal therefore replays exactly the missing cells.
//!
//! Writes are crash- and concurrency-safe: cache files are written to a
//! process-unique temp name and atomically renamed, journal lines are
//! appended with a single `O_APPEND` write so lines from parallel workers
//! (or parallel experiment binaries sharing one journal) never interleave,
//! and a torn final line from a killed run is skipped on load.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::Json;

/// The directory results, cache, and journal live under: `results/` at the
/// workspace root, overridable with `WIFIQ_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("WIFIQ_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // Walk up from the current directory to find the workspace root.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Reads a cached cell output, verifying the stored canonical key matches
/// `key_json` (guards against hash collisions and key-scheme changes).
/// `None` on any miss, mismatch, or parse failure — a bad cache entry is
/// treated as absent, never fatal.
pub fn cache_load(dir: &Path, key_hash: &str, key_json: &Json) -> Option<Json> {
    let text = std::fs::read_to_string(dir.join(format!("{key_hash}.json"))).ok()?;
    let doc = serde_json::from_str(&text).ok()?;
    if doc.get("key") != Some(key_json) {
        return None;
    }
    doc.get("output").cloned()
}

/// Writes a cell output to the cache via temp-file + atomic rename.
pub fn cache_store(
    dir: &Path,
    key_hash: &str,
    key_json: &Json,
    output: &Json,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let doc = Json::Obj(vec![
        ("key".into(), key_json.clone()),
        ("output".into(), output.clone()),
    ]);
    let tmp = dir.join(format!(".tmp-{}-{key_hash}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(doc.pretty().as_bytes())?;
        f.write_all(b"\n")?;
    }
    std::fs::rename(&tmp, dir.join(format!("{key_hash}.json")))
}

/// One journal record.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Content-addressed cell key (hex).
    pub key: String,
    /// Experiment name.
    pub experiment: String,
    /// Cell label.
    pub cell: String,
    /// Config discriminator.
    pub config: String,
    /// Repetition seed.
    pub seed: u64,
    /// `true` when the cell completed (fresh or cached), `false` on
    /// permanent failure.
    pub ok: bool,
    /// Whether this completion was served from cache.
    pub cached: bool,
    /// Wall-clock time spent executing (0 for cache hits).
    pub wall_ms: u64,
    /// Retries consumed (0 or 1).
    pub retries: u32,
    /// Failure description, when `!ok`.
    pub error: Option<String>,
}

impl JournalEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("key".into(), Json::Str(self.key.clone())),
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("cell".into(), Json::Str(self.cell.clone())),
            ("config".into(), Json::Str(self.config.clone())),
            ("seed".into(), Json::U64(self.seed)),
            (
                "status".into(),
                Json::Str(if self.ok { "ok" } else { "failed" }.into()),
            ),
            ("cached".into(), Json::Bool(self.cached)),
            ("wall_ms".into(), Json::U64(self.wall_ms)),
            ("retries".into(), Json::U64(u64::from(self.retries))),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".into(), Json::Str(e.clone())));
        }
        Json::Obj(fields)
    }
}

/// The run journal: completed-key set loaded at startup plus an
/// append-only writer.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    completed: HashSet<String>,
}

impl Journal {
    /// Loads the journal at `path`, tolerating a missing file and torn or
    /// malformed lines (a crash mid-append loses at most that one line).
    pub fn load(path: PathBuf) -> Journal {
        let mut completed = HashSet::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Ok(doc) = serde_json::from_str(line) else {
                    continue;
                };
                let (Some(Json::Str(key)), Some(Json::Str(status))) =
                    (doc.get("key"), doc.get("status"))
                else {
                    continue;
                };
                if status == "ok" {
                    completed.insert(key.clone());
                }
            }
        }
        Journal { path, completed }
    }

    /// Whether a prior run completed the cell with this key.
    pub fn is_completed(&self, key: &str) -> bool {
        self.completed.contains(key)
    }

    /// Appends one record and flushes it with a single write, so the line
    /// is either fully present or fully absent after a crash, and parallel
    /// appenders (threads or processes, via `O_APPEND`) never interleave.
    pub fn append(&mut self, entry: &JournalEntry) {
        if entry.ok {
            self.completed.insert(entry.key.clone());
        }
        let line = format!("{}\n", entry.to_json().compact());
        if let Some(parent) = self.path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(line.as_bytes()) {
                    eprintln!("warning: journal append failed: {e}");
                }
            }
            Err(e) => eprintln!("warning: cannot open journal {}: {e}", self.path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wifiq_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(key: &str, ok: bool) -> JournalEntry {
        JournalEntry {
            key: key.into(),
            experiment: "e".into(),
            cell: "c".into(),
            config: String::new(),
            seed: 1,
            ok,
            cached: false,
            wall_ms: 3,
            retries: 0,
            error: (!ok).then(|| "boom".into()),
        }
    }

    #[test]
    fn cache_round_trips_and_guards_key() {
        let dir = tmp("cache");
        let key = Json::Obj(vec![("seed".into(), Json::U64(1))]);
        let out = Json::Arr(vec![Json::F64(1.5)]);
        cache_store(&dir, "abc", &key, &out).unwrap();
        assert_eq!(cache_load(&dir, "abc", &key), Some(out));
        // Same hash file, different expected key → treated as a miss.
        let other = Json::Obj(vec![("seed".into(), Json::U64(2))]);
        assert_eq!(cache_load(&dir, "abc", &other), None);
        assert_eq!(cache_load(&dir, "missing", &key), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_append_load_and_torn_line() {
        let dir = tmp("journal");
        let path = dir.join("m.jsonl");
        let mut j = Journal::load(path.clone());
        j.append(&entry("k1", true));
        j.append(&entry("k2", false));
        j.append(&entry("k3", true));
        // Simulate a crash mid-append of a fourth line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"key\":\"k4\",\"sta").unwrap();
        drop(f);

        let j2 = Journal::load(path);
        assert!(j2.is_completed("k1"));
        assert!(!j2.is_completed("k2"), "failed cells must replay");
        assert!(j2.is_completed("k3"));
        assert!(!j2.is_completed("k4"), "torn line must be ignored");
        let _ = std::fs::remove_dir_all(dir);
    }
}
