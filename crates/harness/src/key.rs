//! Stable cell identity: the content-addressed cache key.
//!
//! A **cell** is the unit of orchestration — one (experiment × cell-label
//! × repetition-seed) simulation. Its cache key is the SHA-256 of a
//! canonical compact-JSON rendering of every input that determines the
//! cell's output: the experiment and cell labels, the free-form config
//! string, the seed, the simulated duration and warm-up, and a build
//! fingerprint of the running binary (`git describe` plus the executable's
//! size/mtime stamp). Any field changing yields a different key, so stale
//! results can never be served; identical configuration re-hashes to the
//! same key, so unchanged cells are skipped on re-run.

use std::sync::OnceLock;

use serde::Json;

use crate::sha256::sha256_hex;

/// Sweep-level identity shared by a batch of cells.
#[derive(Debug, Clone)]
pub struct SweepMeta {
    /// Experiment name (e.g. `"udp_sat"`, `"run_all"`).
    pub experiment: String,
    /// Simulated duration of one repetition, nanoseconds.
    pub duration_ns: u64,
    /// Warm-up discarded from the measurement window, nanoseconds.
    pub warmup_ns: u64,
    /// Extra key material folded into every cell key (e.g. whether
    /// metrics export is on, which changes what a cell does on disk).
    pub salt: String,
}

impl SweepMeta {
    /// A sweep with empty salt.
    pub fn new(experiment: impl Into<String>, duration_ns: u64, warmup_ns: u64) -> SweepMeta {
        SweepMeta {
            experiment: experiment.into(),
            duration_ns,
            warmup_ns,
            salt: String::new(),
        }
    }

    /// Folds extra key material into every cell key of this sweep.
    pub fn with_salt(mut self, salt: impl Into<String>) -> SweepMeta {
        self.salt = salt.into();
        self
    }
}

/// One schedulable cell of a sweep.
#[derive(Debug, Clone)]
pub struct CellDef {
    /// Cell label within the experiment (e.g. a scheme slug or binary name).
    pub cell: String,
    /// Free-form configuration discriminator (variant flags, QoS marking…).
    pub config: String,
    /// Repetition seed.
    pub seed: u64,
}

impl CellDef {
    /// Creates a cell definition.
    pub fn new(cell: impl Into<String>, config: impl Into<String>, seed: u64) -> CellDef {
        CellDef {
            cell: cell.into(),
            config: config.into(),
            seed,
        }
    }

    /// `experiment/cell/config/seed` — the human-readable identity used in
    /// logs and fault-injection matching.
    pub fn path(&self, experiment: &str) -> String {
        format!("{experiment}/{}/{}/{}", self.cell, self.config, self.seed)
    }
}

/// The canonical key document for one cell (fixed field order).
pub fn cell_key_json(sweep: &SweepMeta, cell: &CellDef, fingerprint: &str) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str(sweep.experiment.clone())),
        ("cell".into(), Json::Str(cell.cell.clone())),
        ("config".into(), Json::Str(cell.config.clone())),
        ("seed".into(), Json::U64(cell.seed)),
        ("duration_ns".into(), Json::U64(sweep.duration_ns)),
        ("warmup_ns".into(), Json::U64(sweep.warmup_ns)),
        ("salt".into(), Json::Str(sweep.salt.clone())),
        ("fingerprint".into(), Json::Str(fingerprint.to_string())),
    ])
}

/// Content-addressed cache key: SHA-256 hex of the canonical key JSON.
pub fn cell_key_hash(sweep: &SweepMeta, cell: &CellDef, fingerprint: &str) -> String {
    sha256_hex(cell_key_json(sweep, cell, fingerprint).compact().as_bytes())
}

/// Build fingerprint of the running binary, cached for the process
/// lifetime.
///
/// `WIFIQ_CACHE_KEY` overrides it wholesale (useful for tests and for
/// sharing a cache across binaries built from the same source). Otherwise
/// it combines `git describe --always --dirty` of the working tree with
/// the executable's size and mtime, so a rebuild with changed code
/// invalidates previous results while a plain re-run does not.
pub fn binary_fingerprint() -> &'static str {
    static FP: OnceLock<String> = OnceLock::new();
    FP.get_or_init(|| {
        if let Ok(v) = std::env::var("WIFIQ_CACHE_KEY") {
            return v;
        }
        let git = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_else(|| "nogit".to_string());
        let exe = std::env::current_exe()
            .and_then(std::fs::metadata)
            .map(|m| {
                let mtime = m
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                format!("{}-{}", m.len(), mtime)
            })
            .unwrap_or_else(|_| "noexe".to_string());
        format!("{git}+{exe}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepMeta {
        SweepMeta::new("udp_sat", 30_000_000_000, 5_000_000_000).with_salt("metrics=0")
    }

    #[test]
    fn same_config_same_key() {
        let c = CellDef::new("airtime", "", 7);
        assert_eq!(
            cell_key_hash(&sweep(), &c, "v1"),
            cell_key_hash(&sweep(), &c, "v1")
        );
    }

    #[test]
    fn any_field_change_changes_key() {
        let base = cell_key_hash(&sweep(), &CellDef::new("airtime", "", 7), "v1");
        let variants = [
            cell_key_hash(&sweep(), &CellDef::new("fifo", "", 7), "v1"),
            cell_key_hash(&sweep(), &CellDef::new("airtime", "bidir", 7), "v1"),
            cell_key_hash(&sweep(), &CellDef::new("airtime", "", 8), "v1"),
            cell_key_hash(&sweep(), &CellDef::new("airtime", "", 7), "v2"),
            cell_key_hash(
                &SweepMeta::new("udp_sat", 10_000_000_000, 5_000_000_000).with_salt("metrics=0"),
                &CellDef::new("airtime", "", 7),
                "v1",
            ),
            cell_key_hash(
                &SweepMeta::new("udp_sat", 30_000_000_000, 2_000_000_000).with_salt("metrics=0"),
                &CellDef::new("airtime", "", 7),
                "v1",
            ),
            cell_key_hash(
                &SweepMeta::new("latency", 30_000_000_000, 5_000_000_000).with_salt("metrics=0"),
                &CellDef::new("airtime", "", 7),
                "v1",
            ),
            cell_key_hash(
                &sweep().with_salt("metrics=1"),
                &CellDef::new("airtime", "", 7),
                "v1",
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(&base, v, "variant {i} collided with base");
        }
        // And the variants are pairwise distinct too.
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(variants[i], variants[j], "variants {i} and {j} collided");
            }
        }
    }

    #[test]
    fn key_fields_are_not_confusable() {
        // Field contents must not be able to shift between fields ("ab","c"
        // vs "a","bc") — canonical JSON quoting guarantees it.
        let a = cell_key_hash(&sweep(), &CellDef::new("ab", "c", 1), "v");
        let b = cell_key_hash(&sweep(), &CellDef::new("a", "bc", 1), "v");
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_is_stable_within_process() {
        assert_eq!(binary_fingerprint(), binary_fingerprint());
        assert!(!binary_fingerprint().is_empty());
    }
}
