//! Round-trippable JSON encoding for cell outputs.
//!
//! The workspace's vendored `serde` only serialises (it lowers straight to
//! [`Json`] with no generic deserialiser), so the result cache defines its
//! own symmetric codec: anything a cell returns must implement
//! [`JsonCodec`] so it can be written to `results/cache/` and read back on
//! a cache hit. Implementations exist for the primitive types, `String`,
//! `Vec<T>`, `Option<T>`, and tuples up to eight elements — enough to
//! express every experiment's per-repetition payload as plain data with no
//! per-experiment boilerplate.

use serde::Json;

/// Symmetric JSON encode/decode for cacheable cell outputs.
///
/// `decode(&encode(&v))` must reproduce `v` exactly; the JSON printer
/// emits shortest-round-trip floats, so `f64` payloads survive the disk
/// round trip bit-for-bit (non-finite values do not and fail to decode).
pub trait JsonCodec: Sized {
    /// Encodes `self` as a JSON value.
    fn encode(&self) -> Json;
    /// Decodes a value previously produced by [`JsonCodec::encode`].
    /// `None` on any shape or type mismatch.
    fn decode(json: &Json) -> Option<Self>;
}

impl JsonCodec for f64 {
    fn encode(&self) -> Json {
        Json::F64(*self)
    }
    fn decode(json: &Json) -> Option<Self> {
        json.as_f64()
    }
}

impl JsonCodec for u64 {
    fn encode(&self) -> Json {
        Json::U64(*self)
    }
    fn decode(json: &Json) -> Option<Self> {
        json.as_u64()
    }
}

impl JsonCodec for u32 {
    fn encode(&self) -> Json {
        Json::U64(u64::from(*self))
    }
    fn decode(json: &Json) -> Option<Self> {
        json.as_u64().and_then(|v| u32::try_from(v).ok())
    }
}

impl JsonCodec for usize {
    fn encode(&self) -> Json {
        Json::U64(*self as u64)
    }
    fn decode(json: &Json) -> Option<Self> {
        json.as_u64().and_then(|v| usize::try_from(v).ok())
    }
}

impl JsonCodec for i64 {
    fn encode(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
    fn decode(json: &Json) -> Option<Self> {
        match *json {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            _ => None,
        }
    }
}

impl JsonCodec for bool {
    fn encode(&self) -> Json {
        Json::Bool(*self)
    }
    fn decode(json: &Json) -> Option<Self> {
        match json {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl JsonCodec for String {
    fn encode(&self) -> Json {
        Json::Str(self.clone())
    }
    fn decode(json: &Json) -> Option<Self> {
        match json {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn encode(&self) -> Json {
        Json::Arr(self.iter().map(JsonCodec::encode).collect())
    }
    fn decode(json: &Json) -> Option<Self> {
        match json {
            Json::Arr(items) => items.iter().map(T::decode).collect(),
            _ => None,
        }
    }
}

impl<T: JsonCodec> JsonCodec for Option<T> {
    fn encode(&self) -> Json {
        match self {
            Some(v) => Json::Arr(vec![v.encode()]),
            None => Json::Null,
        }
    }
    fn decode(json: &Json) -> Option<Self> {
        match json {
            Json::Null => Some(None),
            Json::Arr(items) if items.len() == 1 => T::decode(&items[0]).map(Some),
            _ => None,
        }
    }
}

macro_rules! tuple_codec {
    ($($t:ident => $i:tt),+) => {
        impl<$($t: JsonCodec),+> JsonCodec for ($($t,)+) {
            fn encode(&self) -> Json {
                Json::Arr(vec![$(self.$i.encode()),+])
            }
            fn decode(json: &Json) -> Option<Self> {
                let Json::Arr(items) = json else { return None };
                let arity = 0usize $(+ { let _ = stringify!($t); 1 })+;
                if items.len() != arity {
                    return None;
                }
                Some(($($t::decode(&items[$i])?,)+))
            }
        }
    };
}

tuple_codec!(A => 0);
tuple_codec!(A => 0, B => 1);
tuple_codec!(A => 0, B => 1, C => 2);
tuple_codec!(A => 0, B => 1, C => 2, D => 3);
tuple_codec!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_codec!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
tuple_codec!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
tuple_codec!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: JsonCodec + PartialEq + std::fmt::Debug>(v: T) {
        // Through the value model…
        assert_eq!(T::decode(&v.encode()), Some(v));
    }

    fn round_trip_text<T: JsonCodec + PartialEq + std::fmt::Debug>(v: T) {
        // …and through the actual on-disk text form.
        let text = v.encode().compact();
        let parsed = serde_json::from_str(&text).expect("reparse");
        assert_eq!(T::decode(&parsed), Some(v));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0.125f64);
        round_trip(3.0f64);
        round_trip(42u64);
        round_trip(-7i64);
        round_trip(true);
        round_trip(String::from("fq-mac"));
        round_trip(Some(1.5f64));
        round_trip(None::<f64>);
    }

    #[test]
    fn float_text_round_trip_is_exact() {
        for v in [
            0.1f64,
            1.0 / 3.0,
            144.4e6,
            2f64.powi(-40),
            9_007_199_254_740_993.5,
        ] {
            round_trip_text(v);
        }
        // Integral floats print as "3.0" and must come back as floats.
        round_trip_text(vec![3.0f64, -2.0, 0.0]);
    }

    #[test]
    fn containers_and_tuples() {
        round_trip_text((vec![1.0f64, 2.5], vec![0.25f64]));
        round_trip_text((1.0f64, 2u64, true, String::from("x")));
        round_trip_text((
            1.0f64,
            2.0f64,
            3.0f64,
            4.0f64,
            vec![5.0f64],
            vec![6.0f64],
            vec![7.0f64],
        ));
    }

    #[test]
    fn arity_and_type_mismatches_fail() {
        let two = (1.0f64, 2.0f64).encode();
        assert_eq!(<(f64, f64, f64)>::decode(&two), None);
        assert_eq!(<(f64,)>::decode(&two), None);
        assert_eq!(bool::decode(&Json::U64(1)), None);
        assert_eq!(u64::decode(&Json::Str("3".into())), None);
        assert_eq!(f64::decode(&Json::Null), None);
    }
}
