//! The work-stealing queues behind the worker pool.
//!
//! Cells are all known up front (repetitions are an independent seed
//! sweep), so the scheduler is a classic fixed-set work-stealer: every
//! worker owns a deque seeded round-robin, pops work from its own front
//! (LIFO locality does not matter here — cells are independent), and when
//! empty steals from the *back* of the other workers' deques. Because no
//! cell ever enqueues new work, a worker may exit as soon as every deque
//! is empty.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker deques over cell indices.
pub struct Queues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Queues {
    /// Distributes `items` round-robin over `workers` deques.
    pub fn new(workers: usize, items: &[usize]) -> Queues {
        assert!(workers > 0);
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, &item) in items.iter().enumerate() {
            deques[i % workers].push_back(item);
        }
        Queues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next cell index for `worker`: its own front, else a steal from the
    /// back of the fullest other deque. `None` once every deque is empty.
    pub fn next(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.deques[worker].lock().unwrap().pop_front() {
            return Some(i);
        }
        // Steal from the victim with the most remaining work so stolen
        // batches stay balanced towards the end of the sweep.
        let n = self.deques.len();
        loop {
            let mut victim: Option<(usize, usize)> = None; // (worker, len)
            for v in 0..n {
                if v == worker {
                    continue;
                }
                let len = self.deques[v].lock().unwrap().len();
                if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                    victim = Some((v, len));
                }
            }
            let (v, _) = victim?;
            // Re-lock and steal; the deque may have drained in between, in
            // which case we rescan.
            if let Some(i) = self.deques[v].lock().unwrap().pop_back() {
                return Some(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_every_item_exactly_once() {
        let items: Vec<usize> = (0..101).collect();
        let q = Queues::new(4, &items);
        let seen = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for w in 0..4 {
                let (q, seen) = (&q, &seen);
                s.spawn(move || {
                    while let Some(i) = q.next(w) {
                        assert!(seen.lock().unwrap().insert(i), "item {i} scheduled twice");
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 101);
    }

    #[test]
    fn idle_workers_steal_from_busy_ones() {
        // All work lands on worker 0's deque; workers 1..4 must steal it.
        let items: Vec<usize> = (0..40).collect();
        let q = Queues::new(1, &items);
        // Simulate stealing by giving the single deque to multiple logical
        // workers through a wrapper: easiest is a 4-worker queue where
        // worker 0 never polls.
        let q4 = Queues::new(4, &items);
        let _ = q; // the 1-worker case is covered by drains_every_item
        let stolen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 1..4 {
                let (q4, stolen) = (&q4, &stolen);
                s.spawn(move || {
                    while q4.next(w).is_some() {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Workers 1..4 drained everything, including worker 0's share.
        assert_eq!(stolen.load(Ordering::Relaxed), 40);
    }
}
