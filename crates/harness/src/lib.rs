//! # wifiq-harness
//!
//! Parallel, cached, resumable experiment orchestration.
//!
//! The paper evaluation is 18 experiment binaries × up to 30 repetitions;
//! every repetition is an independent seed sweep of a wall-clock-free
//! discrete-event simulation. This crate decomposes that work into
//! **cells** — one (experiment × cell-label × repetition-seed) simulation
//! each — and executes them on a work-stealing `std::thread` pool, with
//! three guarantees layered on top:
//!
//! 1. **Determinism** — results are returned in input cell order
//!    regardless of completion order, so parallel output is byte-identical
//!    to sequential output (`WIFIQ_JOBS=1` vs `=N`).
//! 2. **Caching + resume** — each completed cell is stored content-addressed
//!    under `results/cache/<sha256(key)>.json` and journalled to
//!    `results/harness.manifest.jsonl`. A re-run (or a run resumed after a
//!    crash/Ctrl-C) replays only the cells the journal does not record as
//!    complete. The key covers the full cell configuration, seed,
//!    duration, and a build fingerprint of the binary, so code or config
//!    changes invalidate exactly what they affect.
//! 3. **Fault isolation** — a panicking cell is caught (`catch_unwind`),
//!    retried once, and on second failure reported in the sweep summary
//!    without aborting the other cells. A wall-clock watchdog (budget
//!    scaled from the cell's simulated duration) flags runaway cells.
//!
//! Environment knobs:
//!
//! - `WIFIQ_JOBS` — worker count (default: available parallelism),
//! - `WIFIQ_CACHE=0` — disable the result cache and journal,
//! - `WIFIQ_CACHE_KEY` — override the binary build fingerprint,
//! - `WIFIQ_CELL_BUDGET_SECS` — per-cell wall-clock budget override,
//! - `WIFIQ_FAULT_CELL=<substr>[:once]` — fault injection: panic any cell
//!   whose `experiment/cell/config/seed` path contains `<substr>`
//!   (`:once` limits the panic to the first attempt, exercising the retry
//!   path end to end),
//! - `WIFIQ_RESULTS_DIR` — relocate `results/` (cache + journal included).
//!
//! Per-sweep cell counters (total/ok/failed, cache hits/misses, retries,
//! budget overruns, per-cell wall time) are recorded into a
//! [`wifiq_telemetry::Telemetry`] handle when one is attached.

mod codec;
mod key;
pub mod pool;
mod sha256;
mod store;

use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Json;
use wifiq_telemetry::{Label, Telemetry};

pub use codec::JsonCodec;
pub use key::{binary_fingerprint, cell_key_hash, cell_key_json, CellDef, SweepMeta};
pub use pool::Queues;
pub use sha256::sha256_hex;
pub use store::{results_dir, Journal, JournalEntry};

/// Default worker count: available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count from `WIFIQ_JOBS`, warning (and falling back to the
/// default) on malformed or zero values.
pub fn jobs_from_env() -> usize {
    match std::env::var("WIFIQ_JOBS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring WIFIQ_JOBS={v:?}: not a positive integer");
                default_jobs()
            }
        },
        Err(_) => default_jobs(),
    }
}

/// Whether the result cache + journal are enabled (`WIFIQ_CACHE=0`
/// disables; anything else, including unset, enables).
pub fn cache_from_env() -> bool {
    std::env::var("WIFIQ_CACHE").map_or(true, |v| v != "0")
}

/// Fault injection spec parsed from `WIFIQ_FAULT_CELL`.
#[derive(Debug, Clone)]
struct FaultSpec {
    needle: String,
    once: bool,
}

impl FaultSpec {
    fn from_env() -> Option<FaultSpec> {
        let raw = std::env::var("WIFIQ_FAULT_CELL").ok()?;
        if raw.is_empty() {
            return None;
        }
        match raw.strip_suffix(":once") {
            Some(prefix) => Some(FaultSpec {
                needle: prefix.to_string(),
                once: true,
            }),
            None => Some(FaultSpec {
                needle: raw,
                once: false,
            }),
        }
    }

    fn matches(&self, path: &str, attempt: u32) -> bool {
        path.contains(&self.needle) && (!self.once || attempt == 0)
    }
}

/// Completion status of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Completed (fresh or from cache).
    Ok,
    /// Failed after the retry.
    Failed,
}

/// Per-cell execution report.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell label.
    pub cell: String,
    /// Config discriminator.
    pub config: String,
    /// Repetition seed.
    pub seed: u64,
    /// Content-addressed key (hex).
    pub key: String,
    /// Completion status.
    pub status: CellStatus,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// Wall-clock execution time (0 for cache hits).
    pub wall_ms: u64,
    /// Retries consumed (0 or 1).
    pub retries: u32,
    /// Failure description when `status == Failed`.
    pub error: Option<String>,
}

impl CellReport {
    /// True when the cell completed.
    pub fn ok(&self) -> bool {
        self.status == CellStatus::Ok
    }
}

/// Aggregate counters over one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Total cells in the sweep.
    pub total: usize,
    /// Cells that completed.
    pub ok: usize,
    /// Cells that failed after retry.
    pub failed: usize,
    /// Cells served from cache.
    pub cached: usize,
    /// Total retries consumed.
    pub retries: usize,
    /// Cells that overran their wall-clock budget.
    pub budget_exceeded: usize,
}

impl SweepSummary {
    /// The canonical one-line rendering, greppable by CI:
    /// `total=N ok=N failed=N cached=N retries=N`.
    pub fn line(&self) -> String {
        format!(
            "total={} ok={} failed={} cached={} retries={}",
            self.total, self.ok, self.failed, self.cached, self.retries
        )
    }
}

/// Outcome of [`Harness::run`]: per-cell results in input order plus
/// execution reports.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// One slot per input cell, in input order; `None` for failed cells.
    pub results: Vec<Option<T>>,
    /// One report per input cell, in input order.
    pub reports: Vec<CellReport>,
    /// Cells flagged by the wall-clock watchdog.
    pub budget_exceeded: usize,
}

impl<T> SweepOutcome<T> {
    /// Aggregate counters.
    pub fn summary(&self) -> SweepSummary {
        let mut s = SweepSummary {
            total: self.reports.len(),
            ..SweepSummary::default()
        };
        for r in &self.reports {
            if r.ok() {
                s.ok += 1;
            } else {
                s.failed += 1;
            }
            if r.cached {
                s.cached += 1;
            }
            s.retries += r.retries as usize;
        }
        s.budget_exceeded = self.budget_exceeded;
        s
    }

    /// The completed results in input order, dropping failed cells.
    pub fn into_ok_results(self) -> Vec<T> {
        self.results.into_iter().flatten().collect()
    }
}

/// The orchestrator: configuration + the cell execution engine.
#[derive(Debug)]
pub struct Harness {
    root: PathBuf,
    jobs: usize,
    cache: bool,
    budget: Option<Duration>,
    telemetry: Telemetry,
    fingerprint: String,
    fault: Option<FaultSpec>,
}

impl Harness {
    /// A harness rooted at an explicit results directory (cache and
    /// journal live under it). Jobs/cache/fault default from the
    /// environment.
    pub fn new(root: PathBuf) -> Harness {
        Harness {
            root,
            jobs: jobs_from_env(),
            cache: cache_from_env(),
            budget: None,
            telemetry: Telemetry::disabled(),
            fingerprint: binary_fingerprint().to_string(),
            fault: FaultSpec::from_env(),
        }
    }

    /// A harness rooted at the workspace `results/` directory (respects
    /// `WIFIQ_RESULTS_DIR`).
    pub fn from_env() -> Harness {
        Harness::new(results_dir())
    }

    /// Sets the worker count (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Harness {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables or disables the result cache + journal.
    pub fn with_cache(mut self, cache: bool) -> Harness {
        self.cache = cache;
        self
    }

    /// Attaches a telemetry handle; sweep counters are recorded into it
    /// (on the calling thread, after the pool joins).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Harness {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the per-cell wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Harness {
        self.budget = Some(budget);
        self
    }

    /// Overrides the binary fingerprint folded into cache keys.
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Harness {
        self.fingerprint = fingerprint.into();
        self
    }

    /// The journal path: `<root>/harness.manifest.jsonl`.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("harness.manifest.jsonl")
    }

    /// The cache directory: `<root>/cache/`.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The wall-clock budget for a cell simulating `duration_ns`:
    /// `WIFIQ_CELL_BUDGET_SECS` if set, else 20× the simulated duration
    /// with a 120 s floor. The simulator runs much faster than real time,
    /// so an overrun signals a hang, not a slow machine.
    pub fn cell_budget(&self, duration_ns: u64) -> Duration {
        if let Some(b) = self.budget {
            return b;
        }
        if let Ok(v) = std::env::var("WIFIQ_CELL_BUDGET_SECS") {
            if let Ok(secs) = v.parse::<u64>() {
                return Duration::from_secs(secs.max(1));
            }
            eprintln!("warning: ignoring WIFIQ_CELL_BUDGET_SECS={v:?}: not a positive integer");
        }
        Duration::from_secs((duration_ns / 1_000_000_000).saturating_mul(20).max(120))
    }

    /// Executes `cells` through the worker pool and returns results in
    /// input order. `f` runs once per non-cached cell (twice if the first
    /// attempt panics or errors); it must be deterministic in the cell
    /// definition for caching and `WIFIQ_JOBS` invariance to hold.
    pub fn run<T, F>(&self, sweep: &SweepMeta, cells: Vec<CellDef>, f: F) -> SweepOutcome<T>
    where
        T: JsonCodec + Send,
        F: Fn(&CellDef) -> Result<T, String> + Sync,
    {
        let n = cells.len();
        let key_docs: Vec<Json> = cells
            .iter()
            .map(|c| cell_key_json(sweep, c, &self.fingerprint))
            .collect();
        let keys: Vec<String> = key_docs
            .iter()
            .map(|d| sha256_hex(d.compact().as_bytes()))
            .collect();

        let mut journal = self.cache.then(|| Journal::load(self.manifest_path()));
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut reports: Vec<Option<CellReport>> = (0..n).map(|_| None).collect();

        // Resolve cache hits up front (journal is the completion
        // authority; the cache file must also decode).
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..n {
            let hit = journal.as_ref().is_some_and(|j| j.is_completed(&keys[i]))
                && store::cache_load(&self.cache_dir(), &keys[i], &key_docs[i])
                    .and_then(|out| T::decode(&out))
                    .map(|v| results[i] = Some(v))
                    .is_some();
            if hit {
                let report = CellReport {
                    cell: cells[i].cell.clone(),
                    config: cells[i].config.clone(),
                    seed: cells[i].seed,
                    key: keys[i].clone(),
                    status: CellStatus::Ok,
                    cached: true,
                    wall_ms: 0,
                    retries: 0,
                    error: None,
                };
                if let Some(j) = journal.as_mut() {
                    j.append(&journal_entry(sweep, &report));
                }
                reports[i] = Some(report);
            } else {
                pending.push(i);
            }
        }

        let budget = self.cell_budget(sweep.duration_ns);
        let budget_exceeded = AtomicU64::new(0);
        if !pending.is_empty() {
            // Workers must not capture `self`: the attached Telemetry is
            // Rc-based (!Sync). Hoist the Sync pieces they need.
            let cache_enabled = self.cache;
            let cache_dir = self.cache_dir();
            let fault = self.fault.as_ref();
            let jobs = self.jobs.clamp(1, pending.len());
            let queues = pool::Queues::new(jobs, &pending);
            let results_m = Mutex::new(&mut results);
            let reports_m = Mutex::new(&mut reports);
            let journal_m = Mutex::new(journal.as_mut());
            let active: Vec<Mutex<Option<(usize, Instant)>>> =
                (0..jobs).map(|_| Mutex::new(None)).collect();
            let done = AtomicBool::new(false);

            std::thread::scope(|s| {
                // Watchdog: flags cells that exceed their wall-clock budget.
                let watchdog = s.spawn(|| {
                    let mut warned: HashSet<usize> = HashSet::new();
                    while !done.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(25));
                        for slot in &active {
                            let snap = *slot.lock().unwrap();
                            if let Some((i, start)) = snap {
                                if start.elapsed() > budget && warned.insert(i) {
                                    budget_exceeded.fetch_add(1, Ordering::Relaxed);
                                    eprintln!(
                                        "warning: cell {} exceeded its {}s wall-clock budget \
                                         (still running)",
                                        cells[i].path(&sweep.experiment),
                                        budget.as_secs()
                                    );
                                }
                            }
                        }
                    }
                });

                let workers: Vec<_> = (0..jobs)
                    .map(|w| {
                        let queues = &queues;
                        let cells = &cells;
                        let keys = &keys;
                        let key_docs = &key_docs;
                        let f = &f;
                        let results_m = &results_m;
                        let reports_m = &reports_m;
                        let journal_m = &journal_m;
                        let active_slot = &active[w];
                        let cache_dir = &cache_dir;
                        s.spawn(move || {
                            while let Some(i) = queues.next(w) {
                                let cell = &cells[i];
                                let path = cell.path(&sweep.experiment);
                                *active_slot.lock().unwrap() = Some((i, Instant::now()));
                                let started = Instant::now();
                                let mut retries = 0u32;
                                let mut attempt = attempt_cell(f, cell, &path, fault, 0);
                                if attempt.is_err() {
                                    retries = 1;
                                    attempt = attempt_cell(f, cell, &path, fault, 1);
                                }
                                let wall_ms = started.elapsed().as_millis() as u64;
                                *active_slot.lock().unwrap() = None;

                                let report = match attempt {
                                    Ok(v) => {
                                        if cache_enabled {
                                            if let Err(e) = store::cache_store(
                                                cache_dir,
                                                &keys[i],
                                                &key_docs[i],
                                                &v.encode(),
                                            ) {
                                                eprintln!("warning: cannot cache cell {path}: {e}");
                                            }
                                        }
                                        results_m.lock().unwrap()[i] = Some(v);
                                        CellReport {
                                            cell: cell.cell.clone(),
                                            config: cell.config.clone(),
                                            seed: cell.seed,
                                            key: keys[i].clone(),
                                            status: CellStatus::Ok,
                                            cached: false,
                                            wall_ms,
                                            retries,
                                            error: None,
                                        }
                                    }
                                    Err(e) => {
                                        eprintln!("warning: cell {path} failed after retry: {e}");
                                        CellReport {
                                            cell: cell.cell.clone(),
                                            config: cell.config.clone(),
                                            seed: cell.seed,
                                            key: keys[i].clone(),
                                            status: CellStatus::Failed,
                                            cached: false,
                                            wall_ms,
                                            retries,
                                            error: Some(e),
                                        }
                                    }
                                };
                                if let Some(j) = journal_m.lock().unwrap().as_deref_mut() {
                                    j.append(&journal_entry(sweep, &report));
                                }
                                reports_m.lock().unwrap()[i] = Some(report);
                            }
                        })
                    })
                    .collect();
                for h in workers {
                    let _ = h.join();
                }
                done.store(true, Ordering::Release);
                let _ = watchdog.join();
            });
        }

        let reports: Vec<CellReport> = reports
            .into_iter()
            .map(|r| r.expect("every cell reported"))
            .collect();
        let outcome = SweepOutcome {
            results,
            reports,
            budget_exceeded: budget_exceeded.load(Ordering::Relaxed) as usize,
        };
        self.record_telemetry(&outcome);
        outcome
    }

    /// Records sweep counters into the attached telemetry handle
    /// (component `harness`, all `Label::Global`).
    fn record_telemetry<T>(&self, outcome: &SweepOutcome<T>) {
        let tele = &self.telemetry;
        if !tele.is_enabled() {
            return;
        }
        let s = outcome.summary();
        tele.count("harness", "cells_total", Label::Global, s.total as u64);
        tele.count("harness", "cells_ok", Label::Global, s.ok as u64);
        tele.count("harness", "cells_failed", Label::Global, s.failed as u64);
        tele.count("harness", "cache_hits", Label::Global, s.cached as u64);
        tele.count(
            "harness",
            "cache_misses",
            Label::Global,
            (s.total - s.cached) as u64,
        );
        tele.count("harness", "retries", Label::Global, s.retries as u64);
        tele.count(
            "harness",
            "budget_exceeded",
            Label::Global,
            s.budget_exceeded as u64,
        );
        for r in &outcome.reports {
            tele.observe_value("harness", "cell_wall_ms", Label::Global, r.wall_ms);
        }
    }
}

/// One guarded attempt at a cell: fault injection, then `f` under
/// `catch_unwind` so a panicking cell is an error, not a crash.
fn attempt_cell<T, F>(
    f: &F,
    cell: &CellDef,
    path: &str,
    fault: Option<&FaultSpec>,
    attempt: u32,
) -> Result<T, String>
where
    F: Fn(&CellDef) -> Result<T, String>,
{
    let inject = fault.is_some_and(|spec| spec.matches(path, attempt));
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected fault (WIFIQ_FAULT_CELL)");
        }
        f(cell)
    })) {
        Ok(inner) => inner,
        Err(payload) => Err(format!("panicked: {}", panic_message(payload.as_ref()))),
    }
}

fn journal_entry(sweep: &SweepMeta, report: &CellReport) -> JournalEntry {
    JournalEntry {
        key: report.key.clone(),
        experiment: sweep.experiment.clone(),
        cell: report.cell.clone(),
        config: report.config.clone(),
        seed: report.seed,
        ok: report.ok(),
        cached: report.cached,
        wall_ms: report.wall_ms,
        retries: report.retries,
        error: report.error.clone(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::atomic::AtomicUsize;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wifiq_harness_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn harness(root: &Path) -> Harness {
        Harness::new(root.to_path_buf()).with_fingerprint("test-fp")
    }

    fn cells(n: u64) -> Vec<CellDef> {
        (0..n).map(|s| CellDef::new("cell", "cfg", s)).collect()
    }

    /// A deterministic per-seed payload with enough work to interleave.
    fn compute(cell: &CellDef) -> Result<(f64, Vec<f64>), String> {
        std::thread::sleep(Duration::from_millis(1 + cell.seed % 3));
        let x = (cell.seed as f64 + 1.0).sqrt();
        Ok((x, vec![x * 0.5, x * 0.25, 1.0 / (x + 1.0)]))
    }

    #[test]
    fn parallel_results_match_sequential_in_input_order() {
        let root = tmp("determinism");
        let sweep = SweepMeta::new("det", 1_000_000_000, 0);
        let serial = harness(&root)
            .with_cache(false)
            .with_jobs(1)
            .run(&sweep, cells(13), compute);
        let parallel =
            harness(&root)
                .with_cache(false)
                .with_jobs(4)
                .run(&sweep, cells(13), compute);
        assert_eq!(serial.results, parallel.results);
        assert!(serial.results.iter().all(Option::is_some));
        assert_eq!(parallel.summary().ok, 13);
        assert_eq!(parallel.summary().cached, 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn second_run_is_served_entirely_from_cache() {
        let root = tmp("cache");
        let sweep = SweepMeta::new("cached", 1_000_000_000, 0);
        let executions = AtomicUsize::new(0);
        let f = |cell: &CellDef| {
            executions.fetch_add(1, Ordering::Relaxed);
            compute(cell)
        };
        let first = harness(&root)
            .with_cache(true)
            .with_jobs(4)
            .run(&sweep, cells(8), f);
        assert_eq!(executions.load(Ordering::Relaxed), 8);
        assert_eq!(first.summary().cached, 0);

        let second = harness(&root)
            .with_cache(true)
            .with_jobs(4)
            .run(&sweep, cells(8), f);
        assert_eq!(
            executions.load(Ordering::Relaxed),
            8,
            "second run must not execute any cell"
        );
        assert_eq!(second.summary().cached, 8);
        assert_eq!(second.summary().ok, 8);
        assert_eq!(
            first.results, second.results,
            "cached results must round-trip exactly"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn truncated_journal_replays_only_missing_cells() {
        let root = tmp("resume");
        let sweep = SweepMeta::new("resume", 1_000_000_000, 0);
        harness(&root)
            .with_cache(true)
            .with_jobs(1)
            .run(&sweep, cells(6), compute);

        // Simulate a killed run: keep only the first three journal lines.
        let manifest = root.join("harness.manifest.jsonl");
        let text = std::fs::read_to_string(&manifest).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&manifest, format!("{}\n", kept.join("\n"))).unwrap();

        let executed = Mutex::new(Vec::new());
        let out =
            harness(&root)
                .with_cache(true)
                .with_jobs(1)
                .run(&sweep, cells(6), |cell: &CellDef| {
                    executed.lock().unwrap().push(cell.seed);
                    compute(cell)
                });
        let mut executed = executed.into_inner().unwrap();
        executed.sort_unstable();
        assert_eq!(
            executed,
            vec![3, 4, 5],
            "only the unjournalled cells replay"
        );
        assert_eq!(out.summary().ok, 6);
        assert_eq!(out.summary().cached, 3);
        assert!(out.results.iter().all(Option::is_some));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn panicking_cell_is_retried_once_then_reported() {
        let root = tmp("panic");
        let sweep = SweepMeta::new("panic", 1_000_000_000, 0);
        let out = harness(&root).with_cache(false).with_jobs(2).run(
            &sweep,
            cells(4),
            |cell: &CellDef| {
                if cell.seed == 2 {
                    panic!("cell exploded");
                }
                compute(cell)
            },
        );
        let s = out.summary();
        assert_eq!((s.ok, s.failed, s.retries), (3, 1, 1));
        let failed = &out.reports[2];
        assert_eq!(failed.status, CellStatus::Failed);
        assert_eq!(failed.retries, 1);
        assert!(failed.error.as_deref().unwrap().contains("cell exploded"));
        assert!(out.results[2].is_none());
        assert!(out.results[0].is_some() && out.results[3].is_some());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn flaky_cell_succeeds_on_retry() {
        let root = tmp("flaky");
        let sweep = SweepMeta::new("flaky", 1_000_000_000, 0);
        let attempts = AtomicUsize::new(0);
        let out = harness(&root).with_cache(false).with_jobs(1).run(
            &sweep,
            cells(1),
            |cell: &CellDef| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                compute(cell)
            },
        );
        assert_eq!(out.reports[0].status, CellStatus::Ok);
        assert_eq!(out.reports[0].retries, 1);
        assert_eq!(
            out.summary().line(),
            "total=1 ok=1 failed=0 cached=0 retries=1"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn env_fault_injection_targets_matching_cells_only() {
        let root = tmp("fault");
        // The needle is unique to this test's experiment name, so other
        // tests constructing harnesses concurrently never match it.
        std::env::set_var("WIFIQ_FAULT_CELL", "fault_env_exp/cell/cfg/0:once");
        let h = harness(&root).with_cache(false).with_jobs(1);
        std::env::remove_var("WIFIQ_FAULT_CELL");
        let sweep = SweepMeta::new("fault_env_exp", 1_000_000_000, 0);
        let out = h.run(&sweep, cells(2), compute);
        assert_eq!(out.reports[0].status, CellStatus::Ok);
        assert_eq!(out.reports[0].retries, 1, "faulted cell recovers on retry");
        assert_eq!(out.reports[1].retries, 0, "non-matching cell untouched");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn watchdog_flags_cells_over_budget() {
        let root = tmp("budget");
        let sweep = SweepMeta::new("budget", 1_000_000_000, 0);
        let out = harness(&root)
            .with_cache(false)
            .with_jobs(1)
            .with_budget(Duration::from_millis(10))
            .run(&sweep, cells(1), |cell: &CellDef| {
                std::thread::sleep(Duration::from_millis(300));
                compute(cell)
            });
        assert_eq!(out.budget_exceeded, 1);
        assert_eq!(out.reports[0].status, CellStatus::Ok, "overrun is advisory");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn telemetry_counters_record_the_sweep() {
        let root = tmp("telemetry");
        let tele = Telemetry::enabled();
        let sweep = SweepMeta::new("tele", 1_000_000_000, 0);
        harness(&root)
            .with_cache(true)
            .with_jobs(2)
            .with_telemetry(tele.clone())
            .run(&sweep, cells(5), compute);
        assert_eq!(tele.counter("harness", "cells_total", Label::Global), 5);
        assert_eq!(tele.counter("harness", "cells_ok", Label::Global), 5);
        assert_eq!(tele.counter("harness", "cache_misses", Label::Global), 5);
        // Second run: 5 hits on top.
        harness(&root)
            .with_cache(true)
            .with_jobs(2)
            .with_telemetry(tele.clone())
            .run(&sweep, cells(5), compute);
        assert_eq!(tele.counter("harness", "cells_total", Label::Global), 10);
        assert_eq!(tele.counter("harness", "cache_hits", Label::Global), 5);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn default_budget_scales_with_duration() {
        let h = Harness::new(PathBuf::from("/nonexistent"));
        assert_eq!(h.cell_budget(1_000_000_000), Duration::from_secs(120));
        assert_eq!(h.cell_budget(30_000_000_000), Duration::from_secs(600));
    }
}
