//! # wifiq-policy
//!
//! Hierarchical airtime policy for the paper's weighted deficit
//! scheduler. The airtime scheduler in `wifiq-core` ends the 802.11
//! performance anomaly by giving every station an *equal* airtime share;
//! this crate supplies the PoliFi-style next step — *policy* — as a tree
//! of weighted nodes:
//!
//! - **slices** at the root (tenants, BSSes) dividing the cell's airtime
//!   by relative weight,
//! - **groups** below (device classes, optionally restricted to a set of
//!   802.11e access categories), and
//! - **stations** at the leaves.
//!
//! A [`PolicySet`] is the declarative tree. [`PolicySet::compile`]
//! flattens it into a [`CompiledPolicy`]: one effective `u32` weight per
//! (station, access category), in the scheduler's
//! [`WEIGHT_NEUTRAL`](wifiq_core::WEIGHT_NEUTRAL)-relative unit, plus the
//! station → leaf-node map used for per-node achieved-airtime telemetry.
//! Compilation is exact rational arithmetic scaled so that any tree
//! granting every station an equal share compiles to *exactly*
//! `WEIGHT_NEUTRAL` everywhere — an equal-share policy is byte-identical
//! to running with no policy at all.
//!
//! Runtime reconfiguration is a [`PolicyTimeline`]: an optional initial
//! set plus time-ordered [`PolicySwitch`]es. The MAC applies a due switch
//! at a scheduler round boundary by re-writing weights only — deficits,
//! queues and in-flight aggregates are never touched, so nodes whose
//! weights did not change are completely undisturbed.
//!
//! ```
//! use wifiq_policy::{PolicyNode, PolicySet};
//!
//! // Two tenant slices 2:1; tenant A splits its share equally between
//! // stations 0 and 1, tenant B gives everything to station 2.
//! let set = PolicySet::new(vec![
//!     PolicyNode::leaf("tenant-a", 2, vec![0, 1]),
//!     PolicyNode::leaf("tenant-b", 1, vec![2]),
//! ]);
//! let compiled = set.compile(3).unwrap();
//! let be = wifiq_phy::AccessCategory::Be.index();
//! // Shares 1/3, 1/3, 1/3 — an equal split, so exactly neutral weights.
//! assert_eq!(compiled.station_weights(0)[be], wifiq_core::WEIGHT_NEUTRAL);
//! assert_eq!(compiled.station_weights(2)[be], wifiq_core::WEIGHT_NEUTRAL);
//! ```

pub mod compile;
pub mod timeline;
pub mod tree;

pub use compile::{CompiledPolicy, NODE_NONE};
pub use timeline::{CompiledTimeline, PolicySwitch, PolicyTimeline};
pub use tree::{PolicyNode, PolicySet};

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_core::{QOS_LEVELS, WEIGHT_NEUTRAL};
    use wifiq_phy::AccessCategory;
    use wifiq_sim::Nanos;

    const BE: usize = 2;

    #[test]
    fn flat_equal_weights_compile_to_neutral() {
        for n in 1..12 {
            let set = PolicySet::flat(&vec![7; n]);
            let c = set.compile(n).unwrap();
            for sta in 0..n {
                assert_eq!(c.station_weights(sta), [WEIGHT_NEUTRAL; QOS_LEVELS]);
            }
        }
    }

    #[test]
    fn grouped_equal_shares_compile_to_neutral() {
        // Group weights proportional to member counts → equal per-station
        // shares → exactly neutral, regardless of grouping.
        let set = PolicySet::new(vec![
            PolicyNode::leaf("a", 1, vec![0]),
            PolicyNode::leaf("b", 3, vec![1, 2, 3]),
            PolicyNode::group(
                "c",
                2,
                vec![
                    PolicyNode::leaf("c1", 5, vec![4]),
                    PolicyNode::leaf("c2", 5, vec![5]),
                ],
            ),
        ]);
        let c = set.compile(6).unwrap();
        for sta in 0..6 {
            assert_eq!(c.station_weights(sta), [WEIGHT_NEUTRAL; QOS_LEVELS]);
        }
    }

    #[test]
    fn ratios_scale_relative_to_neutral() {
        // 1:2:4 flat weights over 3 stations: shares 1/7, 2/7, 4/7, and
        // weights n·share·256 = 768/7, 1536/7, 3072/7 rounded.
        let c = PolicySet::flat(&[1, 2, 4]).compile(3).unwrap();
        assert_eq!(c.station_weights(0)[BE], 110); // 768/7 ≈ 109.7
        assert_eq!(c.station_weights(1)[BE], 219); // 1536/7 ≈ 219.4
        assert_eq!(c.station_weights(2)[BE], 439); // 3072/7 ≈ 438.9
        let shares: f64 = (0..3).map(|s| c.share(s, BE)).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_filter_splits_by_access_category() {
        // Interactive group owns VO+VI at 3:1 over bulk; bulk owns BE+BK
        // alone, so station 1 gets the whole BE share.
        let set = PolicySet::new(vec![
            PolicyNode::leaf("interactive", 3, vec![0])
                .classes(vec![AccessCategory::Vo, AccessCategory::Vi]),
            PolicyNode::leaf("bulk", 1, vec![0, 1])
                .classes(vec![AccessCategory::Be, AccessCategory::Bk]),
        ]);
        let c = set.compile(2).unwrap();
        let vo = AccessCategory::Vo.index();
        // Station 0 is the only VO-covered station: share 1 of 1 station.
        assert_eq!(c.station_weights(0)[vo], WEIGHT_NEUTRAL);
        // Station 1 has no VO coverage: defaults to neutral.
        assert_eq!(c.station_weights(1)[vo], WEIGHT_NEUTRAL);
        assert_eq!(c.node_of(1, vo), NODE_NONE);
        // BE: both stations under "bulk", equal split → neutral.
        assert_eq!(c.station_weights(0)[BE], WEIGHT_NEUTRAL);
        assert_eq!(c.node_of(0, BE), c.node_of(1, BE));
    }

    #[test]
    fn node_ids_are_preorder_and_named() {
        let set = PolicySet::new(vec![
            PolicyNode::group("root", 1, vec![PolicyNode::leaf("kid", 1, vec![0])]),
            PolicyNode::leaf("other", 1, vec![1]),
        ]);
        let c = set.compile(2).unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(0), "root");
        assert_eq!(c.node_name(1), "kid");
        assert_eq!(c.node_name(2), "other");
        assert_eq!(c.node_of(0, BE), 1);
        assert_eq!(c.node_of(1, BE), 2);
    }

    #[test]
    fn validation_rejects_malformed_trees() {
        let roster = 4;
        let cases: Vec<(PolicySet, &str)> = vec![
            (PolicySet::new(vec![]), "at least one"),
            (
                PolicySet::new(vec![PolicyNode::leaf("a", 0, vec![0])]),
                "positive",
            ),
            (
                PolicySet::new(vec![PolicyNode::leaf("", 1, vec![0])]),
                "name",
            ),
            (
                PolicySet::new(vec![PolicyNode::leaf("a", 1, vec![9])]),
                "out of range",
            ),
            (
                PolicySet::new(vec![
                    PolicyNode::leaf("a", 1, vec![0]),
                    PolicyNode::leaf("a", 1, vec![1]),
                ]),
                "duplicate node name",
            ),
            (
                PolicySet::new(vec![
                    PolicyNode::leaf("a", 1, vec![0]),
                    PolicyNode::leaf("b", 1, vec![0]),
                ]),
                "claimed by both",
            ),
            (
                PolicySet::new(vec![PolicyNode::group("g", 1, vec![])]),
                "children or stations",
            ),
            (
                PolicySet::new(vec![PolicyNode::leaf("a", 1, vec![0]).classes(vec![])]),
                "classes",
            ),
        ];
        for (set, needle) in cases {
            let err = set.compile(roster).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn overlap_is_allowed_across_disjoint_classes() {
        let set = PolicySet::new(vec![
            PolicyNode::leaf("voice", 1, vec![0]).classes(vec![AccessCategory::Vo]),
            PolicyNode::leaf("data", 1, vec![0]).classes(vec![AccessCategory::Be]),
        ]);
        assert!(set.compile(1).is_ok());
    }

    #[test]
    fn timeline_orders_and_compiles() {
        let t = PolicyTimeline::fixed(PolicySet::flat(&[1, 1]))
            .with_switch(Nanos::from_secs(5), PolicySet::flat(&[1, 4]));
        let c = t.compile(2).unwrap();
        assert_eq!(c.switches.len(), 1);
        assert!(c.initial.is_some());
        assert!(!t.is_none());
        assert!(PolicyTimeline::none().is_none());

        let bad = PolicyTimeline::fixed(PolicySet::flat(&[1, 1]))
            .with_switch(Nanos::from_secs(5), PolicySet::flat(&[1, 4]))
            .with_switch(Nanos::from_secs(5), PolicySet::flat(&[4, 1]));
        assert!(bad.compile(2).unwrap_err().contains("ascending"));
    }

    #[test]
    fn uncovered_roster_tail_defaults_to_neutral() {
        let c = PolicySet::flat(&[1, 2]).compile(5).unwrap();
        for sta in 2..5 {
            assert_eq!(c.station_weights(sta), [WEIGHT_NEUTRAL; QOS_LEVELS]);
            assert_eq!(c.node_of(sta, BE), NODE_NONE);
        }
        // Out-of-roster lookups are also neutral (churned-in slots).
        assert_eq!(c.station_weights(17), [WEIGHT_NEUTRAL; QOS_LEVELS]);
        assert_eq!(c.node_of(17, BE), NODE_NONE);
    }
}
