//! Flattening a [`PolicySet`] into effective scheduler weights.

use wifiq_core::{QOS_LEVELS, WEIGHT_NEUTRAL};
use wifiq_phy::AccessCategory;

use crate::tree::{PolicyNode, PolicySet};

/// Sentinel leaf-node id for a (station, access category) no leaf claims.
pub const NODE_NONE: u32 = u32::MAX;

/// A station's exact fractional share as a rational number, accumulated
/// multiplicatively down the tree path. Weights are `u32` and trees are
/// shallow; `reduce` after every step keeps the `u128` terms small.
#[derive(Clone, Copy)]
struct Share {
    num: u128,
    den: u128,
}

impl Share {
    const ONE: Share = Share { num: 1, den: 1 };

    fn times(self, num: u128, den: u128) -> Share {
        let mut s = Share {
            num: self.num * num,
            den: self.den * den,
        };
        let g = gcd(s.num, s.den);
        s.num /= g;
        s.den /= g;
        s
    }

    /// `self × scale × WEIGHT_NEUTRAL`, rounded half-up, clamped to a
    /// positive `u32`. Exact whenever the product is integral — the
    /// equal-share case (`share = 1/n`, `scale = n`) yields precisely
    /// `WEIGHT_NEUTRAL`.
    fn to_weight(self, scale: u128) -> u32 {
        let num = self.num * scale * WEIGHT_NEUTRAL as u128;
        let w = (num + self.den / 2) / self.den;
        w.clamp(1, u32::MAX as u128) as u32
    }

    fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

/// A compiled policy: per-(station, access category) scheduler weights in
/// [`WEIGHT_NEUTRAL`] units, the leaf-node ownership map for telemetry,
/// and the exact configured shares for validation harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolicy {
    weights: Vec<[u32; QOS_LEVELS]>,
    node_of: Vec<[u32; QOS_LEVELS]>,
    shares: Vec<[f64; QOS_LEVELS]>,
    node_names: Vec<String>,
}

impl CompiledPolicy {
    /// Effective per-AC weights for `sta`; neutral for stations beyond the
    /// compiled roster (slots that churn in later keep the equal share).
    pub fn station_weights(&self, sta: usize) -> [u32; QOS_LEVELS] {
        self.weights
            .get(sta)
            .copied()
            .unwrap_or([WEIGHT_NEUTRAL; QOS_LEVELS])
    }

    /// The leaf node owning (`sta`, `ac`), or [`NODE_NONE`].
    pub fn node_of(&self, sta: usize, ac: usize) -> u32 {
        self.node_of.get(sta).map_or(NODE_NONE, |per_ac| per_ac[ac])
    }

    /// Configured fractional airtime share of (`sta`, `ac`) among the
    /// stations covered at that category; `0.0` when uncovered.
    pub fn share(&self, sta: usize, ac: usize) -> f64 {
        self.shares.get(sta).map_or(0.0, |per_ac| per_ac[ac])
    }

    /// Number of nodes in the compiled tree (groups and leaves).
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of node `id` (pre-order over the forest).
    pub fn node_name(&self, id: u32) -> &str {
        &self.node_names[id as usize]
    }

    /// Compiled roster size.
    pub fn stations(&self) -> usize {
        self.weights.len()
    }
}

/// Walk state for one access category's share assignment.
struct Walk {
    /// Exact share per station at the category under walk; `None` means
    /// uncovered so far.
    shares: Vec<Option<Share>>,
    /// Owning leaf-node id per station at the category under walk.
    owner: Vec<u32>,
}

impl PolicySet {
    /// Compiles the tree against a roster of `stations` slots.
    ///
    /// Per access category, a station's fractional share is the product of
    /// `weight / Σ participating-sibling weights` down its path, divided
    /// by its leaf's member count. The scheduler weight is that share
    /// scaled by `covered-station-count × WEIGHT_NEUTRAL` in exact
    /// rational arithmetic — any tree granting equal per-station shares
    /// therefore compiles to exactly [`WEIGHT_NEUTRAL`], making an
    /// equal-share policy byte-identical to no policy.
    ///
    /// Validation errors (stable substrings for callers): empty set
    /// ("at least one"), non-positive weight ("positive"), empty or
    /// duplicate node name, station index "out of range", a (station,
    /// category) "claimed by both" two leaves, a node needing exactly one
    /// of "children or stations", an empty "classes" list.
    pub fn compile(&self, stations: usize) -> Result<CompiledPolicy, String> {
        if self.roots().is_empty() {
            return Err("policy set needs at least one root node".into());
        }
        // Pass 1: structural validation + pre-order node naming.
        let mut node_names = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for root in self.roots() {
            validate_node(root, stations, &mut seen, &mut node_names)?;
        }
        // Pass 2: per-category share walk, then scale to scheduler units.
        let mut weights = vec![[WEIGHT_NEUTRAL; QOS_LEVELS]; stations];
        let mut node_of = vec![[NODE_NONE; QOS_LEVELS]; stations];
        let mut shares = vec![[0.0; QOS_LEVELS]; stations];
        for ac in AccessCategory::ALL {
            let mut walk = Walk {
                shares: vec![None; stations],
                owner: vec![NODE_NONE; stations],
            };
            split(&mut walk, &node_names, self.roots(), ac, Share::ONE, &mut 0)?;
            let covered = walk.shares.iter().filter(|s| s.is_some()).count() as u128;
            for sta in 0..stations {
                if let Some(share) = walk.shares[sta] {
                    weights[sta][ac.index()] = share.to_weight(covered);
                    node_of[sta][ac.index()] = walk.owner[sta];
                    shares[sta][ac.index()] = share.as_f64();
                }
            }
        }
        Ok(CompiledPolicy {
            weights,
            node_of,
            shares,
            node_names,
        })
    }
}

fn validate_node(
    node: &PolicyNode,
    roster: usize,
    seen: &mut std::collections::BTreeSet<String>,
    names: &mut Vec<String>,
) -> Result<(), String> {
    if node.name.is_empty() {
        return Err("policy node with empty name".into());
    }
    if !seen.insert(node.name.clone()) {
        return Err(format!("duplicate node name {:?}", node.name));
    }
    names.push(node.name.clone());
    if node.weight == 0 {
        return Err(format!("node {:?}: weight must be positive", node.name));
    }
    if let Some(classes) = &node.classes {
        if classes.is_empty() {
            return Err(format!("node {:?}: classes list is empty", node.name));
        }
    }
    match (node.children.is_empty(), node.stations.is_empty()) {
        (true, true) | (false, false) => {
            return Err(format!(
                "node {:?}: needs exactly one of children or stations",
                node.name
            ));
        }
        _ => {}
    }
    for &sta in &node.stations {
        if sta >= roster {
            return Err(format!(
                "node {:?}: station {sta} out of range 0..{roster}",
                node.name
            ));
        }
    }
    for child in &node.children {
        validate_node(child, roster, seen, names)?;
    }
    Ok(())
}

/// Divides `share` among the participating members of one sibling list,
/// recursing into groups and claiming stations at leaves. `next_id`
/// tracks the pre-order node id; all nodes advance it (participating at
/// `ac` or not) so ids are category-independent and match `node_names`.
fn split(
    walk: &mut Walk,
    node_names: &[String],
    siblings: &[PolicyNode],
    ac: AccessCategory,
    share: Share,
    next_id: &mut u32,
) -> Result<(), String> {
    let total: u128 = siblings
        .iter()
        .filter(|n| n.participates(ac))
        .map(|n| n.weight as u128)
        .sum();
    for node in siblings {
        let id = *next_id;
        *next_id += 1;
        if !node.participates(ac) {
            *next_id += (node.count() - 1) as u32;
            continue;
        }
        let part = share.times(node.weight as u128, total);
        if node.children.is_empty() {
            let per_sta = part.times(1, node.stations.len() as u128);
            for &sta in &node.stations {
                if walk.owner[sta] != NODE_NONE {
                    return Err(format!(
                        "station {sta} at {ac:?} claimed by both {:?} and {:?}",
                        node_names[walk.owner[sta] as usize], node.name
                    ));
                }
                walk.owner[sta] = id;
                walk.shares[sta] = Some(per_sta);
            }
        } else {
            split(walk, node_names, &node.children, ac, part, next_id)?;
        }
    }
    Ok(())
}
