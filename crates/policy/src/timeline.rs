//! Runtime reconfiguration: [`PolicySwitch`] events on a
//! [`PolicyTimeline`].

use wifiq_sim::Nanos;

use crate::compile::CompiledPolicy;
use crate::tree::PolicySet;

/// One runtime reconfiguration: at sim time `at`, replace the active
/// policy with `set`. Applied by the MAC at the next scheduler round
/// boundary at or after `at` — weights are rewritten in place; deficits,
/// queues and in-flight exchanges are never touched, so nodes whose
/// weights did not change are completely undisturbed.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySwitch {
    /// Sim time the switch becomes due.
    pub at: Nanos,
    /// The policy set that becomes active.
    pub set: PolicySet,
}

/// A network's policy schedule: an optional initial set plus
/// time-ordered switches. The default ([`PolicyTimeline::none`]) is
/// byte-invisible — no compiled policy exists and the scheduler keeps its
/// neutral equal-share weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyTimeline {
    initial: Option<PolicySet>,
    switches: Vec<PolicySwitch>,
}

impl PolicyTimeline {
    /// No policy at all: the pre-policy equal-share path.
    pub fn none() -> PolicyTimeline {
        PolicyTimeline::default()
    }

    /// A fixed policy active from time zero.
    pub fn fixed(set: PolicySet) -> PolicyTimeline {
        PolicyTimeline {
            initial: Some(set),
            switches: Vec::new(),
        }
    }

    /// Appends a runtime switch. Switches must be added in strictly
    /// ascending time order (checked by [`PolicyTimeline::compile`]).
    pub fn with_switch(mut self, at: Nanos, set: PolicySet) -> PolicyTimeline {
        self.switches.push(PolicySwitch { at, set });
        self
    }

    /// True when no policy is configured (the byte-invisible default).
    pub fn is_none(&self) -> bool {
        self.initial.is_none() && self.switches.is_empty()
    }

    /// The initial set, if any.
    pub fn initial(&self) -> Option<&PolicySet> {
        self.initial.as_ref()
    }

    /// The scheduled switches.
    pub fn switches(&self) -> &[PolicySwitch] {
        &self.switches
    }

    /// Validates every set against a roster of `stations` slots.
    pub fn validate(&self, stations: usize) -> Result<(), String> {
        self.compile(stations).map(|_| ())
    }

    /// Compiles every set in the timeline against the roster, checking
    /// that switch times are strictly ascending.
    pub fn compile(&self, stations: usize) -> Result<CompiledTimeline, String> {
        let initial = match &self.initial {
            None => None,
            Some(set) => Some(set.compile(stations)?),
        };
        let mut switches = Vec::with_capacity(self.switches.len());
        let mut last: Option<Nanos> = None;
        for sw in &self.switches {
            if last.is_some_and(|prev| sw.at <= prev) {
                return Err(format!(
                    "policy switches must be strictly ascending in time (switch at {:?})",
                    sw.at
                ));
            }
            last = Some(sw.at);
            switches.push((sw.at, sw.set.compile(stations)?));
        }
        Ok(CompiledTimeline { initial, switches })
    }
}

/// The timeline after compilation: ready-to-apply weight tables.
#[derive(Debug, Clone)]
pub struct CompiledTimeline {
    /// Compiled initial set, if any.
    pub initial: Option<CompiledPolicy>,
    /// Compiled switches, strictly ascending in time.
    pub switches: Vec<(Nanos, CompiledPolicy)>,
}
