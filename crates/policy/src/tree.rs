//! The declarative policy tree: [`PolicyNode`] and [`PolicySet`].

use wifiq_phy::AccessCategory;

/// One node in the policy hierarchy.
///
/// A node carries a `weight` relative to its *participating siblings*, an
/// optional access-category filter (`classes`), and either child nodes
/// (a slice/group) or member station indices (a leaf). Constructed via
/// [`PolicyNode::group`] / [`PolicyNode::leaf`]; the invariant "exactly
/// one of children/stations is non-empty" is enforced at compile time by
/// [`PolicySet::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyNode {
    /// Human-readable identifier, unique within a set; becomes the
    /// `policy/*` telemetry node name.
    pub name: String,
    /// Relative weight among participating siblings. Must be positive.
    pub weight: u32,
    /// Access categories this subtree applies to; `None` means all four.
    /// Filters intersect down the path: a child never participates in a
    /// category its parent excluded.
    pub classes: Option<Vec<AccessCategory>>,
    /// Child nodes (non-empty for a group, empty for a leaf).
    pub children: Vec<PolicyNode>,
    /// Member station indices (non-empty for a leaf, empty for a group).
    /// A leaf's share is split equally among its members.
    pub stations: Vec<usize>,
}

impl PolicyNode {
    /// An interior slice/group node dividing its share among `children`.
    pub fn group(name: &str, weight: u32, children: Vec<PolicyNode>) -> PolicyNode {
        PolicyNode {
            name: name.into(),
            weight,
            classes: None,
            children,
            stations: Vec::new(),
        }
    }

    /// A leaf node splitting its share equally among member `stations`.
    pub fn leaf(name: &str, weight: u32, stations: Vec<usize>) -> PolicyNode {
        PolicyNode {
            name: name.into(),
            weight,
            classes: None,
            children: Vec::new(),
            stations,
        }
    }

    /// Restricts this subtree to the given access categories.
    pub fn classes(mut self, classes: Vec<AccessCategory>) -> PolicyNode {
        self.classes = Some(classes);
        self
    }

    /// True when this subtree participates in `ac` (its own filter allows
    /// it; ancestors are checked by the walker).
    pub(crate) fn participates(&self, ac: AccessCategory) -> bool {
        match &self.classes {
            None => true,
            Some(cs) => cs.contains(&ac),
        }
    }

    /// Total node count of this subtree (self included).
    pub(crate) fn count(&self) -> usize {
        1 + self.children.iter().map(PolicyNode::count).sum::<usize>()
    }
}

/// A complete policy hierarchy: a forest of root slices.
///
/// Root nodes divide the whole cell's airtime by relative weight; see the
/// crate docs for the share model. Stations not covered by any leaf at
/// some access category keep the scheduler's neutral (equal) share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySet {
    roots: Vec<PolicyNode>,
}

impl PolicySet {
    /// A set from explicit root nodes.
    pub fn new(roots: Vec<PolicyNode>) -> PolicySet {
        PolicySet { roots }
    }

    /// A flat set: one single-station leaf per entry of `weights`,
    /// named `staN`. The builder-path replacement for the old per-station
    /// static `airtime_weight` plumbing.
    pub fn flat(weights: &[u32]) -> PolicySet {
        PolicySet {
            roots: weights
                .iter()
                .enumerate()
                .map(|(i, &w)| PolicyNode::leaf(&format!("sta{i}"), w, vec![i]))
                .collect(),
        }
    }

    /// The equal-share set over `stations` stations — compiles to exactly
    /// the scheduler's neutral weight everywhere.
    pub fn equal(stations: usize) -> PolicySet {
        PolicySet::flat(&vec![1; stations])
    }

    /// The root nodes.
    pub fn roots(&self) -> &[PolicyNode] {
        &self.roots
    }

    /// Validates the tree against a roster of `stations` slots without
    /// compiling. See [`PolicySet::compile`] for the rules.
    pub fn validate(&self, stations: usize) -> Result<(), String> {
        self.compile(stations).map(|_| ())
    }
}
