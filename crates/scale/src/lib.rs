//! # wifiq-scale
//!
//! Scaling machinery on top of the single-BSS simulator: deterministic
//! station churn and a sharded multi-BSS engine.
//!
//! ## Churn
//!
//! [`ChurnDriver`] owns a seeded schedule of join/leave events and applies
//! them to a [`WifiNetwork`](wifiq_mac::WifiNetwork) between event-loop
//! windows. Departing stations are torn down mid-run (queued packets
//! dropped, scheduler slots detached without corrupting the DRR round);
//! a rejoining station reuses the vacated slot with a freshly drawn rate.
//! The schedule is a pure function of the driver's seed, so churn runs are
//! exactly repeatable.
//!
//! ## Sharding
//!
//! [`ShardSet`] runs N *independent* BSS instances (shards) across a
//! work-stealing worker pool. Each shard gets its own RNG seed split from
//! one master seed, simulates in isolation, and hands back a result plus
//! an optional telemetry [`Registry`](wifiq_telemetry::Registry). The
//! coordinator merges registries in shard order under `shardN` labels,
//! so the rolled-up snapshot is byte-identical no matter how many workers
//! executed the shards — a parallel run and a sequential one produce the
//! same artifact.

pub mod churn;
pub mod shard;

pub use churn::{ChurnCfg, ChurnDriver, ChurnEvent};
pub use shard::{ShardCtx, ShardRun, ShardSet};
