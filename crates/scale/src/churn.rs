//! Deterministic station churn: a seeded schedule of join/leave events
//! applied to a running [`WifiNetwork`].
//!
//! The driver holds its own RNG stream, so two drivers built from the
//! same configuration and seed produce identical schedules regardless of
//! what the network itself does in between — attaching churn to an
//! experiment never perturbs the experiment's other random draws.

use wifiq_mac::{App, StaId, StationCfg, WifiNetwork};
use wifiq_phy::PhyRate;
use wifiq_sim::{Nanos, SimRng};

/// Churn schedule parameters.
#[derive(Debug, Clone)]
pub struct ChurnCfg {
    /// Mean interval between churn events (exponentially distributed).
    pub mean_interval: Nanos,
    /// The roster never shrinks below this many associated stations.
    pub min_stations: usize,
    /// The roster never grows beyond this many associated stations.
    pub max_stations: usize,
    /// Rates a joining station draws from (uniformly). A rejoining
    /// station re-draws — it does not inherit the departed occupant's
    /// rate even when it reuses the slot.
    pub rate_palette: Vec<PhyRate>,
}

impl Default for ChurnCfg {
    fn default() -> ChurnCfg {
        ChurnCfg {
            mean_interval: Nanos::from_millis(100),
            min_stations: 1,
            max_stations: usize::MAX,
            rate_palette: vec![PhyRate::fast_station(), PhyRate::slow_station()],
        }
    }
}

/// One applied churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A station joined under handle `id` (its wire slot is `id.slot()`).
    Join { id: StaId },
    /// The station holding handle `id` left; the table tombstones the
    /// slot until a later join reuses it under a fresh generation.
    Leave { id: StaId },
}

/// Applies a seeded join/leave schedule to a network between event-loop
/// windows.
#[derive(Debug)]
pub struct ChurnDriver {
    cfg: ChurnCfg,
    rng: SimRng,
    next_at: Nanos,
    /// Stations added so far.
    pub joins: u64,
    /// Stations removed so far.
    pub leaves: u64,
}

impl ChurnDriver {
    /// A driver whose schedule is a pure function of `seed` and `cfg`.
    pub fn new(cfg: ChurnCfg, seed: u64) -> ChurnDriver {
        assert!(
            cfg.min_stations < cfg.max_stations,
            "empty roster range [{}, {}]",
            cfg.min_stations,
            cfg.max_stations
        );
        assert!(!cfg.rate_palette.is_empty(), "empty rate palette");
        let mut rng = SimRng::new(seed);
        let first = Self::draw_interval(&mut rng, cfg.mean_interval);
        ChurnDriver {
            cfg,
            rng,
            next_at: first,
            joins: 0,
            leaves: 0,
        }
    }

    /// Virtual time of the next scheduled churn event.
    pub fn next_at(&self) -> Nanos {
        self.next_at
    }

    fn draw_interval(rng: &mut SimRng, mean: Nanos) -> Nanos {
        let ns = rng.exponential(mean.as_nanos() as f64) as u64;
        Nanos::from_nanos(ns.max(1))
    }

    /// Applies the next scheduled event to `net` and schedules the one
    /// after it. At the roster bounds the event direction is forced
    /// (join at the minimum, leave at the maximum); in between it is a
    /// fair coin.
    pub fn step<M: std::fmt::Debug + Send>(&mut self, net: &mut WifiNetwork<M>) -> ChurnEvent {
        let active = net.active_stations();
        let join = if active <= self.cfg.min_stations {
            true
        } else if active >= self.cfg.max_stations {
            false
        } else {
            self.rng.chance(0.5)
        };
        let ev = if join {
            let rate = self.cfg.rate_palette[self.rng.index(self.cfg.rate_palette.len())];
            let id = net.add_station(StationCfg::clean(rate));
            self.joins += 1;
            ChurnEvent::Join { id }
        } else {
            // Pick the k-th currently associated station and resolve its
            // slot to the current handle.
            let k = self.rng.index(active);
            let id = (0..net.station_slots())
                .filter(|&s| net.station_active(s))
                .nth(k)
                .and_then(|s| net.sta_id(s))
                .expect("active_stations out of sync with the table");
            net.remove_station(id);
            self.leaves += 1;
            ChurnEvent::Leave { id }
        };
        self.next_at += Self::draw_interval(&mut self.rng, self.cfg.mean_interval);
        ev
    }

    /// Drives `net` to virtual time `until`, applying every churn event
    /// that falls due along the way.
    pub fn run_until<M: std::fmt::Debug + Send, A: App<M>>(
        &mut self,
        net: &mut WifiNetwork<M>,
        until: Nanos,
        app: &mut A,
    ) {
        while self.next_at < until {
            let at = self.next_at;
            net.run(at, app);
            self.step(net);
        }
        net.run(until, app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_mac::{Commands, Delivery, NetworkConfig, Packet, SchemeKind};

    /// No-op traffic: churn alone must keep the network consistent.
    struct Idle;
    impl App<()> for Idle {
        fn on_packet(&mut self, _: Delivery, _: Packet<()>, _: Nanos, _: &mut Commands<()>) {}
        fn on_timer(&mut self, _: u64, _: Nanos, _: &mut Commands<()>) {}
    }

    fn driver(seed: u64) -> ChurnDriver {
        ChurnDriver::new(
            ChurnCfg {
                mean_interval: Nanos::from_millis(10),
                min_stations: 1,
                max_stations: 5,
                ..ChurnCfg::default()
            },
            seed,
        )
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = |seed| {
            let mut net: WifiNetwork<()> =
                WifiNetwork::new(NetworkConfig::paper_testbed(SchemeKind::AirtimeFair));
            let mut d = driver(seed);
            let mut events = Vec::new();
            // seed_timer gives run() something to chew on; Idle sends
            // nothing so only churn shapes the roster.
            net.seed_timer(0, Nanos::ZERO);
            for _ in 0..50 {
                events.push(d.step(&mut net));
            }
            (events, net.active_stations(), net.station_slots())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, same schedule");
    }

    #[test]
    fn roster_respects_bounds() {
        let mut net: WifiNetwork<()> =
            WifiNetwork::new(NetworkConfig::paper_testbed(SchemeKind::AirtimeFair));
        let mut d = driver(3);
        for _ in 0..200 {
            d.step(&mut net);
            let n = net.active_stations();
            assert!((1..=5).contains(&n), "roster out of bounds: {n}");
        }
        assert!(d.joins > 0 && d.leaves > 0);
    }

    #[test]
    fn run_until_interleaves_events_with_sim_time() {
        let mut net: WifiNetwork<()> =
            WifiNetwork::new(NetworkConfig::paper_testbed(SchemeKind::AirtimeFair));
        net.seed_timer(0, Nanos::ZERO);
        let mut d = driver(11);
        d.run_until(&mut net, Nanos::from_secs(1), &mut Idle);
        assert!(
            d.joins + d.leaves > 50,
            "too few events for 1s at 10ms mean"
        );
        assert!(d.next_at() >= Nanos::from_secs(1));
    }
}
