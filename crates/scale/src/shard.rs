//! The sharded multi-BSS engine.
//!
//! A shard is one independent BSS simulation. [`ShardSet`] fans shards
//! out over the experiment harness's work-stealing [`Queues`], collects
//! each shard's result and telemetry registry, and merges the registries
//! **in shard order** under `shardN` labels. Worker count is pure
//! execution parallelism: because per-shard seeds are split from the
//! master seed up front and the merge order is fixed, the rolled-up
//! artifact is byte-identical whether the shards ran on one worker or
//! eight.

use std::sync::Mutex;

use wifiq_harness::Queues;
use wifiq_sim::SimRng;
use wifiq_telemetry::{Label, Registry};

/// A shard's raw return value before the merge: its result plus the
/// registry extracted from its private telemetry hub.
type ShardSlot<T> = Mutex<Option<(T, Option<Registry>)>>;

/// What one shard knows about itself.
#[derive(Debug, Clone, Copy)]
pub struct ShardCtx {
    /// This shard's index in `[0, shards)`.
    pub shard: u32,
    /// Total number of shards in the set.
    pub shards: u32,
    /// This shard's RNG seed, split from the master seed.
    pub seed: u64,
}

/// The merged outcome of a sharded run.
#[derive(Debug)]
pub struct ShardRun<T> {
    /// Per-shard results, in shard order.
    pub outputs: Vec<T>,
    /// All shards' registries merged under `shardN` labels, in shard
    /// order (so gauges deterministically take the last shard's value).
    pub registry: Registry,
}

/// Runs N independent BSS instances across a worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ShardSet {
    shards: u32,
    master_seed: u64,
    workers: usize,
}

impl ShardSet {
    /// A set of `shards` BSS instances seeded from `master_seed`,
    /// executing sequentially until [`with_workers`](Self::with_workers)
    /// raises the parallelism.
    pub fn new(shards: u32, master_seed: u64) -> ShardSet {
        assert!(shards > 0, "a shard set needs at least one shard");
        ShardSet {
            shards,
            master_seed,
            workers: 1,
        }
    }

    /// Sets the worker-thread count (clamped to the shard count). This
    /// changes wall-clock time only, never the merged output.
    pub fn with_workers(mut self, workers: usize) -> ShardSet {
        self.workers = workers.max(1).min(self.shards as usize);
        self
    }

    /// Number of shards in the set.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The per-shard contexts, with seeds split from the master seed in
    /// shard order. Splitting happens up front — shard 3's seed does not
    /// depend on how many workers executed shards 0..3.
    pub fn contexts(&self) -> Vec<ShardCtx> {
        let mut root = SimRng::new(self.master_seed);
        (0..self.shards)
            .map(|shard| ShardCtx {
                shard,
                shards: self.shards,
                seed: root.gen_range_u64(0, u64::MAX),
            })
            .collect()
    }

    /// Runs `f` once per shard and merges the results.
    ///
    /// `f` returns the shard's result plus an optional registry (the
    /// shard builds its own `Telemetry::enabled()` handle — the handle is
    /// `Rc`-based and cannot cross threads, but the extracted
    /// [`Registry`] can). Registries are merged in shard order under
    /// [`Label::Shard`].
    pub fn run<T, F>(&self, f: F) -> ShardRun<T>
    where
        T: Send,
        F: Fn(&ShardCtx) -> (T, Option<Registry>) + Sync,
    {
        let ctxs = self.contexts();
        let slots: Vec<ShardSlot<T>> = (0..ctxs.len()).map(|_| Mutex::new(None)).collect();
        if self.workers <= 1 {
            for (ctx, slot) in ctxs.iter().zip(&slots) {
                *slot.lock().unwrap() = Some(f(ctx));
            }
        } else {
            let items: Vec<usize> = (0..ctxs.len()).collect();
            let queues = Queues::new(self.workers, &items);
            std::thread::scope(|s| {
                for w in 0..self.workers {
                    let (queues, ctxs, slots, f) = (&queues, &ctxs, &slots, &f);
                    s.spawn(move || {
                        while let Some(i) = queues.next(w) {
                            *slots[i].lock().unwrap() = Some(f(&ctxs[i]));
                        }
                    });
                }
            });
        }
        let mut outputs = Vec::with_capacity(ctxs.len());
        let mut registry = Registry::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let (out, reg) = slot
                .into_inner()
                .unwrap()
                .expect("worker pool exited with an unfinished shard");
            outputs.push(out);
            if let Some(reg) = reg {
                registry.merge_relabeled(&reg, |_| Label::Shard(i as u32));
            }
        }
        ShardRun { outputs, registry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_sim::Nanos;
    use wifiq_telemetry::Telemetry;

    /// A stand-in shard workload: deterministic per-seed metrics.
    fn workload(ctx: &ShardCtx) -> (u64, Option<Registry>) {
        let tele = Telemetry::enabled();
        let mut rng = SimRng::new(ctx.seed);
        let mut acc = 0;
        for _ in 0..100 {
            let v = rng.gen_range_u64(1, 1000);
            acc += v;
            tele.count("shardtest", "work", Label::Global, v);
            tele.observe("shardtest", "latency", Label::Global, Nanos::from_nanos(v));
        }
        (acc, tele.take_registry())
    }

    #[test]
    fn seeds_are_split_deterministically() {
        let a = ShardSet::new(8, 42).contexts();
        let b = ShardSet::new(8, 42).contexts();
        assert_eq!(
            a.iter().map(|c| c.seed).collect::<Vec<_>>(),
            b.iter().map(|c| c.seed).collect::<Vec<_>>()
        );
        let distinct: std::collections::BTreeSet<u64> = a.iter().map(|c| c.seed).collect();
        assert_eq!(distinct.len(), 8, "shard seeds collide");
        // A different master seed re-splits everything.
        let c = ShardSet::new(8, 43).contexts();
        assert_ne!(a[0].seed, c[0].seed);
    }

    #[test]
    fn parallel_rollup_is_byte_identical_to_sequential() {
        let sequential = ShardSet::new(6, 7).run(workload);
        let parallel = ShardSet::new(6, 7).with_workers(4).run(workload);
        assert_eq!(sequential.outputs, parallel.outputs);
        assert_eq!(
            sequential.registry.to_json().pretty(),
            parallel.registry.to_json().pretty(),
            "worker count leaked into the rollup"
        );
    }

    #[test]
    fn rollup_is_shard_labeled() {
        let run = ShardSet::new(3, 1).run(workload);
        for shard in 0..3 {
            let per_shard = run
                .registry
                .counter("shardtest", "work", Label::Shard(shard));
            assert_eq!(
                per_shard, run.outputs[shard as usize],
                "shard {shard} counter does not match its output"
            );
        }
        assert_eq!(
            run.registry.counter_total("shardtest", "work"),
            run.outputs.iter().sum::<u64>()
        );
    }

    #[test]
    fn worker_clamp_and_single_shard() {
        let run = ShardSet::new(1, 9).with_workers(16).run(workload);
        assert_eq!(run.outputs.len(), 1);
    }
}
