//! 802.11e EDCA access categories and their channel-access parameters.
//!
//! The paper's VoIP experiment (§4.2.1) relies on two consequences of the
//! EDCA table: VO traffic gets queueing priority and a much shorter
//! contention window, but *cannot be aggregated*. Both are modelled here.

use wifiq_sim::Nanos;

use crate::consts::SLOT_TIME;

/// The four 802.11e QoS precedence levels, in priority order.
///
/// Each station keeps one airtime deficit per access category
/// (paper §3.2: "four deficits per station, corresponding to the
/// VO, VI, BE and BK 802.11 precedence levels").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessCategory {
    /// Voice — highest priority, no aggregation.
    Vo,
    /// Video.
    Vi,
    /// Best effort — the default for unmarked traffic.
    Be,
    /// Background — lowest priority.
    Bk,
}

impl AccessCategory {
    /// All categories, highest priority first.
    pub const ALL: [AccessCategory; 4] = [
        AccessCategory::Vo,
        AccessCategory::Vi,
        AccessCategory::Be,
        AccessCategory::Bk,
    ];

    /// Number of access categories.
    pub const COUNT: usize = 4;

    /// Dense index (0..4) for per-AC arrays, highest priority first.
    pub const fn index(self) -> usize {
        match self {
            AccessCategory::Vo => 0,
            AccessCategory::Vi => 1,
            AccessCategory::Be => 2,
            AccessCategory::Bk => 3,
        }
    }

    /// Maps a TID (0–15) to its access category, per 802.11e.
    ///
    /// TIDs repeat the 8-value UP cycle: 0–7 map as in the standard
    /// (1,2 → BK; 0,3 → BE; 4,5 → VI; 6,7 → VO) and 8–15 wrap around.
    pub const fn from_tid(tid: u8) -> AccessCategory {
        match tid % 8 {
            1 | 2 => AccessCategory::Bk,
            0 | 3 => AccessCategory::Be,
            4 | 5 => AccessCategory::Vi,
            _ => AccessCategory::Vo,
        }
    }

    /// A representative TID for this category (the lowest one mapping here).
    pub const fn to_tid(self) -> u8 {
        match self {
            AccessCategory::Bk => 1,
            AccessCategory::Be => 0,
            AccessCategory::Vi => 4,
            AccessCategory::Vo => 6,
        }
    }

    /// EDCA parameters for this category (802.11 defaults for OFDM PHYs).
    pub const fn edca(self) -> EdcaParams {
        match self {
            AccessCategory::Vo => EdcaParams {
                aifsn: 2,
                cw_min: 3,
                cw_max: 7,
                may_aggregate: false,
            },
            AccessCategory::Vi => EdcaParams {
                aifsn: 2,
                cw_min: 7,
                cw_max: 15,
                may_aggregate: true,
            },
            AccessCategory::Be => EdcaParams {
                aifsn: 3,
                cw_min: 15,
                cw_max: 1023,
                may_aggregate: true,
            },
            AccessCategory::Bk => EdcaParams {
                aifsn: 7,
                cw_min: 15,
                cw_max: 1023,
                may_aggregate: true,
            },
        }
    }

    /// Short label ("VO", "VI", "BE", "BK").
    pub const fn label(self) -> &'static str {
        match self {
            AccessCategory::Vo => "VO",
            AccessCategory::Vi => "VI",
            AccessCategory::Be => "BE",
            AccessCategory::Bk => "BK",
        }
    }
}

impl std::fmt::Display for AccessCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// EDCA channel-access parameters for one access category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdcaParams {
    /// Arbitration inter-frame space number (slots after SIFS).
    pub aifsn: u32,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Whether frames in this category may be A-MPDU aggregated.
    ///
    /// VO frames get priority and a short CW but forgo aggregation — the
    /// throughput/latency trade the paper's Table 2 explores.
    pub may_aggregate: bool,
}

impl EdcaParams {
    /// The arbitration inter-frame space: `SIFS + AIFSN × slot`.
    pub fn aifs(&self) -> Nanos {
        crate::consts::SIFS + SLOT_TIME * self.aifsn as u64
    }

    /// Doubles the contention window after a failed attempt, capped at
    /// `cw_max`.
    pub fn next_cw(&self, cw: u32) -> u32 {
        ((cw * 2) + 1).min(self.cw_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_mapping_matches_standard() {
        assert_eq!(AccessCategory::from_tid(0), AccessCategory::Be);
        assert_eq!(AccessCategory::from_tid(1), AccessCategory::Bk);
        assert_eq!(AccessCategory::from_tid(2), AccessCategory::Bk);
        assert_eq!(AccessCategory::from_tid(3), AccessCategory::Be);
        assert_eq!(AccessCategory::from_tid(4), AccessCategory::Vi);
        assert_eq!(AccessCategory::from_tid(5), AccessCategory::Vi);
        assert_eq!(AccessCategory::from_tid(6), AccessCategory::Vo);
        assert_eq!(AccessCategory::from_tid(7), AccessCategory::Vo);
        // Wrap-around for the second set of 8 TIDs.
        assert_eq!(AccessCategory::from_tid(14), AccessCategory::Vo);
    }

    #[test]
    fn tid_roundtrip() {
        for ac in AccessCategory::ALL {
            assert_eq!(AccessCategory::from_tid(ac.to_tid()), ac);
        }
    }

    #[test]
    fn vo_cannot_aggregate() {
        assert!(!AccessCategory::Vo.edca().may_aggregate);
        assert!(AccessCategory::Be.edca().may_aggregate);
    }

    #[test]
    fn vo_has_shorter_cw_than_be() {
        let vo = AccessCategory::Vo.edca();
        let be = AccessCategory::Be.edca();
        assert!(vo.cw_min < be.cw_min);
        assert!(vo.aifs() < be.aifs());
    }

    #[test]
    fn aifs_values() {
        // BE: 16 + 3×9 = 43 µs; VO: 16 + 2×9 = 34 µs.
        assert_eq!(AccessCategory::Be.edca().aifs(), Nanos::from_micros(43));
        assert_eq!(AccessCategory::Vo.edca().aifs(), Nanos::from_micros(34));
    }

    #[test]
    fn cw_doubles_and_caps() {
        let be = AccessCategory::Be.edca();
        assert_eq!(be.next_cw(15), 31);
        assert_eq!(be.next_cw(31), 63);
        assert_eq!(be.next_cw(1023), 1023);
        let vo = AccessCategory::Vo.edca();
        assert_eq!(vo.next_cw(3), 7);
        assert_eq!(vo.next_cw(7), 7);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; AccessCategory::COUNT];
        for ac in AccessCategory::ALL {
            assert!(!seen[ac.index()]);
            seen[ac.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
