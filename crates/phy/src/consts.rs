//! 802.11 timing and framing constants.
//!
//! Values follow the paper's analytical model (Section 2.2.1) and its source
//! for the constants, Kim et al. [16]. Where the full standard differs in
//! detail (e.g. per-AC AIFS), the EDCA table in [`crate::edca`] carries the
//! per-access-category values and these constants carry the model's.

use wifiq_sim::Nanos;

/// Slot time for OFDM PHYs (9 µs).
pub const SLOT_TIME: Nanos = Nanos::from_micros(9);

/// Short Inter-Frame Space, `T_SIFS` = 16 µs.
pub const SIFS: Nanos = Nanos::from_micros(16);

/// Distributed Inter-Frame Space, `T_DIFS` = 34 µs (SIFS + 2 slots).
pub const DIFS: Nanos = Nanos::from_micros(34);

/// PHY preamble + header transmission time, `T_phy` = 32 µs (HT mixed mode).
pub const T_PHY: Nanos = Nanos::from_micros(32);

/// Long-preamble PLCP duration for legacy DSSS rates (192 µs).
///
/// Used by the 1 Mbps station in the 30-station experiment; legacy frames
/// pay this instead of [`T_PHY`].
pub const T_PLCP_LEGACY: Nanos = Nanos::from_micros(192);

/// Minimum contention window (DCF, best effort): 15 slots.
pub const CW_MIN: u32 = 15;

/// Maximum contention window: 1023 slots.
pub const CW_MAX: u32 = 1023;

/// Mean backoff used by the analytical model: `T_BO ≈ slot × CW_min / 2`.
///
/// With CW_min = 15 and 9 µs slots this is 67.5 µs; the paper rounds to
/// 68 µs, and we keep the exact value (the 0.5 µs difference is far below
/// the model's other approximations).
pub const T_BO_MEAN: Nanos = Nanos::from_nanos(9_000 * 15 / 2);

/// Size of a Block Acknowledgement frame in bytes, per the paper's model
/// (`T_ack = T_SIFS + 8 × 58 / r_i`).
pub const BLOCK_ACK_BYTES: u64 = 58;

/// Size of a legacy ACK frame in bytes (for non-aggregated transmissions).
pub const ACK_BYTES: u64 = 14;

/// A-MPDU subframe delimiter length, `L_delim` = 4 bytes.
pub const L_DELIM: u64 = 4;

/// MAC header length, `L_mac` = 34 bytes (QoS data frame).
pub const L_MAC: u64 = 34;

/// Frame Check Sequence length, `L_FCS` = 4 bytes.
pub const L_FCS: u64 = 4;

/// Maximum A-MPDU length in bytes (HT, 2^16 − 1).
pub const MAX_AMPDU_BYTES: u64 = 65_535;

/// BlockAck window: maximum number of MPDUs in one A-MPDU.
pub const BA_WINDOW: usize = 64;

/// Maximum airtime one aggregate may occupy (ath9k limits aggregates to
/// 4 ms so a slow station cannot monopolise the medium with one frame).
pub const MAX_AGGREGATE_AIRTIME: Nanos = Nanos::from_millis(4);

/// Per-MPDU overhead inside an A-MPDU, before padding:
/// delimiter + MAC header + FCS.
pub const MPDU_OVERHEAD: u64 = L_DELIM + L_MAC + L_FCS;

/// Pads a subframe length up to the next multiple of four bytes.
#[inline]
pub const fn pad4(len: u64) -> u64 {
    len.div_ceil(4) * 4
}

/// The on-air length in bytes of one A-MPDU subframe carrying an `l`-byte
/// packet: `l + L_delim + L_mac + L_FCS + L_pad` (paper eq. 1, inner term).
#[inline]
pub const fn subframe_len(l: u64) -> u64 {
    pad4(l + MPDU_OVERHEAD)
}

/// The on-air length of an `n`-subframe A-MPDU of `l`-byte packets
/// (paper eq. 1).
#[inline]
pub const fn ampdu_len(n: u64, l: u64) -> u64 {
    n * subframe_len(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_is_sifs_plus_two_slots() {
        assert_eq!(DIFS, SIFS + SLOT_TIME * 2);
    }

    #[test]
    fn mean_backoff_matches_model() {
        // The paper uses T_BO ≈ T_slot × (CW_min / 2) = 67.5 µs (rounded to
        // 68 in the text).
        assert_eq!(T_BO_MEAN, Nanos::from_nanos(67_500));
    }

    #[test]
    fn pad4_boundaries() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
        assert_eq!(pad4(1542), 1544);
    }

    #[test]
    fn subframe_len_for_1500_byte_packet() {
        // 1500 + 4 + 34 + 4 = 1542, padded to 1544. This value anchors the
        // Table 1 model reproduction.
        assert_eq!(subframe_len(1500), 1544);
    }

    #[test]
    fn ampdu_len_scales_linearly() {
        assert_eq!(ampdu_len(0, 1500), 0);
        assert_eq!(ampdu_len(1, 1500), 1544);
        assert_eq!(ampdu_len(10, 1500), 15_440);
    }
}
