//! PHY rate definitions: 802.11n HT MCS table and legacy (802.11b/g) rates.
//!
//! Rates are exact: HT rates are derived from bits-per-OFDM-symbol and the
//! symbol duration (4 µs long GI, 3.6 µs short GI) rather than stored as
//! rounded Mbps figures, so durations computed from them are
//! hardware-faithful. MCS15 HT20 short-GI comes out at 144 444 444 bps —
//! the "144.4 Mbps" the paper quotes for its fast stations.

use std::fmt;

use wifiq_sim::Nanos;

use crate::consts::{T_PHY, T_PLCP_LEGACY};

/// Channel width for HT rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelWidth {
    /// 20 MHz channel (52 data subcarriers).
    Ht20,
    /// 40 MHz channel (108 data subcarriers).
    Ht40,
}

/// Legacy (pre-802.11n) rates. These cannot carry A-MPDU aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LegacyRate {
    /// 1 Mbps DSSS — the rate the 30-station experiment's slow client uses.
    Dsss1,
    /// 2 Mbps DSSS.
    Dsss2,
    /// 5.5 Mbps HR-DSSS.
    Dsss5_5,
    /// 11 Mbps HR-DSSS.
    Dsss11,
    /// 6 Mbps OFDM.
    Ofdm6,
    /// 9 Mbps OFDM.
    Ofdm9,
    /// 12 Mbps OFDM.
    Ofdm12,
    /// 18 Mbps OFDM.
    Ofdm18,
    /// 24 Mbps OFDM.
    Ofdm24,
    /// 36 Mbps OFDM.
    Ofdm36,
    /// 48 Mbps OFDM.
    Ofdm48,
    /// 54 Mbps OFDM.
    Ofdm54,
}

impl LegacyRate {
    /// Data rate in bits per second.
    pub const fn bits_per_second(self) -> u64 {
        match self {
            LegacyRate::Dsss1 => 1_000_000,
            LegacyRate::Dsss2 => 2_000_000,
            LegacyRate::Dsss5_5 => 5_500_000,
            LegacyRate::Dsss11 => 11_000_000,
            LegacyRate::Ofdm6 => 6_000_000,
            LegacyRate::Ofdm9 => 9_000_000,
            LegacyRate::Ofdm12 => 12_000_000,
            LegacyRate::Ofdm18 => 18_000_000,
            LegacyRate::Ofdm24 => 24_000_000,
            LegacyRate::Ofdm36 => 36_000_000,
            LegacyRate::Ofdm48 => 48_000_000,
            LegacyRate::Ofdm54 => 54_000_000,
        }
    }

    const fn is_dsss(self) -> bool {
        matches!(
            self,
            LegacyRate::Dsss1 | LegacyRate::Dsss2 | LegacyRate::Dsss5_5 | LegacyRate::Dsss11
        )
    }
}

/// VHT (802.11ac) channel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VhtWidth {
    /// 20 MHz (52 data subcarriers).
    Mhz20,
    /// 40 MHz (108 data subcarriers).
    Mhz40,
    /// 80 MHz (234 data subcarriers).
    Mhz80,
}

/// A PHY transmission rate: an HT (802.11n) MCS, a VHT (802.11ac) MCS,
/// or a legacy rate.
///
/// # Examples
///
/// ```
/// use wifiq_phy::rates::{ChannelWidth, PhyRate};
///
/// // The paper's fast stations: MCS15, HT20, short GI = 144.4 Mbps.
/// let fast = PhyRate::ht(15, ChannelWidth::Ht20, true);
/// assert_eq!(fast.bits_per_second(), 144_444_444);
///
/// // The paper's slow station: MCS0 = 7.2 Mbps.
/// let slow = PhyRate::ht(0, ChannelWidth::Ht20, true);
/// assert_eq!(slow.bits_per_second(), 7_222_222);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyRate {
    /// High-throughput (802.11n) rate.
    Ht {
        /// MCS index, 0–15 (two spatial streams max in this model).
        mcs: u8,
        /// Channel width.
        width: ChannelWidth,
        /// Short guard interval (3.6 µs symbols instead of 4 µs).
        short_gi: bool,
    },
    /// Very-high-throughput (802.11ac) rate — the ath10k side of the
    /// paper's implementation (which got the FQ structure but not the
    /// airtime scheduler).
    Vht {
        /// MCS index, 0–9.
        mcs: u8,
        /// Spatial streams, 1–4.
        streams: u8,
        /// Channel width.
        width: VhtWidth,
        /// Short guard interval.
        short_gi: bool,
    },
    /// Legacy rate; frames at this rate cannot be aggregated.
    Legacy(LegacyRate),
}

/// Bits carried per OFDM symbol for HT20, MCS 0–7 (one spatial stream).
const HT20_BITS_PER_SYMBOL: [u64; 8] = [26, 52, 78, 104, 156, 208, 234, 260];
/// Bits carried per OFDM symbol for HT40, MCS 0–7 (one spatial stream).
const HT40_BITS_PER_SYMBOL: [u64; 8] = [54, 108, 162, 216, 324, 432, 486, 540];

/// VHT bits-per-subcarrier × coding rate per MCS, as (numerator,
/// denominator) of `bpscs × R`.
const VHT_MCS_BITS: [(u64, u64); 10] = [
    (1, 2),  // BPSK 1/2
    (1, 1),  // QPSK 1/2
    (3, 2),  // QPSK 3/4
    (2, 1),  // 16-QAM 1/2
    (3, 1),  // 16-QAM 3/4
    (4, 1),  // 64-QAM 2/3
    (9, 2),  // 64-QAM 3/4
    (5, 1),  // 64-QAM 5/6
    (6, 1),  // 256-QAM 3/4
    (20, 3), // 256-QAM 5/6
];

/// Long guard-interval OFDM symbol duration (4 µs).
const SYMBOL_LGI: Nanos = Nanos::from_nanos(4_000);
/// Short guard-interval OFDM symbol duration (3.6 µs).
const SYMBOL_SGI: Nanos = Nanos::from_nanos(3_600);

impl PhyRate {
    /// Convenience constructor for an HT rate.
    ///
    /// # Panics
    ///
    /// Panics if `mcs > 15`.
    pub const fn ht(mcs: u8, width: ChannelWidth, short_gi: bool) -> PhyRate {
        assert!(mcs <= 15, "MCS index out of range (0..=15)");
        PhyRate::Ht {
            mcs,
            width,
            short_gi,
        }
    }

    /// The paper's "fast station" rate: MCS15, HT20, short GI (144.4 Mbps).
    pub const fn fast_station() -> PhyRate {
        PhyRate::ht(15, ChannelWidth::Ht20, true)
    }

    /// The paper's "slow station" rate: MCS0, HT20, short GI (7.2 Mbps).
    pub const fn slow_station() -> PhyRate {
        PhyRate::ht(0, ChannelWidth::Ht20, true)
    }

    /// Convenience constructor for a VHT (802.11ac) rate.
    ///
    /// # Panics
    ///
    /// Panics if `mcs > 9`, `streams` is 0 or greater than 4, or the
    /// combination is undefined in the standard (the bits-per-symbol
    /// product is fractional, e.g. MCS9 at 20 MHz single-stream).
    pub fn vht(mcs: u8, streams: u8, width: VhtWidth, short_gi: bool) -> PhyRate {
        assert!(mcs <= 9, "VHT MCS index out of range (0..=9)");
        assert!(
            (1..=4).contains(&streams),
            "VHT streams out of range (1..=4)"
        );
        let rate = PhyRate::Vht {
            mcs,
            streams,
            width,
            short_gi,
        };
        assert!(
            Self::vht_bits_per_symbol(mcs, streams, width) > 0,
            "invalid VHT combination: MCS{mcs} x {streams}ss at {width:?}"
        );
        rate
    }

    /// Bits per OFDM symbol for a VHT rate; 0 if the combination is not
    /// defined by the standard (fractional product).
    fn vht_bits_per_symbol(mcs: u8, streams: u8, width: VhtWidth) -> u64 {
        let nsd = match width {
            VhtWidth::Mhz20 => 52,
            VhtWidth::Mhz40 => 108,
            VhtWidth::Mhz80 => 234,
        };
        let (num, den) = VHT_MCS_BITS[mcs as usize];
        let total = nsd * streams as u64 * num;
        if !total.is_multiple_of(den) {
            return 0;
        }
        total / den
    }

    /// Bits per OFDM symbol (HT rates only).
    fn ht_bits_per_symbol(mcs: u8, width: ChannelWidth) -> u64 {
        let streams = (mcs / 8 + 1) as u64;
        let idx = (mcs % 8) as usize;
        let per_stream = match width {
            ChannelWidth::Ht20 => HT20_BITS_PER_SYMBOL[idx],
            ChannelWidth::Ht40 => HT40_BITS_PER_SYMBOL[idx],
        };
        per_stream * streams
    }

    /// Data rate in bits per second (truncated to whole bps).
    pub fn bits_per_second(self) -> u64 {
        match self {
            PhyRate::Ht {
                mcs,
                width,
                short_gi,
            } => {
                let bits = Self::ht_bits_per_symbol(mcs, width);
                let symbol = if short_gi { SYMBOL_SGI } else { SYMBOL_LGI };
                bits * 1_000_000_000 / symbol.as_nanos()
            }
            PhyRate::Vht {
                mcs,
                streams,
                width,
                short_gi,
            } => {
                let bits = Self::vht_bits_per_symbol(mcs, streams, width);
                let symbol = if short_gi { SYMBOL_SGI } else { SYMBOL_LGI };
                bits * 1_000_000_000 / symbol.as_nanos()
            }
            PhyRate::Legacy(r) => r.bits_per_second(),
        }
    }

    /// Whether frames at this rate may be carried in an A-MPDU aggregate.
    ///
    /// HT and VHT rates aggregate; the 1 Mbps legacy client in the
    /// 30-station experiment transmits one MPDU per access.
    pub fn supports_aggregation(self) -> bool {
        matches!(self, PhyRate::Ht { .. } | PhyRate::Vht { .. })
    }

    /// Maximum A-MPDU length at this rate: 65 535 bytes for HT, 1 MiB−1
    /// for VHT (the 802.11ac extension that makes large aggregates
    /// possible at gigabit rates).
    pub fn max_ampdu_bytes(self) -> u64 {
        match self {
            PhyRate::Vht { .. } => 1_048_575,
            _ => crate::consts::MAX_AMPDU_BYTES,
        }
    }

    /// PHY preamble + header duration for a frame at this rate.
    pub fn preamble(self) -> Nanos {
        match self {
            // VHT preambles are a few µs longer than HT's in mixed mode;
            // the model's T_phy is close enough for both.
            PhyRate::Ht { .. } | PhyRate::Vht { .. } => T_PHY,
            PhyRate::Legacy(r) => {
                if r.is_dsss() {
                    T_PLCP_LEGACY
                } else {
                    // Legacy OFDM short training + signal field: 20 µs.
                    Nanos::from_micros(20)
                }
            }
        }
    }

    /// On-air duration of `bytes` of payload at this rate, *excluding* the
    /// preamble, quantized up to whole OFDM symbols where applicable.
    pub fn payload_duration(self, bytes: u64) -> Nanos {
        let bits = bytes * 8;
        match self {
            PhyRate::Ht {
                mcs,
                width,
                short_gi,
            } => {
                let bps_sym = Self::ht_bits_per_symbol(mcs, width);
                let symbol = if short_gi { SYMBOL_SGI } else { SYMBOL_LGI };
                let symbols = bits.div_ceil(bps_sym);
                symbol * symbols
            }
            PhyRate::Vht {
                mcs,
                streams,
                width,
                short_gi,
            } => {
                let bps_sym = Self::vht_bits_per_symbol(mcs, streams, width);
                let symbol = if short_gi { SYMBOL_SGI } else { SYMBOL_LGI };
                let symbols = bits.div_ceil(bps_sym);
                symbol * symbols
            }
            PhyRate::Legacy(r) => Nanos::for_bits(bits, r.bits_per_second()),
        }
    }

    /// Full on-air duration of `bytes` at this rate: preamble + payload.
    pub fn data_duration(self, bytes: u64) -> Nanos {
        self.preamble() + self.payload_duration(bytes)
    }

    /// The analytical model's data duration (paper eq. 2): `T_phy + 8L/r`,
    /// without symbol quantization. Used by `wifiq-model` so its output
    /// matches the paper's closed-form expressions exactly.
    pub fn model_data_duration(self, bytes: u64) -> Nanos {
        T_PHY + Nanos::for_bits(bytes * 8, self.bits_per_second())
    }
}

impl fmt::Display for PhyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyRate::Ht {
                mcs,
                width,
                short_gi,
            } => {
                let w = match width {
                    ChannelWidth::Ht20 => "HT20",
                    ChannelWidth::Ht40 => "HT40",
                };
                let gi = if *short_gi { "SGI" } else { "LGI" };
                write!(
                    f,
                    "MCS{mcs}/{w}/{gi} ({:.1} Mbps)",
                    self.bits_per_second() as f64 / 1e6
                )
            }
            PhyRate::Vht {
                mcs,
                streams,
                width,
                short_gi,
            } => {
                let w = match width {
                    VhtWidth::Mhz20 => "VHT20",
                    VhtWidth::Mhz40 => "VHT40",
                    VhtWidth::Mhz80 => "VHT80",
                };
                let gi = if *short_gi { "SGI" } else { "LGI" };
                write!(
                    f,
                    "MCS{mcs}/{streams}ss/{w}/{gi} ({:.1} Mbps)",
                    self.bits_per_second() as f64 / 1e6
                )
            }
            PhyRate::Legacy(r) => {
                write!(f, "legacy {:.1} Mbps", r.bits_per_second() as f64 / 1e6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht20_sgi_table_matches_standard() {
        // Mbps values from the 802.11n rate table, two streams at MCS8+.
        let expect = [
            (0u8, 7.2),
            (1, 14.4),
            (2, 21.7),
            (3, 28.9),
            (4, 43.3),
            (5, 57.8),
            (6, 65.0),
            (7, 72.2),
            (8, 14.4),
            (15, 144.4),
        ];
        for (mcs, mbps) in expect {
            let r = PhyRate::ht(mcs, ChannelWidth::Ht20, true);
            let got = r.bits_per_second() as f64 / 1e6;
            assert!(
                (got - mbps).abs() < 0.05,
                "MCS{mcs}: got {got}, want {mbps}"
            );
        }
    }

    #[test]
    fn ht20_lgi_table_matches_standard() {
        let expect = [(0u8, 6.5), (7, 65.0), (15, 130.0)];
        for (mcs, mbps) in expect {
            let r = PhyRate::ht(mcs, ChannelWidth::Ht20, false);
            let got = r.bits_per_second() as f64 / 1e6;
            assert!((got - mbps).abs() < 0.05, "MCS{mcs}: got {got}");
        }
    }

    #[test]
    fn ht40_rates() {
        let r = PhyRate::ht(7, ChannelWidth::Ht40, true);
        assert!((r.bits_per_second() as f64 / 1e6 - 150.0).abs() < 0.05);
        let r = PhyRate::ht(15, ChannelWidth::Ht40, false);
        assert!((r.bits_per_second() as f64 / 1e6 - 270.0).abs() < 0.05);
    }

    #[test]
    fn paper_station_rates() {
        assert_eq!(PhyRate::fast_station().bits_per_second(), 144_444_444);
        assert_eq!(PhyRate::slow_station().bits_per_second(), 7_222_222);
    }

    #[test]
    fn aggregation_support() {
        assert!(PhyRate::fast_station().supports_aggregation());
        assert!(!PhyRate::Legacy(LegacyRate::Dsss1).supports_aggregation());
    }

    #[test]
    fn payload_duration_is_symbol_quantized() {
        let r = PhyRate::ht(15, ChannelWidth::Ht20, true);
        // 520 bits/symbol: 65 bytes = 520 bits = exactly 1 symbol.
        assert_eq!(r.payload_duration(65), Nanos::from_nanos(3_600));
        // 66 bytes needs 2 symbols.
        assert_eq!(r.payload_duration(66), Nanos::from_nanos(7_200));
    }

    #[test]
    fn legacy_durations() {
        let r = PhyRate::Legacy(LegacyRate::Dsss1);
        // 1500 bytes at 1 Mbps = 12 ms + 192 µs preamble.
        assert_eq!(
            r.data_duration(1500),
            Nanos::from_millis(12) + Nanos::from_micros(192)
        );
    }

    #[test]
    fn model_duration_close_to_quantized() {
        let r = PhyRate::fast_station();
        let model = r.model_data_duration(15_440);
        let quant = r.data_duration(15_440);
        // Quantization can only add up to one symbol (3.6 µs).
        assert!(quant >= model);
        assert!(quant - model <= Nanos::from_nanos(3_600));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", PhyRate::fast_station()),
            "MCS15/HT20/SGI (144.4 Mbps)"
        );
        assert_eq!(
            format!("{}", PhyRate::Legacy(LegacyRate::Dsss1)),
            "legacy 1.0 Mbps"
        );
    }

    #[test]
    fn vht_rate_table_spot_checks() {
        // Published 802.11ac rates (Mbps).
        let cases = [
            (0u8, 1u8, VhtWidth::Mhz80, true, 32.5),
            (9, 1, VhtWidth::Mhz80, true, 433.3),
            (9, 2, VhtWidth::Mhz80, true, 866.7),
            (7, 1, VhtWidth::Mhz20, false, 65.0),
            (9, 1, VhtWidth::Mhz40, true, 200.0),
        ];
        for (mcs, ss, w, sgi, mbps) in cases {
            let r = PhyRate::vht(mcs, ss, w, sgi);
            let got = r.bits_per_second() as f64 / 1e6;
            assert!(
                (got - mbps).abs() < 0.1,
                "VHT MCS{mcs}/{ss}ss: got {got}, want {mbps}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid VHT combination")]
    fn vht_mcs9_20mhz_1ss_is_undefined() {
        PhyRate::vht(9, 1, VhtWidth::Mhz20, true);
    }

    #[test]
    fn vht_aggregation_and_caps() {
        let r = PhyRate::vht(9, 2, VhtWidth::Mhz80, true);
        assert!(r.supports_aggregation());
        assert_eq!(r.max_ampdu_bytes(), 1_048_575);
        assert_eq!(PhyRate::fast_station().max_ampdu_bytes(), 65_535);
    }

    #[test]
    fn vht_display() {
        assert_eq!(
            format!("{}", PhyRate::vht(9, 2, VhtWidth::Mhz80, true)),
            "MCS9/2ss/VHT80/SGI (866.7 Mbps)"
        );
    }

    #[test]
    fn legacy_ofdm_preamble() {
        assert_eq!(
            PhyRate::Legacy(LegacyRate::Ofdm54).preamble(),
            Nanos::from_micros(20)
        );
    }
}
