//! 802.11n PHY-layer model: rates, framing constants, and airtime math.
//!
//! This crate is the single source of truth for "how long does a
//! transmission take" — the quantity that both the paper's analytical model
//! (Section 2.2.1) and the discrete-event MAC simulator are built on.
//!
//! - [`rates`] — the HT MCS table and legacy rates, with exact
//!   bits-per-symbol arithmetic,
//! - [`consts`] — framing constants (eq. 1 of the paper) and protocol
//!   timing (SIFS/DIFS/slot, BlockAck size, aggregation caps),
//! - [`timing`] — exchange durations (eqs. 2–3) and aggregate size limits,
//! - [`edca`] — 802.11e access categories (VO/VI/BE/BK) and their
//!   channel-access parameters.

pub mod consts;
pub mod edca;
pub mod rates;
pub mod timing;

pub use edca::AccessCategory;
pub use rates::{ChannelWidth, LegacyRate, PhyRate, VhtWidth};
