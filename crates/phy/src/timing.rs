//! Transmission-exchange timing: the durations the MAC charges to airtime.
//!
//! A successful 802.11n data exchange is
//! `[backoff] DATA  SIFS  BlockAck  DIFS`; the functions here compute each
//! piece so the simulator and the analytical model share one source of
//! truth for airtime.

use wifiq_sim::Nanos;

use crate::consts::{self, ACK_BYTES, BLOCK_ACK_BYTES, DIFS, SIFS, T_BO_MEAN};
use crate::rates::PhyRate;

/// Duration of a BlockAck response at `rate`.
///
/// The paper's model uses `T_ack = T_SIFS + 8·58 / r_i`; this returns only
/// the frame part (`8·58 / r_i`) — compose with [`SIFS`] at the call site,
/// which keeps the SIFS visible in exchange formulas.
pub fn block_ack_duration(rate: PhyRate) -> Nanos {
    Nanos::for_bits(BLOCK_ACK_BYTES * 8, rate.bits_per_second())
}

/// Duration of a legacy ACK frame at `rate` (non-aggregated exchanges).
pub fn ack_duration(rate: PhyRate) -> Nanos {
    Nanos::for_bits(ACK_BYTES * 8, rate.bits_per_second())
}

/// On-air duration of an A-MPDU carrying `n` packets of `l` bytes each at
/// `rate`, symbol-quantized (the simulator's ground truth).
pub fn ampdu_duration(n: u64, l: u64, rate: PhyRate) -> Nanos {
    rate.data_duration(consts::ampdu_len(n, l))
}

/// On-air duration of a single non-aggregated frame of `l` bytes.
///
/// The frame still carries the MAC header and FCS but no A-MPDU delimiter
/// or padding.
pub fn frame_duration(l: u64, rate: PhyRate) -> Nanos {
    rate.data_duration(l + consts::L_MAC + consts::L_FCS)
}

/// Fixed per-transmission overhead for an aggregated exchange
/// (paper eq. 3): `T_oh = T_DIFS + T_SIFS + T_ack + T_BO`, where the ack is
/// a BlockAck and `T_BO` is the model's mean backoff.
pub fn aggregate_overhead(rate: PhyRate) -> Nanos {
    DIFS + SIFS + SIFS + block_ack_duration(rate) + T_BO_MEAN
}

/// Complete exchange duration for an `n × l` aggregate including overhead.
///
/// This is the airtime the transmission occupies on the medium: what the
/// airtime-fairness scheduler ultimately accounts per station.
pub fn exchange_duration(n: u64, l: u64, rate: PhyRate) -> Nanos {
    ampdu_duration(n, l, rate) + aggregate_overhead(rate)
}

/// Largest aggregate size (in packets of `l` bytes) that fits all three
/// aggregation limits at `rate`:
///
/// 1. the BlockAck window (64 MPDUs),
/// 2. the maximum A-MPDU length (65 535 bytes),
/// 3. the 4 ms aggregate-airtime cap.
///
/// Returns at least 1 — a single frame is always permitted even if it
/// alone exceeds the airtime cap (it must be, or a slow station could
/// never transmit a full-size packet at all).
pub fn max_aggregate_frames(l: u64, rate: PhyRate) -> usize {
    if !rate.supports_aggregation() {
        return 1;
    }
    let by_window = consts::BA_WINDOW as u64;
    let by_bytes = rate.max_ampdu_bytes() / consts::subframe_len(l).max(1);
    let mut n = by_window.min(by_bytes).max(1);
    // Walk the airtime cap down; the duration is monotonic in n so a
    // linear scan from the upper bound terminates quickly (≤ 64 steps).
    while n > 1 && ampdu_duration(n, l, rate) > consts::MAX_AGGREGATE_AIRTIME {
        n -= 1;
    }
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::{ChannelWidth, LegacyRate};

    #[test]
    fn block_ack_matches_model_term() {
        // At 144.4 Mbps: 8 × 58 / 144 444 444 s ≈ 3.2 µs.
        let d = block_ack_duration(PhyRate::fast_station());
        assert!((d.as_micros_f64() - 3.2).abs() < 0.05, "{d}");
        // At 7.2 Mbps: ≈ 64.2 µs.
        let d = block_ack_duration(PhyRate::slow_station());
        assert!((d.as_micros_f64() - 64.2).abs() < 0.5, "{d}");
    }

    #[test]
    fn exchange_duration_matches_table1_fast_station() {
        // Table 1 airtime-fair row: n = 18.44, l = 1500 at 144.4 Mbps gives
        // an effective rate of 126.7 Mbps. Use n = 18 (integer) and check
        // we land in the right neighbourhood (symbol quantization and
        // integer n shift the value slightly).
        let n = 18;
        let d = exchange_duration(n, 1500, PhyRate::fast_station());
        let rate_mbps = (n * 1500 * 8) as f64 / d.as_secs_f64() / 1e6;
        assert!(
            (120.0..132.0).contains(&rate_mbps),
            "effective rate {rate_mbps}"
        );
    }

    #[test]
    fn exchange_duration_matches_table1_slow_station() {
        // Table 1: n = 1.89, l = 1500 at 7.2 Mbps → 6.5 Mbps base rate.
        // With n = 2: expect ~6.5–6.9 Mbps.
        let d = exchange_duration(2, 1500, PhyRate::slow_station());
        let rate_mbps = (2.0 * 1500.0 * 8.0) / d.as_secs_f64() / 1e6;
        assert!(
            (6.2..7.0).contains(&rate_mbps),
            "effective rate {rate_mbps}"
        );
    }

    #[test]
    fn max_aggregate_frames_fast_station() {
        // 1544-byte subframes: 65535 / 1544 = 42 fits the byte cap; at
        // 144.4 Mbps, 42 × 1544 bytes ≈ 3.6 ms < 4 ms cap. BlockAck window
        // is 64. So the byte cap binds: 42 frames.
        assert_eq!(max_aggregate_frames(1500, PhyRate::fast_station()), 42);
    }

    #[test]
    fn max_aggregate_frames_slow_station() {
        // At 7.2 Mbps the 4 ms airtime cap binds: one 1544-byte subframe
        // takes ~1.71 ms, so 2 fit under 4 ms (with the 32 µs preamble).
        assert_eq!(max_aggregate_frames(1500, PhyRate::slow_station()), 2);
    }

    #[test]
    fn max_aggregate_small_packets_hits_window() {
        // Tiny packets: the 64-MPDU BlockAck window binds.
        assert_eq!(max_aggregate_frames(100, PhyRate::fast_station()), 64);
    }

    #[test]
    fn legacy_rate_never_aggregates() {
        assert_eq!(
            max_aggregate_frames(1500, PhyRate::Legacy(LegacyRate::Dsss1)),
            1
        );
    }

    #[test]
    fn at_least_one_frame_even_when_over_cap() {
        // A full-size frame at 1 Mbps takes ~12 ms > 4 ms cap, but must
        // still be transmittable.
        let r = PhyRate::Legacy(LegacyRate::Dsss1);
        assert_eq!(max_aggregate_frames(1500, r), 1);
        let slow_ht = PhyRate::ht(0, ChannelWidth::Ht20, false);
        assert!(max_aggregate_frames(60_000, slow_ht) >= 1);
    }

    #[test]
    fn vht80_aggregates_hit_blockack_window() {
        // At 866.7 Mbps with a 1 MiB A-MPDU cap, the 64-MPDU BlockAck
        // window binds long before bytes or airtime.
        use crate::rates::VhtWidth;
        let r = PhyRate::vht(9, 2, VhtWidth::Mhz80, true);
        assert_eq!(max_aggregate_frames(1500, r), consts::BA_WINDOW);
    }

    #[test]
    fn overhead_matches_paper_magnitudes() {
        // Fast station: T_oh = 34 + 16 + (16 + 3.2) + 67.5 ≈ 136.7 µs.
        let oh = aggregate_overhead(PhyRate::fast_station());
        assert!((oh.as_micros_f64() - 136.7).abs() < 1.0, "{oh}");
        // Slow station: 34 + 16 + (16 + 64.4) + 67.5 ≈ 197.9 µs.
        let oh = aggregate_overhead(PhyRate::slow_station());
        assert!((oh.as_micros_f64() - 197.9).abs() < 1.0, "{oh}");
    }

    #[test]
    fn single_frame_duration_includes_mac_overhead() {
        // At MCS0 the 38 header bytes are worth several symbols, so the
        // difference is visible despite symbol quantization.
        let with_hdr = frame_duration(1500, PhyRate::slow_station());
        let raw = PhyRate::slow_station().data_duration(1500);
        assert!(with_hdr > raw);
    }
}
