//! Property tests for the PHY timing math.

use proptest::prelude::*;
use wifiq_phy::consts;
use wifiq_phy::timing;
use wifiq_phy::{ChannelWidth, LegacyRate, PhyRate};

fn any_ht() -> impl Strategy<Value = PhyRate> {
    (0u8..16, proptest::bool::ANY, proptest::bool::ANY).prop_map(|(mcs, wide, sgi)| {
        PhyRate::ht(
            mcs,
            if wide {
                ChannelWidth::Ht40
            } else {
                ChannelWidth::Ht20
            },
            sgi,
        )
    })
}

fn any_rate() -> impl Strategy<Value = PhyRate> {
    prop_oneof![
        any_ht(),
        proptest::sample::select(vec![
            PhyRate::Legacy(LegacyRate::Dsss1),
            PhyRate::Legacy(LegacyRate::Dsss11),
            PhyRate::Legacy(LegacyRate::Ofdm6),
            PhyRate::Legacy(LegacyRate::Ofdm54),
        ]),
    ]
}

proptest! {
    /// Durations are monotone in payload size and never shorter than the
    /// preamble.
    #[test]
    fn duration_monotone_in_bytes(rate in any_rate(), a in 0u64..10_000, b in 0u64..10_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d_lo = rate.data_duration(lo);
        let d_hi = rate.data_duration(hi);
        prop_assert!(d_lo <= d_hi);
        prop_assert!(d_lo >= rate.preamble());
    }

    /// A faster rate never takes longer for the same bytes (within the
    /// same modulation family, where preambles match).
    #[test]
    fn faster_ht_rate_is_never_slower(
        mcs_a in 0u8..16, mcs_b in 0u8..16, sgi in proptest::bool::ANY, bytes in 1u64..65_535
    ) {
        let a = PhyRate::ht(mcs_a, ChannelWidth::Ht20, sgi);
        let b = PhyRate::ht(mcs_b, ChannelWidth::Ht20, sgi);
        if a.bits_per_second() >= b.bits_per_second() {
            prop_assert!(a.data_duration(bytes) <= b.data_duration(bytes));
        }
    }

    /// Symbol quantization rounds up by strictly less than one symbol
    /// relative to the ideal-rate duration.
    #[test]
    fn quantization_error_bounded(rate in any_ht(), bytes in 1u64..65_535) {
        let ideal = wifiq_sim::Nanos::for_bits(bytes * 8, rate.bits_per_second());
        let actual = rate.payload_duration(bytes);
        // `bits_per_second()` truncates fractional bps (e.g. MCS0 SGI is
        // 7 222 222.2), so the "ideal" here is a hair pessimistic; allow
        // a few ns of slack below it.
        prop_assert!(actual + wifiq_sim::Nanos::from_nanos(100) >= ideal);
        // One symbol is at most 4 µs.
        prop_assert!(actual <= ideal + wifiq_sim::Nanos::from_micros(4));
    }

    /// Aggregate framing overhead (eq. 1) is linear: per-subframe length
    /// times n, and every subframe is 4-byte aligned.
    #[test]
    fn ampdu_len_linear_and_aligned(n in 1u64..64, l in 1u64..3000) {
        let total = consts::ampdu_len(n, l);
        prop_assert_eq!(total, n * consts::subframe_len(l));
        prop_assert_eq!(consts::subframe_len(l) % 4, 0);
        prop_assert!(consts::subframe_len(l) >= l + consts::MPDU_OVERHEAD);
        prop_assert!(consts::subframe_len(l) < l + consts::MPDU_OVERHEAD + 4);
    }

    /// The exchange airtime dominates its parts and grows with n.
    #[test]
    fn exchange_duration_composition(rate in any_ht(), n in 1u64..42, l in 64u64..1500) {
        let one = timing::exchange_duration(n, l, rate);
        let more = timing::exchange_duration(n + 1, l, rate);
        prop_assert!(more > one);
        prop_assert!(one > timing::ampdu_duration(n, l, rate));
    }
}
