//! The flat station/TID state store: a struct-of-arrays table keyed by
//! generational handles.
//!
//! One scheduler round used to walk a `Vec` of per-station structs and
//! index four parallel side vectors with `tid_index(sta, ac) = 4·sta +
//! ac` arithmetic scattered across call sites. At 100k+ stations the
//! per-round working set — deficits, DRR list membership, list links,
//! TID handles — no longer fits the cache when it is interleaved with
//! cold configuration, and every raw `usize` index is one churn bug away
//! from addressing a recycled slot.
//!
//! [`StationTable`] fixes both:
//!
//! - **Layout.** The fields a DRR round actually touches live in
//!   parallel flat slabs indexed by `slot × QOS_LEVELS + ac`: deficit,
//!   weight, list membership, intrusive prev/next links, and the TID
//!   handle stripe. A round walks a dense, prefetchable stripe. Cold
//!   per-station payload (rates, CoDel parameters, stashed frames —
//!   whatever the embedder supplies as `C`) lives in a side table that
//!   scheduling never reads.
//! - **Handles.** [`StaId`] and [`TidId`] are 8-byte generational
//!   handles (`u32` slot + `u32` generation), the same discipline as
//!   [`PacketHandle`](crate::packet::PacketHandle): freeing a slot bumps
//!   its generation, so a stale handle panics instead of silently
//!   addressing the slot's next occupant, and a station-vs-TID mixup is
//!   a type error instead of an off-by-4×.
//! - **Teardown.** [`free`](StationTable::free) is the *single*
//!   tombstone path: it unlinks the departing station from every QoS
//!   level's scheduling list (order of the survivors preserved, exactly
//!   like the `retain` it replaces), parks the slot on a LIFO free list
//!   (so churn reuses the most recently vacated slot and the table never
//!   grows without bound), and bumps the generation. Scheduler removal
//!   and roaming departure both collapse onto it.
//!
//! The DRR lists themselves (one *new* + one *old* list per QoS level,
//! FQ-CoDel's sparse-flow discipline applied to stations) are intrusive
//! over the link slabs: a `(station, ac)` node is on at most one list,
//! so one prev/next pair per node serves all four levels.

/// Number of QoS precedence levels (VO, VI, BE, BK).
pub const QOS_LEVELS: usize = 4;

/// The neutral airtime weight (mainline mac80211's default); a station
/// with weight `2 × WEIGHT_NEUTRAL` receives twice the airtime share.
pub const WEIGHT_NEUTRAL: u32 = 256;

const NIL: u32 = u32::MAX;

/// Generational handle to a station slot in a [`StationTable`].
///
/// 8 bytes: a `u32` slot index plus a `u32` generation. The generation
/// is bumped every time the slot is freed, so a handle outliving its
/// station panics on use instead of aliasing the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaId {
    idx: u32,
    gen: u32,
}

impl StaId {
    /// The slot index this handle refers to (stable for the lifetime of
    /// the station; reused by later stations after
    /// [`free`](StationTable::free)).
    pub fn slot(self) -> usize {
        self.idx as usize
    }

    /// The handle's generation (diagnostics).
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Reconstructs a handle from raw parts. Intended for tests and
    /// serialized state; a mismatched generation panics at first use.
    pub fn from_raw(slot: usize, gen: u32) -> StaId {
        StaId {
            idx: slot as u32,
            gen,
        }
    }
}

/// Generational handle to a registered TID (one station × one QoS
/// level) in a [`MacFq`](crate::fq::MacFq).
///
/// Same 8-byte layout and staleness discipline as [`StaId`]; the two
/// are distinct types so a station-for-TID mixup fails to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TidId {
    idx: u32,
    gen: u32,
}

impl TidId {
    /// A sentinel referring to no TID; any use panics. The default value
    /// of the table's TID stripe until [`set_tid`](StationTable::set_tid).
    pub const NONE: TidId = TidId { idx: NIL, gen: 0 };

    /// The TID slot index this handle refers to.
    pub fn slot(self) -> usize {
        self.idx as usize
    }

    /// The handle's generation (diagnostics).
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// True for the [`NONE`](Self::NONE) sentinel.
    pub fn is_none(self) -> bool {
        self.idx == NIL
    }

    /// Reconstructs a handle from raw parts. Intended for tests and
    /// serialized state; a mismatched generation panics at first use.
    pub fn from_raw(slot: usize, gen: u32) -> TidId {
        TidId {
            idx: slot as u32,
            gen,
        }
    }
}

/// Which scheduling list (if any) a `(station, ac)` node is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Membership {
    /// Not on any list: no pending traffic at this level.
    Idle = 0,
    /// On the *new* list: sparse-station priority for one round.
    New = 1,
    /// On the *old* list: the regular DRR rotation.
    Old = 2,
}

/// Head/tail of one intrusive list (NIL-terminated, node = slot×4+ac).
#[derive(Debug, Clone, Copy)]
struct ListEnds {
    head: u32,
    tail: u32,
}

impl ListEnds {
    const EMPTY: ListEnds = ListEnds {
        head: NIL,
        tail: NIL,
    };
}

/// Per-QoS-level list pair: `ends[0]` = new list, `ends[1]` = old list.
#[derive(Debug, Clone, Copy)]
struct AcLists {
    ends: [ListEnds; 2],
}

const NEW: usize = 0;
const OLD: usize = 1;

/// The struct-of-arrays station store. See the module docs for the
/// layout rationale; `C` is the embedder's cold per-station payload
/// (config, stashes, telemetry handles — anything a scheduling round
/// does not touch).
#[derive(Debug)]
pub struct StationTable<C> {
    /// Per-slot generation; bumped on free, so stale handles panic.
    gen: Vec<u32>,
    /// Whether the slot currently hosts a station.
    occupied: Vec<bool>,
    /// Vacated slots awaiting reuse (LIFO — most recently freed first,
    /// matching every other free list in the stack).
    free: Vec<u32>,
    live: usize,

    // ---- hot per-(slot, ac) slabs, length = slots × QOS_LEVELS ----
    deficit: Vec<i64>,
    weight: Vec<u32>,
    membership: Vec<Membership>,
    prev: Vec<u32>,
    next: Vec<u32>,
    /// The TID handle stripe: `tids[slot×4 + ac]` is the MAC FQ TID
    /// registered for that (station, ac) — the accessor that replaces
    /// `tid_index()` call-site arithmetic.
    tids: Vec<TidId>,

    lists: [AcLists; QOS_LEVELS],

    // ---- cold side table, length = slots ----
    cold: Vec<Option<C>>,
}

impl<C> Default for StationTable<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> StationTable<C> {
    /// Creates an empty table.
    pub fn new() -> StationTable<C> {
        StationTable {
            gen: Vec::new(),
            occupied: Vec::new(),
            free: Vec::new(),
            live: 0,
            deficit: Vec::new(),
            weight: Vec::new(),
            membership: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            tids: Vec::new(),
            lists: [AcLists {
                ends: [ListEnds::EMPTY; 2],
            }; QOS_LEVELS],
            cold: Vec::new(),
        }
    }

    /// Creates an empty table with capacity for `n` stations.
    pub fn with_capacity(n: usize) -> StationTable<C> {
        let mut t = Self::new();
        t.gen.reserve(n);
        t.occupied.reserve(n);
        t.deficit.reserve(n * QOS_LEVELS);
        t.weight.reserve(n * QOS_LEVELS);
        t.membership.reserve(n * QOS_LEVELS);
        t.prev.reserve(n * QOS_LEVELS);
        t.next.reserve(n * QOS_LEVELS);
        t.tids.reserve(n * QOS_LEVELS);
        t.cold.reserve(n);
        t
    }

    /// Number of slots ever allocated (live + tombstoned).
    pub fn slots(&self) -> usize {
        self.gen.len()
    }

    /// Number of live stations.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocates a slot for a new station, reusing the most recently
    /// vacated slot when one exists. Hot fields start neutral: zero
    /// deficit, [`WEIGHT_NEUTRAL`] weight, [`Membership::Idle`], and
    /// [`TidId::NONE`] in the TID stripe.
    pub fn alloc(&mut self, cold: C) -> StaId {
        let idx = match self.free.pop() {
            Some(idx) => {
                let s = idx as usize;
                debug_assert!(!self.occupied[s], "free-listed slot still occupied");
                for ac in 0..QOS_LEVELS {
                    let n = s * QOS_LEVELS + ac;
                    self.deficit[n] = 0;
                    self.weight[n] = WEIGHT_NEUTRAL;
                    debug_assert_eq!(self.membership[n], Membership::Idle);
                    self.tids[n] = TidId::NONE;
                }
                self.cold[s] = Some(cold);
                idx
            }
            None => {
                let idx = self.gen.len() as u32;
                self.gen.push(0);
                self.occupied.push(false);
                self.deficit.extend([0i64; QOS_LEVELS]);
                self.weight.extend([WEIGHT_NEUTRAL; QOS_LEVELS]);
                self.membership.extend([Membership::Idle; QOS_LEVELS]);
                self.prev.extend([NIL; QOS_LEVELS]);
                self.next.extend([NIL; QOS_LEVELS]);
                self.tids.extend([TidId::NONE; QOS_LEVELS]);
                self.cold.push(Some(cold));
                idx
            }
        };
        self.occupied[idx as usize] = true;
        self.live += 1;
        StaId {
            idx,
            gen: self.gen[idx as usize],
        }
    }

    /// Frees a station slot — the single tombstone path. Unlinks the
    /// station from every QoS level's scheduling list (survivor order
    /// preserved), clears the TID stripe, bumps the slot's generation
    /// (so `sta` and every copy of it go stale), parks the slot for
    /// LIFO reuse, and returns the cold payload.
    ///
    /// # Panics
    ///
    /// Panics if `sta` is stale or already freed.
    pub fn free(&mut self, sta: StaId) -> C {
        let s = self.index(sta);
        for ac in 0..QOS_LEVELS {
            let node = (s * QOS_LEVELS + ac) as u32;
            match self.membership[node as usize] {
                Membership::Idle => {}
                Membership::New => self.unlink(ac, NEW, node),
                Membership::Old => self.unlink(ac, OLD, node),
            }
            self.membership[node as usize] = Membership::Idle;
            self.tids[node as usize] = TidId::NONE;
        }
        self.occupied[s] = false;
        self.gen[s] = self.gen[s].wrapping_add(1);
        self.free.push(s as u32);
        self.live -= 1;
        self.cold[s].take().expect("freed slot had no cold payload")
    }

    /// True if the handle refers to the slot's current occupant.
    pub fn is_current(&self, sta: StaId) -> bool {
        let s = sta.idx as usize;
        s < self.gen.len() && self.occupied[s] && self.gen[s] == sta.gen
    }

    /// The current handle for `slot`, or `None` for a tombstoned or
    /// never-allocated slot.
    pub fn id_at(&self, slot: usize) -> Option<StaId> {
        if slot < self.gen.len() && self.occupied[slot] {
            Some(StaId {
                idx: slot as u32,
                gen: self.gen[slot],
            })
        } else {
            None
        }
    }

    /// Live station handles in slot order.
    pub fn iter(&self) -> impl Iterator<Item = StaId> + '_ {
        (0..self.slots()).filter_map(|s| self.id_at(s))
    }

    /// Validates a handle and returns its slot.
    ///
    /// # Panics
    ///
    /// Panics with the arena-style staleness message when the handle
    /// does not match the slot's current occupant.
    #[inline]
    fn index(&self, sta: StaId) -> usize {
        let s = sta.idx as usize;
        assert!(s < self.gen.len(), "station handle out of range: slot {s}");
        assert!(
            self.occupied[s] && self.gen[s] == sta.gen,
            "stale station handle: slot {} gen {} vs handle gen {}",
            s,
            self.gen[s],
            sta.gen
        );
        s
    }

    #[inline]
    fn node(&self, sta: StaId, ac: usize) -> usize {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        self.index(sta) * QOS_LEVELS + ac
    }

    // ---- hot-field accessors ----

    /// Current airtime deficit for a station at a QoS level.
    pub fn deficit(&self, sta: StaId, ac: usize) -> i64 {
        self.deficit[self.node(sta, ac)]
    }

    /// Overwrites a deficit (registration / oracle tests).
    pub fn set_deficit(&mut self, sta: StaId, ac: usize, deficit: i64) {
        let n = self.node(sta, ac);
        self.deficit[n] = deficit;
    }

    /// Adds (or, negative, charges) airtime to a deficit.
    pub fn add_deficit(&mut self, sta: StaId, ac: usize, delta: i64) {
        let n = self.node(sta, ac);
        self.deficit[n] += delta;
    }

    /// A station's airtime weight at one QoS level.
    pub fn ac_weight(&self, sta: StaId, ac: usize) -> u32 {
        self.weight[self.node(sta, ac)]
    }

    /// Sets a station's airtime weight at every QoS level. Deficits are
    /// untouched: a mid-round reweight takes effect at the next
    /// replenishment and leaves round state undisturbed.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero — a zero-weight station could never
    /// replenish its deficit and would deadlock the scheduling loop.
    pub fn set_weight(&mut self, sta: StaId, weight: u32) {
        self.set_ac_weights(sta, [weight; QOS_LEVELS]);
    }

    /// Sets a station's per-QoS-level airtime weights (the compiled
    /// output of a policy tree). Same deficit-preserving semantics as
    /// [`set_weight`](Self::set_weight).
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn set_ac_weights(&mut self, sta: StaId, weights: [u32; QOS_LEVELS]) {
        assert!(
            weights.iter().all(|&w| w > 0),
            "airtime weight must be positive"
        );
        let s = self.index(sta);
        self.weight[s * QOS_LEVELS..(s + 1) * QOS_LEVELS].copy_from_slice(&weights);
    }

    /// Which scheduling list the station is on at `ac`.
    pub fn membership(&self, sta: StaId, ac: usize) -> Membership {
        self.membership[self.node(sta, ac)]
    }

    /// The registered TID for `(sta, ac)` — the single access path that
    /// replaces `tid_index()` arithmetic. [`TidId::NONE`] until
    /// [`set_tid`](Self::set_tid).
    pub fn tid(&self, sta: StaId, ac: usize) -> TidId {
        self.tids[self.node(sta, ac)]
    }

    /// Records the TID registered for `(sta, ac)`.
    pub fn set_tid(&mut self, sta: StaId, ac: usize, tid: TidId) {
        let n = self.node(sta, ac);
        self.tids[n] = tid;
    }

    /// Cold payload, immutable.
    pub fn cold(&self, sta: StaId) -> &C {
        let s = self.index(sta);
        self.cold[s].as_ref().expect("live slot has cold payload")
    }

    /// Cold payload, mutable.
    pub fn cold_mut(&mut self, sta: StaId) -> &mut C {
        let s = self.index(sta);
        self.cold[s].as_mut().expect("live slot has cold payload")
    }

    /// Cold payload by slot, or `None` for a tombstoned slot.
    pub fn cold_at(&self, slot: usize) -> Option<&C> {
        self.cold.get(slot)?.as_ref()
    }

    // ---- DRR scheduling lists ----

    fn link_back(&mut self, ac: usize, kind: usize, node: u32) {
        debug_assert_eq!(self.prev[node as usize], NIL);
        debug_assert_eq!(self.next[node as usize], NIL);
        let ends = &mut self.lists[ac].ends[kind];
        if ends.tail == NIL {
            ends.head = node;
            ends.tail = node;
        } else {
            self.prev[node as usize] = ends.tail;
            self.next[ends.tail as usize] = node;
            ends.tail = node;
        }
    }

    fn unlink(&mut self, ac: usize, kind: usize, node: u32) {
        let (p, n) = (self.prev[node as usize], self.next[node as usize]);
        let ends = &mut self.lists[ac].ends[kind];
        if p == NIL {
            debug_assert_eq!(ends.head, node, "unlinking node not on its list");
            ends.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            debug_assert_eq!(ends.tail, node, "unlinking node not on its list");
            ends.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[node as usize] = NIL;
        self.next[node as usize] = NIL;
    }

    #[inline]
    fn front(&self, ac: usize, kind: usize) -> Option<StaId> {
        let node = self.lists[ac].ends[kind].head;
        if node == NIL {
            return None;
        }
        let slot = node as usize / QOS_LEVELS;
        Some(StaId {
            idx: slot as u32,
            gen: self.gen[slot],
        })
    }

    /// Head of the *new* (sparse-priority) list at `ac`.
    pub fn new_front(&self, ac: usize) -> Option<StaId> {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        self.front(ac, NEW)
    }

    /// Head of the *old* list at `ac`.
    pub fn old_front(&self, ac: usize) -> Option<StaId> {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        self.front(ac, OLD)
    }

    /// Appends an idle station to the *new* list (sparse priority).
    ///
    /// # Panics
    ///
    /// Panics if the station is not [`Membership::Idle`] at `ac`.
    pub fn enlist_new(&mut self, sta: StaId, ac: usize) {
        let n = self.node(sta, ac);
        assert_eq!(
            self.membership[n],
            Membership::Idle,
            "enlisting a station already listed"
        );
        self.membership[n] = Membership::New;
        self.link_back(ac, NEW, n as u32);
    }

    /// Appends an idle station to the *old* list (sparse optimisation
    /// disabled, or anti-gaming demotion on registration).
    ///
    /// # Panics
    ///
    /// Panics if the station is not [`Membership::Idle`] at `ac`.
    pub fn enlist_old(&mut self, sta: StaId, ac: usize) {
        let n = self.node(sta, ac);
        assert_eq!(
            self.membership[n],
            Membership::Idle,
            "enlisting a station already listed"
        );
        self.membership[n] = Membership::Old;
        self.link_back(ac, OLD, n as u32);
    }

    /// Pops the head of the *new* list and appends it to the *old* list
    /// (deficit-exhausted rotation, or the anti-gaming demotion of an
    /// emptied sparse station). Returns the rotated station.
    pub fn demote_front_new(&mut self, ac: usize) -> StaId {
        let sta = self.front(ac, NEW).expect("demote from empty new list");
        let n = self.node(sta, ac);
        self.unlink(ac, NEW, n as u32);
        self.membership[n] = Membership::Old;
        self.link_back(ac, OLD, n as u32);
        sta
    }

    /// Rotates the head of the *old* list to its tail
    /// (deficit-exhausted rotation). Returns the rotated station.
    pub fn rotate_front_old(&mut self, ac: usize) -> StaId {
        let sta = self.front(ac, OLD).expect("rotate on empty old list");
        let n = self.node(sta, ac);
        self.unlink(ac, OLD, n as u32);
        self.link_back(ac, OLD, n as u32);
        sta
    }

    /// Pops the head of the *old* list and marks it idle (an emptied
    /// station leaves the rotation). Returns the retired station.
    pub fn retire_front_old(&mut self, ac: usize) -> StaId {
        let sta = self.front(ac, OLD).expect("retire on empty old list");
        let n = self.node(sta, ac);
        self.unlink(ac, OLD, n as u32);
        self.membership[n] = Membership::Idle;
        sta
    }

    /// Walks both lists at `ac` asserting link/membership consistency
    /// (tests and debug audits; O(stations)).
    pub fn check_lists(&self, ac: usize) {
        for (kind, want) in [(NEW, Membership::New), (OLD, Membership::Old)] {
            let mut node = self.lists[ac].ends[kind].head;
            let mut prev = NIL;
            while node != NIL {
                assert_eq!(self.prev[node as usize], prev, "prev link broken");
                assert_eq!(
                    self.membership[node as usize], want,
                    "membership out of sync with list"
                );
                assert!(
                    self.occupied[node as usize / QOS_LEVELS],
                    "tombstoned slot on a scheduling list"
                );
                prev = node;
                node = self.next[node as usize];
            }
            assert_eq!(self.lists[ac].ends[kind].tail, prev, "tail out of sync");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BE: usize = 2;

    #[test]
    fn alloc_free_reuses_lifo_with_fresh_generation() {
        let mut t = StationTable::<u32>::new();
        let a = t.alloc(10);
        let b = t.alloc(20);
        let c = t.alloc(30);
        assert_eq!((a.slot(), b.slot(), c.slot()), (0, 1, 2));
        assert_eq!(t.free(b), 20);
        assert_eq!(t.live(), 2);
        let d = t.alloc(40);
        assert_eq!(d.slot(), 1, "LIFO slot reuse");
        assert_ne!(d, b, "generation distinguishes occupants");
        assert_eq!(*t.cold(d), 40);
        assert_eq!(t.slots(), 3);
    }

    #[test]
    #[should_panic(expected = "stale station handle")]
    fn stale_handle_panics() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        t.free(a);
        let _ = t.alloc(());
        t.deficit(a, BE);
    }

    #[test]
    #[should_panic(expected = "stale station handle")]
    fn double_free_panics() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        t.free(a);
        t.free(a);
    }

    #[test]
    fn id_at_tracks_occupancy() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        assert_eq!(t.id_at(0), Some(a));
        t.free(a);
        assert_eq!(t.id_at(0), None);
        assert_eq!(t.id_at(7), None);
        let b = t.alloc(());
        assert_eq!(t.id_at(0), Some(b));
        assert!(!t.is_current(a));
        assert!(t.is_current(b));
    }

    #[test]
    fn lists_preserve_fifo_order_and_survivor_order_on_free() {
        let mut t = StationTable::<()>::new();
        let ids: Vec<_> = (0..4).map(|_| t.alloc(())).collect();
        for &id in &ids {
            t.enlist_old(id, BE);
        }
        // Free the middle station: survivors keep their relative order,
        // as the `retain` this replaces guaranteed.
        t.free(ids[1]);
        t.check_lists(BE);
        assert_eq!(t.retire_front_old(BE), ids[0]);
        assert_eq!(t.retire_front_old(BE), ids[2]);
        assert_eq!(t.retire_front_old(BE), ids[3]);
        assert_eq!(t.old_front(BE), None);
    }

    #[test]
    fn demote_rotate_retire_cycle() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        let b = t.alloc(());
        t.enlist_new(a, BE);
        t.enlist_old(b, BE);
        assert_eq!(t.new_front(BE), Some(a));
        assert_eq!(t.old_front(BE), Some(b));
        // a demotes behind b.
        assert_eq!(t.demote_front_new(BE), a);
        assert_eq!(t.membership(a, BE), Membership::Old);
        assert_eq!(t.old_front(BE), Some(b));
        // Rotate b to the back; a surfaces.
        assert_eq!(t.rotate_front_old(BE), b);
        assert_eq!(t.old_front(BE), Some(a));
        // Retire both.
        assert_eq!(t.retire_front_old(BE), a);
        assert_eq!(t.retire_front_old(BE), b);
        assert_eq!(t.membership(b, BE), Membership::Idle);
        t.check_lists(BE);
    }

    #[test]
    fn free_unlinks_from_every_ac() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        let b = t.alloc(());
        for ac in 0..QOS_LEVELS {
            t.enlist_new(a, ac);
            t.enlist_old(b, ac);
        }
        t.free(a);
        for ac in 0..QOS_LEVELS {
            t.check_lists(ac);
            assert_eq!(t.new_front(ac), None);
            assert_eq!(t.old_front(ac), Some(b));
        }
    }

    #[test]
    fn weights_and_deficits_are_per_ac() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        assert_eq!(t.ac_weight(a, BE), WEIGHT_NEUTRAL);
        t.set_ac_weights(a, [1024, 256, 512, 256]);
        assert_eq!(t.ac_weight(a, 0), 1024);
        assert_eq!(t.ac_weight(a, BE), 512);
        t.set_deficit(a, BE, 300);
        t.add_deficit(a, BE, -100);
        assert_eq!(t.deficit(a, BE), 200);
        assert_eq!(t.deficit(a, 0), 0);
    }

    #[test]
    #[should_panic(expected = "airtime weight must be positive")]
    fn zero_weight_rejected() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        t.set_weight(a, 0);
    }

    #[test]
    fn tid_stripe_replaces_index_arithmetic() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        assert!(t.tid(a, BE).is_none());
        let tid = TidId::from_raw(a.slot() * QOS_LEVELS + BE, 0);
        t.set_tid(a, BE, tid);
        assert_eq!(t.tid(a, BE), tid);
        // Freeing clears the stripe for the next occupant.
        t.free(a);
        let b = t.alloc(());
        assert!(t.tid(b, BE).is_none());
    }

    #[test]
    fn reused_slot_starts_neutral() {
        let mut t = StationTable::<()>::new();
        let a = t.alloc(());
        t.set_weight(a, 512);
        t.set_deficit(a, BE, -5_000);
        t.enlist_new(a, BE);
        t.free(a);
        let b = t.alloc(());
        assert_eq!(b.slot(), a.slot());
        assert_eq!(t.ac_weight(b, BE), WEIGHT_NEUTRAL);
        assert_eq!(t.deficit(b, BE), 0);
        assert_eq!(t.membership(b, BE), Membership::Idle);
    }
}
