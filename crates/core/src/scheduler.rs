//! The airtime-fairness station scheduler — Algorithm 3 of the paper.
//!
//! A deficit round-robin scheduler modelled after FQ-CoDel's flow
//! scheduler, with stations taking the place of flows and the deficit
//! accounted in *microseconds of airtime* instead of bytes. Each station
//! keeps one deficit per 802.11 QoS precedence level (VO/VI/BE/BK).
//!
//! Compared to its closest prior work (the DTT scheduler [6]), this design:
//!
//! 1. uses per-station deficits instead of token buckets (no accounting at
//!    TX/RX completion beyond one subtraction),
//! 2. charges only actual transmission airtime — and also charges airtime
//!    of *received* frames, so stations pay for their upstream usage,
//! 3. adds a sparse-station optimisation analogous to FQ-CoDel's new-flow
//!    priority, with the same anti-gaming protection.
//!
//! The schedule loop itself ("while the hardware queue is not full")
//! belongs to the driver; this type provides the station selection
//! ([`AirtimeScheduler::next_station`]) and the airtime accounting
//! ([`AirtimeScheduler::charge`]).

use std::collections::VecDeque;

use wifiq_sim::Nanos;

use crate::packet::StationHandle;

/// Number of QoS precedence levels (VO, VI, BE, BK).
pub const QOS_LEVELS: usize = 4;

/// Configuration for the airtime scheduler.
#[derive(Debug, Clone, Copy)]
pub struct AirtimeParams {
    /// Airtime quantum added to a station's deficit per scheduling round.
    ///
    /// Smaller quanta give finer-grained fairness; the deficit may go
    /// arbitrarily negative after one aggregate, and negative stations
    /// simply wait more rounds.
    pub quantum: Nanos,
    /// Enable the sparse-station optimisation: stations that become active
    /// are scheduled with temporary priority for one round (§3.2 item 3).
    pub sparse_stations: bool,
    /// Charge received (upstream) airtime to station deficits (§3.2
    /// item 2). Disabling this reverts to TX-only accounting, the
    /// behaviour of prior schedulers like DTT [6] — the ablation behind
    /// the bidirectional rows of Figure 6.
    pub charge_rx: bool,
}

impl Default for AirtimeParams {
    fn default() -> Self {
        AirtimeParams {
            quantum: Nanos::from_micros(300),
            sparse_stations: true,
            charge_rx: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    Idle,
    New,
    Old,
}

/// The neutral airtime weight (mainline mac80211's default); a station
/// with weight `2 × WEIGHT_NEUTRAL` receives twice the airtime share.
pub const WEIGHT_NEUTRAL: u32 = 256;

#[derive(Debug, Clone)]
struct StationState {
    deficit: [i64; QOS_LEVELS],
    membership: [Membership; QOS_LEVELS],
    /// Airtime weights, one per QoS level: the station's quantum at a
    /// level is scaled by `weight / WEIGHT_NEUTRAL`, so long-run airtime
    /// is proportional to weight — the weighted-ATF extension that
    /// followed the paper into mainline, extended per access category so
    /// a policy hierarchy can treat voice and bulk traffic differently.
    weights: [u32; QOS_LEVELS],
    /// False once the station has been removed; the slot is parked on the
    /// free list until the next `register_station`.
    registered: bool,
}

#[derive(Debug, Default)]
struct AcLists {
    new_stations: VecDeque<usize>,
    old_stations: VecDeque<usize>,
}

/// Telemetry counters for the scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AirtimeStats {
    /// Stations handed out by [`AirtimeScheduler::next_station`].
    pub scheduled: u64,
    /// Times a station served from the new list (sparse priority hits).
    pub sparse_hits: u64,
    /// Total airtime charged via [`AirtimeScheduler::charge`].
    pub charged: Nanos,
}

/// The per-access-category airtime DRR scheduler (paper Algorithm 3).
///
/// # Examples
///
/// ```
/// use wifiq_core::scheduler::{AirtimeParams, AirtimeScheduler};
/// use wifiq_sim::Nanos;
///
/// let mut sched = AirtimeScheduler::new(AirtimeParams::default());
/// let a = sched.register_station();
/// let b = sched.register_station();
/// let ac = 2; // best effort
///
/// sched.notify_active(a, ac);
/// sched.notify_active(b, ac);
///
/// // Both stations backlogged: the scheduler picks one; charging a large
/// // airtime makes it yield to the other.
/// let first = sched.next_station(ac, |_| true).unwrap();
/// sched.charge(first, ac, Nanos::from_millis(4));
/// let second = sched.next_station(ac, |_| true).unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug)]
pub struct AirtimeScheduler {
    params: AirtimeParams,
    stations: Vec<StationState>,
    acs: [AcLists; QOS_LEVELS],
    /// Removed station slots awaiting reuse (LIFO).
    free_stations: Vec<usize>,
    /// Telemetry counters.
    pub stats: AirtimeStats,
}

impl AirtimeScheduler {
    /// Creates an empty scheduler.
    pub fn new(params: AirtimeParams) -> AirtimeScheduler {
        AirtimeScheduler {
            params,
            stations: Vec::new(),
            acs: Default::default(),
            free_stations: Vec::new(),
            stats: AirtimeStats::default(),
        }
    }

    /// Registers a station, returning its handle.
    ///
    /// The station starts with one full quantum of deficit per QoS level
    /// (as ath9k initialises `airtime_deficit` at node attach), so a brand
    /// new station passes its first deficit check and the sparse-station
    /// priority is effective. Unlike flow deficits in the FQ structure,
    /// station deficits are *not* reset on re-activation: a station that
    /// used upstream airtime while absent from the scheduling lists keeps
    /// owing that airtime.
    pub fn register_station(&mut self) -> StationHandle {
        let q = self.params.quantum.as_nanos() as i64;
        let fresh = StationState {
            deficit: [q; QOS_LEVELS],
            membership: [Membership::Idle; QOS_LEVELS],
            weights: [WEIGHT_NEUTRAL; QOS_LEVELS],
            registered: true,
        };
        // Reuse the most recently removed slot so handles stay dense and
        // station churn does not grow the table without bound.
        if let Some(idx) = self.free_stations.pop() {
            self.stations[idx] = fresh;
            return StationHandle(idx);
        }
        let idx = self.stations.len();
        self.stations.push(fresh);
        StationHandle(idx)
    }

    /// Removes a station mid-round: it is deleted from every QoS level's
    /// scheduling list (front-of-list rotation state and the other
    /// stations' deficits are untouched) and its slot is parked for reuse
    /// by the next [`register_station`](Self::register_station). The
    /// handle must not be used again until the slot is re-registered.
    ///
    /// # Panics
    ///
    /// Panics if the station is unregistered or already removed.
    pub fn remove_station(&mut self, sta: StationHandle) {
        let si = sta.0;
        assert!(
            self.stations.get(si).is_some_and(|s| s.registered),
            "removing unregistered station"
        );
        for ac in 0..QOS_LEVELS {
            if self.stations[si].membership[ac] != Membership::Idle {
                // `retain` keeps the relative order of the survivors, so a
                // removal in the middle of a DRR round does not perturb
                // whose turn comes next.
                self.acs[ac].new_stations.retain(|&x| x != si);
                self.acs[ac].old_stations.retain(|&x| x != si);
                self.stations[si].membership[ac] = Membership::Idle;
            }
        }
        self.stations[si].registered = false;
        self.free_stations.push(si);
    }

    /// True if the handle refers to a currently registered (not removed)
    /// station slot.
    pub fn is_registered(&self, sta: StationHandle) -> bool {
        self.stations.get(sta.0).is_some_and(|s| s.registered)
    }

    /// Sets a station's airtime weight (default [`WEIGHT_NEUTRAL`]) at
    /// every QoS level. Long-run airtime shares are proportional to
    /// weights. Changing a weight never touches deficits: a mid-round
    /// reconfiguration takes effect at the station's next replenishment
    /// and leaves every other station's round state undisturbed.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero — a zero-weight station could never
    /// replenish its deficit and would deadlock the scheduling loop.
    pub fn set_weight(&mut self, sta: StationHandle, weight: u32) {
        assert!(weight > 0, "airtime weight must be positive");
        self.stations[sta.0].weights = [weight; QOS_LEVELS];
    }

    /// Sets a station's airtime weights per QoS level (the compiled
    /// output of a policy tree). Same deficit-preserving semantics as
    /// [`set_weight`](Self::set_weight).
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn set_ac_weights(&mut self, sta: StationHandle, weights: [u32; QOS_LEVELS]) {
        assert!(
            weights.iter().all(|&w| w > 0),
            "airtime weight must be positive"
        );
        self.stations[sta.0].weights = weights;
    }

    /// A station's current airtime weight at one QoS level.
    pub fn ac_weight(&self, sta: StationHandle, ac: usize) -> u32 {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        self.stations[sta.0].weights[ac]
    }

    /// The deficit replenishment for one scheduling round at `ac`:
    /// `quantum × weight / WEIGHT_NEUTRAL`, and at least one nanosecond
    /// so progress is guaranteed even for tiny weights.
    fn refill(&self, si: usize, ac: usize) -> i64 {
        let q = self.params.quantum.as_nanos() as i64;
        (q * self.stations[si].weights[ac] as i64 / WEIGHT_NEUTRAL as i64).max(1)
    }

    /// Number of registered stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// The configured parameters.
    pub fn params(&self) -> AirtimeParams {
        self.params
    }

    /// Current airtime deficit for a station at a QoS level (telemetry).
    pub fn deficit(&self, sta: StationHandle, ac: usize) -> i64 {
        self.stations[sta.0].deficit[ac]
    }

    /// Marks a station as having pending traffic at `ac`.
    ///
    /// Call on every enqueue. A station not currently on a scheduling list
    /// joins the *new* list (sparse priority); with the optimisation
    /// disabled it joins the old list directly.
    pub fn notify_active(&mut self, sta: StationHandle, ac: usize) {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        let st = &mut self.stations[sta.0];
        assert!(st.registered, "removed station handle");
        if st.membership[ac] == Membership::Idle {
            if self.params.sparse_stations {
                st.membership[ac] = Membership::New;
                self.acs[ac].new_stations.push_back(sta.0);
            } else {
                st.membership[ac] = Membership::Old;
                self.acs[ac].old_stations.push_back(sta.0);
            }
        }
    }

    /// Charges transmitted or received airtime against a station's deficit.
    ///
    /// Called at TX completion with the measured transmission duration
    /// (including retries), and at RX with the duration of received
    /// frames — charging RX is what lets the scheduler compensate for
    /// upstream traffic it cannot directly control (§4.1.2).
    pub fn charge(&mut self, sta: StationHandle, ac: usize, airtime: Nanos) {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        assert!(self.stations[sta.0].registered, "removed station handle");
        self.stations[sta.0].deficit[ac] -= airtime.as_nanos() as i64;
        self.stats.charged += airtime;
    }

    /// Selects the next station to build an aggregate for, at QoS level
    /// `ac` — the body of Algorithm 3's loop.
    ///
    /// `has_data(station)` reports whether the station currently has
    /// queued packets at this level. Stations that report empty are
    /// rotated out per the algorithm (new → old, old → removed).
    ///
    /// Returns `None` when no station has data. The returned station stays
    /// at the head of its list; it will keep being returned until its
    /// deficit is exhausted by [`charge`](Self::charge) or its queue
    /// empties — exactly the DRR behaviour of Algorithm 3.
    pub fn next_station<F>(&mut self, ac: usize, mut has_data: F) -> Option<StationHandle>
    where
        F: FnMut(StationHandle) -> bool,
    {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        loop {
            // Lines 3–8: prefer the new list.
            let (si, from_new) = {
                let lists = &self.acs[ac];
                if let Some(&si) = lists.new_stations.front() {
                    (si, true)
                } else if let Some(&si) = lists.old_stations.front() {
                    (si, false)
                } else {
                    return None;
                }
            };

            // Lines 9–12: replenish an exhausted deficit and rotate.
            if self.stations[si].deficit[ac] <= 0 {
                self.stations[si].deficit[ac] += self.refill(si, ac);
                let lists = &mut self.acs[ac];
                if from_new {
                    lists.new_stations.pop_front();
                } else {
                    lists.old_stations.pop_front();
                }
                lists.old_stations.push_back(si);
                self.stations[si].membership[ac] = Membership::Old;
                continue;
            }

            // Lines 13–18: empty stations rotate out. A station emptying
            // from the new list is demoted to old rather than removed —
            // the same anti-gaming rule FQ-CoDel applies to sparse flows.
            if !has_data(StationHandle(si)) {
                let lists = &mut self.acs[ac];
                if from_new {
                    lists.new_stations.pop_front();
                    lists.old_stations.push_back(si);
                    self.stations[si].membership[ac] = Membership::Old;
                } else {
                    lists.old_stations.pop_front();
                    self.stations[si].membership[ac] = Membership::Idle;
                }
                continue;
            }

            // Line 19: this station builds the next aggregate.
            self.stats.scheduled += 1;
            if from_new {
                self.stats.sparse_hits += 1;
            }
            return Some(StationHandle(si));
        }
    }

    /// True if the station is on any scheduling list for `ac`.
    pub fn is_active(&self, sta: StationHandle, ac: usize) -> bool {
        self.stations[sta.0].membership[ac] != Membership::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BE: usize = 2;

    fn sched() -> AirtimeScheduler {
        AirtimeScheduler::new(AirtimeParams::default())
    }

    #[test]
    fn empty_scheduler_returns_none() {
        let mut s = sched();
        assert_eq!(s.next_station(BE, |_| true), None);
    }

    #[test]
    fn single_station_keeps_getting_scheduled() {
        let mut s = sched();
        let a = s.register_station();
        s.notify_active(a, BE);
        for _ in 0..10 {
            assert_eq!(s.next_station(BE, |_| true), Some(a));
            s.charge(a, BE, Nanos::from_micros(100));
        }
    }

    #[test]
    fn station_removed_when_empty() {
        let mut s = sched();
        let a = s.register_station();
        s.notify_active(a, BE);
        // First selection with data works; then the queue empties.
        assert_eq!(s.next_station(BE, |_| true), Some(a));
        assert_eq!(s.next_station(BE, |_| false), None);
        assert!(!s.is_active(a, BE));
        // Re-activation works.
        s.notify_active(a, BE);
        assert_eq!(s.next_station(BE, |_| true), Some(a));
    }

    /// Simulates `rounds` aggregate transmissions between stations whose
    /// aggregates cost different airtime, and returns total airtime per
    /// station. This is the anomaly scenario in miniature.
    fn run_airtime_drr(costs: &[Nanos], rounds: usize) -> Vec<Nanos> {
        let mut s = sched();
        let stations: Vec<_> = costs.iter().map(|_| s.register_station()).collect();
        for &st in &stations {
            s.notify_active(st, BE);
        }
        let mut airtime = vec![Nanos::ZERO; costs.len()];
        for _ in 0..rounds {
            let st = s.next_station(BE, |_| true).unwrap();
            let cost = costs[st.0];
            airtime[st.0] += cost;
            s.charge(st, BE, cost);
        }
        airtime
    }

    #[test]
    fn equal_airtime_despite_unequal_costs() {
        // A slow station whose aggregates cost 10× those of two fast
        // stations must still receive an equal share of airtime — the
        // paper's headline property (Figure 5, fourth column).
        let costs = [
            Nanos::from_micros(200),
            Nanos::from_micros(200),
            Nanos::from_micros(2_000),
        ];
        let airtime = run_airtime_drr(&costs, 3_000);
        let total: Nanos = airtime.iter().copied().sum();
        for (i, &a) in airtime.iter().enumerate() {
            let share = a.as_nanos() as f64 / total.as_nanos() as f64;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.02,
                "station {i} share {share:.3}, airtime {airtime:?}"
            );
        }
    }

    #[test]
    fn throughput_fairness_is_not_enforced() {
        // Complementary check: with equal airtime, the slow station gets
        // proportionally fewer transmissions (no throughput fairness).
        let costs = [Nanos::from_micros(200), Nanos::from_micros(2_000)];
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        let mut tx = [0u64; 2];
        for _ in 0..2_000 {
            let st = s.next_station(BE, |_| true).unwrap();
            tx[st.0] += 1;
            s.charge(st, BE, costs[st.0]);
        }
        let ratio = tx[0] as f64 / tx[1] as f64;
        assert!(
            (8.0..12.5).contains(&ratio),
            "fast/slow tx ratio {ratio}: {tx:?}"
        );
    }

    #[test]
    fn rx_charging_reduces_tx_share() {
        // Station B's upstream usage is charged via RX accounting; its
        // downstream share should shrink relative to A.
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        let cost = Nanos::from_micros(500);
        let mut tx = [0u64; 2];
        for round in 0..2_000 {
            let st = s.next_station(BE, |_| true).unwrap();
            tx[st.0] += 1;
            s.charge(st, BE, cost);
            // Every other round, B also receives an upstream frame.
            if round % 2 == 0 {
                s.charge(b, BE, cost);
            }
        }
        // Equilibrium: each station is granted airtime at the same rate G.
        // A spends G on TX (tx_A = G/c); B spends on TX plus an RX charge
        // of c/2 per scheduler round: tx_B·c + (tx_A + tx_B)·c/2 = G.
        // Solving gives tx_A = 3·tx_B, i.e. B's share is 1/4.
        let share_b = tx[1] as f64 / (tx[0] + tx[1]) as f64;
        assert!((share_b - 0.25).abs() < 0.04, "B share {share_b}: {tx:?}");
    }

    #[test]
    fn sparse_station_jumps_queue() {
        let mut s = sched();
        let bulk1 = s.register_station();
        let bulk2 = s.register_station();
        s.notify_active(bulk1, BE);
        s.notify_active(bulk2, BE);
        // Push the bulk stations through enough rounds that they sit on
        // the old list with mid-round deficits.
        for _ in 0..50 {
            let st = s.next_station(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(450));
        }
        // A sparse station becomes active: it must be picked next.
        let sparse = s.register_station();
        s.notify_active(sparse, BE);
        assert_eq!(s.next_station(BE, |_| true), Some(sparse));
    }

    #[test]
    fn sparse_priority_lasts_one_round_only() {
        let mut s = sched();
        let bulk = s.register_station();
        s.notify_active(bulk, BE);
        // Put bulk on the old list with a positive deficit: one
        // over-quantum charge rotates it there, then a small charge
        // leaves it at the head with 100 µs of deficit.
        let st = s.next_station(BE, |_| true).unwrap();
        s.charge(st, BE, Nanos::from_micros(400)); // deficit −100
        let st = s.next_station(BE, |_| true).unwrap(); // replenished, old
        s.charge(st, BE, Nanos::from_micros(100)); // deficit 100
        let sparse = s.register_station();
        s.notify_active(sparse, BE);
        // Sparse station gets its one round of priority...
        assert_eq!(s.next_station(BE, |_| true), Some(sparse));
        s.charge(sparse, BE, Nanos::from_micros(50));
        // ...then its queue empties: it is demoted to the old list, and
        // bulk (positive deficit) is served.
        let next = s.next_station(BE, |st| st == bulk).unwrap();
        assert_eq!(next, bulk);
        assert!(s.is_active(sparse, BE), "demoted to old, not removed");
        // Anti-gaming: a packet arriving while it sits on the old list
        // does NOT re-grant new-list priority — bulk stays at the head.
        s.notify_active(sparse, BE);
        assert_eq!(s.next_station(BE, |_| true), Some(bulk));
    }

    #[test]
    fn emptied_station_removed_only_after_old_list_pass() {
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        // a reports empty (demoted to old), b has data and is picked.
        assert_eq!(s.next_station(BE, |st| st == b), Some(b));
        assert!(s.is_active(a, BE));
        // Next call: b (head of new) still has data; a never re-visited.
        assert_eq!(s.next_station(BE, |st| st == b), Some(b));
        // Exhaust b so the old list is scanned; a, still empty, is removed.
        s.charge(b, BE, Nanos::from_millis(10));
        assert_eq!(s.next_station(BE, |st| st == b), Some(b));
        assert!(!s.is_active(a, BE), "removed after old-list visit");
    }

    #[test]
    fn disabled_sparse_optimisation_gives_no_priority() {
        let mut s = AirtimeScheduler::new(AirtimeParams {
            sparse_stations: false,
            ..AirtimeParams::default()
        });
        let bulk = s.register_station();
        s.notify_active(bulk, BE);
        // Leave bulk at the head of the old list with positive deficit.
        for _ in 0..2 {
            let st = s.next_station(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(100));
        }
        let sparse = s.register_station();
        s.notify_active(sparse, BE);
        // Without the optimisation the new station joins the old list's
        // tail and must wait for bulk's quantum to finish.
        assert_eq!(s.next_station(BE, |_| true), Some(bulk));
        assert_eq!(s.stats.sparse_hits, 0);
    }

    #[test]
    fn acs_are_independent() {
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, 0); // VO
        s.notify_active(b, BE);
        assert_eq!(s.next_station(0, |_| true), Some(a));
        assert_eq!(s.next_station(BE, |_| true), Some(b));
        // Charging VO does not affect the BE deficit (still the initial
        // quantum).
        let before = s.deficit(a, BE);
        s.charge(a, 0, Nanos::from_millis(10));
        assert_eq!(s.deficit(a, BE), before);
        assert!(s.deficit(a, 0) < 0);
    }

    #[test]
    fn deficit_recovers_at_quantum_per_round() {
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        // A transmits a huge aggregate (3 ms); with a 300 µs quantum, B
        // should then get ~10 transmissions of 300 µs before A returns.
        let first = s.next_station(BE, |_| true).unwrap();
        s.charge(first, BE, Nanos::from_millis(3));
        let other = if first == a { b } else { a };
        let mut other_runs = 0;
        loop {
            let st = s.next_station(BE, |_| true).unwrap();
            if st == first {
                break;
            }
            assert_eq!(st, other);
            other_runs += 1;
            s.charge(st, BE, Nanos::from_micros(300));
            assert!(other_runs < 20, "first station never recovered");
        }
        assert!(
            (9..=11).contains(&other_runs),
            "expected ~10 catch-up rounds, got {other_runs}"
        );
    }

    #[test]
    fn weights_scale_airtime_shares() {
        // Weight 512 vs 256: the heavy station should get 2/3 of airtime.
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.set_weight(a, 512);
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        let mut airtime = [0u64; 2];
        for _ in 0..6_000 {
            let st = s.next_station(BE, |_| true).unwrap();
            // Unequal per-transmission costs, to show weights and the
            // anomaly-correction compose.
            let cost = if st == a { 700 } else { 300 };
            airtime[st.0] += cost;
            s.charge(st, BE, Nanos::from_micros(cost));
        }
        let share_a = airtime[0] as f64 / (airtime[0] + airtime[1]) as f64;
        assert!(
            (share_a - 2.0 / 3.0).abs() < 0.02,
            "weighted share {share_a:.3}, want 0.667"
        );
    }

    #[test]
    fn neutral_weight_is_default() {
        let mut s = sched();
        let a = s.register_station();
        for ac in 0..QOS_LEVELS {
            assert_eq!(s.ac_weight(a, ac), WEIGHT_NEUTRAL);
        }
        s.set_weight(a, 1024);
        assert_eq!(s.ac_weight(a, BE), 1024);
    }

    #[test]
    fn per_ac_weights_are_independent() {
        // VO weighted 4×, BE neutral: the VO share scales, BE does not.
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.set_ac_weights(a, [1024, 256, 256, 256]);
        for ac in [0, BE] {
            s.notify_active(a, ac);
            s.notify_active(b, ac);
            let mut airtime = [0u64; 2];
            for _ in 0..8_000 {
                let st = s.next_station(ac, |_| true).unwrap();
                airtime[st.0] += 300;
                s.charge(st, ac, Nanos::from_micros(300));
            }
            let share_a = airtime[0] as f64 / (airtime[0] + airtime[1]) as f64;
            let want = if ac == 0 { 0.8 } else { 0.5 };
            assert!(
                (share_a - want).abs() < 0.02,
                "ac {ac} share {share_a:.3}, want {want}"
            );
        }
    }

    #[test]
    fn weight_change_preserves_deficits() {
        let mut s = sched();
        let a = s.register_station();
        let b = s.register_station();
        s.notify_active(a, BE);
        s.notify_active(b, BE);
        for _ in 0..7 {
            let st = s.next_station(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(450));
        }
        let before: Vec<i64> = (0..QOS_LEVELS).map(|ac| s.deficit(b, ac)).collect();
        s.set_ac_weights(a, [512, 512, 512, 512]);
        let after: Vec<i64> = (0..QOS_LEVELS).map(|ac| s.deficit(b, ac)).collect();
        assert_eq!(before, after, "untouched station's deficits moved");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_ac_weight_rejected() {
        let mut s = sched();
        let a = s.register_station();
        s.set_ac_weights(a, [256, 256, 0, 256]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut s = sched();
        let a = s.register_station();
        s.set_weight(a, 0);
    }

    #[test]
    #[should_panic(expected = "QoS level out of range")]
    fn bad_ac_panics() {
        let mut s = sched();
        let a = s.register_station();
        s.notify_active(a, 4);
    }
}
