//! The airtime-fairness station scheduler — Algorithm 3 of the paper.
//!
//! A deficit round-robin scheduler modelled after FQ-CoDel's flow
//! scheduler, with stations taking the place of flows and the deficit
//! accounted in *microseconds of airtime* instead of bytes. Each station
//! keeps one deficit per 802.11 QoS precedence level (VO/VI/BE/BK).
//!
//! Compared to its closest prior work (the DTT scheduler [6]), this design:
//!
//! 1. uses per-station deficits instead of token buckets (no accounting at
//!    TX/RX completion beyond one subtraction),
//! 2. charges only actual transmission airtime — and also charges airtime
//!    of *received* frames, so stations pay for their upstream usage,
//! 3. adds a sparse-station optimisation analogous to FQ-CoDel's new-flow
//!    priority, with the same anti-gaming protection.
//!
//! The schedule loop itself ("while the hardware queue is not full")
//! belongs to the driver; this type provides the station selection
//! ([`AirtimeScheduler::next_station`]) and the airtime accounting
//! ([`AirtimeScheduler::charge`]).
//!
//! # State layout
//!
//! All per-station round state — deficits, weights, list membership and
//! the intrusive DRR list links — lives in a [`StationTable`]'s flat
//! slabs, not in this type: the scheduler is a stateless algorithm
//! (parameters + telemetry counters) over the table, so one store owns
//! station lifetime for the scheduler, the MAC transmit path, and
//! roaming alike. The pre-SoA implementation is retained verbatim as
//! [`ReferenceScheduler`] and drives the oracle proptest that pins the
//! two byte-for-byte to the same scheduling decisions.

use std::collections::VecDeque;

use wifiq_sim::Nanos;

#[allow(deprecated)]
use crate::packet::StationHandle;
use crate::table::{Membership, StaId, StationTable};

pub use crate::table::{QOS_LEVELS, WEIGHT_NEUTRAL};

/// Configuration for the airtime scheduler.
#[derive(Debug, Clone, Copy)]
pub struct AirtimeParams {
    /// Airtime quantum added to a station's deficit per scheduling round.
    ///
    /// Smaller quanta give finer-grained fairness; the deficit may go
    /// arbitrarily negative after one aggregate, and negative stations
    /// simply wait more rounds.
    pub quantum: Nanos,
    /// Enable the sparse-station optimisation: stations that become active
    /// are scheduled with temporary priority for one round (§3.2 item 3).
    pub sparse_stations: bool,
    /// Charge received (upstream) airtime to station deficits (§3.2
    /// item 2). Disabling this reverts to TX-only accounting, the
    /// behaviour of prior schedulers like DTT [6] — the ablation behind
    /// the bidirectional rows of Figure 6.
    pub charge_rx: bool,
}

impl Default for AirtimeParams {
    fn default() -> Self {
        AirtimeParams {
            quantum: Nanos::from_micros(300),
            sparse_stations: true,
            charge_rx: true,
        }
    }
}

/// Telemetry counters for the scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AirtimeStats {
    /// Stations handed out by [`AirtimeScheduler::next_station`].
    pub scheduled: u64,
    /// Times a station served from the new list (sparse priority hits).
    pub sparse_hits: u64,
    /// Total airtime charged via [`AirtimeScheduler::charge`].
    pub charged: Nanos,
}

/// The per-access-category airtime DRR scheduler (paper Algorithm 3),
/// operating over a [`StationTable`]'s flat hot slabs.
///
/// # Examples
///
/// ```
/// use wifiq_core::scheduler::{AirtimeParams, AirtimeScheduler};
/// use wifiq_core::table::StationTable;
/// use wifiq_sim::Nanos;
///
/// let mut table = StationTable::new();
/// let mut sched = AirtimeScheduler::new(AirtimeParams::default());
/// let a = sched.register_station(&mut table, ());
/// let b = sched.register_station(&mut table, ());
/// let ac = 2; // best effort
///
/// sched.notify_active(&mut table, a, ac);
/// sched.notify_active(&mut table, b, ac);
///
/// // Both stations backlogged: the scheduler picks one; charging a large
/// // airtime makes it yield to the other.
/// let first = sched.next_station(&mut table, ac, |_, _| true).unwrap();
/// sched.charge(&mut table, first, ac, Nanos::from_millis(4));
/// let second = sched.next_station(&mut table, ac, |_, _| true).unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug)]
pub struct AirtimeScheduler {
    params: AirtimeParams,
    /// Telemetry counters.
    pub stats: AirtimeStats,
}

impl AirtimeScheduler {
    /// Creates a scheduler with the given parameters.
    pub fn new(params: AirtimeParams) -> AirtimeScheduler {
        AirtimeScheduler {
            params,
            stats: AirtimeStats::default(),
        }
    }

    /// Registers a station in `table`, returning its handle.
    ///
    /// The station starts with one full quantum of deficit per QoS level
    /// (as ath9k initialises `airtime_deficit` at node attach), so a brand
    /// new station passes its first deficit check and the sparse-station
    /// priority is effective. Unlike flow deficits in the FQ structure,
    /// station deficits are *not* reset on re-activation: a station that
    /// used upstream airtime while absent from the scheduling lists keeps
    /// owing that airtime.
    pub fn register_station<C>(&mut self, table: &mut StationTable<C>, cold: C) -> StaId {
        let sta = table.alloc(cold);
        let q = self.params.quantum.as_nanos() as i64;
        for ac in 0..QOS_LEVELS {
            table.set_deficit(sta, ac, q);
        }
        sta
    }

    /// Removes a station mid-round, returning its cold payload. This is
    /// [`StationTable::free`] — the shared tombstone path: the station
    /// is unlinked from every QoS level's scheduling list (front-of-list
    /// rotation state and the other stations' deficits are untouched)
    /// and its slot is parked for LIFO reuse. The handle goes stale.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale or already removed.
    pub fn remove_station<C>(&mut self, table: &mut StationTable<C>, sta: StaId) -> C {
        table.free(sta)
    }

    /// The configured parameters.
    pub fn params(&self) -> AirtimeParams {
        self.params
    }

    /// The deficit replenishment for one scheduling round at `ac`:
    /// `quantum × weight / WEIGHT_NEUTRAL`, and at least one nanosecond
    /// so progress is guaranteed even for tiny weights.
    fn refill<C>(&self, table: &StationTable<C>, sta: StaId, ac: usize) -> i64 {
        let q = self.params.quantum.as_nanos() as i64;
        (q * table.ac_weight(sta, ac) as i64 / WEIGHT_NEUTRAL as i64).max(1)
    }

    /// Marks a station as having pending traffic at `ac`.
    ///
    /// Call on every enqueue. A station not currently on a scheduling list
    /// joins the *new* list (sparse priority); with the optimisation
    /// disabled it joins the old list directly.
    pub fn notify_active<C>(&mut self, table: &mut StationTable<C>, sta: StaId, ac: usize) {
        if table.membership(sta, ac) == Membership::Idle {
            if self.params.sparse_stations {
                table.enlist_new(sta, ac);
            } else {
                table.enlist_old(sta, ac);
            }
        }
    }

    /// Charges transmitted or received airtime against a station's deficit.
    ///
    /// Called at TX completion with the measured transmission duration
    /// (including retries), and at RX with the duration of received
    /// frames — charging RX is what lets the scheduler compensate for
    /// upstream traffic it cannot directly control (§4.1.2).
    pub fn charge<C>(
        &mut self,
        table: &mut StationTable<C>,
        sta: StaId,
        ac: usize,
        airtime: Nanos,
    ) {
        table.add_deficit(sta, ac, -(airtime.as_nanos() as i64));
        self.stats.charged += airtime;
    }

    /// Selects the next station to build an aggregate for, at QoS level
    /// `ac` — the body of Algorithm 3's loop.
    ///
    /// `has_data(table, station)` reports whether the station currently
    /// has queued packets at this level; the shared table reference lets
    /// the caller consult cold state (stashes, TID handles) without a
    /// second borrow. Stations that report empty are rotated out per the
    /// algorithm (new → old, old → removed).
    ///
    /// Returns `None` when no station has data. The returned station stays
    /// at the head of its list; it will keep being returned until its
    /// deficit is exhausted by [`charge`](Self::charge) or its queue
    /// empties — exactly the DRR behaviour of Algorithm 3.
    pub fn next_station<C, F>(
        &mut self,
        table: &mut StationTable<C>,
        ac: usize,
        mut has_data: F,
    ) -> Option<StaId>
    where
        F: FnMut(&StationTable<C>, StaId) -> bool,
    {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        loop {
            // Lines 3–8: prefer the new list.
            let (sta, from_new) = if let Some(sta) = table.new_front(ac) {
                (sta, true)
            } else if let Some(sta) = table.old_front(ac) {
                (sta, false)
            } else {
                return None;
            };

            // Lines 9–12: replenish an exhausted deficit and rotate.
            if table.deficit(sta, ac) <= 0 {
                let refill = self.refill(table, sta, ac);
                table.add_deficit(sta, ac, refill);
                if from_new {
                    table.demote_front_new(ac);
                } else {
                    table.rotate_front_old(ac);
                }
                continue;
            }

            // Lines 13–18: empty stations rotate out. A station emptying
            // from the new list is demoted to old rather than removed —
            // the same anti-gaming rule FQ-CoDel applies to sparse flows.
            if !has_data(table, sta) {
                if from_new {
                    table.demote_front_new(ac);
                } else {
                    table.retire_front_old(ac);
                }
                continue;
            }

            // Line 19: this station builds the next aggregate.
            self.stats.scheduled += 1;
            if from_new {
                self.stats.sparse_hits += 1;
            }
            return Some(sta);
        }
    }

    /// True if the station is on any scheduling list for `ac`.
    pub fn is_active<C>(&self, table: &StationTable<C>, sta: StaId, ac: usize) -> bool {
        table.membership(sta, ac) != Membership::Idle
    }
}

// ---------------------------------------------------------------------------
// Reference implementation (pre-SoA), retained for the oracle proptest.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefMembership {
    Idle,
    New,
    Old,
}

#[derive(Debug, Clone)]
struct RefStationState {
    deficit: [i64; QOS_LEVELS],
    membership: [RefMembership; QOS_LEVELS],
    weights: [u32; QOS_LEVELS],
    registered: bool,
}

#[derive(Debug, Default)]
struct RefAcLists {
    new_stations: VecDeque<usize>,
    old_stations: VecDeque<usize>,
}

/// The pre-SoA scheduler: per-station structs in a `Vec`, `VecDeque`
/// scheduling lists, non-generational handles. Kept verbatim as the
/// behavioural oracle for [`AirtimeScheduler`] — the proptest below
/// drives both through interleaved churn/weight/round schedules and
/// asserts identical decisions. Not for production use.
#[doc(hidden)]
#[derive(Debug)]
#[allow(deprecated)]
pub struct ReferenceScheduler {
    params: AirtimeParams,
    stations: Vec<RefStationState>,
    acs: [RefAcLists; QOS_LEVELS],
    free_stations: Vec<usize>,
    pub stats: AirtimeStats,
}

#[allow(deprecated)]
impl ReferenceScheduler {
    pub fn new(params: AirtimeParams) -> ReferenceScheduler {
        ReferenceScheduler {
            params,
            stations: Vec::new(),
            acs: Default::default(),
            free_stations: Vec::new(),
            stats: AirtimeStats::default(),
        }
    }

    pub fn register_station(&mut self) -> StationHandle {
        let q = self.params.quantum.as_nanos() as i64;
        let fresh = RefStationState {
            deficit: [q; QOS_LEVELS],
            membership: [RefMembership::Idle; QOS_LEVELS],
            weights: [WEIGHT_NEUTRAL; QOS_LEVELS],
            registered: true,
        };
        if let Some(idx) = self.free_stations.pop() {
            self.stations[idx] = fresh;
            return StationHandle(idx);
        }
        let idx = self.stations.len();
        self.stations.push(fresh);
        StationHandle(idx)
    }

    pub fn remove_station(&mut self, sta: StationHandle) {
        let si = sta.0;
        assert!(
            self.stations.get(si).is_some_and(|s| s.registered),
            "removing unregistered station"
        );
        for ac in 0..QOS_LEVELS {
            if self.stations[si].membership[ac] != RefMembership::Idle {
                self.acs[ac].new_stations.retain(|&x| x != si);
                self.acs[ac].old_stations.retain(|&x| x != si);
                self.stations[si].membership[ac] = RefMembership::Idle;
            }
        }
        self.stations[si].registered = false;
        self.free_stations.push(si);
    }

    pub fn set_ac_weights(&mut self, sta: StationHandle, weights: [u32; QOS_LEVELS]) {
        assert!(
            weights.iter().all(|&w| w > 0),
            "airtime weight must be positive"
        );
        self.stations[sta.0].weights = weights;
    }

    fn refill(&self, si: usize, ac: usize) -> i64 {
        let q = self.params.quantum.as_nanos() as i64;
        (q * self.stations[si].weights[ac] as i64 / WEIGHT_NEUTRAL as i64).max(1)
    }

    pub fn deficit(&self, sta: StationHandle, ac: usize) -> i64 {
        self.stations[sta.0].deficit[ac]
    }

    pub fn notify_active(&mut self, sta: StationHandle, ac: usize) {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        let st = &mut self.stations[sta.0];
        assert!(st.registered, "removed station handle");
        if st.membership[ac] == RefMembership::Idle {
            if self.params.sparse_stations {
                st.membership[ac] = RefMembership::New;
                self.acs[ac].new_stations.push_back(sta.0);
            } else {
                st.membership[ac] = RefMembership::Old;
                self.acs[ac].old_stations.push_back(sta.0);
            }
        }
    }

    pub fn charge(&mut self, sta: StationHandle, ac: usize, airtime: Nanos) {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        assert!(self.stations[sta.0].registered, "removed station handle");
        self.stations[sta.0].deficit[ac] -= airtime.as_nanos() as i64;
        self.stats.charged += airtime;
    }

    pub fn next_station<F>(&mut self, ac: usize, mut has_data: F) -> Option<StationHandle>
    where
        F: FnMut(StationHandle) -> bool,
    {
        assert!(ac < QOS_LEVELS, "QoS level out of range");
        loop {
            let (si, from_new) = {
                let lists = &self.acs[ac];
                if let Some(&si) = lists.new_stations.front() {
                    (si, true)
                } else if let Some(&si) = lists.old_stations.front() {
                    (si, false)
                } else {
                    return None;
                }
            };

            if self.stations[si].deficit[ac] <= 0 {
                self.stations[si].deficit[ac] += self.refill(si, ac);
                let lists = &mut self.acs[ac];
                if from_new {
                    lists.new_stations.pop_front();
                } else {
                    lists.old_stations.pop_front();
                }
                lists.old_stations.push_back(si);
                self.stations[si].membership[ac] = RefMembership::Old;
                continue;
            }

            if !has_data(StationHandle(si)) {
                let lists = &mut self.acs[ac];
                if from_new {
                    lists.new_stations.pop_front();
                    lists.old_stations.push_back(si);
                    self.stations[si].membership[ac] = RefMembership::Old;
                } else {
                    lists.old_stations.pop_front();
                    self.stations[si].membership[ac] = RefMembership::Idle;
                }
                continue;
            }

            self.stats.scheduled += 1;
            if from_new {
                self.stats.sparse_hits += 1;
            }
            return Some(StationHandle(si));
        }
    }

    pub fn is_active(&self, sta: StationHandle, ac: usize) -> bool {
        self.stations[sta.0].membership[ac] != RefMembership::Idle
    }
}

#[cfg(test)]
// The oracle proptest drives the retained pre-SoA reference, which still
// speaks raw `StationHandle` indices.
#[allow(deprecated)]
mod tests {
    use super::*;

    const BE: usize = 2;

    struct Bench {
        sched: AirtimeScheduler,
        table: StationTable<()>,
    }

    fn sched() -> Bench {
        Bench {
            sched: AirtimeScheduler::new(AirtimeParams::default()),
            table: StationTable::new(),
        }
    }

    impl Bench {
        fn register(&mut self) -> StaId {
            self.sched.register_station(&mut self.table, ())
        }
        fn notify(&mut self, sta: StaId, ac: usize) {
            self.sched.notify_active(&mut self.table, sta, ac);
        }
        fn next<F: FnMut(StaId) -> bool>(&mut self, ac: usize, mut f: F) -> Option<StaId> {
            self.sched.next_station(&mut self.table, ac, |_, s| f(s))
        }
        fn charge(&mut self, sta: StaId, ac: usize, t: Nanos) {
            self.sched.charge(&mut self.table, sta, ac, t);
        }
        fn active(&self, sta: StaId, ac: usize) -> bool {
            self.sched.is_active(&self.table, sta, ac)
        }
    }

    #[test]
    fn empty_scheduler_returns_none() {
        let mut s = sched();
        assert_eq!(s.next(BE, |_| true), None);
    }

    #[test]
    fn single_station_keeps_getting_scheduled() {
        let mut s = sched();
        let a = s.register();
        s.notify(a, BE);
        for _ in 0..10 {
            assert_eq!(s.next(BE, |_| true), Some(a));
            s.charge(a, BE, Nanos::from_micros(100));
        }
    }

    #[test]
    fn station_removed_when_empty() {
        let mut s = sched();
        let a = s.register();
        s.notify(a, BE);
        // First selection with data works; then the queue empties.
        assert_eq!(s.next(BE, |_| true), Some(a));
        assert_eq!(s.next(BE, |_| false), None);
        assert!(!s.active(a, BE));
        // Re-activation works.
        s.notify(a, BE);
        assert_eq!(s.next(BE, |_| true), Some(a));
    }

    /// Simulates `rounds` aggregate transmissions between stations whose
    /// aggregates cost different airtime, and returns total airtime per
    /// station. This is the anomaly scenario in miniature.
    fn run_airtime_drr(costs: &[Nanos], rounds: usize) -> Vec<Nanos> {
        let mut s = sched();
        let stations: Vec<_> = costs.iter().map(|_| s.register()).collect();
        for &st in &stations {
            s.notify(st, BE);
        }
        let mut airtime = vec![Nanos::ZERO; costs.len()];
        for _ in 0..rounds {
            let st = s.next(BE, |_| true).unwrap();
            let cost = costs[st.slot()];
            airtime[st.slot()] += cost;
            s.charge(st, BE, cost);
        }
        airtime
    }

    #[test]
    fn equal_airtime_despite_unequal_costs() {
        // A slow station whose aggregates cost 10× those of two fast
        // stations must still receive an equal share of airtime — the
        // paper's headline property (Figure 5, fourth column).
        let costs = [
            Nanos::from_micros(200),
            Nanos::from_micros(200),
            Nanos::from_micros(2_000),
        ];
        let airtime = run_airtime_drr(&costs, 3_000);
        let total: Nanos = airtime.iter().copied().sum();
        for (i, &a) in airtime.iter().enumerate() {
            let share = a.as_nanos() as f64 / total.as_nanos() as f64;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.02,
                "station {i} share {share:.3}, airtime {airtime:?}"
            );
        }
    }

    #[test]
    fn throughput_fairness_is_not_enforced() {
        // Complementary check: with equal airtime, the slow station gets
        // proportionally fewer transmissions (no throughput fairness).
        let costs = [Nanos::from_micros(200), Nanos::from_micros(2_000)];
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, BE);
        s.notify(b, BE);
        let mut tx = [0u64; 2];
        for _ in 0..2_000 {
            let st = s.next(BE, |_| true).unwrap();
            tx[st.slot()] += 1;
            s.charge(st, BE, costs[st.slot()]);
        }
        let ratio = tx[0] as f64 / tx[1] as f64;
        assert!(
            (8.0..12.5).contains(&ratio),
            "fast/slow tx ratio {ratio}: {tx:?}"
        );
    }

    #[test]
    fn rx_charging_reduces_tx_share() {
        // Station B's upstream usage is charged via RX accounting; its
        // downstream share should shrink relative to A.
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, BE);
        s.notify(b, BE);
        let cost = Nanos::from_micros(500);
        let mut tx = [0u64; 2];
        for round in 0..2_000 {
            let st = s.next(BE, |_| true).unwrap();
            tx[st.slot()] += 1;
            s.charge(st, BE, cost);
            // Every other round, B also receives an upstream frame.
            if round % 2 == 0 {
                s.charge(b, BE, cost);
            }
        }
        // Equilibrium: each station is granted airtime at the same rate G.
        // A spends G on TX (tx_A = G/c); B spends on TX plus an RX charge
        // of c/2 per scheduler round: tx_B·c + (tx_A + tx_B)·c/2 = G.
        // Solving gives tx_A = 3·tx_B, i.e. B's share is 1/4.
        let share_b = tx[1] as f64 / (tx[0] + tx[1]) as f64;
        assert!((share_b - 0.25).abs() < 0.04, "B share {share_b}: {tx:?}");
    }

    #[test]
    fn sparse_station_jumps_queue() {
        let mut s = sched();
        let bulk1 = s.register();
        let bulk2 = s.register();
        s.notify(bulk1, BE);
        s.notify(bulk2, BE);
        // Push the bulk stations through enough rounds that they sit on
        // the old list with mid-round deficits.
        for _ in 0..50 {
            let st = s.next(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(450));
        }
        // A sparse station becomes active: it must be picked next.
        let sparse = s.register();
        s.notify(sparse, BE);
        assert_eq!(s.next(BE, |_| true), Some(sparse));
    }

    #[test]
    fn sparse_priority_lasts_one_round_only() {
        let mut s = sched();
        let bulk = s.register();
        s.notify(bulk, BE);
        // Put bulk on the old list with a positive deficit: one
        // over-quantum charge rotates it there, then a small charge
        // leaves it at the head with 100 µs of deficit.
        let st = s.next(BE, |_| true).unwrap();
        s.charge(st, BE, Nanos::from_micros(400)); // deficit −100
        let st = s.next(BE, |_| true).unwrap(); // replenished, old
        s.charge(st, BE, Nanos::from_micros(100)); // deficit 100
        let sparse = s.register();
        s.notify(sparse, BE);
        // Sparse station gets its one round of priority...
        assert_eq!(s.next(BE, |_| true), Some(sparse));
        s.charge(sparse, BE, Nanos::from_micros(50));
        // ...then its queue empties: it is demoted to the old list, and
        // bulk (positive deficit) is served.
        let next = s.next(BE, |st| st == bulk).unwrap();
        assert_eq!(next, bulk);
        assert!(s.active(sparse, BE), "demoted to old, not removed");
        // Anti-gaming: a packet arriving while it sits on the old list
        // does NOT re-grant new-list priority — bulk stays at the head.
        s.notify(sparse, BE);
        assert_eq!(s.next(BE, |_| true), Some(bulk));
    }

    #[test]
    fn emptied_station_removed_only_after_old_list_pass() {
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, BE);
        s.notify(b, BE);
        // a reports empty (demoted to old), b has data and is picked.
        assert_eq!(s.next(BE, |st| st == b), Some(b));
        assert!(s.active(a, BE));
        // Next call: b (head of new) still has data; a never re-visited.
        assert_eq!(s.next(BE, |st| st == b), Some(b));
        // Exhaust b so the old list is scanned; a, still empty, is removed.
        s.charge(b, BE, Nanos::from_millis(10));
        assert_eq!(s.next(BE, |st| st == b), Some(b));
        assert!(!s.active(a, BE), "removed after old-list visit");
    }

    #[test]
    fn disabled_sparse_optimisation_gives_no_priority() {
        let mut s = Bench {
            sched: AirtimeScheduler::new(AirtimeParams {
                sparse_stations: false,
                ..AirtimeParams::default()
            }),
            table: StationTable::new(),
        };
        let bulk = s.register();
        s.notify(bulk, BE);
        // Leave bulk at the head of the old list with positive deficit.
        for _ in 0..2 {
            let st = s.next(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(100));
        }
        let sparse = s.register();
        s.notify(sparse, BE);
        // Without the optimisation the new station joins the old list's
        // tail and must wait for bulk's quantum to finish.
        assert_eq!(s.next(BE, |_| true), Some(bulk));
        assert_eq!(s.sched.stats.sparse_hits, 0);
    }

    #[test]
    fn acs_are_independent() {
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, 0); // VO
        s.notify(b, BE);
        assert_eq!(s.next(0, |_| true), Some(a));
        assert_eq!(s.next(BE, |_| true), Some(b));
        // Charging VO does not affect the BE deficit (still the initial
        // quantum).
        let before = s.table.deficit(a, BE);
        s.charge(a, 0, Nanos::from_millis(10));
        assert_eq!(s.table.deficit(a, BE), before);
        assert!(s.table.deficit(a, 0) < 0);
    }

    #[test]
    fn deficit_recovers_at_quantum_per_round() {
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, BE);
        s.notify(b, BE);
        // A transmits a huge aggregate (3 ms); with a 300 µs quantum, B
        // should then get ~10 transmissions of 300 µs before A returns.
        let first = s.next(BE, |_| true).unwrap();
        s.charge(first, BE, Nanos::from_millis(3));
        let other = if first == a { b } else { a };
        let mut other_runs = 0;
        loop {
            let st = s.next(BE, |_| true).unwrap();
            if st == first {
                break;
            }
            assert_eq!(st, other);
            other_runs += 1;
            s.charge(st, BE, Nanos::from_micros(300));
            assert!(other_runs < 20, "first station never recovered");
        }
        assert!(
            (9..=11).contains(&other_runs),
            "expected ~10 catch-up rounds, got {other_runs}"
        );
    }

    #[test]
    fn weights_scale_airtime_shares() {
        // Weight 512 vs 256: the heavy station should get 2/3 of airtime.
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.table.set_weight(a, 512);
        s.notify(a, BE);
        s.notify(b, BE);
        let mut airtime = [0u64; 2];
        for _ in 0..6_000 {
            let st = s.next(BE, |_| true).unwrap();
            // Unequal per-transmission costs, to show weights and the
            // anomaly-correction compose.
            let cost = if st == a { 700 } else { 300 };
            airtime[st.slot()] += cost;
            s.charge(st, BE, Nanos::from_micros(cost));
        }
        let share_a = airtime[0] as f64 / (airtime[0] + airtime[1]) as f64;
        assert!(
            (share_a - 2.0 / 3.0).abs() < 0.02,
            "weighted share {share_a:.3}, want 0.667"
        );
    }

    #[test]
    fn neutral_weight_is_default() {
        let mut s = sched();
        let a = s.register();
        for ac in 0..QOS_LEVELS {
            assert_eq!(s.table.ac_weight(a, ac), WEIGHT_NEUTRAL);
        }
        s.table.set_weight(a, 1024);
        assert_eq!(s.table.ac_weight(a, BE), 1024);
    }

    #[test]
    fn per_ac_weights_are_independent() {
        // VO weighted 4×, BE neutral: the VO share scales, BE does not.
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.table.set_ac_weights(a, [1024, 256, 256, 256]);
        for ac in [0, BE] {
            s.notify(a, ac);
            s.notify(b, ac);
            let mut airtime = [0u64; 2];
            for _ in 0..8_000 {
                let st = s.next(ac, |_| true).unwrap();
                airtime[st.slot()] += 300;
                s.charge(st, ac, Nanos::from_micros(300));
            }
            let share_a = airtime[0] as f64 / (airtime[0] + airtime[1]) as f64;
            let want = if ac == 0 { 0.8 } else { 0.5 };
            assert!(
                (share_a - want).abs() < 0.02,
                "ac {ac} share {share_a:.3}, want {want}"
            );
        }
    }

    #[test]
    fn weight_change_preserves_deficits() {
        let mut s = sched();
        let a = s.register();
        let b = s.register();
        s.notify(a, BE);
        s.notify(b, BE);
        for _ in 0..7 {
            let st = s.next(BE, |_| true).unwrap();
            s.charge(st, BE, Nanos::from_micros(450));
        }
        let before: Vec<i64> = (0..QOS_LEVELS).map(|ac| s.table.deficit(b, ac)).collect();
        s.table.set_ac_weights(a, [512, 512, 512, 512]);
        let after: Vec<i64> = (0..QOS_LEVELS).map(|ac| s.table.deficit(b, ac)).collect();
        assert_eq!(before, after, "untouched station's deficits moved");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_ac_weight_rejected() {
        let mut s = sched();
        let a = s.register();
        s.table.set_ac_weights(a, [256, 256, 0, 256]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut s = sched();
        let a = s.register();
        s.table.set_weight(a, 0);
    }

    #[test]
    #[should_panic(expected = "QoS level out of range")]
    fn bad_ac_panics() {
        let mut s = sched();
        let a = s.register();
        s.notify(a, 4);
    }

    #[test]
    #[should_panic(expected = "stale station handle")]
    fn removed_station_handle_is_stale() {
        let mut s = sched();
        let a = s.register();
        s.sched.remove_station(&mut s.table, a);
        s.notify(a, BE);
    }

    // ---- oracle proptest: SoA scheduler vs the reference ----

    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum OracleOp {
        /// Register a station (both sides must assign the same slot).
        Add,
        /// Remove the k-th live station.
        Remove { k: usize },
        /// Mark the k-th live station active.
        Notify { k: usize, ac: usize },
        /// One scheduling round; `data_mask` seeds the has_data answers.
        Round {
            ac: usize,
            cost_us: u64,
            data_mask: u64,
        },
        /// Charge upstream airtime to the k-th live station.
        ChargeRx { k: usize, ac: usize, cost_us: u64 },
        /// Apply a policy-style per-AC reweight to the k-th live station.
        Reweight { k: usize, w: [u32; QOS_LEVELS] },
    }

    fn oracle_op() -> impl Strategy<Value = OracleOp> {
        // The vendored `prop_oneof!` is uniform; weight the hot arms
        // (rounds, activations) by duplicating them via these helpers.
        fn round() -> impl Strategy<Value = OracleOp> {
            (0..QOS_LEVELS, 1u64..2_000, 0u64..).prop_map(|(ac, cost_us, data_mask)| {
                OracleOp::Round {
                    ac,
                    cost_us,
                    data_mask,
                }
            })
        }
        fn notify() -> impl Strategy<Value = OracleOp> {
            (0usize.., 0..QOS_LEVELS).prop_map(|(k, ac)| OracleOp::Notify { k, ac })
        }
        fn charge() -> impl Strategy<Value = OracleOp> {
            (0usize.., 0..QOS_LEVELS, 1u64..2_000).prop_map(|(k, ac, cost_us)| OracleOp::ChargeRx {
                k,
                ac,
                cost_us,
            })
        }
        prop_oneof![
            Just(OracleOp::Add),
            Just(OracleOp::Add),
            (0usize..).prop_map(|k| OracleOp::Remove { k }),
            notify(),
            notify(),
            notify(),
            round(),
            round(),
            round(),
            round(),
            round(),
            round(),
            charge(),
            charge(),
            (
                0usize..,
                (1u32..2_048, 1u32..2_048, 1u32..2_048, 1u32..2_048)
            )
                .prop_map(|(k, (a, b, c, d))| OracleOp::Reweight { k, w: [a, b, c, d] }),
        ]
    }

    proptest! {
        /// The SoA scheduler and the retained pre-SoA reference make
        /// identical decisions — same slots selected, same deficits, same
        /// list membership, same stats — through interleaved churn,
        /// activation, weight-switch and scheduling-round schedules.
        #[test]
        fn soa_matches_reference_scheduler(
            ops in proptest::collection::vec(oracle_op(), 1..400)
        ) {
            let mut new_sched = AirtimeScheduler::new(AirtimeParams::default());
            let mut table = StationTable::<()>::new();
            let mut reference = ReferenceScheduler::new(AirtimeParams::default());
            // Live handles, same insertion order on both sides.
            let mut live: Vec<(StaId, StationHandle)> = Vec::new();

            for op in ops {
                match op {
                    OracleOp::Add => {
                        let id = new_sched.register_station(&mut table, ());
                        let h = reference.register_station();
                        prop_assert_eq!(id.slot(), h.0, "slot allocators diverged");
                        live.push((id, h));
                    }
                    OracleOp::Remove { k } => {
                        if !live.is_empty() {
                            let (id, h) = live.swap_remove(k % live.len());
                            new_sched.remove_station(&mut table, id);
                            reference.remove_station(h);
                        }
                    }
                    OracleOp::Notify { k, ac } => {
                        if !live.is_empty() {
                            let (id, h) = live[k % live.len()];
                            new_sched.notify_active(&mut table, id, ac);
                            reference.notify_active(h, ac);
                        }
                    }
                    OracleOp::Round { ac, cost_us, data_mask } => {
                        let picked = new_sched.next_station(&mut table, ac, |_, s| {
                            data_mask >> (s.slot() % 64) & 1 == 1
                        });
                        let ref_picked = reference.next_station(ac, |s| {
                            data_mask >> (s.0 % 64) & 1 == 1
                        });
                        prop_assert_eq!(
                            picked.map(|s| s.slot()),
                            ref_picked.map(|s| s.0),
                            "round decision diverged"
                        );
                        if let (Some(id), Some(h)) = (picked, ref_picked) {
                            new_sched.charge(&mut table, id, ac, Nanos::from_micros(cost_us));
                            reference.charge(h, ac, Nanos::from_micros(cost_us));
                        }
                    }
                    OracleOp::ChargeRx { k, ac, cost_us } => {
                        if !live.is_empty() {
                            let (id, h) = live[k % live.len()];
                            new_sched.charge(&mut table, id, ac, Nanos::from_micros(cost_us));
                            reference.charge(h, ac, Nanos::from_micros(cost_us));
                        }
                    }
                    OracleOp::Reweight { k, w } => {
                        if !live.is_empty() {
                            let (id, h) = live[k % live.len()];
                            table.set_ac_weights(id, w);
                            reference.set_ac_weights(h, w);
                        }
                    }
                }
                // Full state agreement after every op.
                for &(id, h) in &live {
                    for ac in 0..QOS_LEVELS {
                        prop_assert_eq!(table.deficit(id, ac), reference.deficit(h, ac));
                        prop_assert_eq!(table.ac_weight(id, ac), reference.stations[h.0].weights[ac]);
                        prop_assert_eq!(
                            new_sched.is_active(&table, id, ac),
                            reference.is_active(h, ac)
                        );
                    }
                }
                for ac in 0..QOS_LEVELS {
                    table.check_lists(ac);
                }
            }
            prop_assert_eq!(new_sched.stats.scheduled, reference.stats.scheduled);
            prop_assert_eq!(new_sched.stats.sparse_hits, reference.stats.sparse_hits);
            prop_assert_eq!(new_sched.stats.charged, reference.stats.charged);
        }
    }
}
