//! Packet requirements for the MAC-layer FQ structure.

pub use wifiq_codel::QueuedPacket;

/// A packet the FQ structure can schedule: CoDel-managed ([`QueuedPacket`])
/// and hashable to a flow.
///
/// The flow hash is the transport 5-tuple hash in a real stack; the
/// simulator assigns stable per-flow identifiers. The FQ structure only
/// requires that packets of one flow hash equal and different flows hash
/// (mostly) differently — hash collisions are legal and handled by the
/// TID overflow queue.
pub trait FqPacket: QueuedPacket {
    /// Stable hash of the packet's transport flow.
    fn flow_hash(&self) -> u64;
}

/// Identifies one TID (station × traffic-identifier pair) registered with
/// the FQ structure.
///
/// Handles are dense indices handed out by
/// [`MacFq::register_tid`](crate::fq::MacFq::register_tid); the MAC layer
/// owns the mapping from (station, TID number) to handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TidHandle(pub usize);

/// Identifies a station registered with the airtime scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationHandle(pub usize);
