//! Packet requirements and arena storage for the MAC-layer FQ structure.

pub use wifiq_codel::QueuedPacket;

/// A packet the FQ structure can schedule: CoDel-managed ([`QueuedPacket`])
/// and hashable to a flow.
///
/// The flow hash is the transport 5-tuple hash in a real stack; the
/// simulator assigns stable per-flow identifiers. The FQ structure only
/// requires that packets of one flow hash equal and different flows hash
/// (mostly) differently — hash collisions are legal and handled by the
/// TID overflow queue.
pub trait FqPacket: QueuedPacket {
    /// Stable hash of the packet's transport flow.
    fn flow_hash(&self) -> u64;
}

/// Identifies one TID (station × traffic-identifier pair) registered with
/// the FQ structure.
///
/// Superseded by the generational [`TidId`](crate::table::TidId): the
/// raw index carries no generation, so a handle held across TID churn
/// silently addresses the slot's next occupant. See DESIGN.md §14 for
/// the migration note; this alias is kept for one PR.
#[deprecated(
    since = "0.1.0",
    note = "use the generational wifiq_core::table::TidId instead; raw indices do not catch reuse-after-churn"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TidHandle(pub usize);

/// Identifies a station registered with the airtime scheduler.
///
/// Superseded by the generational [`StaId`](crate::table::StaId); kept
/// for one PR (DESIGN.md §14) as the handle type of the retained
/// [`ReferenceScheduler`](crate::scheduler::ReferenceScheduler) oracle.
#[deprecated(
    since = "0.1.0",
    note = "use the generational wifiq_core::table::StaId instead; raw indices do not catch reuse-after-churn"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationHandle(pub usize);

/// Null link in a packet arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// An 8-byte generational handle to a packet stored in a [`PacketArena`].
///
/// The generation counter catches lifetime bugs structurally: a handle held
/// past its packet's removal no longer matches the slot's generation, so
/// use-after-free and double-free both panic at the arena boundary instead
/// of silently reading a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    index: u32,
    gen: u32,
}

impl PacketHandle {
    /// The slot index; stable for the packet's lifetime in the arena.
    #[inline]
    pub fn index(&self) -> u32 {
        self.index
    }
}

/// One arena slot: a live packet plus its generation and intrusive link.
/// `next` threads the slot into whichever singly linked list currently owns
/// it — a [`PacketFifo`] while the packet is queued, the arena's free list
/// after removal.
#[derive(Debug)]
struct Slot<P> {
    gen: u32,
    next: u32,
    payload: Option<P>,
}

/// Generational slab storage for queued packets.
///
/// All flow queues of a structure share one arena: enqueue inserts the
/// owned packet here once, every layer in between passes the 8-byte
/// [`PacketHandle`], and dequeue moves the packet back out. Slots are
/// recycled through a free list, so a steady-state workload allocates
/// nothing per packet and the whole backlog lives in one contiguous slab
/// the cache already holds — the same reasoning as the event wheel's node
/// slab.
#[derive(Debug)]
pub struct PacketArena<P> {
    slots: Vec<Slot<P>>,
    free_head: u32,
    live: usize,
}

impl<P> Default for PacketArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PacketArena<P> {
    /// Creates an empty arena.
    pub fn new() -> PacketArena<P> {
        PacketArena {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    /// Stores a packet, returning its handle.
    pub fn insert(&mut self, pkt: P) -> PacketHandle {
        self.live += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            self.free_head = slot.next;
            slot.next = NIL;
            slot.payload = Some(pkt);
            PacketHandle {
                index,
                gen: slot.gen,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena fits u32 indices");
            self.slots.push(Slot {
                gen: 0,
                next: NIL,
                payload: Some(pkt),
            });
            PacketHandle { index, gen: 0 }
        }
    }

    /// Removes a packet, invalidating its handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale — the packet was already removed
    /// (double-free) or the slot has been recycled for a newer packet
    /// (use-after-free).
    pub fn remove(&mut self, h: PacketHandle) -> P {
        let slot = &mut self.slots[h.index as usize];
        assert!(
            slot.gen == h.gen && slot.payload.is_some(),
            "stale packet handle: slot {} gen {} vs handle gen {}",
            h.index,
            slot.gen,
            h.gen
        );
        self.free_index(h.index)
    }

    /// Reads a live packet.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (see [`PacketArena::remove`]).
    pub fn get(&self, h: PacketHandle) -> &P {
        let slot = &self.slots[h.index as usize];
        assert!(
            slot.gen == h.gen && slot.payload.is_some(),
            "stale packet handle: slot {} gen {} vs handle gen {}",
            h.index,
            slot.gen,
            h.gen
        );
        slot.payload.as_ref().expect("checked above")
    }

    /// Number of live packets.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True if no packets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slot capacity (live + free-listed), for capacity-reuse tests.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Frees a slot by index: bumps the generation (invalidating any
    /// outstanding handle), pushes it onto the free list, and returns the
    /// payload. Internal — callers go through [`PacketArena::remove`] or a
    /// [`PacketFifo`], which only hold live indices.
    #[inline]
    fn free_index(&mut self, index: u32) -> P {
        let free_head = self.free_head;
        let slot = &mut self.slots[index as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.next = free_head;
        self.free_head = index;
        self.live -= 1;
        slot.payload.take().expect("freeing an empty slot")
    }
}

/// A FIFO of packets threaded intrusively through a shared [`PacketArena`].
///
/// The list itself is 12 bytes (head, tail, length); every operation takes
/// the arena explicitly, so hundreds of flow queues can share one slab with
/// no per-queue buffer. Used by the MAC FQ flow queues and the qdisc bands.
#[derive(Debug, Clone, Copy)]
pub struct PacketFifo {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for PacketFifo {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketFifo {
    /// Creates an empty list.
    pub const fn new() -> PacketFifo {
        PacketFifo {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Appends a packet, storing it in `arena`.
    pub fn push_back<P>(&mut self, arena: &mut PacketArena<P>, pkt: P) -> PacketHandle {
        let h = arena.insert(pkt);
        if self.tail == NIL {
            self.head = h.index;
        } else {
            arena.slots[self.tail as usize].next = h.index;
        }
        self.tail = h.index;
        self.len += 1;
        h
    }

    /// Removes and returns the head packet.
    pub fn pop_front<P>(&mut self, arena: &mut PacketArena<P>) -> Option<P> {
        if self.head == NIL {
            return None;
        }
        let index = self.head;
        self.head = arena.slots[index as usize].next;
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        Some(arena.free_index(index))
    }

    /// The head packet, if any.
    pub fn front<'a, P>(&self, arena: &'a PacketArena<P>) -> Option<&'a P> {
        if self.head == NIL {
            return None;
        }
        arena.slots[self.head as usize].payload.as_ref()
    }

    /// Number of queued packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no packets are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the queued packets front to back.
    pub fn iter<'a, P>(&self, arena: &'a PacketArena<P>) -> impl Iterator<Item = &'a P> + 'a {
        let mut index = self.head;
        std::iter::from_fn(move || {
            if index == NIL {
                return None;
            }
            let slot = &arena.slots[index as usize];
            index = slot.next;
            slot.payload.as_ref()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut arena = PacketArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.live(), 2);
        assert_eq!(*arena.get(a), "a");
        assert_eq!(*arena.get(b), "b");
        assert_eq!(arena.remove(a), "a");
        assert_eq!(arena.remove(b), "b");
        assert_eq!(arena.live(), 0);
        assert!(arena.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut arena = PacketArena::new();
        let handles: Vec<_> = (0..8).map(|i| arena.insert(i)).collect();
        for h in handles {
            arena.remove(h);
        }
        let cap = arena.capacity();
        for i in 0..8 {
            arena.insert(i);
        }
        assert_eq!(arena.capacity(), cap, "steady state must not grow");
        assert_eq!(arena.live(), 8);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn double_free_panics() {
        let mut arena = PacketArena::new();
        let h = arena.insert(1);
        arena.remove(h);
        arena.remove(h);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn use_after_free_panics() {
        let mut arena = PacketArena::new();
        let h = arena.insert(1);
        arena.remove(h);
        // The slot is recycled for a new packet: the old handle's
        // generation no longer matches.
        arena.insert(2);
        arena.get(h);
    }

    #[test]
    fn generations_distinguish_reused_slots() {
        let mut arena = PacketArena::new();
        let old = arena.insert("old");
        arena.remove(old);
        let new = arena.insert("new");
        assert_eq!(old.index(), new.index(), "slot should be reused");
        assert_ne!(old, new, "handles must differ across generations");
        assert_eq!(*arena.get(new), "new");
    }

    #[test]
    fn fifo_preserves_order_across_shared_arena() {
        let mut arena = PacketArena::new();
        let mut a = PacketFifo::new();
        let mut b = PacketFifo::new();
        // Interleaved pushes into two lists sharing the arena.
        for i in 0..6 {
            if i % 2 == 0 {
                a.push_back(&mut arena, i);
            } else {
                b.push_back(&mut arena, i);
            }
        }
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(a.iter(&arena).copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(b.front(&arena), Some(&1));
        assert_eq!(
            std::iter::from_fn(|| a.pop_front(&mut arena)).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(
            std::iter::from_fn(|| b.pop_front(&mut arena)).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(arena.live(), 0);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn fifo_pop_on_empty_is_none() {
        let mut arena: PacketArena<u32> = PacketArena::new();
        let mut q = PacketFifo::new();
        assert_eq!(q.pop_front(&mut arena), None);
        assert_eq!(q.front(&arena), None);
        q.push_back(&mut arena, 9);
        assert_eq!(q.pop_front(&mut arena), Some(9));
        assert_eq!(q.pop_front(&mut arena), None);
    }
}
