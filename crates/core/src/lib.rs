//! The paper's core contribution: a bloat-free queueing structure for
//! 802.11 and an airtime-fairness scheduler.
//!
//! This crate is a faithful, driver-agnostic implementation of the three
//! algorithms in "Ending the Anomaly: Achieving Low Latency and Airtime
//! Fairness in WiFi" (Høiland-Jørgensen et al., USENIX ATC 2017):
//!
//! - [`fq::MacFq`] — Algorithms 1 and 2: the MAC-layer FQ-CoDel structure
//!   with a shared flow-queue pool, dynamic TID assignment, per-TID
//!   overflow queues, and a global limit with drop-from-longest-queue,
//! - [`scheduler::AirtimeScheduler`] — Algorithm 3: deficit round-robin
//!   over stations with the deficit in microseconds of airtime, per QoS
//!   level, with the sparse-station optimisation.
//!
//! In the Linux kernel these live in mac80211 and the ath9k driver; here
//! they are plain data structures driven by the `wifiq-mac` simulator (or
//! by your own environment — nothing in this crate depends on the
//! simulator).

pub mod fq;
pub mod packet;
pub mod scheduler;
pub mod table;

pub use fq::{FqParams, FqStats, MacFq};
pub use packet::{FqPacket, PacketArena, PacketFifo, PacketHandle, QueuedPacket};
#[allow(deprecated)]
pub use packet::{StationHandle, TidHandle};
pub use scheduler::{AirtimeParams, AirtimeScheduler, AirtimeStats, QOS_LEVELS, WEIGHT_NEUTRAL};
pub use table::{Membership, StaId, StationTable, TidId};
