//! The 802.11 MAC-layer fairness-queueing structure — Algorithms 1 and 2
//! of the paper.
//!
//! A fixed pool of flow queues is shared by *all* TIDs: a packet is hashed
//! to a queue, and the queue is dynamically assigned to the packet's TID.
//! If the hash lands on a queue already owned by a different TID, the
//! packet goes to the TID's dedicated overflow queue instead. A global
//! packet limit is enforced by dropping from the globally longest queue,
//! which is what shares the buffer space fairly between stations on
//! overload — the fix for the aggregation starvation described in §4.1.2.
//!
//! Dequeue (per TID) is the FQ-CoDel scheduler: deficit round-robin over
//! the TID's active queues with new-queue (sparse flow) priority, CoDel
//! applied per queue.

use std::collections::VecDeque;

use wifiq_codel::{CodelParams, CodelQueue, CodelState, CodelTele, QueuedPacket};
use wifiq_sim::Nanos;
use wifiq_telemetry::{
    CounterHandle, DropReason, EventKind, GaugeHandle, HistHandle, Label, Telemetry,
};

use crate::packet::{FqPacket, PacketArena, PacketFifo};
use crate::table::TidId;

/// Sentinel for "this flow is not in the backlog heap".
const NOT_IN_HEAP: usize = usize::MAX;

/// What to do when the global packet limit is hit (Algorithm 1
/// lines 2–4 vs the naive alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Drop from the head of the globally longest queue — the paper's
    /// choice, which "prevents a single flow from locking out other
    /// flows on overload".
    #[default]
    DropLongest,
    /// Reject the arriving packet (plain tail drop) — the ablation
    /// baseline, under which one unresponsive flow can monopolise the
    /// entire packet budget.
    TailDrop,
}

/// Configuration for the MAC FQ structure.
#[derive(Debug, Clone, Copy)]
pub struct FqParams {
    /// Number of shared hash-target flow queues (not counting the per-TID
    /// overflow queues).
    pub flows: usize,
    /// Global packet limit across all queues (the "8192 (global limit)" in
    /// the paper's Figure 3).
    pub limit: usize,
    /// DRR quantum in bytes; controls the granularity of inter-flow
    /// fairness (one MTU-sized packet per round at the default).
    pub quantum: u32,
    /// Overlimit behaviour.
    pub drop_policy: DropPolicy,
}

impl Default for FqParams {
    fn default() -> Self {
        FqParams {
            flows: 1024,
            limit: 8192,
            quantum: 300,
            drop_policy: DropPolicy::DropLongest,
        }
    }
}

/// Which scheduling list a flow queue currently sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    /// Not scheduled (empty / unassigned).
    Idle,
    /// On its TID's new-queues list (sparse-flow priority).
    New,
    /// On its TID's old-queues list.
    Old,
}

#[derive(Debug)]
struct Flow {
    /// The flow's packets, threaded through [`MacFq`]'s shared arena — the
    /// list head/tail/len is 12 bytes; no per-flow buffer exists.
    queue: PacketFifo,
    backlog_bytes: u64,
    deficit: i64,
    codel: CodelState,
    /// The TID this queue is currently assigned to, if any.
    tid: Option<usize>,
    membership: Membership,
    /// This flow's slot in [`MacFq::heap`], or [`NOT_IN_HEAP`] while the
    /// queue is empty — the intrusive index that makes longest-queue
    /// lookup O(1) and membership updates O(log n).
    heap_pos: usize,
}

impl Flow {
    fn new() -> Flow {
        Flow {
            queue: PacketFifo::new(),
            backlog_bytes: 0,
            deficit: 0,
            codel: CodelState::new(),
            tid: None,
            membership: Membership::Idle,
            heap_pos: NOT_IN_HEAP,
        }
    }
}

/// Adapter giving CoDel a head-droppable view of one arena-backed flow
/// queue.
struct FlowQueueRef<'a, P> {
    arena: &'a mut PacketArena<P>,
    queue: &'a mut PacketFifo,
    backlog_bytes: &'a mut u64,
}

impl<P: QueuedPacket> CodelQueue for FlowQueueRef<'_, P> {
    type Packet = P;

    fn pop_head(&mut self) -> Option<P> {
        let pkt = self.queue.pop_front(self.arena)?;
        *self.backlog_bytes -= pkt.wire_len();
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        *self.backlog_bytes
    }
}

/// Pre-resolved per-TID telemetry instruments. Resolved once at
/// registration (or [`MacFq::set_telemetry`]) so the per-packet paths pay
/// no `(component, metric, label)` map lookups; all-disabled handles when
/// telemetry is off.
#[derive(Debug, Default)]
struct TidTele {
    enqueued: CounterHandle,
    collisions: CounterHandle,
    drr_rounds: CounterHandle,
    sparse_hits: CounterHandle,
    victims: CounterHandle,
    codel: CodelTele,
}

impl TidTele {
    fn resolve(tele: &Telemetry, component: &'static str, ti: usize) -> TidTele {
        let label = Label::Tid(ti as u32);
        TidTele {
            enqueued: tele.counter_handle(component, "enqueued", label),
            collisions: tele.counter_handle(component, "hash_collisions", label),
            drr_rounds: tele.counter_handle(component, "drr_rounds", label),
            sparse_hits: tele.counter_handle(component, "sparse_hits", label),
            victims: tele.counter_handle(component, "drop_longest_victims", label),
            codel: CodelTele::resolve(tele, component, label),
        }
    }
}

/// Pre-resolved structure-wide instruments (see [`TidTele`]).
#[derive(Debug, Default)]
struct FqTele {
    occupancy_gauge: GaugeHandle,
    occupancy_hist: HistHandle,
    drops_overlimit: CounterHandle,
}

impl FqTele {
    fn resolve(tele: &Telemetry, component: &'static str) -> FqTele {
        FqTele {
            occupancy_gauge: tele.gauge_handle(component, "occupancy_packets", Label::Global),
            occupancy_hist: tele.hist_handle(component, "occupancy_packets", Label::Global),
            drops_overlimit: tele.counter_handle(component, "drops_overlimit", Label::Global),
        }
    }
}

#[derive(Debug, Default)]
struct TidState {
    new_flows: VecDeque<usize>,
    old_flows: VecDeque<usize>,
    /// Index of this TID's dedicated overflow queue in the flow pool.
    overflow_flow: usize,
    backlog_packets: usize,
    backlog_bytes: u64,
    /// False once the TID has been detached; the slot (and its overflow
    /// queue) is parked on the free list until the next `register_tid`.
    registered: bool,
    /// Slot generation, bumped at detach: a [`TidId`] issued before the
    /// detach no longer matches and panics at first use instead of
    /// addressing the slot's next occupant.
    gen: u32,
    /// Handles survive detach/reattach — the slot index (and therefore the
    /// `Tid` label) is stable, so a churning roster resolves each
    /// instrument once, not once per join.
    tele: TidTele,
}

/// Counters exposed for tests and experiment telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FqStats {
    /// Packets accepted by [`MacFq::enqueue`].
    pub enqueued: u64,
    /// Packets delivered by [`MacFq::dequeue`].
    pub dequeued: u64,
    /// Packets dropped because the global limit was reached.
    pub drops_overlimit: u64,
    /// Packets dropped by CoDel at dequeue.
    pub drops_codel: u64,
    /// Packets redirected to an overflow queue by a cross-TID hash
    /// collision.
    pub collisions: u64,
    /// Packets discarded because their TID was detached
    /// ([`MacFq::unregister_tid`]) while they were still queued.
    pub drops_detached: u64,
    /// Packets handed back intact by [`MacFq::unregister_tid_migrate`]
    /// (an inter-BSS hand-off carrying queued flow state to the target).
    pub migrated_out: u64,
}

/// The MAC-layer FQ-CoDel structure (paper Algorithms 1 and 2).
///
/// Generic over the packet type so the same structure serves the simulator
/// and unit tests. The caller supplies the clock (`now`) and the CoDel
/// parameters to use per dequeue — parameters are per *station* (paper
/// §3.1.1) and the station is known to the caller, not to this structure.
///
/// # Examples
///
/// ```
/// use wifiq_core::fq::{FqParams, MacFq};
/// use wifiq_core::packet::{FqPacket, QueuedPacket};
/// use wifiq_codel::CodelParams;
/// use wifiq_sim::Nanos;
///
/// #[derive(Debug)]
/// struct Pkt { flow: u64, t: Nanos }
/// impl QueuedPacket for Pkt {
///     fn enqueue_time(&self) -> Nanos { self.t }
///     fn wire_len(&self) -> u64 { 1500 }
/// }
/// impl FqPacket for Pkt {
///     fn flow_hash(&self) -> u64 { self.flow }
/// }
///
/// let mut fq = MacFq::new(FqParams::default());
/// let tid = fq.register_tid();
/// let now = Nanos::ZERO;
/// fq.enqueue(Pkt { flow: 1, t: now }, tid, now);
/// let pkt = fq.dequeue(tid, now, &CodelParams::wifi_default());
/// assert!(pkt.is_some());
/// ```
#[derive(Debug)]
pub struct MacFq<P> {
    params: FqParams,
    /// Shared packet storage: every queued packet lives here exactly once;
    /// flow queues are intrusive lists of 4-byte slot links.
    arena: PacketArena<P>,
    flows: Vec<Flow>,
    tids: Vec<TidState>,
    /// Indices of flows that currently hold packets, arranged as a binary
    /// max-heap on `backlog_bytes` with each flow's slot stored
    /// intrusively in [`Flow::heap_pos`] — the longest queue is the root
    /// (O(1)) and any backlog change re-heapifies in O(log n).
    heap: Vec<usize>,
    /// Detached TID slots awaiting reuse (LIFO), each keeping its
    /// dedicated overflow queue so churn does not grow the flow pool.
    free_tids: Vec<usize>,
    total_packets: usize,
    /// Telemetry counters.
    pub stats: FqStats,
    tele: Telemetry,
    /// Pre-resolved structure-wide instruments.
    fq_tele: FqTele,
    /// Names this instance in metric keys ("fq" at the AP; the client-side
    /// structure uses "client_fq").
    component: &'static str,
    /// `flows - 1` when the pool size is a power of two, letting the
    /// enqueue path replace the hash modulo with a mask.
    hash_mask: Option<u64>,
}

impl<P: FqPacket> MacFq<P> {
    /// Creates the structure with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `flows` or `limit` is zero.
    pub fn new(params: FqParams) -> MacFq<P> {
        assert!(params.flows > 0, "flow pool must be non-empty");
        assert!(params.limit > 0, "global limit must be positive");
        MacFq {
            params,
            arena: PacketArena::new(),
            flows: (0..params.flows).map(|_| Flow::new()).collect(),
            tids: Vec::new(),
            heap: Vec::new(),
            free_tids: Vec::new(),
            total_packets: 0,
            stats: FqStats::default(),
            tele: Telemetry::disabled(),
            fq_tele: FqTele::default(),
            component: "fq",
            hash_mask: params
                .flows
                .is_power_of_two()
                .then(|| params.flows as u64 - 1),
        }
    }

    /// Attaches a telemetry handle; `component` names this instance in
    /// metric keys and events (e.g. "fq" at the AP, "client_fq" on a
    /// station). A disabled handle keeps the hot path unchanged.
    pub fn set_telemetry(&mut self, tele: Telemetry, component: &'static str) {
        self.tele = tele;
        self.component = component;
        // Re-resolve every pre-resolved instrument against the new hub —
        // including parked (detached) slots, whose handles would otherwise
        // go stale and record into the old hub after a reattach.
        self.fq_tele = FqTele::resolve(&self.tele, component);
        for ti in 0..self.tids.len() {
            self.tids[ti].tele = TidTele::resolve(&self.tele, component, ti);
        }
    }

    /// Registers a TID (one station × traffic-identifier pair), allocating
    /// its dedicated overflow queue. A slot freed by
    /// [`MacFq::unregister_tid`] is reused (most recently freed first)
    /// together with its overflow queue, so a churning roster does not
    /// grow the flow pool without bound.
    pub fn register_tid(&mut self) -> TidId {
        if let Some(idx) = self.free_tids.pop() {
            // Revive the slot in place: the DRR list deques (emptied but
            // not shrunk by `unregister_tid`) and the resolved telemetry
            // handles are kept, so a detach/reattach cycle allocates
            // nothing. The generation was bumped at detach, so the
            // revived handle is distinct from the previous occupant's.
            let t = &mut self.tids[idx];
            debug_assert!(!t.registered, "free-listed TID still registered");
            debug_assert!(
                t.new_flows.is_empty() && t.old_flows.is_empty(),
                "detached TID kept flows scheduled"
            );
            t.backlog_packets = 0;
            t.backlog_bytes = 0;
            t.registered = true;
            return TidId::from_raw(idx, t.gen);
        }
        let overflow = self.flows.len();
        self.flows.push(Flow::new());
        let idx = self.tids.len();
        self.tids.push(TidState {
            overflow_flow: overflow,
            registered: true,
            tele: TidTele::resolve(&self.tele, self.component, idx),
            ..TidState::default()
        });
        TidId::from_raw(idx, 0)
    }

    /// Validates a handle against the slot's current generation and
    /// returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slot (`unregistered TID handle`), a
    /// handle from before the slot's last detach (`stale TID handle`),
    /// or a parked slot (`detached TID handle`).
    #[inline]
    fn tid_slot(&self, tid: TidId) -> usize {
        let ti = tid.slot();
        assert!(ti < self.tids.len(), "unregistered TID handle");
        let t = &self.tids[ti];
        assert!(
            t.gen == tid.generation(),
            "stale TID handle: slot {} gen {} vs handle gen {}",
            ti,
            t.gen,
            tid.generation()
        );
        assert!(t.registered, "detached TID handle");
        ti
    }

    /// Detaches a TID, discarding its queued packets and returning its
    /// flow queues to the shared pool — the departure half of station
    /// churn. Returns the number of packets discarded (they leave the
    /// global count and are recorded as `drops_detached`).
    ///
    /// The slot (and its dedicated overflow queue) is parked for reuse by
    /// the next [`MacFq::register_tid`]; the handle must not be used again
    /// until then.
    ///
    /// # Panics
    ///
    /// Panics if the handle is unregistered or already detached.
    pub fn unregister_tid(&mut self, tid: TidId, now: Nanos) -> usize {
        let ti = tid.slot();
        let (dropped, dropped_bytes) = self.detach_tid_with(tid, |_| {});
        self.stats.drops_detached += dropped as u64;

        if self.tele.is_enabled() && dropped > 0 {
            self.tele.count(
                self.component,
                "drops_detached",
                Label::Tid(ti as u32),
                dropped as u64,
            );
            self.tele.event(
                now,
                self.component,
                EventKind::Drop {
                    label: Label::Tid(ti as u32),
                    bytes: dropped_bytes.min(u32::MAX as u64) as u32,
                    reason: DropReason::Detached,
                },
            );
        }
        dropped
    }

    /// Detaches a TID like [`MacFq::unregister_tid`], but hands every
    /// queued packet back intact (per-flow FIFO order, DRR-list order
    /// across flows) instead of discarding — the migration half of an
    /// inter-BSS hand-off, where the old AP forwards a roamer's buffered
    /// downlink frames toward its new AP instead of dropping them.
    ///
    /// # Panics
    ///
    /// Panics if the handle is unregistered or already detached.
    pub fn unregister_tid_migrate(&mut self, tid: TidId) -> Vec<P> {
        let mut out = Vec::new();
        let (migrated, _) = self.detach_tid_with(tid, |pkt| out.push(pkt));
        debug_assert_eq!(out.len(), migrated);
        self.stats.migrated_out += migrated as u64;
        out
    }

    /// Shared detach body: empties the TID's flows into `take`, releases
    /// its flow queues to the pool, and parks the slot for reuse. Returns
    /// `(packets, bytes)` removed from the structure.
    ///
    /// Every flow holding this TID's packets sits on exactly one of its
    /// DRR lists (enqueue activates Idle flows; only full drain at
    /// dequeue releases them), so draining the lists drains the TID.
    /// The lists are taken out to walk without aliasing `self` and put
    /// back empty — capacity intact, no scratch allocation.
    fn detach_tid_with(&mut self, tid: TidId, mut take: impl FnMut(P)) -> (usize, u64) {
        let ti = self.tid_slot(tid);

        let mut new_flows = std::mem::take(&mut self.tids[ti].new_flows);
        let mut old_flows = std::mem::take(&mut self.tids[ti].old_flows);
        let mut removed = 0usize;
        let mut removed_bytes = 0u64;
        for fi in new_flows.drain(..).chain(old_flows.drain(..)) {
            let flow = &mut self.flows[fi];
            debug_assert_eq!(flow.tid, Some(ti), "flow on a foreign TID list");
            while let Some(pkt) = flow.queue.pop_front(&mut self.arena) {
                flow.backlog_bytes -= pkt.wire_len();
                removed_bytes += pkt.wire_len();
                removed += 1;
                take(pkt);
            }
            flow.deficit = 0;
            flow.codel = CodelState::new();
            flow.tid = None;
            flow.membership = Membership::Idle;
            self.heap_shrank(fi);
        }
        // The overflow queue may be idle-but-stale (drained earlier this
        // round); reset its CoDel state so the next owner starts clean.
        let of = self.tids[ti].overflow_flow;
        self.flows[of].codel = CodelState::new();

        self.total_packets -= removed;
        let t = &mut self.tids[ti];
        debug_assert_eq!(t.backlog_packets, removed, "TID packet count drifted");
        debug_assert_eq!(t.backlog_bytes, removed_bytes, "TID byte count drifted");
        t.new_flows = new_flows;
        t.old_flows = old_flows;
        t.backlog_packets = 0;
        t.backlog_bytes = 0;
        t.registered = false;
        // Every outstanding handle to this slot goes stale now.
        t.gen = t.gen.wrapping_add(1);
        self.free_tids.push(ti);
        (removed, removed_bytes)
    }

    /// True if the handle refers to a currently registered (not detached)
    /// TID slot.
    pub fn tid_is_registered(&self, tid: TidId) -> bool {
        self.tids
            .get(tid.slot())
            .is_some_and(|t| t.registered && t.gen == tid.generation())
    }

    /// Total packets queued across all TIDs.
    pub fn total_packets(&self) -> usize {
        self.total_packets
    }

    /// Packets queued for one TID.
    pub fn tid_backlog_packets(&self, tid: TidId) -> usize {
        self.tids[self.tid_slot(tid)].backlog_packets
    }

    /// Bytes queued for one TID.
    pub fn tid_backlog_bytes(&self, tid: TidId) -> u64 {
        self.tids[self.tid_slot(tid)].backlog_bytes
    }

    /// True if the TID has at least one queued packet.
    pub fn tid_has_data(&self, tid: TidId) -> bool {
        self.tids[self.tid_slot(tid)].backlog_packets > 0
    }

    /// The configured parameters.
    pub fn params(&self) -> FqParams {
        self.params
    }

    /// Live packets in the shared arena. Always equals
    /// [`MacFq::total_packets`]; exposed separately so teardown tests can
    /// assert the arena itself drains to zero (no leaked slots).
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Capacity probe for the churn-reuse tests: (new-list, old-list,
    /// packet-arena) capacities for one TID slot.
    #[doc(hidden)]
    pub fn churn_capacity_probe(&self, tid: TidId) -> (usize, usize, usize) {
        let t = &self.tids[tid.slot()];
        (
            t.new_flows.capacity(),
            t.old_flows.capacity(),
            self.arena.capacity(),
        )
    }

    /// Recomputes every derived structure from the ground-truth flow
    /// queues and panics on any inconsistency: the backlog heap (property,
    /// intrusive positions, exact nonempty membership), per-flow byte
    /// counts, per-TID packet/byte counts, DRR-list membership, and the
    /// global packet count. Test-only support for the interleaving
    /// proptests; O(flows), never call it from a hot path.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for (fi, flow) in self.flows.iter().enumerate() {
            total += flow.queue.len();
            let bytes: u64 = flow.queue.iter(&self.arena).map(|p| p.wire_len()).sum();
            assert_eq!(
                bytes, flow.backlog_bytes,
                "flow {fi}: backlog_bytes drifted"
            );
            if flow.queue.is_empty() {
                assert_eq!(
                    flow.heap_pos, NOT_IN_HEAP,
                    "flow {fi}: empty but still in the backlog heap"
                );
            } else {
                assert!(
                    flow.heap_pos < self.heap.len() && self.heap[flow.heap_pos] == fi,
                    "flow {fi}: nonempty but heap_pos {} is stale",
                    flow.heap_pos
                );
                assert!(
                    flow.tid.is_some(),
                    "flow {fi}: holds packets but is unassigned"
                );
            }
            if flow.membership == Membership::Idle {
                assert!(flow.queue.is_empty(), "flow {fi}: idle with packets queued");
            }
        }
        assert_eq!(total, self.total_packets, "total_packets drifted");
        assert_eq!(
            self.arena.live(),
            self.total_packets,
            "arena live count drifted from total_packets"
        );
        for (i, &fi) in self.heap.iter().enumerate() {
            assert!(
                !self.flows[fi].queue.is_empty(),
                "heap slot {i}: flow {fi} is empty"
            );
            if i > 0 {
                let parent = self.heap[(i - 1) / 2];
                assert!(
                    self.flows[parent].backlog_bytes >= self.flows[fi].backlog_bytes,
                    "heap property violated at slot {i}"
                );
            }
        }
        let mut scheduled = vec![0u32; self.flows.len()];
        for (ti, t) in self.tids.iter().enumerate() {
            let mut pkts = 0usize;
            let mut bytes = 0u64;
            for (&fi, on_new) in t
                .new_flows
                .iter()
                .map(|fi| (fi, true))
                .chain(t.old_flows.iter().map(|fi| (fi, false)))
            {
                assert!(t.registered, "detached TID {ti} still schedules flows");
                scheduled[fi] += 1;
                let flow = &self.flows[fi];
                assert_eq!(flow.tid, Some(ti), "TID {ti} schedules a foreign flow {fi}");
                let expect = if on_new {
                    Membership::New
                } else {
                    Membership::Old
                };
                assert_eq!(flow.membership, expect, "flow {fi}: membership drifted");
                pkts += flow.queue.len();
                bytes += flow.backlog_bytes;
            }
            assert_eq!(pkts, t.backlog_packets, "TID {ti}: packet count drifted");
            assert_eq!(bytes, t.backlog_bytes, "TID {ti}: byte count drifted");
        }
        for (fi, &n) in scheduled.iter().enumerate() {
            let expect = u32::from(self.flows[fi].membership != Membership::Idle);
            assert_eq!(
                n, expect,
                "flow {fi}: scheduled {n} times with membership {:?}",
                self.flows[fi].membership
            );
        }
    }

    /// Swaps two heap slots, keeping the intrusive positions in sync.
    #[inline]
    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.flows[self.heap[i]].heap_pos = i;
        self.flows[self.heap[j]].heap_pos = j;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.flows[self.heap[i]].backlog_bytes <= self.flows[self.heap[parent]].backlog_bytes
            {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < self.heap.len()
                && self.flows[self.heap[right]].backlog_bytes
                    > self.flows[self.heap[left]].backlog_bytes
            {
                child = right;
            }
            if self.flows[self.heap[child]].backlog_bytes <= self.flows[self.heap[i]].backlog_bytes
            {
                break;
            }
            self.heap_swap(i, child);
            i = child;
        }
    }

    /// Records a backlog increase for `fi`: inserts the flow into the
    /// backlog heap if it just became nonempty, else restores the heap
    /// property upward from its stored slot.
    fn heap_grew(&mut self, fi: usize) {
        let pos = self.flows[fi].heap_pos;
        if pos == NOT_IN_HEAP {
            let i = self.heap.len();
            self.heap.push(fi);
            self.flows[fi].heap_pos = i;
            self.sift_up(i);
        } else {
            self.sift_up(pos);
        }
    }

    /// Records a backlog decrease for `fi`: removes the flow from the heap
    /// once its queue is empty, else restores the heap property downward.
    fn heap_shrank(&mut self, fi: usize) {
        let pos = self.flows[fi].heap_pos;
        if pos == NOT_IN_HEAP {
            return;
        }
        if self.flows[fi].queue.is_empty() {
            self.heap.swap_remove(pos);
            self.flows[fi].heap_pos = NOT_IN_HEAP;
            if pos < self.heap.len() {
                let moved = self.heap[pos];
                self.flows[moved].heap_pos = pos;
                // The filler came off a leaf: it can be smaller than the
                // new children or larger than the new parent, never both,
                // so one of these is a no-op.
                self.sift_down(pos);
                self.sift_up(self.flows[moved].heap_pos);
            }
        } else {
            self.sift_down(pos);
        }
    }

    /// The flow with the largest byte backlog (Algorithm 1 line 3): the
    /// heap root, O(1).
    fn find_longest_queue(&self) -> Option<usize> {
        self.heap.first().copied()
    }

    /// Drops the head packet of the globally longest queue, returning it.
    ///
    /// "A global queue size limit is kept, and when this is exceeded,
    /// packets are dropped from the globally longest queue, which prevents
    /// a single flow from locking out other flows on overload."
    fn drop_from_longest(&mut self, now: Nanos) -> Option<P> {
        let fi = self.find_longest_queue()?;
        let flow = &mut self.flows[fi];
        let pkt = flow.queue.pop_front(&mut self.arena)?;
        flow.backlog_bytes -= pkt.wire_len();
        self.total_packets -= 1;
        self.stats.drops_overlimit += 1;
        let victim_tid = flow.tid;
        if let Some(ti) = victim_tid {
            self.tids[ti].backlog_packets -= 1;
            self.tids[ti].backlog_bytes -= pkt.wire_len();
        }
        if self.tele.is_enabled() {
            self.fq_tele.drops_overlimit.add(1);
            let label = match victim_tid {
                Some(ti) => {
                    self.tids[ti].tele.victims.add(1);
                    Label::Tid(ti as u32)
                }
                None => {
                    self.tele
                        .count(self.component, "drop_longest_victims", Label::Global, 1);
                    Label::Global
                }
            };
            self.tele.event(
                now,
                self.component,
                EventKind::Drop {
                    label,
                    bytes: pkt.wire_len() as u32,
                    reason: DropReason::Overlimit,
                },
            );
        }
        self.heap_shrank(fi);
        Some(pkt)
    }

    /// Enqueues a packet for a TID — Algorithm 1.
    ///
    /// Returns the packet dropped to make room, if the global limit was
    /// reached (the caller may want to count it against a flow).
    ///
    /// The packet must already carry its enqueue timestamp
    /// ([`QueuedPacket::enqueue_time`] is read by CoDel at dequeue).
    pub fn enqueue(&mut self, pkt: P, tid: TidId, now: Nanos) -> Option<P> {
        let ti = self.tid_slot(tid);

        // Global limit (Algorithm 1 lines 2–4).
        let dropped = if self.total_packets >= self.params.limit {
            match self.params.drop_policy {
                DropPolicy::DropLongest => self.drop_from_longest(now),
                DropPolicy::TailDrop => {
                    self.stats.drops_overlimit += 1;
                    if self.tele.is_enabled() {
                        self.fq_tele.drops_overlimit.add(1);
                        self.tele.event(
                            now,
                            self.component,
                            EventKind::Drop {
                                label: Label::Tid(ti as u32),
                                bytes: pkt.wire_len() as u32,
                                reason: DropReason::QueueFull,
                            },
                        );
                    }
                    return Some(pkt);
                }
            }
        } else {
            None
        };

        // Hash to a queue; on cross-TID collision use the overflow queue
        // (lines 5–8). A power-of-two pool reduces to a mask.
        let hash = pkt.flow_hash();
        let mut fi = match self.hash_mask {
            Some(mask) => (hash & mask) as usize,
            None => (hash % self.params.flows as u64) as usize,
        };
        if self.flows[fi].tid.is_some_and(|t| t != ti) {
            fi = self.tids[ti].overflow_flow;
            self.stats.collisions += 1;
            self.tids[ti].tele.collisions.add(1);
        }
        self.flows[fi].tid = Some(ti);

        // Append and activate (lines 9–12).
        let len = pkt.wire_len();
        let flow = &mut self.flows[fi];
        flow.queue.push_back(&mut self.arena, pkt);
        flow.backlog_bytes += len;
        self.total_packets += 1;
        self.stats.enqueued += 1;
        let tid_state = &mut self.tids[ti];
        tid_state.backlog_packets += 1;
        tid_state.backlog_bytes += len;
        if self.flows[fi].membership == Membership::Idle {
            self.flows[fi].membership = Membership::New;
            // A freshly activated flow starts with a full quantum, exactly
            // as fq_codel does — without this, the first deficit check
            // would rotate it to the old list and void its new-flow
            // (sparse) priority.
            self.flows[fi].deficit = self.params.quantum as i64;
            self.tids[ti].new_flows.push_back(fi);
        }
        self.heap_grew(fi);

        if self.tele.is_enabled() {
            self.tids[ti].tele.enqueued.add(1);
            self.fq_tele.occupancy_gauge.set(self.total_packets as f64);
            self.fq_tele
                .occupancy_hist
                .record(self.total_packets as u64);
            self.tele.event(
                now,
                self.component,
                EventKind::Enqueue {
                    label: Label::Tid(ti as u32),
                    bytes: len as u32,
                },
            );
        }

        dropped
    }

    /// Dequeues the next packet for a TID — Algorithm 2.
    ///
    /// `codel_params` are the parameters for the *station* owning this TID
    /// (paper §3.1.1). Returns `None` when the TID has no eligible packet.
    pub fn dequeue(&mut self, tid: TidId, now: Nanos, codel_params: &CodelParams) -> Option<P> {
        let ti = self.tid_slot(tid);

        loop {
            // Pick the head of new_flows, else old_flows (lines 2–7).
            let (fi, from_new) = {
                let t = &self.tids[ti];
                if let Some(&fi) = t.new_flows.front() {
                    (fi, true)
                } else if let Some(&fi) = t.old_flows.front() {
                    (fi, false)
                } else {
                    return None;
                }
            };

            // Deficit check (lines 8–11): replenish and rotate to old.
            if self.flows[fi].deficit <= 0 {
                self.flows[fi].deficit += self.params.quantum as i64;
                let t = &mut self.tids[ti];
                if from_new {
                    t.new_flows.pop_front();
                } else {
                    t.old_flows.pop_front();
                }
                t.old_flows.push_back(fi);
                self.flows[fi].membership = Membership::Old;
                self.tids[ti].tele.drr_rounds.add(1);
                continue;
            }

            // CoDel dequeue (line 12); drops are charged to this TID.
            let mut codel_drops = 0usize;
            let mut codel_drop_bytes = 0u64;
            let pkt = {
                let flow = &mut self.flows[fi];
                let mut qref = FlowQueueRef {
                    arena: &mut self.arena,
                    queue: &mut flow.queue,
                    backlog_bytes: &mut flow.backlog_bytes,
                };
                flow.codel.dequeue_tracked(
                    now,
                    codel_params,
                    &mut qref,
                    |p| {
                        codel_drops += 1;
                        codel_drop_bytes += p.wire_len();
                    },
                    &self.tids[ti].tele.codel,
                )
            };
            self.total_packets -= codel_drops;
            self.stats.drops_codel += codel_drops as u64;
            {
                let t = &mut self.tids[ti];
                t.backlog_packets -= codel_drops;
                t.backlog_bytes -= codel_drop_bytes;
            }

            match pkt {
                None => {
                    // Queue empty (lines 13–19): new flows get demoted to
                    // old (the anti-gaming rule); old flows are released.
                    self.heap_shrank(fi);
                    let t = &mut self.tids[ti];
                    if from_new {
                        t.new_flows.pop_front();
                        t.old_flows.push_back(fi);
                        self.flows[fi].membership = Membership::Old;
                    } else {
                        t.old_flows.pop_front();
                        self.flows[fi].membership = Membership::Idle;
                        self.flows[fi].tid = None;
                    }
                    continue;
                }
                Some(pkt) => {
                    // Charge the deficit and hand the packet out
                    // (lines 20–21).
                    let len = pkt.wire_len();
                    self.flows[fi].deficit -= len as i64;
                    self.total_packets -= 1;
                    self.stats.dequeued += 1;
                    if from_new {
                        self.tids[ti].tele.sparse_hits.add(1);
                    }
                    let t = &mut self.tids[ti];
                    t.backlog_packets -= 1;
                    t.backlog_bytes -= len;
                    self.heap_shrank(fi);
                    return Some(pkt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pkt {
        flow: u64,
        t: Nanos,
        len: u64,
        seq: u32,
    }

    impl QueuedPacket for Pkt {
        fn enqueue_time(&self) -> Nanos {
            self.t
        }
        fn wire_len(&self) -> u64 {
            self.len
        }
    }

    impl FqPacket for Pkt {
        fn flow_hash(&self) -> u64 {
            self.flow
        }
    }

    fn pkt(flow: u64, t: Nanos, seq: u32) -> Pkt {
        Pkt {
            flow,
            t,
            len: 1500,
            seq,
        }
    }

    fn params() -> CodelParams {
        CodelParams::wifi_default()
    }

    #[test]
    fn fifo_within_single_flow() {
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..10 {
            fq.enqueue(pkt(7, now, seq), tid, now);
        }
        for seq in 0..10 {
            let p = fq.dequeue(tid, now, &params()).unwrap();
            assert_eq!(p.seq, seq, "reordering within one flow");
        }
        assert!(fq.dequeue(tid, now, &params()).is_none());
    }

    #[test]
    fn interleaves_two_flows() {
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        // Flow 1 has 10 packets queued first, flow 2 has 10 queued after;
        // DRR should alternate rather than drain flow 1 first.
        for seq in 0..10 {
            fq.enqueue(pkt(1, now, seq), tid, now);
        }
        for seq in 0..10 {
            fq.enqueue(pkt(2, now, seq), tid, now);
        }
        let first_8: Vec<u64> = (0..8)
            .map(|_| fq.dequeue(tid, now, &params()).unwrap().flow)
            .collect();
        let flow1 = first_8.iter().filter(|&&f| f == 1).count();
        let flow2 = first_8.iter().filter(|&&f| f == 2).count();
        assert_eq!(flow1, 4, "got {first_8:?}");
        assert_eq!(flow2, 4);
    }

    #[test]
    fn global_limit_enforced() {
        let fqp = FqParams {
            flows: 64,
            limit: 100,
            quantum: 300,
            ..FqParams::default()
        };
        let mut fq = MacFq::new(fqp);
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        let mut dropped = 0;
        for seq in 0..500 {
            if fq
                .enqueue(pkt(seq as u64 % 3, now, seq), tid, now)
                .is_some()
            {
                dropped += 1;
            }
            assert!(fq.total_packets() <= 100);
        }
        assert_eq!(dropped, 400);
        assert_eq!(fq.stats.drops_overlimit, 400);
    }

    #[test]
    fn overlimit_drops_from_longest_queue() {
        let fqp = FqParams {
            flows: 64,
            limit: 10,
            quantum: 300,
            ..FqParams::default()
        };
        let mut fq = MacFq::new(fqp);
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        // Flow 1: 9 packets. Flow 2: 1 packet. Next enqueue (flow 2) must
        // drop from flow 1, the longest.
        for seq in 0..9 {
            fq.enqueue(pkt(1, now, seq), tid, now);
        }
        fq.enqueue(pkt(2, now, 0), tid, now);
        let victim = fq.enqueue(pkt(2, now, 1), tid, now).unwrap();
        assert_eq!(victim.flow, 1, "should drop from the longest queue");
    }

    #[test]
    fn cross_tid_collision_goes_to_overflow() {
        let fqp = FqParams {
            flows: 1, // force every hash onto the same queue
            limit: 8192,
            quantum: 300,
            ..FqParams::default()
        };
        let mut fq = MacFq::new(fqp);
        let tid_a = fq.register_tid();
        let tid_b = fq.register_tid();
        let now = Nanos::ZERO;
        fq.enqueue(pkt(1, now, 0), tid_a, now);
        // Same hash target, different TID: must be redirected, not mixed.
        fq.enqueue(pkt(2, now, 0), tid_b, now);
        assert_eq!(fq.stats.collisions, 1);
        assert_eq!(fq.tid_backlog_packets(tid_a), 1);
        assert_eq!(fq.tid_backlog_packets(tid_b), 1);
        // Each TID dequeues its own packet.
        assert_eq!(fq.dequeue(tid_a, now, &params()).unwrap().flow, 1);
        assert_eq!(fq.dequeue(tid_b, now, &params()).unwrap().flow, 2);
    }

    #[test]
    fn queue_released_after_drain_can_move_tids() {
        let fqp = FqParams {
            flows: 1,
            limit: 8192,
            quantum: 300,
            ..FqParams::default()
        };
        let mut fq = MacFq::new(fqp);
        let tid_a = fq.register_tid();
        let tid_b = fq.register_tid();
        let now = Nanos::ZERO;
        fq.enqueue(pkt(1, now, 0), tid_a, now);
        assert!(fq.dequeue(tid_a, now, &params()).is_some());
        // Drain fully: dequeue again returns None and releases the queue.
        assert!(fq.dequeue(tid_a, now, &params()).is_none());
        // Now TID B can claim the hash-target queue without a collision.
        fq.enqueue(pkt(3, now, 0), tid_b, now);
        assert_eq!(fq.stats.collisions, 0);
        assert_eq!(fq.dequeue(tid_b, now, &params()).unwrap().flow, 3);
    }

    #[test]
    fn sparse_flow_gets_priority() {
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        // Bulk flow queues 50 packets and is pushed through a few rounds so
        // it lands on the old list.
        for seq in 0..50 {
            fq.enqueue(pkt(1, now, seq), tid, now);
        }
        for _ in 0..5 {
            fq.dequeue(tid, now, &params());
        }
        // A new sparse flow arrives: its packet must come out next.
        fq.enqueue(pkt(99, now, 0), tid, now);
        let p = fq.dequeue(tid, now, &params()).unwrap();
        assert_eq!(p.flow, 99, "sparse flow should jump the bulk flow");
    }

    #[test]
    fn sparse_flow_cannot_game_priority() {
        // A flow that drains and immediately re-queues must not stay on
        // the new list forever: after its queue empties it is demoted to
        // the old list and the bulk flow gets service.
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..50 {
            fq.enqueue(pkt(1, now, seq), tid, now);
        }
        let mut bulk_served = 0;
        for i in 0..20 {
            fq.enqueue(pkt(99, now, i), tid, now);
            // Two dequeues per round: the gamer can take at most one.
            for _ in 0..2 {
                if fq.dequeue(tid, now, &params()).unwrap().flow == 1 {
                    bulk_served += 1;
                }
            }
        }
        assert!(
            bulk_served >= 19,
            "bulk flow starved: served {bulk_served}/40 dequeues"
        );
    }

    #[test]
    fn byte_fairness_with_unequal_packet_sizes() {
        // Flow 1 sends 1500-byte packets, flow 2 sends 300-byte packets.
        // Over a long run, DRR should give them equal *bytes*, i.e. five
        // small packets per large one.
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..200 {
            fq.enqueue(
                Pkt {
                    flow: 1,
                    t: now,
                    len: 1500,
                    seq,
                },
                tid,
                now,
            );
            for s in 0..5 {
                fq.enqueue(
                    Pkt {
                        flow: 2,
                        t: now,
                        len: 300,
                        seq: seq * 5 + s,
                    },
                    tid,
                    now,
                );
            }
        }
        let mut bytes = [0u64; 2];
        for _ in 0..600 {
            let p = fq.dequeue(tid, now, &params()).unwrap();
            bytes[(p.flow - 1) as usize] += p.len;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "byte split not fair: {bytes:?}"
        );
    }

    #[test]
    fn codel_drops_are_accounted() {
        let mut fq = MacFq::new(FqParams::default());
        let tid = fq.register_tid();
        // Enqueue old packets, dequeue far in the future with a deep
        // backlog: CoDel must engage and counters must stay consistent.
        let t0 = Nanos::ZERO;
        for seq in 0..500 {
            fq.enqueue(pkt(1, t0, seq), tid, t0);
        }
        let mut out = 0;
        let mut now = Nanos::from_millis(500);
        while fq.tid_has_data(tid) {
            if fq.dequeue(tid, now, &params()).is_some() {
                out += 1;
            }
            now += Nanos::from_millis(1);
        }
        assert!(fq.stats.drops_codel > 0, "CoDel never engaged");
        assert_eq!(out + fq.stats.drops_codel as usize, 500);
        assert_eq!(fq.total_packets(), 0);
        assert_eq!(fq.tid_backlog_bytes(tid), 0);
    }

    #[test]
    fn tids_are_isolated() {
        let mut fq = MacFq::new(FqParams::default());
        let tid_a = fq.register_tid();
        let tid_b = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..10 {
            fq.enqueue(pkt(1, now, seq), tid_a, now);
        }
        // TID B has nothing: dequeue must not steal TID A's packets.
        assert!(fq.dequeue(tid_b, now, &params()).is_none());
        assert_eq!(fq.tid_backlog_packets(tid_a), 10);
    }

    #[test]
    #[should_panic(expected = "unregistered TID")]
    fn unregistered_tid_panics() {
        let mut fq: MacFq<Pkt> = MacFq::new(FqParams::default());
        fq.enqueue(pkt(1, Nanos::ZERO, 0), TidId::from_raw(3, 0), Nanos::ZERO);
    }

    #[test]
    fn detach_reattach_reuses_capacity() {
        let fqp = FqParams {
            flows: 256,
            limit: 8192,
            quantum: 300,
            ..FqParams::default()
        };
        let mut fq = MacFq::new(fqp);
        let tid_a = fq.register_tid();
        let tid_b = fq.register_tid();
        let now = Nanos::ZERO;
        // tid_a claims hash target 0 so tid_b's flow 0 collides into its
        // overflow queue; tid_b's other 99 flows grow its new-flows list.
        fq.enqueue(pkt(0, now, 0), tid_a, now);
        for seq in 0..100 {
            fq.enqueue(pkt(seq as u64, now, seq), tid_b, now);
        }
        let before = fq.churn_capacity_probe(tid_b);
        assert!(before.0 >= 99, "new-flows list never grew: {before:?}");
        assert!(before.2 >= 101, "packet arena never grew: {before:?}");

        fq.unregister_tid(tid_b, now);
        // LIFO slot reuse: the fresh handle revives tid_b's slot, and the
        // round-trip must not have released any of its capacity.
        let tid_b2 = fq.register_tid();
        assert_eq!(tid_b2.slot(), tid_b.slot(), "slot not reused");
        assert_ne!(
            tid_b2.generation(),
            tid_b.generation(),
            "generation not bumped"
        );
        let after = fq.churn_capacity_probe(tid_b2);
        assert_eq!(before, after, "detach/reattach reallocated");

        fq.enqueue(pkt(7, now, 0), tid_b2, now);
        assert_eq!(fq.tid_backlog_packets(tid_b2), 1);
        fq.check_invariants();
    }

    #[test]
    fn invariants_hold_across_mixed_workload() {
        // Enqueue / DRR dequeue / overlimit drop / detach interleaving with
        // the full structural audit after every round.
        let mut fq = MacFq::new(FqParams {
            flows: 16,
            limit: 64,
            quantum: 300,
            ..FqParams::default()
        });
        let tid_a = fq.register_tid();
        let tid_b = fq.register_tid();
        let mut now = Nanos::ZERO;
        for round in 0..50u32 {
            for seq in 0..8 {
                fq.enqueue(pkt((round * 8 + seq) as u64 % 11, now, seq), tid_a, now);
                fq.enqueue(pkt((round * 5 + seq) as u64 % 7, now, seq), tid_b, now);
            }
            now += Nanos::from_millis(3);
            for _ in 0..5 {
                fq.dequeue(tid_a, now, &params());
            }
            for _ in 0..3 {
                fq.dequeue(tid_b, now, &params());
            }
            fq.check_invariants();
        }
        assert!(fq.stats.drops_overlimit > 0, "never hit the global limit");
        fq.unregister_tid(tid_b, now);
        fq.check_invariants();
        // Teardown: drain the survivor and audit the arena directly —
        // every packet that ever entered must have left its slot.
        while fq.dequeue(tid_a, now, &params()).is_some() {}
        fq.unregister_tid(tid_a, now);
        fq.check_invariants();
        assert_eq!(fq.arena_live(), 0, "drained structure leaked arena slots");
    }

    #[test]
    fn arena_drains_to_zero_after_tid_churn() {
        // Repeated register / load / partial-drain / unregister cycles:
        // unregister discards a TID's backlog mid-flow, the path most
        // likely to strand an arena slot. After every cycle the arena
        // must hold exactly the packets the counters say it does, and a
        // fully torn-down structure must hold none.
        let mut fq = MacFq::new(FqParams {
            flows: 16,
            limit: 256,
            quantum: 300,
            ..FqParams::default()
        });
        let mut now = Nanos::ZERO;
        for cycle in 0..20u64 {
            let tid = fq.register_tid();
            for seq in 0..40 {
                fq.enqueue(pkt((cycle * 13 + seq as u64) % 9, now, seq), tid, now);
            }
            now += Nanos::from_millis(1);
            // Drain only part of the backlog, so unregister must free
            // the remainder through the arena.
            for _ in 0..(cycle % 41) {
                fq.dequeue(tid, now, &params());
            }
            fq.unregister_tid(tid, now);
            fq.check_invariants();
            assert_eq!(
                fq.arena_live(),
                0,
                "cycle {cycle} left packets stranded in the arena"
            );
        }
        // Steady-state churn must recycle slots, not grow the slab.
        let tid = fq.register_tid();
        let cap = fq.churn_capacity_probe(tid).2;
        for seq in 0..40 {
            fq.enqueue(pkt(seq as u64 % 9, now, seq), tid, now);
        }
        while fq.dequeue(tid, now, &params()).is_some() {}
        assert_eq!(
            fq.churn_capacity_probe(tid).2,
            cap,
            "steady-state churn grew the packet arena"
        );
        assert_eq!(fq.arena_live(), 0);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let mut fq = MacFq::new(FqParams {
            flows: 16,
            limit: 64,
            quantum: 300,
            ..FqParams::default()
        });
        let tele = Telemetry::enabled();
        fq.set_telemetry(tele.clone(), "fq");
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..200 {
            fq.enqueue(pkt(seq as u64 % 7, now, seq), tid, now);
        }
        while fq.dequeue(tid, now, &params()).is_some() {}
        let s = fq.stats;
        assert_eq!(tele.counter("fq", "enqueued", Label::Tid(0)), s.enqueued);
        assert_eq!(
            tele.counter("fq", "drops_overlimit", Label::Global),
            s.drops_overlimit
        );
        assert!(s.drops_overlimit > 0, "test never hit the global limit");
        assert!(
            tele.counter("fq", "drr_rounds", Label::Tid(0)) > 0,
            "DRR rotation never counted"
        );
    }

    #[test]
    fn stats_balance() {
        let mut fq = MacFq::new(FqParams {
            flows: 16,
            limit: 64,
            quantum: 300,
            ..FqParams::default()
        });
        let tid = fq.register_tid();
        let now = Nanos::ZERO;
        for seq in 0..200 {
            fq.enqueue(pkt(seq as u64 % 7, now, seq), tid, now);
        }
        while fq.dequeue(tid, now, &params()).is_some() {}
        let s = fq.stats;
        assert_eq!(
            s.enqueued,
            s.dequeued + s.drops_overlimit + s.drops_codel,
            "packet conservation violated: {s:?}"
        );
    }
}
