//! Two-level (A-MSDU inside A-MPDU) aggregation model — the extension the
//! paper's footnote 1 defers to Kim et al. [16].
//!
//! 802.11n permits packing several MSDUs into one MPDU (A-MSDU) before
//! aggregating MPDUs into an A-MPDU. A-MSDU amortises the MAC header and
//! FCS across packets, which matters most for small frames; its cost is
//! that one corrupted MPDU loses every MSDU inside it (not modelled here —
//! the paper's analysis assumes no transmission errors, and so does this).

use wifiq_phy::consts::{self, pad4};
use wifiq_phy::PhyRate;

use crate::{t_overhead, ModelStation};

/// A-MSDU subframe header: DA (6) + SA (6) + length (2) bytes.
pub const L_MSDU_HDR: u64 = 14;

/// Maximum A-MSDU length under HT (bytes).
pub const MAX_AMSDU_BYTES: u64 = 7_935;

/// On-air length of one MPDU carrying `n_msdu` MSDUs of `l` bytes each.
///
/// Each MSDU is prefixed with the 14-byte subframe header and padded to a
/// four-byte boundary; the MPDU adds the MAC header and FCS.
pub fn mpdu_len(n_msdu: u64, l: u64) -> u64 {
    consts::L_MAC + n_msdu * pad4(l + L_MSDU_HDR) + consts::L_FCS
}

/// On-air length of the full two-level aggregate:
/// `n_mpdu` MPDUs (each carrying `n_msdu` MSDUs of `l` bytes), with the
/// per-MPDU delimiter and padding of eq. 1.
pub fn aggregate_len(n_mpdu: f64, n_msdu: u64, l: u64) -> f64 {
    n_mpdu * pad4(mpdu_len(n_msdu, l) + consts::L_DELIM) as f64
}

/// Largest `n_msdu` that keeps the MPDU within the A-MSDU length cap.
pub fn max_msdus(l: u64) -> u64 {
    (MAX_AMSDU_BYTES / pad4(l + L_MSDU_HDR)).max(1)
}

/// Data transmission time (eq. 2 generalised): `T_phy + 8L/r` seconds.
pub fn t_data(n_mpdu: f64, n_msdu: u64, l: u64, rate: PhyRate) -> f64 {
    consts::T_PHY.as_secs_f64()
        + 8.0 * aggregate_len(n_mpdu, n_msdu, l) / rate.bits_per_second() as f64
}

/// Expected station rate with two-level aggregation and no contention
/// (eq. 3 generalised): goodput of `n_mpdu × n_msdu` payloads of `l`
/// bytes per exchange.
pub fn base_rate(n_mpdu: f64, n_msdu: u64, l: u64, rate: PhyRate) -> f64 {
    if n_mpdu <= 0.0 || n_msdu == 0 {
        return 0.0;
    }
    8.0 * n_mpdu * n_msdu as f64 * l as f64 / (t_data(n_mpdu, n_msdu, l, rate) + t_overhead(rate))
}

/// Convenience: the single-level prediction for comparison, using the
/// same station description.
pub fn single_level_rate(s: &ModelStation) -> f64 {
    crate::base_rate(s.aggregation, s.packet_len, s.rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpdu_len_structure() {
        // One 1500-byte MSDU: 34 + pad4(1514) + 4 = 34 + 1516 + 4 = 1554.
        assert_eq!(mpdu_len(1, 1500), 1554);
        // Two MSDUs amortise nothing at the MAC layer but share one FCS.
        assert_eq!(mpdu_len(2, 1500), 34 + 2 * 1516 + 4);
    }

    #[test]
    fn max_msdus_respects_cap() {
        // 1516-byte subframes: 7935 / 1516 = 5.
        assert_eq!(max_msdus(1500), 5);
        // Tiny frames pack much deeper.
        assert!(max_msdus(100) > 60);
        // Oversized frames still allow one.
        assert_eq!(max_msdus(9000), 1);
    }

    #[test]
    fn two_level_beats_single_level_for_small_packets() {
        // 200-byte packets (VoIP-ish): A-MSDU amortises the 38-byte
        // MAC+FCS overhead and the 4-byte delimiter across packets.
        let rate = PhyRate::fast_station();
        let l = 200;
        // Same total packets per exchange: 32 MPDUs × 2 MSDUs vs 64 MPDUs.
        let single = crate::base_rate(64.0, l, rate);
        let two = base_rate(32.0, 2, l, rate);
        assert!(
            two > single,
            "two-level {two:.0} should beat single-level {single:.0} for small packets"
        );
    }

    #[test]
    fn two_level_overhead_is_real_for_large_packets() {
        // For full-size packets the extra 14-byte subframe header is pure
        // cost at equal packet count.
        let rate = PhyRate::fast_station();
        let single = crate::base_rate(16.0, 1500, rate);
        let two = base_rate(16.0, 1, 1500, rate);
        assert!(two < single);
        // But the gap is small (< 2%).
        assert!((single - two) / single < 0.02);
    }

    #[test]
    fn rate_monotone_in_both_levels() {
        let rate = PhyRate::fast_station();
        assert!(base_rate(4.0, 2, 800, rate) > base_rate(4.0, 1, 800, rate));
        assert!(base_rate(8.0, 2, 800, rate) > base_rate(4.0, 2, 800, rate));
    }

    #[test]
    fn degenerate_inputs() {
        let rate = PhyRate::fast_station();
        assert_eq!(base_rate(0.0, 2, 800, rate), 0.0);
        assert_eq!(base_rate(4.0, 0, 800, rate), 0.0);
    }
}
