//! The paper's analytical model for 802.11n throughput and airtime
//! (Section 2.2.1, equations 1–5).
//!
//! Given each station's aggregation level `n_i`, packet size `l_i` and PHY
//! rate `r_i`, the model predicts:
//!
//! - the *base rate* `R(n_i, l_i, r_i)` the station would achieve alone
//!   (eq. 3),
//! - each station's airtime share `T(i)` with and without airtime
//!   fairness (eq. 4),
//! - the resulting effective rate `R(i) = T(i) · R(n_i, l_i, r_i)`
//!   (eq. 5).
//!
//! The model is what Table 1 of the paper evaluates against measurements;
//! `wifiq-experiments` regenerates that table by feeding the *measured*
//! mean aggregation sizes from the simulator back into these expressions,
//! exactly as the paper does.

pub mod two_level;

use wifiq_phy::consts::{self, DIFS, SIFS, T_BO_MEAN};
use wifiq_phy::timing::block_ack_duration;
use wifiq_phy::PhyRate;

/// One station's inputs to the model.
#[derive(Debug, Clone, Copy)]
pub struct ModelStation {
    /// Mean aggregation level (packets per A-MPDU); fractional values are
    /// allowed, as the paper uses measured means like 4.47.
    pub aggregation: f64,
    /// Packet (MSDU) size in bytes.
    pub packet_len: u64,
    /// PHY rate.
    pub rate: PhyRate,
}

impl ModelStation {
    /// The paper's standard workload: 1500-byte packets.
    pub fn new(aggregation: f64, rate: PhyRate) -> ModelStation {
        ModelStation {
            aggregation,
            packet_len: 1500,
            rate,
        }
    }
}

/// Per-station model outputs.
#[derive(Debug, Clone, Copy)]
pub struct ModelPrediction {
    /// Airtime share `T(i)` (0–1).
    pub airtime_share: f64,
    /// Base rate in bits/s: what the station achieves with the medium to
    /// itself (eq. 3).
    pub base_rate: f64,
    /// Effective rate in bits/s under the modelled sharing (eq. 5).
    pub rate: f64,
}

/// Aggregate size on the air in bytes — eq. 1 with fractional `n`.
///
/// `L(n, l) = n (l + L_delim + L_mac + L_FCS + L_pad)`.
pub fn aggregate_len(n: f64, l: u64) -> f64 {
    n * consts::subframe_len(l) as f64
}

/// Transmission time of the data portion in seconds — eq. 2:
/// `T_data = T_phy + 8 L / r`.
pub fn t_data(n: f64, l: u64, rate: PhyRate) -> f64 {
    consts::T_PHY.as_secs_f64() + 8.0 * aggregate_len(n, l) / rate.bits_per_second() as f64
}

/// Per-transmission overhead in seconds — the `T_oh` of eq. 3:
/// `T_DIFS + T_SIFS + T_ack + T_BO`, with `T_ack = T_SIFS + 8·58/r` and
/// `T_BO = T_slot · CW_min/2`.
pub fn t_overhead(rate: PhyRate) -> f64 {
    let t_ack = SIFS.as_secs_f64() + block_ack_duration(rate).as_secs_f64();
    DIFS.as_secs_f64() + SIFS.as_secs_f64() + t_ack + T_BO_MEAN.as_secs_f64()
}

/// Expected station rate with no contention — eq. 3:
/// `R = n·l / (T_data + T_oh)` in bits per second.
pub fn base_rate(n: f64, l: u64, rate: PhyRate) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    8.0 * n * l as f64 / (t_data(n, l, rate) + t_overhead(rate))
}

/// Evaluates the model for a set of stations — eqs. 4 and 5.
///
/// With `fairness`, each station gets `1/|I|` of the airtime; without it,
/// station `i`'s share is `T_data(i) / Σ_j T_data(j)` (every station gets
/// one transmission per round — the throughput-fair MAC behaviour that
/// produces the anomaly).
pub fn predict(stations: &[ModelStation], fairness: bool) -> Vec<ModelPrediction> {
    let t_total: f64 = stations
        .iter()
        .map(|s| t_data(s.aggregation, s.packet_len, s.rate))
        .sum();
    stations
        .iter()
        .map(|s| {
            let share = if fairness {
                1.0 / stations.len() as f64
            } else {
                t_data(s.aggregation, s.packet_len, s.rate) / t_total
            };
            let base = base_rate(s.aggregation, s.packet_len, s.rate);
            ModelPrediction {
                airtime_share: share,
                base_rate: base,
                rate: share * base,
            }
        })
        .collect()
}

/// Convenience: total predicted throughput across stations in bits/s.
pub fn total_rate(predictions: &[ModelPrediction]) -> f64 {
    predictions.iter().map(|p| p.rate).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(bps: f64) -> f64 {
        bps / 1e6
    }

    /// Table 1, baseline (FIFO) rows: aggregation 4.47 / 5.08 / 1.89 for
    /// fast/fast/slow, predicted rates 9.7 / 11.4 / 5.1 Mbps, total 26.4.
    #[test]
    fn table1_baseline_matches_paper() {
        let stations = [
            ModelStation::new(4.47, PhyRate::fast_station()),
            ModelStation::new(5.08, PhyRate::fast_station()),
            ModelStation::new(1.89, PhyRate::slow_station()),
        ];
        let p = predict(&stations, false);

        // Airtime shares: 10% / 11% / 79%.
        assert!(
            (p[0].airtime_share - 0.10).abs() < 0.01,
            "{}",
            p[0].airtime_share
        );
        assert!(
            (p[1].airtime_share - 0.11).abs() < 0.01,
            "{}",
            p[1].airtime_share
        );
        assert!(
            (p[2].airtime_share - 0.79).abs() < 0.01,
            "{}",
            p[2].airtime_share
        );

        // Base rates: 97.3 / 101.1 / 6.5 Mbps.
        assert!(
            (mbps(p[0].base_rate) - 97.3).abs() < 1.0,
            "{}",
            mbps(p[0].base_rate)
        );
        assert!(
            (mbps(p[1].base_rate) - 101.1).abs() < 1.0,
            "{}",
            mbps(p[1].base_rate)
        );
        assert!(
            (mbps(p[2].base_rate) - 6.5).abs() < 0.2,
            "{}",
            mbps(p[2].base_rate)
        );

        // Effective rates: 9.7 / 11.4 / 5.1; total 26.4.
        assert!((mbps(p[0].rate) - 9.7).abs() < 0.3, "{}", mbps(p[0].rate));
        assert!((mbps(p[1].rate) - 11.4).abs() < 0.3, "{}", mbps(p[1].rate));
        assert!((mbps(p[2].rate) - 5.1).abs() < 0.3, "{}", mbps(p[2].rate));
        assert!(
            (mbps(total_rate(&p)) - 26.4).abs() < 0.8,
            "{}",
            mbps(total_rate(&p))
        );
    }

    /// Table 1, airtime-fairness rows: aggregation 18.44 / 18.52 / 1.89,
    /// predicted rates 42.2 / 42.3 / 2.2 Mbps, total 86.8.
    #[test]
    fn table1_fairness_matches_paper() {
        let stations = [
            ModelStation::new(18.44, PhyRate::fast_station()),
            ModelStation::new(18.52, PhyRate::fast_station()),
            ModelStation::new(1.89, PhyRate::slow_station()),
        ];
        let p = predict(&stations, true);

        for pred in &p {
            assert!((pred.airtime_share - 1.0 / 3.0).abs() < 1e-9);
        }
        // Base rates: 126.7 / 126.8 / 6.5.
        assert!(
            (mbps(p[0].base_rate) - 126.7).abs() < 1.0,
            "{}",
            mbps(p[0].base_rate)
        );
        assert!(
            (mbps(p[1].base_rate) - 126.8).abs() < 1.0,
            "{}",
            mbps(p[1].base_rate)
        );
        // Effective rates: 42.2 / 42.3 / 2.2; total 86.8.
        assert!((mbps(p[0].rate) - 42.2).abs() < 0.5, "{}", mbps(p[0].rate));
        assert!((mbps(p[1].rate) - 42.3).abs() < 0.5, "{}", mbps(p[1].rate));
        assert!((mbps(p[2].rate) - 2.2).abs() < 0.2, "{}", mbps(p[2].rate));
        assert!(
            (mbps(total_rate(&p)) - 86.8).abs() < 1.5,
            "{}",
            mbps(total_rate(&p))
        );
    }

    #[test]
    fn fairness_multiplies_total_throughput() {
        // Table 1's totals: 26.4 → 86.8 predicted (the "up to 5×" headline
        // includes the 30-station case). Check direction and magnitude.
        let baseline = predict(
            &[
                ModelStation::new(4.47, PhyRate::fast_station()),
                ModelStation::new(5.08, PhyRate::fast_station()),
                ModelStation::new(1.89, PhyRate::slow_station()),
            ],
            false,
        );
        let fair = predict(
            &[
                ModelStation::new(18.44, PhyRate::fast_station()),
                ModelStation::new(18.52, PhyRate::fast_station()),
                ModelStation::new(1.89, PhyRate::slow_station()),
            ],
            true,
        );
        let gain = total_rate(&fair) / total_rate(&baseline);
        assert!((3.0..4.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn base_rate_monotone_in_aggregation() {
        let r = PhyRate::fast_station();
        let mut last = 0.0;
        for n in 1..=42 {
            let rate = base_rate(n as f64, 1500, r);
            assert!(rate > last, "rate must grow with aggregation");
            last = rate;
        }
        // Diminishing returns: asymptote below the PHY rate.
        assert!(last < r.bits_per_second() as f64);
    }

    #[test]
    fn base_rate_approaches_phy_rate_less_framing() {
        // At huge aggregation the overheads wash out; the remaining gap is
        // A-MPDU framing (1544/1500) and the PHY preamble.
        let r = PhyRate::fast_station();
        let rate = base_rate(1000.0, 1500, r);
        let framing_bound = r.bits_per_second() as f64 * 1500.0 / 1544.0;
        assert!(rate < framing_bound);
        assert!(rate > framing_bound * 0.95);
    }

    #[test]
    fn zero_aggregation_rate_is_zero() {
        assert_eq!(base_rate(0.0, 1500, PhyRate::fast_station()), 0.0);
    }

    #[test]
    fn anomaly_shares_follow_tdata_ratio() {
        // Two stations, one ~20× slower per bit: without fairness the slow
        // one dominates airtime.
        let stations = [
            ModelStation::new(10.0, PhyRate::fast_station()),
            ModelStation::new(10.0, PhyRate::ht(0, wifiq_phy::ChannelWidth::Ht20, true)),
        ];
        let p = predict(&stations, false);
        assert!(p[1].airtime_share > 0.85, "{}", p[1].airtime_share);
        assert!((p[0].airtime_share + p[1].airtime_share - 1.0).abs() < 1e-9);
    }
}
