//! Deterministic, seeded fault injection for the wifiq stack.
//!
//! The paper's queueing structure is specifically designed to stay
//! well-behaved when conditions degrade: CoDel parameters switch to
//! (target 50 ms, interval 300 ms) when a station's rate estimate drops
//! below 12 Mbps with 2 s hysteresis (§3.1.1), and the airtime scheduler
//! must hold Jain fairness when a link collapses — the exact regime the
//! anomaly literature studies. This crate drives the simulator into
//! those regimes systematically instead of ad hoc per binary.
//!
//! # Model
//!
//! A [`FaultSchedule`] is a list of [`FaultEntry`] items: a sim-time
//! window, a [`FaultTarget`], and an [`Impairment`]. The schedule is
//! plain data — it can be built in code (via the `ScenarioBuilder` in
//! wifiq-mac) or decoded from a scenario file — and is interpreted at
//! run time by a [`ChaosInjector`] owned by the network event loop.
//!
//! # Determinism
//!
//! All chaos randomness comes from streams forked from the *master*
//! seed with a chaos-private salt, one stream per station. The main
//! simulation RNG never sees a chaos draw, so:
//!
//! - a run with an empty (or zero-intensity) schedule is byte-identical
//!   to a run with no chaos at all (`chaos-off == chaos-absent`), and
//! - results are independent of shard/worker count, exactly like
//!   wifiq-scale's per-shard seed split.
//!
//! Per-station streams also mean an impairment aimed at station A never
//! perturbs the loss pattern seen by station B.

mod inject;
mod schedule;

pub use inject::ChaosInjector;
pub use schedule::{FaultEntry, FaultSchedule, FaultTarget, Impairment};
