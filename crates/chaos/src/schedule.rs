//! The fault schedule: plain-data description of what goes wrong, when,
//! and to whom.

use wifiq_phy::PhyRate;
use wifiq_sim::Nanos;

/// Who an impairment applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// One station, by slot index.
    Station(usize),
    /// Every associated station.
    AllStations,
}

impl FaultTarget {
    /// Whether this target covers station `sta`.
    pub fn covers(&self, sta: usize) -> bool {
        match *self {
            FaultTarget::Station(s) => s == sta,
            FaultTarget::AllStations => true,
        }
    }
}

/// One kind of induced degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Impairment {
    /// Gilbert–Elliott two-state burst loss on the station's channel.
    /// Each exchange first moves the chain (`p_enter`: good→bad,
    /// `p_exit`: bad→good), then fails with the current state's loss
    /// probability. `p_exit = 1, p_enter = 0` degenerates to uniform
    /// i.i.d. loss at `loss_good`.
    BurstLoss {
        /// Probability of entering the bad state per exchange.
        p_enter: f64,
        /// Probability of leaving the bad state per exchange.
        p_exit: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
    /// Pin the station's PHY rate to `rate` for the window — the input
    /// that drives the §3.1.1 CoDel parameter switch when `rate` falls
    /// below 12 Mbps.
    RateCollapse {
        /// Rate during the window.
        rate: PhyRate,
    },
    /// Alternate between `low` and the configured rate every `period`
    /// of sim time (low phase first).
    RateOscillate {
        /// Rate during the low half-periods.
        low: PhyRate,
        /// Length of one half-period.
        period: Nanos,
    },
    /// Black-hole window: every exchange involving the station fails.
    Stall,
    /// Hardware backpressure spike: the AP's hardware queue depth is
    /// clamped to `depth` aggregates (global, target is ignored).
    HwBackpressure {
        /// Effective queue depth during the window (≥ 1).
        depth: usize,
    },
    /// The data frame arrives but the (Block)ACK is lost with
    /// probability `prob`; the sender retries as if the exchange failed.
    AckLoss {
        /// ACK loss probability per exchange.
        prob: f64,
    },
}

impl Impairment {
    /// Uniform i.i.d. loss at probability `p`, expressed as a degenerate
    /// Gilbert–Elliott chain.
    pub fn uniform_loss(p: f64) -> Impairment {
        Impairment::BurstLoss {
            p_enter: 0.0,
            p_exit: 1.0,
            loss_good: p,
            loss_bad: p,
        }
    }

    /// Bursty loss with mean burst length `burst_len` exchanges and the
    /// given loss probability inside a burst; clean between bursts. The
    /// entry probability is chosen so the long-run fraction of time in
    /// the bad state is `bad_frac`.
    pub fn bursty_loss(bad_frac: f64, burst_len: f64, loss_bad: f64) -> Impairment {
        assert!(burst_len >= 1.0, "burst length below one exchange");
        assert!((0.0..1.0).contains(&bad_frac), "bad_frac must be in [0,1)");
        let p_exit = 1.0 / burst_len;
        // Stationary bad fraction = p_enter / (p_enter + p_exit).
        let p_enter = if bad_frac == 0.0 {
            0.0
        } else {
            p_exit * bad_frac / (1.0 - bad_frac)
        };
        Impairment::BurstLoss {
            p_enter,
            p_exit,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// Stable identifier used in telemetry counters and scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            Impairment::BurstLoss { .. } => "burst_loss",
            Impairment::RateCollapse { .. } => "rate_collapse",
            Impairment::RateOscillate { .. } => "rate_oscillate",
            Impairment::Stall => "stall",
            Impairment::HwBackpressure { .. } => "hw_backpressure",
            Impairment::AckLoss { .. } => "ack_loss",
        }
    }

    fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{}: probability {p} outside [0, 1]", name))
            }
        };
        match *self {
            Impairment::BurstLoss {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                prob("burst_loss.p_enter", p_enter)?;
                prob("burst_loss.p_exit", p_exit)?;
                prob("burst_loss.loss_good", loss_good)?;
                prob("burst_loss.loss_bad", loss_bad)
            }
            Impairment::RateOscillate { period, .. } => {
                if period == Nanos::ZERO {
                    Err("rate_oscillate: zero period".into())
                } else {
                    Ok(())
                }
            }
            Impairment::HwBackpressure { depth } => {
                if depth == 0 {
                    Err("hw_backpressure: depth must be ≥ 1".into())
                } else {
                    Ok(())
                }
            }
            Impairment::AckLoss { prob: p } => prob("ack_loss.prob", p),
            Impairment::RateCollapse { .. } | Impairment::Stall => Ok(()),
        }
    }
}

/// One scheduled impairment: a half-open sim-time window `[from, until)`
/// applied to a target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEntry {
    /// Window start (inclusive).
    pub from: Nanos,
    /// Window end (exclusive).
    pub until: Nanos,
    /// Who is impaired.
    pub target: FaultTarget,
    /// What goes wrong.
    pub impairment: Impairment,
}

impl FaultEntry {
    /// Creates an entry; `until` may equal `from` for a no-op window.
    pub fn new(from: Nanos, until: Nanos, target: FaultTarget, impairment: Impairment) -> Self {
        FaultEntry {
            from,
            until,
            target,
            impairment,
        }
    }

    /// Whether the window covers `now`.
    pub fn active(&self, now: Nanos) -> bool {
        self.from <= now && now < self.until
    }

    fn validate(&self) -> Result<(), String> {
        if self.until < self.from {
            return Err(format!(
                "window ends before it starts: {} .. {}",
                self.from, self.until
            ));
        }
        self.impairment.validate()
    }
}

/// An ordered list of fault entries. Entry order is part of the
/// contract: chaos RNG draws are made in schedule order per exchange,
/// so the same schedule always replays the same decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    entries: Vec<FaultEntry>,
}

impl FaultSchedule {
    /// An empty schedule (chaos off).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: FaultEntry) {
        self.entries.push(entry);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, entry: FaultEntry) -> FaultSchedule {
        self.push(entry);
        self
    }

    /// Whether the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in declaration order.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Checks every entry for malformed parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.entries.iter().enumerate() {
            e.validate()
                .map_err(|msg| format!("fault entry {i}: {msg}"))?;
        }
        Ok(())
    }

    /// The latest rate-fault window for `sta` ending at or before `now`
    /// — used to measure time-to-recover after a rate restore.
    pub fn last_rate_restore_before(&self, sta: usize, now: Nanos) -> Option<Nanos> {
        self.entries
            .iter()
            .filter(|e| {
                e.target.covers(sta)
                    && matches!(
                        e.impairment,
                        Impairment::RateCollapse { .. } | Impairment::RateOscillate { .. }
                    )
                    && e.until <= now
            })
            .map(|e| e.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let e = FaultEntry::new(
            Nanos::from_secs(1),
            Nanos::from_secs(2),
            FaultTarget::Station(0),
            Impairment::Stall,
        );
        assert!(!e.active(Nanos::from_millis(999)));
        assert!(e.active(Nanos::from_secs(1)));
        assert!(e.active(Nanos::from_millis(1999)));
        assert!(!e.active(Nanos::from_secs(2)));
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        let sched = FaultSchedule::none().with(FaultEntry::new(
            Nanos::ZERO,
            Nanos::from_secs(1),
            FaultTarget::AllStations,
            Impairment::AckLoss { prob: 1.5 },
        ));
        assert!(sched.validate().is_err());
        let sched = FaultSchedule::none().with(FaultEntry::new(
            Nanos::from_secs(2),
            Nanos::from_secs(1),
            FaultTarget::Station(0),
            Impairment::Stall,
        ));
        assert!(sched.validate().is_err());
        let sched = FaultSchedule::none().with(FaultEntry::new(
            Nanos::ZERO,
            Nanos::from_secs(1),
            FaultTarget::AllStations,
            Impairment::HwBackpressure { depth: 0 },
        ));
        assert!(sched.validate().is_err());
    }

    #[test]
    fn bursty_loss_stationary_fraction() {
        let Impairment::BurstLoss {
            p_enter, p_exit, ..
        } = Impairment::bursty_loss(0.25, 8.0, 0.9)
        else {
            panic!("wrong variant")
        };
        let frac = p_enter / (p_enter + p_exit);
        assert!((frac - 0.25).abs() < 1e-9, "stationary fraction {frac}");
        assert!((p_exit - 0.125).abs() < 1e-9, "mean burst length mismatch");
    }

    #[test]
    fn last_rate_restore_picks_latest_window() {
        let sched = FaultSchedule::none()
            .with(FaultEntry::new(
                Nanos::from_secs(1),
                Nanos::from_secs(2),
                FaultTarget::Station(0),
                Impairment::RateCollapse {
                    rate: PhyRate::slow_station(),
                },
            ))
            .with(FaultEntry::new(
                Nanos::from_secs(3),
                Nanos::from_secs(4),
                FaultTarget::Station(0),
                Impairment::RateCollapse {
                    rate: PhyRate::slow_station(),
                },
            ));
        assert_eq!(
            sched.last_rate_restore_before(0, Nanos::from_secs(10)),
            Some(Nanos::from_secs(4))
        );
        assert_eq!(
            sched.last_rate_restore_before(0, Nanos::from_secs(3)),
            Some(Nanos::from_secs(2))
        );
        assert_eq!(
            sched.last_rate_restore_before(1, Nanos::from_secs(10)),
            None
        );
    }
}
