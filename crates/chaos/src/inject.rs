//! The runtime interpreter of a [`FaultSchedule`].
//!
//! The injector is the zero-cost-when-off handle the network event loop
//! holds (the same shape as `Telemetry::disabled()`): with an empty
//! schedule every query is a branch on a `None` and returns immediately,
//! drawing nothing, so the hot path is untouched.

use wifiq_phy::PhyRate;
use wifiq_sim::{Nanos, SimRng};
use wifiq_telemetry::{Label, Telemetry};

use crate::schedule::{FaultSchedule, Impairment};

/// Salt mixed into the master seed for the chaos-private RNG streams.
/// Must differ from every other fork salt derived from the same seed
/// (stations fork from the *network's* stream, not from a fresh one, so
/// a plain per-seed constant suffices).
const CHAOS_SEED_SALT: u64 = 0xC4A0_5EED;

/// Gilbert–Elliott chain state for one (entry, station) pair.
#[derive(Debug, Clone, Copy, Default)]
struct GeState {
    bad: bool,
}

/// Per-station bookkeeping that exists only while chaos is on.
#[derive(Debug)]
struct StationState {
    /// Chaos-private RNG stream; all draws for this station come from
    /// here, in schedule-entry order, so per-station decisions are
    /// independent of every other station's impairments.
    rng: SimRng,
    /// Current run of consecutive forced losses (burst-length metric).
    loss_run: u64,
    /// Last CoDel degraded-state observation (recovery tracking).
    was_degraded: bool,
}

#[derive(Debug)]
struct ChaosState {
    schedule: FaultSchedule,
    stations: Vec<StationState>,
    /// GE chain per schedule entry × station: `ge[entry][sta]`.
    ge: Vec<Vec<GeState>>,
    /// Seed the per-station streams are forked from (stable across
    /// churn: station `i` always gets the same stream).
    master_seed: u64,
    tele: Telemetry,
}

impl ChaosState {
    fn ensure_station(&mut self, sta: usize) {
        while self.stations.len() <= sta {
            let idx = self.stations.len() as u64;
            self.stations.push(StationState {
                rng: SimRng::stream(self.master_seed ^ CHAOS_SEED_SALT, idx + 1),
                loss_run: 0,
                was_degraded: false,
            });
            for chain in &mut self.ge {
                chain.push(GeState::default());
            }
        }
    }
}

/// Interprets a [`FaultSchedule`] against the running simulation.
///
/// Queries are made by the network event loop at its injection points;
/// every method is a no-op returning the "unimpaired" answer when the
/// injector is off.
#[derive(Debug, Default)]
pub struct ChaosInjector {
    inner: Option<Box<ChaosState>>,
}

impl ChaosInjector {
    /// An injector with no schedule: every query is free and inert.
    pub fn off() -> ChaosInjector {
        ChaosInjector { inner: None }
    }

    /// Builds an injector for `num_stations` stations from a schedule
    /// and the run's master seed. An empty schedule yields
    /// [`off`](Self::off).
    ///
    /// # Panics
    ///
    /// Panics if the schedule fails [`FaultSchedule::validate`] — a
    /// malformed schedule is a configuration bug, not a runtime
    /// condition.
    pub fn from_schedule(
        schedule: &FaultSchedule,
        seed: u64,
        num_stations: usize,
    ) -> ChaosInjector {
        if schedule.is_empty() {
            return ChaosInjector::off();
        }
        if let Err(msg) = schedule.validate() {
            panic!("invalid fault schedule: {msg}");
        }
        let mut state = ChaosState {
            ge: vec![Vec::new(); schedule.entries().len()],
            schedule: schedule.clone(),
            stations: Vec::new(),
            master_seed: seed,
            tele: Telemetry::disabled(),
        };
        state.ensure_station(num_stations.saturating_sub(1));
        ChaosInjector {
            inner: Some(Box::new(state)),
        }
    }

    /// Whether any schedule is loaded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches telemetry (chaos counters live under component "chaos").
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        if let Some(st) = self.inner.as_mut() {
            st.tele = tele;
        }
    }

    /// Grows per-station state when churn adds a station slot.
    pub fn ensure_station(&mut self, sta: usize) {
        if let Some(st) = self.inner.as_mut() {
            st.ensure_station(sta);
        }
    }

    /// Whether an exchange involving `sta` at `now` is forced to fail
    /// (burst loss, stall window, or ACK loss). Draws come from the
    /// station's chaos stream in schedule order; the caller's RNG is
    /// never touched.
    #[inline]
    pub fn exchange_lost(&mut self, sta: usize, now: Nanos) -> bool {
        let Some(st) = self.inner.as_mut() else {
            return false;
        };
        st.ensure_station(sta);
        let mut lost = false;
        let mut stalled = false;
        let mut burst = false;
        let mut ack = false;
        for (i, e) in st.schedule.entries().iter().enumerate() {
            if !e.active(now) || !e.target.covers(sta) {
                continue;
            }
            match e.impairment {
                Impairment::Stall => {
                    stalled = true;
                    lost = true;
                }
                Impairment::BurstLoss {
                    p_enter,
                    p_exit,
                    loss_good,
                    loss_bad,
                } => {
                    // Advance the chain on every covered exchange so the
                    // burst structure is a property of the channel, not
                    // of earlier entries' outcomes.
                    let chain = &mut st.ge[i][sta];
                    let sr = &mut st.stations[sta].rng;
                    chain.bad = if chain.bad {
                        !sr.chance(p_exit)
                    } else {
                        sr.chance(p_enter)
                    };
                    let p = if chain.bad { loss_bad } else { loss_good };
                    if sr.chance(p) {
                        burst = true;
                        lost = true;
                    }
                }
                Impairment::AckLoss { prob } => {
                    if st.stations[sta].rng.chance(prob) {
                        ack = true;
                        lost = true;
                    }
                }
                Impairment::RateCollapse { .. }
                | Impairment::RateOscillate { .. }
                | Impairment::HwBackpressure { .. } => {}
            }
        }
        let sl = Label::Station(sta as u32);
        if stalled {
            st.tele.count("chaos", "stalled_exchanges", sl, 1);
        }
        if burst {
            st.tele.count("chaos", "forced_loss", sl, 1);
        }
        if ack {
            st.tele.count("chaos", "acks_lost", sl, 1);
        }
        // Burst-length histogram: a clean exchange ends the current run.
        let sta_st = &mut st.stations[sta];
        if lost {
            sta_st.loss_run += 1;
        } else if sta_st.loss_run > 0 {
            st.tele
                .observe_value("chaos", "loss_burst_len", sl, sta_st.loss_run);
            sta_st.loss_run = 0;
        }
        lost
    }

    /// The station's impaired PHY rate at `now`, if a rate fault is
    /// active. `None` means "use the configured / controller rate".
    /// Draw-free, so safe to call from multiple sites per exchange.
    #[inline]
    pub fn rate_override(&self, sta: usize, now: Nanos) -> Option<PhyRate> {
        let st = self.inner.as_deref()?;
        let mut rate = None;
        for e in st.schedule.entries() {
            if !e.active(now) || !e.target.covers(sta) {
                continue;
            }
            match e.impairment {
                Impairment::RateCollapse { rate: r } => rate = Some(r),
                Impairment::RateOscillate { low, period } => {
                    let phase = (now - e.from).as_nanos() / period.as_nanos();
                    if phase.is_multiple_of(2) {
                        rate = Some(low);
                    }
                }
                _ => {}
            }
        }
        rate
    }

    /// Counts one aggregate built at an overridden rate.
    #[inline]
    pub fn note_rate_override(&self, sta: usize) {
        if let Some(st) = self.inner.as_deref() {
            st.tele
                .count("chaos", "rate_overrides", Label::Station(sta as u32), 1);
        }
    }

    /// The clamped hardware queue depth at `now`, if a backpressure
    /// spike is active (the tightest of overlapping spikes wins).
    #[inline]
    pub fn hw_depth_clamp(&self, now: Nanos) -> Option<usize> {
        let st = self.inner.as_deref()?;
        let mut clamp = None;
        for e in st.schedule.entries() {
            if let Impairment::HwBackpressure { depth } = e.impairment {
                if e.active(now) {
                    clamp = Some(clamp.map_or(depth, |c: usize| c.min(depth)));
                }
            }
        }
        if clamp.is_some() {
            st.tele
                .count("chaos", "hw_clamped_rounds", Label::Global, 1);
        }
        clamp
    }

    /// Feeds the station's current CoDel degraded state so the injector
    /// can measure time-to-recover: when the §3.1.1 switch releases
    /// after a rate-fault window ended, the gap between the restore and
    /// the release lands in the `chaos/recovery_ms` histogram.
    #[inline]
    pub fn observe_codel(&mut self, sta: usize, degraded: bool, now: Nanos) {
        let Some(st) = self.inner.as_mut() else {
            return;
        };
        st.ensure_station(sta);
        let was = st.stations[sta].was_degraded;
        st.stations[sta].was_degraded = degraded;
        let sl = Label::Station(sta as u32);
        if degraded && !was {
            st.tele.count("chaos", "codel_degraded_entries", sl, 1);
        }
        if !degraded && was {
            st.tele.count("chaos", "codel_recoveries", sl, 1);
            if let Some(restored) = st.schedule.last_rate_restore_before(sta, now) {
                let ms = now.saturating_sub(restored).as_nanos() / 1_000_000;
                st.tele.observe_value("chaos", "recovery_ms", sl, ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEntry, FaultTarget};

    fn window(secs: (u64, u64), target: FaultTarget, imp: Impairment) -> FaultEntry {
        FaultEntry::new(
            Nanos::from_secs(secs.0),
            Nanos::from_secs(secs.1),
            target,
            imp,
        )
    }

    #[test]
    fn empty_schedule_is_off() {
        let inj = ChaosInjector::from_schedule(&FaultSchedule::none(), 1, 3);
        assert!(!inj.is_enabled());
    }

    #[test]
    fn stall_fails_everything_in_window_only() {
        let sched =
            FaultSchedule::none().with(window((1, 2), FaultTarget::Station(0), Impairment::Stall));
        let mut inj = ChaosInjector::from_schedule(&sched, 1, 2);
        assert!(!inj.exchange_lost(0, Nanos::from_millis(500)));
        assert!(inj.exchange_lost(0, Nanos::from_millis(1500)));
        assert!(
            !inj.exchange_lost(1, Nanos::from_millis(1500)),
            "wrong target"
        );
        assert!(!inj.exchange_lost(0, Nanos::from_millis(2500)));
    }

    #[test]
    fn uniform_loss_rate_is_close() {
        let sched = FaultSchedule::none().with(window(
            (0, 1000),
            FaultTarget::AllStations,
            Impairment::uniform_loss(0.3),
        ));
        let mut inj = ChaosInjector::from_schedule(&sched, 7, 1);
        let n = 20_000;
        let lost = (0..n)
            .filter(|i| inj.exchange_lost(0, Nanos::from_micros(*i)))
            .count();
        let frac = lost as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "loss fraction {frac}");
    }

    #[test]
    fn bursty_loss_clusters() {
        // Same overall bad-state share, very different burst structure:
        // the bursty chain must produce longer loss runs.
        let run_lengths = |imp: Impairment| {
            let sched = FaultSchedule::none().with(window((0, 1000), FaultTarget::Station(0), imp));
            let mut inj = ChaosInjector::from_schedule(&sched, 11, 1);
            let mut runs = Vec::new();
            let mut run = 0u64;
            for i in 0..50_000u64 {
                if inj.exchange_lost(0, Nanos::from_micros(i)) {
                    run += 1;
                } else if run > 0 {
                    runs.push(run);
                    run = 0;
                }
            }
            runs
        };
        let bursty = run_lengths(Impairment::bursty_loss(0.2, 16.0, 1.0));
        let uniform = run_lengths(Impairment::uniform_loss(0.2));
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&bursty) > mean(&uniform) * 3.0,
            "bursty {} vs uniform {}",
            mean(&bursty),
            mean(&uniform)
        );
    }

    #[test]
    fn per_station_streams_are_independent() {
        // Adding an impairment for station 1 must not change station 0's
        // loss decisions.
        let base = FaultSchedule::none().with(window(
            (0, 1000),
            FaultTarget::Station(0),
            Impairment::uniform_loss(0.5),
        ));
        let extended = base.clone().with(window(
            (0, 1000),
            FaultTarget::Station(1),
            Impairment::uniform_loss(0.5),
        ));
        let mut a = ChaosInjector::from_schedule(&base, 3, 2);
        let mut b = ChaosInjector::from_schedule(&extended, 3, 2);
        for i in 0..5_000u64 {
            let now = Nanos::from_micros(i);
            // Interleave station 1 queries on the extended injector.
            let _ = b.exchange_lost(1, now);
            assert_eq!(a.exchange_lost(0, now), b.exchange_lost(0, now), "at {i}");
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let sched = FaultSchedule::none().with(window(
            (0, 1000),
            FaultTarget::AllStations,
            Impairment::bursty_loss(0.3, 8.0, 0.9),
        ));
        let mut a = ChaosInjector::from_schedule(&sched, 42, 2);
        let mut b = ChaosInjector::from_schedule(&sched, 42, 2);
        for i in 0..5_000u64 {
            let now = Nanos::from_micros(i);
            assert_eq!(
                a.exchange_lost(i as usize % 2, now),
                b.exchange_lost(i as usize % 2, now)
            );
        }
    }

    #[test]
    fn rate_override_and_oscillation() {
        let slow = PhyRate::slow_station();
        let sched = FaultSchedule::none()
            .with(window(
                (1, 2),
                FaultTarget::Station(0),
                Impairment::RateCollapse { rate: slow },
            ))
            .with(window(
                (10, 20),
                FaultTarget::Station(0),
                Impairment::RateOscillate {
                    low: slow,
                    period: Nanos::from_secs(1),
                },
            ));
        let inj = ChaosInjector::from_schedule(&sched, 1, 1);
        assert_eq!(inj.rate_override(0, Nanos::from_millis(500)), None);
        assert_eq!(inj.rate_override(0, Nanos::from_millis(1500)), Some(slow));
        assert_eq!(inj.rate_override(1, Nanos::from_millis(1500)), None);
        // Oscillation: low phase first, configured rate in odd phases.
        assert_eq!(inj.rate_override(0, Nanos::from_millis(10_500)), Some(slow));
        assert_eq!(inj.rate_override(0, Nanos::from_millis(11_500)), None);
        assert_eq!(inj.rate_override(0, Nanos::from_millis(12_500)), Some(slow));
    }

    #[test]
    fn hw_depth_clamp_takes_tightest() {
        let sched = FaultSchedule::none()
            .with(window(
                (0, 10),
                FaultTarget::AllStations,
                Impairment::HwBackpressure { depth: 2 },
            ))
            .with(window(
                (5, 10),
                FaultTarget::AllStations,
                Impairment::HwBackpressure { depth: 1 },
            ));
        let inj = ChaosInjector::from_schedule(&sched, 1, 1);
        assert_eq!(inj.hw_depth_clamp(Nanos::from_secs(1)), Some(2));
        assert_eq!(inj.hw_depth_clamp(Nanos::from_secs(6)), Some(1));
        assert_eq!(inj.hw_depth_clamp(Nanos::from_secs(11)), None);
    }

    #[test]
    fn recovery_histogram_measures_restore_to_release() {
        let slow = PhyRate::slow_station();
        let sched = FaultSchedule::none().with(window(
            (1, 5),
            FaultTarget::Station(0),
            Impairment::RateCollapse { rate: slow },
        ));
        let mut inj = ChaosInjector::from_schedule(&sched, 1, 1);
        let tele = Telemetry::enabled();
        inj.set_telemetry(tele.clone());
        // Engage during the window, release 1.5 s after the restore.
        inj.observe_codel(0, true, Nanos::from_secs(2));
        inj.observe_codel(0, true, Nanos::from_secs(4));
        inj.observe_codel(0, false, Nanos::from_millis(6_500));
        assert_eq!(
            tele.counter("chaos", "codel_recoveries", Label::Station(0)),
            1
        );
        let p50 = tele
            .with_registry(|r| {
                r.hist("chaos", "recovery_ms", Label::Station(0))
                    .map(|h| h.quantile(0.5))
            })
            .flatten()
            .expect("recovery histogram recorded");
        // 6.5 s release − 5 s restore = 1.5 s, within histogram bucket error.
        assert!((1_300..=1_700).contains(&p50), "recovery p50 {p50}");
    }
}
