//! Per-station airtime metering.
//!
//! The paper's implementation reads per-packet durations from a hardware
//! register (or computes them from length and rate); the simulator knows
//! the exact exchange durations, so the meter simply accumulates them.
//! §4.1.5 validates the kernel's meter against monitor-mode captures to
//! within 1.5% — here the meter *is* ground truth.

use wifiq_sim::Nanos;

/// Airtime and frame accounting for one station.
#[derive(Debug, Clone, Copy, Default)]
pub struct StationMeter {
    /// Airtime consumed by AP→station transmissions (including retries).
    pub tx_airtime: Nanos,
    /// Airtime consumed by station→AP transmissions (including retries).
    pub rx_airtime: Nanos,
    /// Downlink frames delivered.
    pub tx_frames: u64,
    /// Downlink payload bytes delivered.
    pub tx_bytes: u64,
    /// Uplink frames received.
    pub rx_frames: u64,
    /// Uplink payload bytes received.
    pub rx_bytes: u64,
    /// Downlink aggregates successfully transmitted.
    pub tx_aggregates: u64,
    /// Sum of frames over those aggregates (for the mean aggregation
    /// size that feeds the analytical model, Table 1).
    pub tx_aggregate_frames: u64,
    /// Failed exchanges (collisions or channel errors) involving this
    /// station, either direction.
    pub failures: u64,
    /// Frames dropped after exhausting retries.
    pub retry_drops: u64,
}

impl StationMeter {
    /// Total airtime used by this station in both directions.
    pub fn total_airtime(&self) -> Nanos {
        self.tx_airtime + self.rx_airtime
    }

    /// Mean number of MPDUs per successfully transmitted downlink
    /// aggregate (the "Aggr size" column of Table 1).
    pub fn mean_aggregation(&self) -> f64 {
        if self.tx_aggregates == 0 {
            0.0
        } else {
            self.tx_aggregate_frames as f64 / self.tx_aggregates as f64
        }
    }
}

/// The collection of per-station meters.
#[derive(Debug, Clone, Default)]
pub struct AirtimeMeter {
    stations: Vec<StationMeter>,
}

impl AirtimeMeter {
    /// Creates meters for `n` stations.
    pub fn new(n: usize) -> AirtimeMeter {
        AirtimeMeter {
            stations: vec![StationMeter::default(); n],
        }
    }

    /// Grows the meter table through slot `i` (new slots zeroed) — used
    /// when a station joins after construction.
    pub fn ensure_station(&mut self, i: usize) {
        if i >= self.stations.len() {
            self.stations.resize(i + 1, StationMeter::default());
        }
    }

    /// Zeroes slot `i`, so a rejoining station's meter starts fresh
    /// rather than inheriting the departed occupant's totals.
    pub fn reset_station(&mut self, i: usize) {
        self.stations[i] = StationMeter::default();
    }

    /// Mutable access to one station's meter.
    pub fn station_mut(&mut self, i: usize) -> &mut StationMeter {
        &mut self.stations[i]
    }

    /// One station's meter.
    pub fn station(&self, i: usize) -> &StationMeter {
        &self.stations[i]
    }

    /// All meters, indexed by station.
    pub fn all(&self) -> &[StationMeter] {
        &self.stations
    }

    /// Each station's share of the total airtime used (sums to 1 when any
    /// airtime was used) — the quantity plotted in Figures 5 and 9.
    pub fn airtime_shares(&self) -> Vec<f64> {
        let total: Nanos = self.stations.iter().map(|s| s.total_airtime()).sum();
        if total.is_zero() {
            return vec![0.0; self.stations.len()];
        }
        self.stations
            .iter()
            .map(|s| s.total_airtime().as_nanos() as f64 / total.as_nanos() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut m = AirtimeMeter::new(3);
        m.station_mut(0).tx_airtime = Nanos::from_millis(10);
        m.station_mut(1).tx_airtime = Nanos::from_millis(30);
        m.station_mut(2).rx_airtime = Nanos::from_millis(60);
        let shares = m.airtime_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((shares[0] - 0.1).abs() < 1e-9);
        assert!((shares[2] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_airtime_gives_zero_shares() {
        let m = AirtimeMeter::new(2);
        assert_eq!(m.airtime_shares(), vec![0.0, 0.0]);
    }

    #[test]
    fn mean_aggregation() {
        let mut s = StationMeter::default();
        assert_eq!(s.mean_aggregation(), 0.0);
        s.tx_aggregates = 4;
        s.tx_aggregate_frames = 50;
        assert!((s.mean_aggregation() - 12.5).abs() < 1e-9);
    }
}
