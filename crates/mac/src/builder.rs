//! The fluent scenario builder — the single construction path for
//! [`NetworkConfig`].
//!
//! Every experiment binary, scenario file, and test builds its network
//! through this API instead of hand-rolling `NetworkConfig` /
//! [`StationCfg`] literals: station rosters via the `*_station`
//! methods, the paper's testbeds via [`Preset`], impairments via
//! [`fault`](ScenarioBuilder::fault).
//!
//! ```
//! use wifiq_mac::{NetworkConfig, Preset, SchemeKind};
//! use wifiq_mac::{FaultEntry, FaultTarget, Impairment};
//! use wifiq_sim::Nanos;
//!
//! let cfg = NetworkConfig::builder()
//!     .preset(Preset::PaperTestbed)
//!     .scheme(SchemeKind::AirtimeFair)
//!     .seed(7)
//!     .fault(FaultEntry::new(
//!         Nanos::from_secs(5),
//!         Nanos::from_secs(15),
//!         FaultTarget::Station(2),
//!         Impairment::uniform_loss(0.3),
//!     ))
//!     .build();
//! assert_eq!(cfg.num_stations(), 3);
//! ```

use wifiq_chaos::{FaultEntry, FaultSchedule};
use wifiq_core::scheduler::AirtimeParams;
use wifiq_core::FqParams;
use wifiq_phy::{LegacyRate, PhyRate};
use wifiq_policy::{PolicySet, PolicyTimeline};
use wifiq_sim::Nanos;

use crate::config::{ErrorModel, NetworkConfig, SchemeKind, StationCfg};

/// Canned station rosters for the paper's testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// §4's main testbed: two fast stations (MCS15 HT20 SGI) and one
    /// slow station (MCS0).
    PaperTestbed,
    /// The 4-station variant (§4.1.4, §4.2.1): the main testbed plus
    /// one additional fast station.
    PaperTestbed4,
    /// The third-party 30-station testbed (§4.1.5): one 1 Mbps legacy
    /// client plus 29 fast clients.
    Testbed30,
}

/// Fluent builder returned by [`NetworkConfig::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cfg: NetworkConfig,
}

impl ScenarioBuilder {
    /// An empty scenario (no stations yet) with the paper's defaults
    /// and the airtime-fair scheme.
    pub fn new() -> ScenarioBuilder {
        ScenarioBuilder {
            cfg: NetworkConfig::new(Vec::new(), SchemeKind::AirtimeFair),
        }
    }

    /// Replaces the station roster with a preset testbed (knobs and
    /// faults set so far are kept).
    pub fn preset(mut self, preset: Preset) -> Self {
        self.cfg.stations.clear();
        match preset {
            Preset::PaperTestbed | Preset::PaperTestbed4 => {
                self = self
                    .station(PhyRate::fast_station())
                    .station(PhyRate::fast_station())
                    .station(PhyRate::slow_station());
                if preset == Preset::PaperTestbed4 {
                    self = self.station(PhyRate::fast_station());
                }
                self
            }
            Preset::Testbed30 => {
                self = self.station(PhyRate::Legacy(LegacyRate::Dsss1));
                for _ in 0..29 {
                    self = self.station(PhyRate::fast_station());
                }
                self
            }
        }
    }

    /// The queue-management scheme under test.
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Replaces the roster with pre-built station configurations (the
    /// escape hatch for scenario-file decoding; prefer the `*_station`
    /// methods in code).
    pub fn stations(mut self, stations: impl IntoIterator<Item = StationCfg>) -> Self {
        self.cfg.stations = stations.into_iter().collect();
        self
    }

    /// Appends a clean station at `rate`; returns the builder (the new
    /// station's index is the roster length so far).
    pub fn station(mut self, rate: PhyRate) -> Self {
        self.cfg.stations.push(StationCfg::clean(rate));
        self
    }

    /// Appends `n` clean stations at `rate`.
    pub fn stations_at(mut self, n: usize, rate: PhyRate) -> Self {
        for _ in 0..n {
            self = self.station(rate);
        }
        self
    }

    /// Appends a station whose channel fails each exchange with fixed
    /// probability `error`.
    pub fn lossy_station(mut self, rate: PhyRate, error: f64) -> Self {
        let mut s = StationCfg::clean(rate);
        s.errors = ErrorModel::Fixed(error);
        self.cfg.stations.push(s);
        self
    }

    /// Appends a station whose channel supports MCS `best_mcs` cleanly
    /// and degrades steeply above it (rate-control scenarios).
    pub fn cliff_station(mut self, rate: PhyRate, best_mcs: u8) -> Self {
        self.cfg
            .stations
            .push(StationCfg::with_mcs_cliff(rate, best_mcs));
        self
    }

    /// Appends a clean station with an airtime weight (neutral = 256).
    pub fn weighted_station(mut self, rate: PhyRate, weight: u32) -> Self {
        let mut s = StationCfg::clean(rate);
        s.airtime_weight = weight;
        self.cfg.stations.push(s);
        self
    }

    /// Overrides station `idx`'s PHY rate.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rate(mut self, idx: usize, rate: PhyRate) -> Self {
        self.cfg.stations[idx].rate = rate;
        self
    }

    /// Overrides station `idx`'s error model.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn errors(mut self, idx: usize, errors: ErrorModel) -> Self {
        self.cfg.stations[idx].errors = errors;
        self
    }

    /// Overrides station `idx`'s airtime weight.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn weight(mut self, idx: usize, weight: u32) -> Self {
        self.cfg.stations[idx].airtime_weight = weight;
        self
    }

    /// Appends one fault-schedule entry.
    pub fn fault(mut self, entry: FaultEntry) -> Self {
        self.cfg.faults.push(entry);
        self
    }

    /// Replaces the whole fault schedule (scenario-file decoding).
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.cfg.faults = schedule;
        self
    }

    /// Sets the airtime policy active from time zero (replacing any
    /// earlier initial set; scheduled switches are kept).
    pub fn policy(mut self, set: PolicySet) -> Self {
        let mut timeline = PolicyTimeline::fixed(set);
        for sw in self.cfg.policy.switches() {
            timeline = timeline.with_switch(sw.at, sw.set.clone());
        }
        self.cfg.policy = timeline;
        self
    }

    /// Schedules a runtime policy switch: `set` becomes active at the
    /// first scheduler round boundary at or after `at`. Switches must be
    /// added in strictly ascending time order
    /// ([`build`](Self::build) validates).
    pub fn policy_switch(mut self, at: Nanos, set: PolicySet) -> Self {
        self.cfg.policy = std::mem::take(&mut self.cfg.policy).with_switch(at, set);
        self
    }

    /// Replaces the whole policy timeline (scenario-file decoding).
    pub fn policy_timeline(mut self, timeline: PolicyTimeline) -> Self {
        self.cfg.policy = timeline;
        self
    }

    /// RNG seed; repetitions are seed sweeps.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// One-way wired-hop delay.
    pub fn wire_delay(mut self, owd: Nanos) -> Self {
        self.cfg.wire_delay = owd;
        self
    }

    /// Airtime queue limit (`None` disables AQL).
    pub fn aql(mut self, limit: Option<Nanos>) -> Self {
        self.cfg.aql = limit;
        self
    }

    /// Enables/disables the AP's Minstrel-style rate controller.
    pub fn rate_control(mut self, on: bool) -> Self {
        self.cfg.rate_control = on;
        self
    }

    /// Intra-shard parallel lanes for the contention scan (DESIGN.md §14).
    ///
    /// Results are byte-identical at any lane count; `0` is clamped to 1.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.cfg.lanes = lanes.max(1);
        self
    }

    /// Gives clients the paper's FQ-CoDel uplink structure.
    pub fn station_fq(mut self, on: bool) -> Self {
        self.cfg.station_fq = on;
        self
    }

    /// Enables/disables §3.1.1 per-station CoDel parameter adaptation.
    pub fn adaptive_codel(mut self, on: bool) -> Self {
        self.cfg.adaptive_codel = on;
        self
    }

    /// Enables/disables the sparse-station optimisation (Figure 8).
    pub fn sparse_stations(mut self, on: bool) -> Self {
        self.cfg.airtime.sparse_stations = on;
        self
    }

    /// Hardware queue depth in aggregates.
    pub fn hw_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.hw_queue_depth = depth;
        self
    }

    /// pfifo qdisc packet limit (FIFO scheme).
    pub fn pfifo_limit(mut self, limit: usize) -> Self {
        self.cfg.pfifo_limit = limit;
        self
    }

    /// Legacy driver shared frame budget (FIFO / FQ-CoDel schemes).
    pub fn driver_buf_frames(mut self, frames: usize) -> Self {
        self.cfg.driver_buf_frames = frames;
        self
    }

    /// Maximum retransmissions of one aggregate.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Station-side uplink FIFO limit per access category.
    pub fn station_fifo_limit(mut self, limit: usize) -> Self {
        self.cfg.station_fifo_limit = limit;
        self
    }

    /// MAC FQ parameters (FQ-MAC / Airtime schemes).
    pub fn fq(mut self, fq: FqParams) -> Self {
        self.cfg.fq = fq;
        self
    }

    /// Airtime scheduler parameters.
    pub fn airtime(mut self, airtime: AirtimeParams) -> Self {
        self.cfg.airtime = airtime;
        self
    }

    /// Number of stations added so far (useful while composing).
    pub fn num_stations(&self) -> usize {
        self.cfg.stations.len()
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault schedule or the policy timeline is malformed —
    /// a scenario bug, not a runtime condition.
    pub fn build(self) -> NetworkConfig {
        if let Err(msg) = self.cfg.faults.validate() {
            panic!("invalid fault schedule: {msg}");
        }
        if let Err(msg) = self.cfg.policy.validate(self.cfg.stations.len()) {
            panic!("invalid policy: {msg}");
        }
        self.cfg
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_chaos::{FaultTarget, Impairment};

    #[test]
    fn builder_matches_legacy_constructor() {
        let built = NetworkConfig::builder()
            .preset(Preset::PaperTestbed)
            .scheme(SchemeKind::Fifo)
            .build();
        let legacy = NetworkConfig::new(
            vec![
                StationCfg::clean(PhyRate::fast_station()),
                StationCfg::clean(PhyRate::fast_station()),
                StationCfg::clean(PhyRate::slow_station()),
            ],
            SchemeKind::Fifo,
        );
        assert_eq!(built.stations.len(), legacy.stations.len());
        for (b, l) in built.stations.iter().zip(&legacy.stations) {
            assert_eq!(b.rate, l.rate);
            assert_eq!(b.errors, l.errors);
            assert_eq!(b.airtime_weight, l.airtime_weight);
        }
        assert_eq!(built.scheme, legacy.scheme);
        assert_eq!(built.seed, legacy.seed);
        assert_eq!(built.hw_queue_depth, legacy.hw_queue_depth);
        assert!(built.faults.is_empty());
    }

    #[test]
    fn presets_have_paper_shapes() {
        let t4 = NetworkConfig::builder()
            .preset(Preset::PaperTestbed4)
            .build();
        assert_eq!(t4.num_stations(), 4);
        assert_eq!(t4.stations[3].rate, PhyRate::fast_station());
        let t30 = NetworkConfig::builder().preset(Preset::Testbed30).build();
        assert_eq!(t30.num_stations(), 30);
        assert!(!t30.stations[0].rate.supports_aggregation());
    }

    #[test]
    fn station_helpers_set_models() {
        let cfg = NetworkConfig::builder()
            .lossy_station(PhyRate::fast_station(), 0.1)
            .cliff_station(PhyRate::ht(7, wifiq_phy::ChannelWidth::Ht20, true), 3)
            .weighted_station(PhyRate::fast_station(), 512)
            .build();
        assert_eq!(cfg.stations[0].errors, ErrorModel::Fixed(0.1));
        assert!(matches!(
            cfg.stations[1].errors,
            ErrorModel::McsCliff { best_mcs: 3, .. }
        ));
        assert_eq!(cfg.stations[2].airtime_weight, 512);
    }

    #[test]
    fn faults_accumulate() {
        let cfg = NetworkConfig::builder()
            .preset(Preset::PaperTestbed)
            .fault(FaultEntry::new(
                Nanos::from_secs(1),
                Nanos::from_secs(2),
                FaultTarget::Station(2),
                Impairment::Stall,
            ))
            .fault(FaultEntry::new(
                Nanos::from_secs(3),
                Nanos::from_secs(4),
                FaultTarget::AllStations,
                Impairment::uniform_loss(0.1),
            ))
            .build();
        assert_eq!(cfg.faults.entries().len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid fault schedule")]
    fn build_rejects_malformed_schedule() {
        let _ = NetworkConfig::builder()
            .preset(Preset::PaperTestbed)
            .fault(FaultEntry::new(
                Nanos::from_secs(2),
                Nanos::from_secs(1),
                FaultTarget::Station(0),
                Impairment::Stall,
            ))
            .build();
    }
}
