//! Station-side (client) uplink stack.
//!
//! Clients are *unmodified* in all schemes — the paper's solution runs
//! only at the access point. A station therefore keeps simple per-AC
//! FIFOs (the stock qdisc + driver queueing collapsed into one queue) and
//! builds aggregates from them with the standard limits.

use std::collections::VecDeque;

use wifiq_codel::CodelParams;
use wifiq_core::fq::{FqParams, MacFq};
use wifiq_core::table::TidId;
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_sim::{Nanos, SimRng};
use wifiq_telemetry::Telemetry;

use crate::aggregation::{build_aggregate_into, Aggregate};
use crate::packet::{Packet, StationIdx};
use crate::ratectrl::Minstrel;

/// Pooled frame buffers per station: one pending aggregate per AC plus a
/// little slack for the recycle round-trip.
const FRAME_POOL_CAP: usize = 8;

/// The client's uplink queueing: the stock per-AC FIFO, or the paper's
/// FQ-CoDel structure ("WiFi client devices can also benefit from the
/// proposed queueing structure").
// One instance exists per station and `fq` sits on the per-packet
// path; boxing the large variant would trade a few one-off bytes for
// an extra pointer chase per packet.
#[allow(clippy::large_enum_variant)]
enum UplinkQueues<M> {
    Fifo {
        queues: [VecDeque<Packet<M>>; AccessCategory::COUNT],
        limit: usize,
    },
    Fq {
        fq: MacFq<Packet<M>>,
        tids: [TidId; AccessCategory::COUNT],
        codel: CodelParams,
    },
}

impl<M: std::fmt::Debug> UplinkQueues<M> {
    fn enqueue(&mut self, pkt: Packet<M>, now: Nanos) -> bool {
        match self {
            UplinkQueues::Fifo { queues, limit } => {
                let q = &mut queues[pkt.ac.index()];
                if q.len() >= *limit {
                    return false;
                }
                q.push_back(pkt);
                true
            }
            UplinkQueues::Fq { fq, tids, .. } => {
                let tid = tids[pkt.ac.index()];
                // On overlimit the FQ evicts from its longest queue, not
                // necessarily the offered packet; `false` here means "one
                // packet was dropped at this uplink", not "this packet
                // was rejected".
                fq.enqueue(pkt, tid, now).is_none()
            }
        }
    }

    fn has_data(&self, ac: AccessCategory) -> bool {
        match self {
            UplinkQueues::Fifo { queues, .. } => !queues[ac.index()].is_empty(),
            UplinkQueues::Fq { fq, tids, .. } => fq.tid_has_data(tids[ac.index()]),
        }
    }

    fn pop(&mut self, ac: AccessCategory, now: Nanos) -> Option<Packet<M>> {
        match self {
            UplinkQueues::Fifo { queues, .. } => queues[ac.index()].pop_front(),
            UplinkQueues::Fq { fq, tids, codel } => fq.dequeue(tids[ac.index()], now, codel),
        }
    }

    fn backlog(&self) -> usize {
        match self {
            UplinkQueues::Fifo { queues, .. } => queues.iter().map(|q| q.len()).sum(),
            UplinkQueues::Fq { fq, .. } => fq.total_packets(),
        }
    }

    fn arena_live(&self) -> usize {
        match self {
            UplinkQueues::Fifo { .. } => 0,
            UplinkQueues::Fq { fq, .. } => fq.arena_live(),
        }
    }
}

/// One wireless client's transmit state.
pub struct StationUplink<M> {
    idx: StationIdx,
    rate: PhyRate,
    queues: UplinkQueues<M>,
    /// A packet pulled for an aggregate that didn't fit, offered first
    /// next time (per AC).
    stash: [Option<Packet<M>>; AccessCategory::COUNT],
    /// A built aggregate awaiting (re)transmission, per AC.
    pending: [Option<Aggregate<M>>; AccessCategory::COUNT],
    /// Current contention window per AC (doubles on failure).
    pub cw: [u32; AccessCategory::COUNT],
    /// Packets tail-dropped at the uplink FIFO.
    pub drops: u64,
    /// The client's own rate controller (clients run Minstrel too;
    /// "unmodified" in the paper refers to queueing, not rate control).
    rc: Option<Minstrel>,
    /// Private RNG stream for rate sampling.
    rng: SimRng,
    /// Recycled `Aggregate::frames` buffers (see
    /// [`recycle_frames`](Self::recycle_frames)).
    frame_pool: Vec<Vec<Packet<M>>>,
}

impl<M: std::fmt::Debug> StationUplink<M> {
    /// Creates the uplink stack for station `idx` at `rate` with the
    /// given per-AC FIFO `limit`.
    pub fn new(idx: StationIdx, rate: PhyRate, limit: usize) -> StationUplink<M> {
        StationUplink {
            idx,
            rate,
            queues: UplinkQueues::Fifo {
                queues: Default::default(),
                limit,
            },
            stash: Default::default(),
            pending: Default::default(),
            cw: AccessCategory::ALL.map(|ac| ac.edca().cw_min),
            drops: 0,
            rc: None,
            rng: SimRng::new(idx as u64),
            frame_pool: Vec::new(),
        }
    }

    /// Returns an emptied `Aggregate::frames` buffer for the next
    /// aggregate build to reuse (the network layer calls this after
    /// delivering or dropping an uplink aggregate).
    pub fn recycle_frames(&mut self, mut frames: Vec<Packet<M>>) {
        frames.clear();
        if self.frame_pool.len() < FRAME_POOL_CAP && frames.capacity() > 0 {
            self.frame_pool.push(frames);
        }
    }

    /// Switches the uplink to the paper's MAC FQ structure (one TID per
    /// access category, WiFi CoDel defaults). Call before any traffic is
    /// queued.
    ///
    /// # Panics
    ///
    /// Panics if packets are already queued.
    pub fn enable_fq(&mut self) {
        assert_eq!(self.backlog(), 0, "enable_fq on a non-empty station");
        let mut fq = MacFq::new(FqParams::default());
        let tids = AccessCategory::ALL.map(|_| fq.register_tid());
        self.queues = UplinkQueues::Fq {
            fq,
            tids,
            codel: CodelParams::wifi_default(),
        };
    }

    /// Attaches a telemetry handle to the FQ uplink (metrics under
    /// component "client_fq"). No-op for the stock FIFO uplink, which has
    /// nothing beyond the tail-drop counter to report.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        if let UplinkQueues::Fq { fq, .. } = &mut self.queues {
            fq.set_telemetry(tele, "client_fq");
        }
    }

    /// Enables the client-side rate controller (no-op for legacy rates,
    /// which have nothing to adapt between).
    pub fn enable_rate_control(&mut self, rng: SimRng) {
        if matches!(self.rate, PhyRate::Ht { .. }) {
            self.rc = Some(Minstrel::new(self.rate));
            self.rng = rng;
        }
    }

    /// The station's PHY rate.
    pub fn rate(&self) -> PhyRate {
        self.rate
    }

    /// Queues an uplink packet. The packet's `enqueued` stamp must be
    /// current (CoDel reads it under the FQ uplink).
    pub fn enqueue(&mut self, pkt: Packet<M>) {
        let now = pkt.enqueued;
        if !self.queues.enqueue(pkt, now) {
            self.drops += 1;
        }
    }

    /// Total packets queued (queues + stash + pending aggregates).
    pub fn backlog(&self) -> usize {
        self.queues.backlog()
            + self.stash.iter().filter(|s| s.is_some()).count()
            + self
                .pending
                .iter()
                .map(|p| p.as_ref().map_or(0, |a| a.frames.len()))
                .sum::<usize>()
    }

    /// Packets live in the uplink's packet arena (zero for the FIFO
    /// uplink, which owns its packets directly). Stash and pending
    /// aggregates hold owned packets outside the arena, so a fully
    /// drained station must report exactly zero.
    pub fn arena_live(&self) -> usize {
        self.queues.arena_live()
    }

    /// The highest-priority access category with traffic ready to
    /// transmit, building its aggregate if needed.
    ///
    /// `now` is needed because the FQ uplink runs CoDel at dequeue.
    pub fn best_ready_ac(&mut self, now: Nanos) -> Option<AccessCategory> {
        for ac in AccessCategory::ALL {
            let aci = ac.index();
            let has = self.stash[aci].is_some() || self.queues.has_data(ac);
            if self.pending[aci].is_none() && has {
                let rate = match self.rc.as_mut() {
                    Some(rc) => rc.rate_for_next(&mut self.rng),
                    None => self.rate,
                };
                let queues = &mut self.queues;
                let stash = &mut self.stash[aci];
                let frames_buf = self.frame_pool.pop().unwrap_or_default();
                let (built, leftover) =
                    build_aggregate_into(self.idx, ac, rate, frames_buf, || {
                        stash.take().or_else(|| queues.pop(ac, now))
                    });
                self.stash[aci] = leftover;
                self.pending[aci] = match built {
                    Ok(agg) => Some(agg),
                    Err(buf) => {
                        if self.frame_pool.len() < FRAME_POOL_CAP && buf.capacity() > 0 {
                            self.frame_pool.push(buf);
                        }
                        None
                    }
                };
            }
            if self.pending[aci].is_some() {
                return Some(ac);
            }
        }
        None
    }

    /// The pending aggregate for `ac`, if built.
    pub fn pending(&self, ac: AccessCategory) -> Option<&Aggregate<M>> {
        self.pending[ac.index()].as_ref()
    }

    /// Takes the pending aggregate after a successful transmission and
    /// resets the contention window.
    pub fn take_success(&mut self, ac: AccessCategory, now: Nanos) -> Aggregate<M> {
        self.cw[ac.index()] = ac.edca().cw_min;
        let agg = self.pending[ac.index()]
            .take()
            .expect("success reported with no pending aggregate");
        if let Some(rc) = self.rc.as_mut() {
            rc.report(agg.rate, true, now);
        }
        agg
    }

    /// Records a failed attempt: doubles the contention window, counts a
    /// retry, and steps the retry rate down under rate control. Returns
    /// the dropped aggregate if retries are exhausted.
    pub fn on_failure(
        &mut self,
        ac: AccessCategory,
        max_retries: u32,
        now: Nanos,
    ) -> Option<Aggregate<M>> {
        let aci = ac.index();
        self.cw[aci] = ac.edca().next_cw(self.cw[aci]);
        let agg = self.pending[aci]
            .as_mut()
            .expect("failure reported with no pending aggregate");
        agg.retries += 1;
        if let Some(rc) = self.rc.as_mut() {
            rc.report(agg.rate, false, now);
            let lower = rc.lower_rate(agg.rate);
            if lower != agg.rate {
                agg.retune(lower);
            }
        }
        if agg.retries > max_retries {
            self.cw[aci] = ac.edca().cw_min;
            self.pending[aci].take()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeAddr;
    use wifiq_sim::Nanos;

    fn pkt(ac: AccessCategory) -> Packet<()> {
        Packet {
            id: 0,
            src: NodeAddr::Station(0),
            dst: NodeAddr::Server,
            flow: 1,
            len: 1500,
            ac,
            created: Nanos::ZERO,
            enqueued: Nanos::ZERO,
            payload: (),
        }
    }

    fn sta() -> StationUplink<()> {
        StationUplink::new(0, PhyRate::fast_station(), 100)
    }

    #[test]
    fn empty_station_has_nothing_ready() {
        let mut s = sta();
        assert_eq!(s.best_ready_ac(Nanos::ZERO), None);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn builds_aggregate_from_fifo() {
        let mut s = sta();
        for _ in 0..5 {
            s.enqueue(pkt(AccessCategory::Be));
        }
        assert_eq!(s.best_ready_ac(Nanos::ZERO), Some(AccessCategory::Be));
        let agg = s.pending(AccessCategory::Be).unwrap();
        assert_eq!(agg.frames.len(), 5);
        assert_eq!(s.backlog(), 5, "frames moved to pending, not lost");
    }

    #[test]
    fn vo_preempts_be() {
        let mut s = sta();
        s.enqueue(pkt(AccessCategory::Be));
        s.enqueue(pkt(AccessCategory::Vo));
        assert_eq!(s.best_ready_ac(Nanos::ZERO), Some(AccessCategory::Vo));
    }

    #[test]
    fn success_resets_cw_and_clears_pending() {
        let mut s = sta();
        s.enqueue(pkt(AccessCategory::Be));
        s.best_ready_ac(Nanos::ZERO);
        s.cw[AccessCategory::Be.index()] = 255;
        let agg = s.take_success(AccessCategory::Be, Nanos::ZERO);
        assert_eq!(agg.frames.len(), 1);
        assert_eq!(s.cw[AccessCategory::Be.index()], 15);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn failure_doubles_cw_until_drop() {
        let mut s = sta();
        s.enqueue(pkt(AccessCategory::Be));
        s.best_ready_ac(Nanos::ZERO);
        assert!(s.on_failure(AccessCategory::Be, 2, Nanos::ZERO).is_none());
        assert_eq!(s.cw[AccessCategory::Be.index()], 31);
        assert!(s.on_failure(AccessCategory::Be, 2, Nanos::ZERO).is_none());
        assert_eq!(s.cw[AccessCategory::Be.index()], 63);
        // Third failure exceeds max_retries = 2: aggregate dropped.
        let dropped = s.on_failure(AccessCategory::Be, 2, Nanos::ZERO);
        assert!(dropped.is_some());
        assert_eq!(s.cw[AccessCategory::Be.index()], 15, "cw resets on drop");
        assert_eq!(s.best_ready_ac(Nanos::ZERO), None);
    }

    #[test]
    fn fifo_limit_tail_drops() {
        let mut s = StationUplink::<()>::new(0, PhyRate::fast_station(), 3);
        for _ in 0..5 {
            s.enqueue(pkt(AccessCategory::Be));
        }
        assert_eq!(s.drops, 2);
        assert_eq!(s.backlog(), 3);
    }

    #[test]
    fn fq_uplink_enqueues_and_builds() {
        let mut s = StationUplink::<()>::new(0, PhyRate::fast_station(), 100);
        s.enable_fq();
        for _ in 0..5 {
            s.enqueue(pkt(AccessCategory::Be));
        }
        assert_eq!(s.backlog(), 5);
        assert_eq!(s.best_ready_ac(Nanos::ZERO), Some(AccessCategory::Be));
        assert_eq!(s.pending(AccessCategory::Be).unwrap().frames.len(), 5);
    }

    #[test]
    fn fq_uplink_interleaves_flows() {
        // Two flows; the FQ uplink should interleave them in the
        // aggregate rather than serving strictly in arrival order.
        #[derive(Debug)]
        struct FlowMsg;
        let _ = FlowMsg;
        let mut s = StationUplink::<()>::new(0, PhyRate::slow_station(), 100);
        s.enable_fq();
        let mk = |flow: u64| Packet {
            id: 0,
            src: NodeAddr::Station(0),
            dst: NodeAddr::Server,
            flow,
            len: 1500,
            ac: AccessCategory::Be,
            created: Nanos::ZERO,
            enqueued: Nanos::ZERO,
            payload: (),
        };
        for _ in 0..6 {
            s.enqueue(mk(1));
        }
        s.enqueue(mk(2));
        // Slow rate: 2-frame aggregates. The sparse flow 2 should appear
        // in the first aggregate thanks to new-flow priority.
        s.best_ready_ac(Nanos::ZERO);
        let flows: Vec<u64> = s
            .pending(AccessCategory::Be)
            .unwrap()
            .frames
            .iter()
            .map(|p| p.flow)
            .collect();
        assert!(flows.contains(&2), "sparse flow missing from {flows:?}");
    }

    #[test]
    #[should_panic(expected = "enable_fq on a non-empty station")]
    fn enable_fq_rejects_queued_traffic() {
        let mut s = StationUplink::<()>::new(0, PhyRate::fast_station(), 100);
        s.enqueue(pkt(AccessCategory::Be));
        s.enable_fq();
    }

    #[test]
    fn leftover_goes_back_to_fifo_front() {
        // Slow rate: 4 ms cap → 2 frames per aggregate; the third pulled
        // packet must return to the FIFO head.
        let mut s = StationUplink::<()>::new(0, PhyRate::slow_station(), 100);
        for _ in 0..5 {
            s.enqueue(pkt(AccessCategory::Be));
        }
        s.best_ready_ac(Nanos::ZERO);
        assert_eq!(s.pending(AccessCategory::Be).unwrap().frames.len(), 2);
        assert_eq!(s.backlog(), 5);
        // Draining: 2 + 2 + 1.
        let mut total = s.take_success(AccessCategory::Be, Nanos::ZERO).frames.len();
        while s.best_ready_ac(Nanos::ZERO).is_some() {
            total += s.take_success(AccessCategory::Be, Nanos::ZERO).frames.len();
        }
        assert_eq!(total, 5);
    }
}
