//! Transmission tracing: a monitor-mode view of the medium.
//!
//! The paper validates its in-kernel airtime meter against a third-party
//! tool that measures airtime from monitor-mode captures (§4.1.5: "we
//! find that the two types of measurements agree to within 1.5%, on
//! average"). This module is the simulator's monitor interface: every
//! completed transmission attempt is reported to an optional sink, which
//! can recompute airtime independently of the meter and cross-validate
//! it — the `ext_meter_validation` experiment does exactly that.

use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_sim::Nanos;

use crate::packet::StationIdx;

/// Direction of a traced transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxDirection {
    /// AP → station.
    Downlink,
    /// Station → AP.
    Uplink,
}

/// One completed transmission attempt, as a monitor would capture it.
#[derive(Debug, Clone, Copy)]
pub struct TxRecord {
    /// When the exchange completed.
    pub at: Nanos,
    /// The wireless peer.
    pub station: StationIdx,
    /// Direction of the data frames.
    pub direction: TxDirection,
    /// Access category.
    pub ac: AccessCategory,
    /// PHY rate of this attempt.
    pub rate: PhyRate,
    /// MPDUs in the aggregate.
    pub frames: usize,
    /// Payload bytes in the aggregate.
    pub payload_bytes: u64,
    /// Medium time the exchange occupied (data + SIFS + ack).
    pub airtime: Nanos,
    /// Whether the exchange succeeded (false: collision or channel
    /// error; the airtime was consumed regardless).
    pub success: bool,
    /// Retry index of this attempt (0 = first transmission).
    pub retry: u32,
}

/// A sink receiving every transmission record.
pub trait TxMonitor {
    /// Called once per completed transmission attempt.
    fn on_tx(&mut self, record: &TxRecord);
}

// A shared monitor: lets the caller keep a handle to the concrete sink
// while the network owns the trait object.
impl<T: TxMonitor> TxMonitor for std::rc::Rc<std::cell::RefCell<T>> {
    fn on_tx(&mut self, record: &TxRecord) {
        self.borrow_mut().on_tx(record);
    }
}

/// A monitor that recomputes per-station airtime from captures — the
/// simulator-side analogue of the paper's capture-based airtime tool.
#[derive(Debug, Default)]
pub struct AirtimeCapture {
    per_station: Vec<Nanos>,
    /// Total records seen.
    pub records: u64,
}

impl AirtimeCapture {
    /// Creates a capture for `n` stations.
    pub fn new(n: usize) -> AirtimeCapture {
        AirtimeCapture {
            per_station: vec![Nanos::ZERO; n],
            records: 0,
        }
    }

    /// Total captured airtime for one station (both directions).
    pub fn airtime(&self, sta: StationIdx) -> Nanos {
        self.per_station[sta]
    }

    /// Captured airtime of all stations.
    pub fn all(&self) -> &[Nanos] {
        &self.per_station
    }
}

impl TxMonitor for AirtimeCapture {
    fn on_tx(&mut self, record: &TxRecord) {
        self.records += 1;
        self.per_station[record.station] += record.airtime;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sta: StationIdx, airtime_us: u64) -> TxRecord {
        TxRecord {
            at: Nanos::ZERO,
            station: sta,
            direction: TxDirection::Downlink,
            ac: AccessCategory::Be,
            rate: PhyRate::fast_station(),
            frames: 10,
            payload_bytes: 15_000,
            airtime: Nanos::from_micros(airtime_us),
            success: true,
            retry: 0,
        }
    }

    #[test]
    fn shared_monitor_updates_through_rc() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let cap = Rc::new(RefCell::new(AirtimeCapture::new(1)));
        let mut shared = cap.clone();
        shared.on_tx(&record(0, 42));
        assert_eq!(cap.borrow().airtime(0), Nanos::from_micros(42));
    }

    #[test]
    fn capture_accumulates_per_station() {
        let mut cap = AirtimeCapture::new(2);
        cap.on_tx(&record(0, 100));
        cap.on_tx(&record(1, 300));
        cap.on_tx(&record(0, 50));
        assert_eq!(cap.airtime(0), Nanos::from_micros(150));
        assert_eq!(cap.airtime(1), Nanos::from_micros(300));
        assert_eq!(cap.records, 3);
    }
}
