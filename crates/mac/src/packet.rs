//! The simulator's packet type and addressing.

use wifiq_core::packet::{FqPacket, QueuedPacket};
use wifiq_phy::AccessCategory;
use wifiq_sim::Nanos;

/// Index of a wireless station (0-based; the AP and the wired server are
/// addressed separately).
pub type StationIdx = usize;

/// Where a packet is headed (or came from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeAddr {
    /// The wired server behind the AP.
    Server,
    /// Wireless station `i`.
    Station(StationIdx),
}

/// A simulated IP packet.
///
/// `M` is the opaque application payload (TCP segment, ping body, …)
/// interpreted only by the experiment's application layer — the MAC treats
/// it as freight.
#[derive(Debug, Clone)]
pub struct Packet<M> {
    /// Monotonic packet id (diagnostics).
    pub id: u64,
    /// Origin endpoint.
    pub src: NodeAddr,
    /// Destination endpoint.
    pub dst: NodeAddr,
    /// Transport-flow identifier; the FQ structures hash on this.
    pub flow: u64,
    /// On-wire length in bytes (IP packet size).
    pub len: u64,
    /// QoS marking, mapping to an 802.11e access category.
    pub ac: AccessCategory,
    /// When the packet was created by the sending application.
    pub created: Nanos,
    /// When the packet entered its current queue (stamped by the queueing
    /// layer; read by CoDel at dequeue — Algorithm 1 line 9).
    pub enqueued: Nanos,
    /// Application payload.
    pub payload: M,
}

impl<M> Packet<M> {
    /// Station index this packet concerns on the wireless hop: the
    /// destination for downlink, the source for uplink.
    ///
    /// # Panics
    ///
    /// Panics if neither endpoint is a station (server→server packets
    /// never touch the wireless hop).
    pub fn wireless_peer(&self) -> StationIdx {
        match (self.src, self.dst) {
            (_, NodeAddr::Station(i)) => i,
            (NodeAddr::Station(i), _) => i,
            _ => panic!(
                "packet {:?} -> {:?} never crosses the WiFi hop",
                self.src, self.dst
            ),
        }
    }

    /// True if this packet travels AP → station.
    pub fn is_downlink(&self) -> bool {
        matches!(self.dst, NodeAddr::Station(_))
    }
}

impl<M> QueuedPacket for Packet<M> {
    fn enqueue_time(&self) -> Nanos {
        self.enqueued
    }

    fn wire_len(&self) -> u64 {
        self.len
    }
}

impl<M> FqPacket for Packet<M> {
    fn flow_hash(&self) -> u64 {
        // splitmix64 of the flow id: stable, well-spread.
        let mut z = self.flow.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: NodeAddr, dst: NodeAddr) -> Packet<()> {
        Packet {
            id: 0,
            src,
            dst,
            flow: 7,
            len: 1500,
            ac: AccessCategory::Be,
            created: Nanos::ZERO,
            enqueued: Nanos::ZERO,
            payload: (),
        }
    }

    #[test]
    fn wireless_peer_resolution() {
        assert_eq!(
            pkt(NodeAddr::Server, NodeAddr::Station(2)).wireless_peer(),
            2
        );
        assert_eq!(
            pkt(NodeAddr::Station(5), NodeAddr::Server).wireless_peer(),
            5
        );
        assert!(pkt(NodeAddr::Server, NodeAddr::Station(0)).is_downlink());
        assert!(!pkt(NodeAddr::Station(0), NodeAddr::Server).is_downlink());
    }

    #[test]
    #[should_panic(expected = "never crosses")]
    fn server_to_server_panics() {
        pkt(NodeAddr::Server, NodeAddr::Server).wireless_peer();
    }

    #[test]
    fn flow_hash_is_stable_and_spread() {
        let a = pkt(NodeAddr::Server, NodeAddr::Station(0));
        let mut b = pkt(NodeAddr::Server, NodeAddr::Station(0));
        assert_eq!(a.flow_hash(), b.flow_hash());
        b.flow = 8;
        assert_ne!(a.flow_hash(), b.flow_hash());
    }
}
