//! A-MPDU aggregate construction.
//!
//! An aggregate is built by pulling packets from a queue until one of the
//! three limits binds: the 64-MPDU BlockAck window, the 65 535-byte A-MPDU
//! length cap, or the 4 ms airtime cap (which is what keeps a slow
//! station's aggregates to ~2 full-size frames — the paper's measured 1.89
//! mean for the MCS0 station). A packet pulled past a limit is handed back
//! to the caller to lead the next aggregate (the `retry_q` slot in
//! Figure 3).

use wifiq_phy::consts::{self, MAX_AGGREGATE_AIRTIME};
use wifiq_phy::timing;
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_sim::Nanos;

use crate::packet::{Packet, StationIdx};

/// A built transmission unit: one A-MPDU (or one plain MPDU for
/// non-aggregating categories/rates), fixed across retries.
#[derive(Debug)]
pub struct Aggregate<M> {
    /// The MPDUs, in order.
    pub frames: Vec<Packet<M>>,
    /// The wireless peer (destination for downlink, source for uplink).
    pub station: StationIdx,
    /// Access category the aggregate is queued under.
    pub ac: AccessCategory,
    /// PHY rate it will be sent at.
    pub rate: PhyRate,
    /// On-air duration of the data PPDU (preamble + payload).
    pub data_duration: Nanos,
    /// Duration of the acknowledgement (BlockAck or legacy ACK frame).
    pub ack_duration: Nanos,
    /// Whether this is a true A-MPDU (BlockAck) or a plain MPDU (ACK).
    pub aggregated: bool,
    /// Times this aggregate has been (re)transmitted unsuccessfully.
    pub retries: u32,
}

impl<M> Aggregate<M> {
    /// The medium time one transmission attempt occupies:
    /// data + SIFS + acknowledgement. This is the airtime charged to the
    /// station's scheduler deficit and meter (per attempt — retries are
    /// charged again, per §3.2: "including any retries").
    pub fn exchange_airtime(&self) -> Nanos {
        self.data_duration + consts::SIFS + self.ack_duration
    }

    /// Total payload bytes carried.
    pub fn payload_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.len).sum()
    }

    /// Re-tunes the aggregate to a new (usually lower) rate for a retry,
    /// recomputing its on-air durations — the rate-chain behaviour of
    /// real drivers. Refused (returns `false`) if the retuned data PPDU
    /// would exceed twice the aggregate airtime cap: a 42-frame A-MPDU
    /// replayed at MCS0 would monopolise the medium for tens of
    /// milliseconds, which no driver would do (they re-form aggregates
    /// instead; we keep the frames together and bound the damage).
    pub fn retune(&mut self, rate: PhyRate) -> bool {
        let new_data = if self.aggregated {
            let bytes: u64 = self
                .frames
                .iter()
                .map(|f| consts::subframe_len(f.len))
                .sum();
            rate.data_duration(bytes)
        } else {
            timing::frame_duration(self.frames[0].len, rate)
        };
        if self.frames.len() > 1 && new_data > MAX_AGGREGATE_AIRTIME * 2 {
            return false;
        }
        self.rate = rate;
        self.data_duration = new_data;
        self.ack_duration = if self.aggregated {
            timing::block_ack_duration(rate)
        } else {
            timing::ack_duration(rate)
        };
        true
    }
}

/// Builds an aggregate for `station` at `rate` under `ac`, pulling packets
/// from `next`. Returns the aggregate (if any packet was available) and a
/// packet that was pulled but did not fit, which the caller must stash and
/// offer first next time.
pub fn build_aggregate<M>(
    station: StationIdx,
    ac: AccessCategory,
    rate: PhyRate,
    next: impl FnMut() -> Option<Packet<M>>,
) -> (Option<Aggregate<M>>, Option<Packet<M>>) {
    match build_aggregate_into(station, ac, rate, Vec::new(), next) {
        (Ok(agg), stash) => (Some(agg), stash),
        (Err(_), stash) => (None, stash),
    }
}

/// What [`build_aggregate_into`] produced: the aggregate on success, or
/// the untouched (still-empty) frame buffer handed back for re-pooling,
/// plus an over-size packet the caller must stash and offer first next
/// time.
pub type BuildOutcome<M> = (Result<Aggregate<M>, Vec<Packet<M>>>, Option<Packet<M>>);

/// [`build_aggregate`] with a caller-supplied frame buffer, so hot paths
/// can recycle the `frames` allocation across aggregates instead of
/// allocating one per A-MPDU. `frames` must be empty; its capacity is
/// kept. If no packet was available the buffer is handed back in the
/// `Err` variant for the caller to pool.
pub fn build_aggregate_into<M>(
    station: StationIdx,
    ac: AccessCategory,
    rate: PhyRate,
    mut frames: Vec<Packet<M>>,
    mut next: impl FnMut() -> Option<Packet<M>>,
) -> BuildOutcome<M> {
    debug_assert!(frames.is_empty(), "recycled frame buffer not drained");
    let may_aggregate = ac.edca().may_aggregate && rate.supports_aggregation();
    let mut ampdu_bytes: u64 = 0;
    let mut stash = None;

    loop {
        if !may_aggregate && frames.len() == 1 {
            break;
        }
        if frames.len() >= consts::BA_WINDOW {
            break;
        }
        let Some(pkt) = next() else { break };
        let sub = consts::subframe_len(pkt.len);
        if !frames.is_empty() {
            let grown = ampdu_bytes + sub;
            if grown > rate.max_ampdu_bytes() || rate.data_duration(grown) > MAX_AGGREGATE_AIRTIME {
                stash = Some(pkt);
                break;
            }
        }
        ampdu_bytes += sub;
        frames.push(pkt);
    }

    if frames.is_empty() {
        return (Err(frames), stash);
    }

    let (data_duration, ack_duration) = if may_aggregate {
        // A-MPDU framing with a BlockAck, even for a single MPDU — this
        // matches the paper's model, which applies the per-MPDU delimiter
        // and BlockAck overhead at every aggregation level (eq. 1 with
        // n = 1).
        (
            rate.data_duration(ampdu_bytes),
            timing::block_ack_duration(rate),
        )
    } else {
        let l = frames[0].len;
        (timing::frame_duration(l, rate), timing::ack_duration(rate))
    };

    (
        Ok(Aggregate {
            frames,
            station,
            ac,
            rate,
            data_duration,
            ack_duration,
            aggregated: may_aggregate,
            retries: 0,
        }),
        stash,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeAddr;

    fn pkt(len: u64) -> Packet<()> {
        Packet {
            id: 0,
            src: NodeAddr::Server,
            dst: NodeAddr::Station(0),
            flow: 1,
            len,
            ac: AccessCategory::Be,
            created: Nanos::ZERO,
            enqueued: Nanos::ZERO,
            payload: (),
        }
    }

    fn source(mut n: usize, len: u64) -> impl FnMut() -> Option<Packet<()>> {
        move || {
            if n == 0 {
                None
            } else {
                n -= 1;
                Some(pkt(len))
            }
        }
    }

    #[test]
    fn empty_source_builds_nothing() {
        let (agg, stash) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            source(0, 1500),
        );
        assert!(agg.is_none());
        assert!(stash.is_none());
    }

    #[test]
    fn fast_station_fills_to_byte_cap() {
        // 100 packets available; the 65535-byte cap binds at 42 subframes
        // of 1544 bytes.
        let (agg, stash) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            source(100, 1500),
        );
        let agg = agg.unwrap();
        assert_eq!(agg.frames.len(), 42);
        assert!(stash.is_some(), "the 43rd packet is handed back");
        assert!(agg.aggregated);
        assert!(agg.data_duration <= MAX_AGGREGATE_AIRTIME);
    }

    #[test]
    fn slow_station_airtime_cap_binds_at_two_frames() {
        let (agg, stash) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::slow_station(),
            source(100, 1500),
        );
        let agg = agg.unwrap();
        assert_eq!(
            agg.frames.len(),
            2,
            "4 ms cap allows 2 × 1544 B at 7.2 Mbps"
        );
        assert!(stash.is_some());
    }

    #[test]
    fn small_packets_hit_blockack_window() {
        let (agg, _) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            source(200, 100),
        );
        assert_eq!(agg.unwrap().frames.len(), consts::BA_WINDOW);
    }

    #[test]
    fn vo_never_aggregates() {
        let (agg, stash) = build_aggregate(
            0,
            AccessCategory::Vo,
            PhyRate::fast_station(),
            source(10, 300),
        );
        let agg = agg.unwrap();
        assert_eq!(agg.frames.len(), 1);
        assert!(!agg.aggregated);
        // The builder must not have consumed a second packet.
        assert!(stash.is_none());
    }

    #[test]
    fn legacy_rate_never_aggregates() {
        use wifiq_phy::LegacyRate;
        let (agg, _) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::Legacy(LegacyRate::Dsss1),
            source(10, 1500),
        );
        let agg = agg.unwrap();
        assert_eq!(agg.frames.len(), 1);
        assert!(!agg.aggregated);
        // A 1500-byte frame at 1 Mbps takes ~12.5 ms — allowed for a
        // single frame despite exceeding the aggregate cap.
        assert!(agg.data_duration > MAX_AGGREGATE_AIRTIME);
    }

    #[test]
    fn exchange_airtime_includes_sifs_and_ack() {
        let (agg, _) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            source(5, 1500),
        );
        let agg = agg.unwrap();
        assert_eq!(
            agg.exchange_airtime(),
            agg.data_duration + consts::SIFS + agg.ack_duration
        );
        assert_eq!(agg.payload_bytes(), 5 * 1500);
    }

    #[test]
    fn recycled_buffer_is_reused_and_returned_when_empty() {
        // A buffer with capacity goes in; the aggregate's frames Vec must
        // be the same allocation (no realloc for a small aggregate).
        let buf: Vec<Packet<()>> = Vec::with_capacity(64);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let (agg, _) = build_aggregate_into(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            buf,
            source(5, 1500),
        );
        let agg = agg.expect("packets available");
        assert_eq!(agg.frames.len(), 5);
        assert_eq!(agg.frames.capacity(), cap);
        assert_eq!(agg.frames.as_ptr(), ptr);
        // An empty source hands the buffer back via Err for pooling.
        let buf: Vec<Packet<()>> = Vec::with_capacity(64);
        let cap = buf.capacity();
        let (agg, stash) = build_aggregate_into(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            buf,
            source(0, 1500),
        );
        let buf = agg.expect_err("no packets: buffer returned");
        assert_eq!(buf.capacity(), cap);
        assert!(stash.is_none());
    }

    #[test]
    fn single_available_packet_still_aggregates_with_blockack() {
        let (agg, _) = build_aggregate(
            0,
            AccessCategory::Be,
            PhyRate::fast_station(),
            source(1, 1500),
        );
        let agg = agg.unwrap();
        assert_eq!(agg.frames.len(), 1);
        assert!(agg.aggregated, "HT single frame still uses A-MPDU + BA");
    }
}
