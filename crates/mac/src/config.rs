//! Network and scheme configuration.

use wifiq_chaos::FaultSchedule;
use wifiq_core::scheduler::AirtimeParams;
use wifiq_core::FqParams;
use wifiq_phy::PhyRate;
use wifiq_policy::PolicyTimeline;
use wifiq_sim::Nanos;

use crate::builder::ScenarioBuilder;

/// Which AP queue-management scheme to run — the four columns of the
/// paper's evaluation (§4: "We run all experiments with four queue
/// management schemes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Default kernel: pfifo qdisc over unmanaged driver FIFOs.
    Fifo,
    /// FQ-CoDel qdisc over the same unmanaged driver FIFOs.
    FqCodelQdisc,
    /// The paper's MAC-layer FQ structure (qdisc bypassed), round-robin
    /// between stations.
    FqMac,
    /// FQ-MAC plus the airtime-fairness scheduler.
    AirtimeFair,
}

impl SchemeKind {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Fifo,
        SchemeKind::FqCodelQdisc,
        SchemeKind::FqMac,
        SchemeKind::AirtimeFair,
    ];

    /// Display label matching the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            SchemeKind::Fifo => "FIFO",
            SchemeKind::FqCodelQdisc => "FQ-CoDel",
            SchemeKind::FqMac => "FQ-MAC",
            SchemeKind::AirtimeFair => "Airtime fair FQ",
        }
    }

    /// Filesystem-safe identifier (lowercase, no spaces) for artifact
    /// names.
    pub const fn slug(self) -> &'static str {
        match self {
            SchemeKind::Fifo => "fifo",
            SchemeKind::FqCodelQdisc => "fq_codel",
            SchemeKind::FqMac => "fq_mac",
            SchemeKind::AirtimeFair => "airtime",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Channel error model for one station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorModel {
    /// Fixed per-exchange failure probability, independent of rate.
    Fixed(f64),
    /// Rate-dependent channel: exchanges at or below `best_mcs` fail with
    /// probability `residual`; each MCS step above adds a steep penalty.
    /// This is the signal a rate controller needs to find the right rate.
    McsCliff {
        /// Highest MCS the channel supports cleanly.
        best_mcs: u8,
        /// Failure probability at or below `best_mcs`.
        residual: f64,
    },
}

impl ErrorModel {
    /// Per-exchange failure probability for a transmission at `rate`.
    pub fn exchange_error_prob(&self, rate: PhyRate) -> f64 {
        match *self {
            ErrorModel::Fixed(p) => p,
            ErrorModel::McsCliff { best_mcs, residual } => match rate {
                PhyRate::Ht { mcs, .. } if mcs > best_mcs => {
                    (residual + 0.35 * (mcs - best_mcs) as f64).min(0.97)
                }
                _ => residual,
            },
        }
    }
}

/// Per-station configuration.
#[derive(Debug, Clone)]
pub struct StationCfg {
    /// Airtime weight under the airtime-fair scheme (neutral = 256; a
    /// station at 512 receives twice the airtime share) — the weighted
    /// ATF knob that followed the paper into mainline.
    pub airtime_weight: u32,
    /// PHY rate for both directions. With
    /// [`NetworkConfig::rate_control`] enabled, this is only the
    /// *starting* downlink rate; the AP's rate controller adapts from
    /// there (uplink stays fixed — clients are unmodified).
    pub rate: PhyRate,
    /// Channel error model (0-probability in the baseline experiments).
    pub errors: ErrorModel,
}

impl StationCfg {
    /// A station at the given rate with a clean channel.
    pub fn clean(rate: PhyRate) -> StationCfg {
        StationCfg {
            rate,
            errors: ErrorModel::Fixed(0.0),
            airtime_weight: wifiq_core::scheduler::WEIGHT_NEUTRAL,
        }
    }

    /// A station whose channel supports MCS `best_mcs` cleanly and
    /// degrades steeply above it (for rate-control scenarios).
    pub fn with_mcs_cliff(rate: PhyRate, best_mcs: u8) -> StationCfg {
        StationCfg {
            errors: ErrorModel::McsCliff {
                best_mcs,
                residual: 0.03,
            },
            ..StationCfg::clean(rate)
        }
    }
}

/// Full network configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The wireless stations.
    pub stations: Vec<StationCfg>,
    /// AP queue-management scheme under test.
    pub scheme: SchemeKind,
    /// One-way delay on the wired server ↔ AP hop (the paper's Gigabit
    /// Ethernet hop; raised to 5/50 ms for the VoIP experiments).
    pub wire_delay: Nanos,
    /// RNG seed; repetitions are seed sweeps.
    pub seed: u64,
    /// pfifo qdisc packet limit (FIFO scheme).
    pub pfifo_limit: usize,
    /// Legacy driver: shared frame budget across the per-TID FIFOs
    /// (FIFO / FQ-CoDel schemes). Models ath9k's unmanaged buf_q space.
    pub driver_buf_frames: usize,
    /// MAC FQ parameters (FQ-MAC / Airtime schemes).
    pub fq: FqParams,
    /// Airtime scheduler parameters (Airtime scheme).
    pub airtime: AirtimeParams,
    /// Maximum retransmissions of one aggregate before it is dropped.
    pub max_retries: u32,
    /// Station-side uplink FIFO limit (per access category). Stations are
    /// unmodified in all schemes, exactly as in the paper.
    pub station_fifo_limit: usize,
    /// Hardware queue depth in aggregates (ath9k keeps two in flight —
    /// Algorithm 3: "until the hardware queue becomes full (at two queued
    /// aggregates)").
    pub hw_queue_depth: usize,
    /// Adapt CoDel parameters per station from the rate estimate
    /// (§3.1.1). Disabling keeps the global WiFi defaults for every
    /// station — the ablation that starves slow stations.
    pub adaptive_codel: bool,
    /// Give client stations the paper's FQ-CoDel queueing structure for
    /// their uplink instead of the stock FIFO ("WiFi client devices can
    /// also benefit from the proposed queueing structure", §3).
    pub station_fq: bool,
    /// Airtime queue limit: maximum airtime a single station may have
    /// queued in the hardware at once. `None` disables it. This is the
    /// AQL mechanism that continued this paper's line of work into
    /// mainline (kernel 5.5): even with the MAC FQ structure, a slow
    /// station's aggregates sitting in the hardware queue add head-of-
    /// line latency for everyone; AQL keeps that bounded.
    pub aql: Option<Nanos>,
    /// Run a Minstrel-style rate controller at the AP for downlink
    /// transmissions instead of the fixed per-station rates. The
    /// paper's testbed pins rates by placement/configuration; this
    /// extension exercises §3.1.1's "estimate of the station's current
    /// throughput, obtained from the rate selection algorithm" with a
    /// live estimator.
    pub rate_control: bool,
    /// Scheduled fault injection (wifiq-chaos). Empty in every baseline
    /// experiment; entries are replayed deterministically from a
    /// chaos-private fork of [`seed`](Self::seed).
    pub faults: FaultSchedule,
    /// Intra-shard parallel lanes for the contention scan: the
    /// per-round sweep that asks every backlogged station for its best
    /// ready access category is split across this many worker threads
    /// (phase A), while every draw from the network's main RNG stays
    /// sequential in slot order (phase B) — so results are byte-identical
    /// at any lane count (DESIGN.md §14). `1` (the default) keeps the
    /// scan on the caller's thread.
    pub lanes: usize,
    /// Hierarchical airtime policy (wifiq-policy): an optional initial
    /// [`PolicySet`](wifiq_policy::PolicySet) plus timed switches,
    /// compiled at network construction into per-(station, access
    /// category) weights for the airtime scheduler. The default
    /// ([`PolicyTimeline::none`]) is byte-invisible — the pre-policy
    /// equal-share path. Only meaningful under
    /// [`SchemeKind::AirtimeFair`].
    pub policy: PolicyTimeline,
}

impl NetworkConfig {
    /// A configuration with the paper's defaults for the given stations
    /// and scheme.
    pub fn new(stations: Vec<StationCfg>, scheme: SchemeKind) -> NetworkConfig {
        NetworkConfig {
            stations,
            scheme,
            wire_delay: Nanos::from_micros(200),
            seed: 1,
            pfifo_limit: 1000,
            driver_buf_frames: 128,
            fq: FqParams::default(),
            airtime: AirtimeParams::default(),
            max_retries: 10,
            station_fifo_limit: 1000,
            hw_queue_depth: 2,
            adaptive_codel: true,
            station_fq: false,
            aql: None,
            rate_control: false,
            lanes: 1,
            faults: FaultSchedule::none(),
            policy: PolicyTimeline::none(),
        }
    }

    /// Starts a fluent [`ScenarioBuilder`] — the single construction
    /// path for every experiment and scenario file.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The paper's main testbed: two fast stations (MCS15 HT20 SGI,
    /// 144.4 Mbps) and one slow station (MCS0, 7.2 Mbps). A preset of
    /// the builder.
    pub fn paper_testbed(scheme: SchemeKind) -> NetworkConfig {
        NetworkConfig::builder()
            .preset(crate::builder::Preset::PaperTestbed)
            .scheme(scheme)
            .build()
    }

    /// Number of configured stations.
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
        assert_eq!(cfg.num_stations(), 3);
        assert_eq!(cfg.stations[0].rate.bits_per_second(), 144_444_444);
        assert_eq!(cfg.stations[2].rate.bits_per_second(), 7_222_222);
        assert_eq!(cfg.hw_queue_depth, 2);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::Fifo.label(), "FIFO");
        assert_eq!(SchemeKind::AirtimeFair.to_string(), "Airtime fair FQ");
        assert_eq!(SchemeKind::ALL.len(), 4);
    }
}
