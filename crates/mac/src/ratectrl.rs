//! A Minstrel-style rate controller for the AP's downlink.
//!
//! The paper pins station rates by placement (§4: the slow station "is
//! placed further away and configured to only support the MCS0 rate");
//! mainline Linux runs Minstrel-HT. This module provides a compact
//! Minstrel: per-rate EWMA success probabilities, periodic best-rate
//! re-selection by estimated throughput, and occasional sampling of
//! non-best rates. Besides realism, it supplies the live throughput
//! estimate that §3.1.1's per-station CoDel adaptation consumes
//! ("obtained from the rate selection algorithm").

use wifiq_phy::{ChannelWidth, PhyRate};
use wifiq_sim::{Nanos, SimRng};

/// Number of HT rates managed (MCS 0–15).
const N_RATES: usize = 16;

/// EWMA weight for old data (Minstrel's 75%).
const EWMA_OLD: f64 = 0.75;

/// Statistics re-evaluation interval (Minstrel's 100 ms).
const UPDATE_INTERVAL: Nanos = Nanos::from_millis(100);

/// Every Nth transmission samples a random non-best rate.
const SAMPLE_PERIOD: u32 = 10;

#[derive(Debug, Clone, Copy, Default)]
struct RateStats {
    /// Attempts in the current interval.
    attempts: u32,
    /// Successes in the current interval.
    successes: u32,
    /// Smoothed success probability; `None` until first measured.
    ewma: Option<f64>,
}

impl RateStats {
    fn fold(&mut self) {
        if self.attempts > 0 {
            let p = self.successes as f64 / self.attempts as f64;
            self.ewma = Some(match self.ewma {
                Some(old) => old * EWMA_OLD + p * (1.0 - EWMA_OLD),
                None => p,
            });
            self.attempts = 0;
            self.successes = 0;
        }
    }

    /// Probability used for decisions: measured EWMA, or optimistic for
    /// untried rates (so they get sampled into usefulness).
    fn prob(&self) -> f64 {
        self.ewma.unwrap_or(1.0)
    }
}

/// Per-station Minstrel state.
#[derive(Debug)]
pub struct Minstrel {
    rates: [RateStats; N_RATES],
    best: u8,
    tx_counter: u32,
    last_fold: Nanos,
    width: ChannelWidth,
    short_gi: bool,
    /// MCS indices sorted by PHY rate ascending — the sampling ladder.
    /// The raw MCS index is *not* monotonic in rate (MCS8, the first
    /// two-stream rate, is slower than MCS7), so neighbourhood sampling
    /// must walk this ladder, not the index space.
    ladder: [u8; N_RATES],
    /// External rate ceiling in bits/s (chaos rate collapse): while set,
    /// the controller never picks a rate above it. `None` in normal
    /// operation.
    cap_bps: Option<u64>,
}

impl Minstrel {
    /// Creates a controller starting at `initial` (must be an HT rate).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is a legacy rate — legacy stations don't rate
    /// adapt in this model.
    pub fn new(initial: PhyRate) -> Minstrel {
        let PhyRate::Ht {
            mcs,
            width,
            short_gi,
        } = initial
        else {
            panic!("rate control requires an HT starting rate")
        };
        let mut ladder: Vec<u8> = (0..N_RATES as u8).collect();
        ladder.sort_by_key(|&m| PhyRate::ht(m, width, short_gi).bits_per_second());
        Minstrel {
            rates: [RateStats::default(); N_RATES],
            best: mcs,
            tx_counter: 0,
            last_fold: Nanos::ZERO,
            width,
            short_gi,
            ladder: ladder.try_into().expect("N_RATES entries"),
            cap_bps: None,
        }
    }

    /// Imposes (or clears) an external rate ceiling — the fault-injection
    /// hook: while a chaos rate-collapse window is open the collapsed
    /// channel cannot carry anything faster, so the controller must not
    /// probe above it.
    pub fn set_cap(&mut self, cap: Option<PhyRate>) {
        self.cap_bps = cap.map(|r| r.bits_per_second());
    }

    /// The fastest ladder rate not exceeding the cap (bottom of the
    /// ladder if even that is above it); identity with no cap set.
    fn clamp_to_cap(&self, rate: PhyRate) -> PhyRate {
        let Some(cap) = self.cap_bps else { return rate };
        if rate.bits_per_second() <= cap {
            return rate;
        }
        let mut pick = self.phy(self.ladder[0]);
        for &m in &self.ladder {
            let r = self.phy(m);
            if r.bits_per_second() > cap {
                break;
            }
            pick = r;
        }
        pick
    }

    fn ladder_pos(&self, mcs: u8) -> usize {
        self.ladder
            .iter()
            .position(|&m| m == mcs)
            .expect("every MCS is on the ladder")
    }

    fn phy(&self, mcs: u8) -> PhyRate {
        PhyRate::ht(mcs, self.width, self.short_gi)
    }

    /// The current best rate.
    pub fn best_rate(&self) -> PhyRate {
        self.phy(self.best)
    }

    /// The next more-robust rate below `rate` (or `rate` itself at the
    /// bottom) — the retry-chain fallback real drivers use: each
    /// retransmission of a failing frame steps down. "More robust" means
    /// strictly lower PHY rate with no more spatial streams: falling from
    /// the one-stream MCS1 to the equal-rate two-stream MCS8 would step
    /// *up* in required channel quality.
    pub fn lower_rate(&self, rate: PhyRate) -> PhyRate {
        let PhyRate::Ht { mcs, .. } = rate else {
            return rate;
        };
        let bps = rate.bits_per_second();
        let streams = mcs / 8;
        let pos = self.ladder_pos(mcs);
        for &cand in self.ladder[..pos].iter().rev() {
            if cand / 8 <= streams && self.phy(cand).bits_per_second() < bps {
                return self.phy(cand);
            }
        }
        rate
    }

    /// Estimated achievable throughput at the current best rate, in
    /// bits/s — the input to the CoDel parameter adaptation.
    pub fn estimated_throughput(&self) -> u64 {
        let p = self.rates[self.best as usize].prob();
        (self.best_rate().bits_per_second() as f64 * p) as u64
    }

    /// Picks the rate for the next transmission: usually the best rate,
    /// periodically a sample. Two samples in three probe the ladder
    /// neighbourhood (±3 positions in throughput order) for incremental
    /// tracking; one in three probes a uniformly random rate so the
    /// controller can escape a region whose rates all fail.
    pub fn rate_for_next(&mut self, rng: &mut SimRng) -> PhyRate {
        self.tx_counter += 1;
        // Probe mode: when the best rate's measured success has
        // collapsed, every transmission samples — transmissions are
        // scarce in that regime and waiting 10 of them to probe would
        // stall convergence behind the transport's timeouts.
        let probing = self.rates[self.best as usize].ewma.is_some_and(|p| p < 0.1);
        if probing || self.tx_counter.is_multiple_of(SAMPLE_PERIOD) {
            let pick = if rng.chance(1.0 / 3.0) {
                rng.gen_range_u64(0, N_RATES as u64) as usize
            } else {
                let pos = self.ladder_pos(self.best);
                let lo = pos.saturating_sub(3);
                let hi = (pos + 3).min(N_RATES - 1);
                lo + rng.gen_range_u64(0, (hi - lo + 1) as u64) as usize
            };
            // Uniform picks index into the ladder too — any permutation
            // of a uniform choice is uniform, and it keeps one code path.
            return self.clamp_to_cap(self.phy(self.ladder[pick]));
        }
        self.clamp_to_cap(self.best_rate())
    }

    /// Reports the outcome of one transmission exchange at `rate`.
    pub fn report(&mut self, rate: PhyRate, success: bool, now: Nanos) {
        if let PhyRate::Ht { mcs, .. } = rate {
            let st = &mut self.rates[mcs as usize];
            st.attempts += 1;
            if success {
                st.successes += 1;
            }
        }
        if now.saturating_sub(self.last_fold) >= UPDATE_INTERVAL {
            self.last_fold = now;
            self.update();
        }
    }

    /// Folds interval counters into the EWMAs and re-selects the best
    /// rate by estimated throughput among usable rates (measured success
    /// probability ≥ 10%). If nothing is usable — the channel collapsed
    /// under every measured rate — fall back to the most reliable
    /// measured rate so the station keeps transmitting at all.
    fn update(&mut self) {
        for st in &mut self.rates {
            st.fold();
        }
        let mut best: Option<(u8, f64)> = None;
        for mcs in 0..N_RATES as u8 {
            let st = &self.rates[mcs as usize];
            // Unmeasured rates stay out of best-selection (they'd win
            // instantly on optimistic probability); sampling is what
            // brings them into the measured set.
            if st.ewma.is_none() {
                continue;
            }
            let p = st.prob();
            if p < 0.1 {
                continue;
            }
            let tput = self.phy(mcs).bits_per_second() as f64 * p;
            if best.is_none_or(|(_, b)| tput > b) {
                best = Some((mcs, tput));
            }
        }
        match best {
            Some((mcs, _)) => self.best = mcs,
            None => {
                // Emergency fallback: most reliable measured rate.
                if let Some((mcs, _)) = (0..N_RATES as u8)
                    .filter_map(|m| self.rates[m as usize].ewma.map(|p| (m, p)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("probs are finite"))
                {
                    self.best = mcs;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorModel;

    /// Drives the controller against an error model for `n` exchanges.
    fn drive(rc: &mut Minstrel, model: ErrorModel, n: u32, rng: &mut SimRng) {
        let mut now = Nanos::ZERO;
        for _ in 0..n {
            now += Nanos::from_millis(2);
            let rate = rc.rate_for_next(rng);
            let fail = rng.chance(model.exchange_error_prob(rate));
            rc.report(rate, !fail, now);
        }
    }

    #[test]
    fn converges_up_to_the_cliff() {
        // Channel supports MCS 12 cleanly; start pessimistically at 2.
        let mut rc = Minstrel::new(PhyRate::ht(2, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(7);
        let model = ErrorModel::McsCliff {
            best_mcs: 12,
            residual: 0.03,
        };
        drive(&mut rc, model, 5_000, &mut rng);
        let PhyRate::Ht { mcs, .. } = rc.best_rate() else {
            unreachable!()
        };
        assert!(
            (11..=13).contains(&mcs),
            "converged to MCS{mcs}, expected ~12"
        );
    }

    #[test]
    fn converges_down_from_a_bad_start() {
        // Start at MCS15 on a channel that only supports MCS 4.
        let mut rc = Minstrel::new(PhyRate::ht(15, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(9);
        let model = ErrorModel::McsCliff {
            best_mcs: 4,
            residual: 0.03,
        };
        drive(&mut rc, model, 5_000, &mut rng);
        let PhyRate::Ht { mcs, .. } = rc.best_rate() else {
            unreachable!()
        };
        assert!((3..=5).contains(&mcs), "converged to MCS{mcs}, expected ~4");
    }

    #[test]
    fn estimated_throughput_tracks_channel() {
        let mut rc = Minstrel::new(PhyRate::ht(7, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(4);
        let model = ErrorModel::McsCliff {
            best_mcs: 7,
            residual: 0.03,
        };
        drive(&mut rc, model, 3_000, &mut rng);
        let est = rc.estimated_throughput();
        // MCS7 HT20 SGI = 72.2 Mbps; estimate should be within ~10%.
        assert!(
            (60_000_000..=75_000_000).contains(&est),
            "estimate {est} bps"
        );
    }

    #[test]
    fn sampling_happens_but_rarely() {
        let mut rc = Minstrel::new(PhyRate::ht(8, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(1);
        let mut non_best = 0;
        for _ in 0..1_000 {
            if rc.rate_for_next(&mut rng) != rc.best_rate() {
                non_best += 1;
            }
        }
        // Exactly 1-in-SAMPLE_PERIOD transmissions sample, and some
        // samples coincide with the best rate.
        assert!(non_best > 30, "sampling never happened");
        assert!(non_best <= 100, "sampled too often: {non_best}");
    }

    #[test]
    fn lower_rate_prefers_fewer_streams() {
        let rc = Minstrel::new(PhyRate::ht(7, ChannelWidth::Ht20, true));
        // MCS1 (14.4, 1 stream) must fall to MCS0, not the equal-rate
        // two-stream MCS8.
        let below = rc.lower_rate(PhyRate::ht(1, ChannelWidth::Ht20, true));
        assert_eq!(below, PhyRate::ht(0, ChannelWidth::Ht20, true));
        // The bottom of the ladder stays put.
        let bottom = PhyRate::ht(0, ChannelWidth::Ht20, true);
        assert_eq!(rc.lower_rate(bottom), bottom);
        // A two-stream rate may fall to a slower one-stream rate.
        let below = rc.lower_rate(PhyRate::ht(9, ChannelWidth::Ht20, true));
        assert!(
            below.bits_per_second() < PhyRate::ht(9, ChannelWidth::Ht20, true).bits_per_second()
        );
    }

    #[test]
    #[should_panic(expected = "HT starting rate")]
    fn legacy_rate_rejected() {
        Minstrel::new(PhyRate::Legacy(wifiq_phy::LegacyRate::Dsss1));
    }

    #[test]
    fn cap_bounds_every_pick() {
        let mut rc = Minstrel::new(PhyRate::ht(15, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(5);
        let cap = PhyRate::ht(3, ChannelWidth::Ht20, true);
        rc.set_cap(Some(cap));
        for _ in 0..1_000 {
            let r = rc.rate_for_next(&mut rng);
            assert!(
                r.bits_per_second() <= cap.bits_per_second(),
                "picked {r:?} above the cap"
            );
        }
        rc.set_cap(None);
        // With the cap cleared the controller is free to pick its best
        // rate (still MCS15 — the cap never rewrote its statistics).
        assert_eq!(rc.best_rate(), PhyRate::ht(15, ChannelWidth::Ht20, true));
    }

    #[test]
    fn clean_channel_rides_the_top() {
        let mut rc = Minstrel::new(PhyRate::ht(0, ChannelWidth::Ht20, true));
        let mut rng = SimRng::new(3);
        drive(&mut rc, ErrorModel::Fixed(0.0), 20_000, &mut rng);
        let PhyRate::Ht { mcs, .. } = rc.best_rate() else {
            unreachable!()
        };
        // ±2 sampling climbs 2 MCS per interval at best; 20k exchanges
        // is plenty to reach the top.
        assert_eq!(mcs, 15, "should reach MCS15 on a clean channel");
    }
}
