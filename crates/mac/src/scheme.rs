//! The access point's transmit path under each of the four queue
//! management schemes.
//!
//! The legacy path (FIFO / FQ-CoDel schemes) models the stock Linux stack
//! of Figure 2: a qdisc feeding unmanaged per-TID driver FIFOs under a
//! shared frame budget, eagerly refilled — the structure whose lower-layer
//! queueing defeats qdisc AQM and whose buffer-hogging by slow stations
//! starves fast stations' aggregation (§4.1.2).
//!
//! The FQ path (FQ-MAC / Airtime schemes) is the paper's structure of
//! Figure 3: the qdisc layer is bypassed and packets enter the MAC FQ
//! directly; stations are selected either round-robin (FQ-MAC) or by the
//! airtime-fairness scheduler (Airtime).

use std::collections::VecDeque;

use wifiq_codel::{CodelParams, StationCodelParams};
use wifiq_core::fq::MacFq;
use wifiq_core::packet::{StationHandle, TidHandle};
use wifiq_core::scheduler::AirtimeScheduler;
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_qdisc::{FqCodelQdisc, PfifoFastQdisc, Qdisc};
use wifiq_sim::Nanos;
use wifiq_telemetry::Telemetry;

use crate::aggregation::{build_aggregate_into, Aggregate};
use crate::config::{NetworkConfig, SchemeKind, StationCfg};
use crate::packet::{Packet, StationIdx};

/// Upper bound on pooled frame buffers; enough to cover every hardware
/// queue slot plus in-flight recycling without holding memory forever.
const FRAME_POOL_CAP: usize = 32;

/// Dense TID index: one per (station, access category).
fn tid_index(sta: StationIdx, ac: AccessCategory) -> usize {
    sta * AccessCategory::COUNT + ac.index()
}

enum LegacyQdisc<M> {
    Pfifo(PfifoFastQdisc<Packet<M>>),
    // Boxed: the FQ-CoDel qdisc is hundreds of bytes of flow state, the
    // pfifo variant a few pointers; one qdisc exists per network, so the
    // indirection is off the per-packet path.
    FqCodel(Box<FqCodelQdisc<Packet<M>>>),
}

/// `pfifo_fast`'s three-band 802.1d classification, by access category:
/// VO/VI → band 0, BE → band 1, BK → band 2.
fn pfifo_fast_band<M>(pkt: &Packet<M>) -> usize {
    match pkt.ac {
        AccessCategory::Vo | AccessCategory::Vi => 0,
        AccessCategory::Be => 1,
        AccessCategory::Bk => 2,
    }
}

impl<M> LegacyQdisc<M> {
    fn enqueue(&mut self, pkt: Packet<M>, now: Nanos) -> Option<Packet<M>> {
        match self {
            LegacyQdisc::Pfifo(q) => q.enqueue(pkt, now),
            LegacyQdisc::FqCodel(q) => q.enqueue(pkt, now),
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet<M>> {
        match self {
            LegacyQdisc::Pfifo(q) => q.dequeue(now),
            LegacyQdisc::FqCodel(q) => q.dequeue(now),
        }
    }

    fn len(&self) -> usize {
        match self {
            LegacyQdisc::Pfifo(q) => q.len(),
            LegacyQdisc::FqCodel(q) => q.len(),
        }
    }

    fn arena_live(&self) -> usize {
        match self {
            LegacyQdisc::Pfifo(q) => q.arena_live(),
            LegacyQdisc::FqCodel(q) => q.arena_live(),
        }
    }
}

enum StaSched {
    /// Per-AC round-robin over active stations (pre-airtime mainline).
    Rr {
        lists: [VecDeque<StationIdx>; AccessCategory::COUNT],
        listed: Vec<[bool; AccessCategory::COUNT]>,
    },
    /// The paper's airtime-fairness scheduler.
    Airtime(AirtimeScheduler),
}

// One instance exists per network and the `fq` field sits on the
// per-packet path, so boxing to shrink the enum would trade a few
// hundred one-off bytes for an extra pointer chase per packet.
#[allow(clippy::large_enum_variant)]
enum PathInner<M> {
    Legacy {
        qdisc: LegacyQdisc<M>,
        /// Per-TID driver FIFOs (ath9k's buf_q).
        bufq: Vec<VecDeque<Packet<M>>>,
        buf_total: usize,
        buf_cap: usize,
        /// Per-AC round-robin of TIDs with queued frames.
        rr: [VecDeque<usize>; AccessCategory::COUNT],
        listed: Vec<bool>,
    },
    Fq {
        fq: MacFq<Packet<M>>,
        sched: StaSched,
    },
}

/// The AP transmit path: scheme-specific queueing plus station selection
/// and aggregate construction.
pub struct ApTxPath<M> {
    kind: SchemeKind,
    inner: PathInner<M>,
    /// One parked packet per TID: pulled for an aggregate but didn't fit
    /// (the retry_q head slot of Figure 3).
    stash: Vec<Option<Packet<M>>>,
    /// Per-station CoDel parameter selection (§3.1.1).
    codel: Vec<StationCodelParams>,
    rates: Vec<PhyRate>,
    /// Whether each station slot currently hosts a station.
    active: Vec<bool>,
    /// Removed station slots awaiting reuse (LIFO, kept in lockstep with
    /// the FQ structure's TID free list and the scheduler's slot list).
    free_slots: Vec<StationIdx>,
    /// Remembered so stations added after construction get the same CoDel
    /// parameter policy as the initial roster.
    adaptive_codel: bool,
    /// Packets dropped at AP queueing layers (qdisc tail-drop, FQ
    /// overlimit; CoDel drops are counted by the FQ structures).
    pub queue_drops: u64,
    /// Recycled `Aggregate::frames` buffers: built aggregates draw from
    /// here and the network layer returns the emptied Vec after TX, so
    /// the steady state allocates no frame buffers at all.
    frame_pool: Vec<Vec<Packet<M>>>,
    tele: Telemetry,
}

/// CoDel parameter state for one station under the configured policy.
fn codel_params_for(adaptive: bool) -> StationCodelParams {
    if adaptive {
        StationCodelParams::new()
    } else {
        // Ablation: pin the global defaults regardless of rate.
        StationCodelParams::with_config(
            CodelParams::wifi_default(),
            CodelParams::wifi_default(),
            0,
            Nanos::ZERO,
        )
    }
}

impl<M: std::fmt::Debug> ApTxPath<M> {
    /// Builds the transmit path for the configured scheme.
    pub fn new(cfg: &NetworkConfig) -> ApTxPath<M> {
        let n = cfg.num_stations();
        let n_tids = n * AccessCategory::COUNT;
        let rates: Vec<PhyRate> = cfg.stations.iter().map(|s| s.rate).collect();
        let inner = match cfg.scheme {
            SchemeKind::Fifo | SchemeKind::FqCodelQdisc => PathInner::Legacy {
                qdisc: if cfg.scheme == SchemeKind::Fifo {
                    LegacyQdisc::Pfifo(PfifoFastQdisc::new(3, cfg.pfifo_limit, pfifo_fast_band))
                } else {
                    LegacyQdisc::FqCodel(Box::new(FqCodelQdisc::with_defaults()))
                },
                bufq: (0..n_tids).map(|_| VecDeque::new()).collect(),
                buf_total: 0,
                buf_cap: cfg.driver_buf_frames,
                rr: Default::default(),
                listed: vec![false; n_tids],
            },
            SchemeKind::FqMac | SchemeKind::AirtimeFair => {
                let mut fq = MacFq::new(cfg.fq);
                for _ in 0..n_tids {
                    fq.register_tid();
                }
                let sched = if cfg.scheme == SchemeKind::FqMac {
                    StaSched::Rr {
                        lists: Default::default(),
                        listed: vec![[false; AccessCategory::COUNT]; n],
                    }
                } else {
                    let mut s = AirtimeScheduler::new(cfg.airtime);
                    for station in &cfg.stations {
                        let h = s.register_station();
                        s.set_weight(h, station.airtime_weight);
                    }
                    StaSched::Airtime(s)
                };
                PathInner::Fq { fq, sched }
            }
        };
        let codel = (0..n)
            .map(|_| codel_params_for(cfg.adaptive_codel))
            .collect();
        ApTxPath {
            kind: cfg.scheme,
            inner,
            stash: (0..n_tids).map(|_| None).collect(),
            codel,
            rates,
            active: vec![true; n],
            free_slots: Vec::new(),
            adaptive_codel: cfg.adaptive_codel,
            queue_drops: 0,
            frame_pool: Vec::new(),
            tele: Telemetry::disabled(),
        }
    }

    /// Returns an emptied `Aggregate::frames` buffer to the pool for the
    /// next [`build`](Self::build) to reuse. Buffers beyond the pool cap
    /// are simply dropped.
    pub fn recycle_frames(&mut self, mut frames: Vec<Packet<M>>) {
        frames.clear();
        if self.frame_pool.len() < FRAME_POOL_CAP && frames.capacity() > 0 {
            self.frame_pool.push(frames);
        }
    }

    /// Pooled frame buffers currently available (test probe).
    #[doc(hidden)]
    pub fn frame_pool_len(&self) -> usize {
        self.frame_pool.len()
    }

    /// Attaches a station to the transmit path, reusing the most recently
    /// removed slot when one is free (otherwise growing every per-slot
    /// table). Returns the slot index the station now occupies.
    ///
    /// Slot reuse relies on the LIFO lockstep between this free list, the
    /// FQ structure's TID free list, and the airtime scheduler's station
    /// free list: all three are pushed/popped only from here, so a reused
    /// slot `s` always reclaims exactly TID set `{4s..4s+3}` and scheduler
    /// slot `s` (debug-asserted below).
    pub fn add_station(&mut self, station: &StationCfg) -> StationIdx {
        let sta = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.codel.len();
                for _ in 0..AccessCategory::COUNT {
                    self.stash.push(None);
                }
                self.codel.push(codel_params_for(self.adaptive_codel));
                self.rates.push(station.rate);
                self.active.push(false);
                match &mut self.inner {
                    PathInner::Legacy { bufq, listed, .. } => {
                        for _ in 0..AccessCategory::COUNT {
                            bufq.push(VecDeque::new());
                            listed.push(false);
                        }
                    }
                    PathInner::Fq { sched, .. } => {
                        if let StaSched::Rr { listed, .. } = sched {
                            listed.push([false; AccessCategory::COUNT]);
                        }
                    }
                }
                s
            }
        };
        debug_assert!(!self.active[sta], "free slot still marked active");
        debug_assert!(
            (0..AccessCategory::COUNT)
                .all(|a| self.stash[sta * AccessCategory::COUNT + a].is_none()),
            "reused slot has stashed frames"
        );
        self.rates[sta] = station.rate;
        self.codel[sta] = codel_params_for(self.adaptive_codel);
        self.active[sta] = true;
        if let PathInner::Fq { fq, sched } = &mut self.inner {
            for _ in 0..AccessCategory::COUNT {
                let h = fq.register_tid();
                debug_assert_eq!(
                    h.0 / AccessCategory::COUNT,
                    sta,
                    "TID free list out of lockstep with station slots"
                );
            }
            match sched {
                StaSched::Rr { listed, .. } => listed[sta] = [false; AccessCategory::COUNT],
                StaSched::Airtime(s) => {
                    let h = s.register_station();
                    debug_assert_eq!(h.0, sta, "scheduler free list out of lockstep");
                    s.set_weight(h, station.airtime_weight);
                }
            }
        }
        sta
    }

    /// Detaches a station: drops every frame of its queued at the AP
    /// (stash, driver FIFOs or FQ flows), pulls its TIDs/slot out of all
    /// scheduling lists mid-round without disturbing the survivors'
    /// rotation order or deficits, and parks the slot for reuse. Returns
    /// the number of packets dropped.
    pub fn remove_station(&mut self, sta: StationIdx, now: Nanos) -> usize {
        assert!(
            self.active.get(sta).copied().unwrap_or(false),
            "removing an inactive station slot"
        );
        let mut dropped = 0usize;
        for ac in AccessCategory::ALL {
            if self.stash[tid_index(sta, ac)].take().is_some() {
                dropped += 1;
            }
        }
        match &mut self.inner {
            PathInner::Legacy {
                bufq,
                buf_total,
                rr,
                listed,
                ..
            } => {
                // Packets for the station may still sit in the shared
                // qdisc; those surface into bufq via pull_from_qdisc and
                // are only discarded when addressed to an inactive slot at
                // the network layer. Here we clear the driver FIFOs, which
                // also releases the shared frame budget they pinned.
                for ac in AccessCategory::ALL {
                    let tid = tid_index(sta, ac);
                    dropped += bufq[tid].len();
                    *buf_total -= bufq[tid].len();
                    bufq[tid].clear();
                    if listed[tid] {
                        rr[ac.index()].retain(|&t| t != tid);
                        listed[tid] = false;
                    }
                }
            }
            PathInner::Fq { fq, sched } => {
                for ac in AccessCategory::ALL {
                    dropped += fq.unregister_tid(TidHandle(tid_index(sta, ac)), now);
                }
                match sched {
                    StaSched::Rr { lists, listed } => {
                        for (aci, l) in lists.iter_mut().enumerate() {
                            if listed[sta][aci] {
                                l.retain(|&x| x != sta);
                                listed[sta][aci] = false;
                            }
                        }
                    }
                    StaSched::Airtime(s) => s.remove_station(StationHandle(sta)),
                }
            }
        }
        self.active[sta] = false;
        self.free_slots.push(sta);
        dropped
    }

    /// Detaches a station like [`remove_station`](Self::remove_station),
    /// but hands back every frame queued for it at the AP (stash, driver
    /// FIFOs, MAC FQ flows, and — for the pfifo qdiscs — the shared qdisc)
    /// so a roaming hand-off can carry them to the target BSS. The shared
    /// FQ-CoDel qdisc cannot be filtered per-station; its stale frames
    /// surface and are discarded later, exactly as under churn.
    pub fn remove_station_migrate(&mut self, sta: StationIdx) -> Vec<Packet<M>> {
        assert!(
            self.active.get(sta).copied().unwrap_or(false),
            "migrating an inactive station slot"
        );
        let mut moved: Vec<Packet<M>> = Vec::new();
        for ac in AccessCategory::ALL {
            moved.extend(self.stash[tid_index(sta, ac)].take());
        }
        match &mut self.inner {
            PathInner::Legacy {
                qdisc,
                bufq,
                buf_total,
                rr,
                listed,
                ..
            } => {
                for ac in AccessCategory::ALL {
                    let tid = tid_index(sta, ac);
                    *buf_total -= bufq[tid].len();
                    moved.extend(bufq[tid].drain(..));
                    if listed[tid] {
                        rr[ac.index()].retain(|&t| t != tid);
                        listed[tid] = false;
                    }
                }
                if let LegacyQdisc::Pfifo(q) = qdisc {
                    moved.extend(q.drain_matching(|p| p.wireless_peer() == sta));
                }
            }
            PathInner::Fq { fq, sched } => {
                for ac in AccessCategory::ALL {
                    moved.extend(fq.unregister_tid_migrate(TidHandle(tid_index(sta, ac))));
                }
                match sched {
                    StaSched::Rr { lists, listed } => {
                        for (aci, l) in lists.iter_mut().enumerate() {
                            if listed[sta][aci] {
                                l.retain(|&x| x != sta);
                                listed[sta][aci] = false;
                            }
                        }
                    }
                    StaSched::Airtime(s) => s.remove_station(StationHandle(sta)),
                }
            }
        }
        self.active[sta] = false;
        self.free_slots.push(sta);
        moved
    }

    /// Whether slot `sta` currently hosts a station.
    pub fn station_active(&self, sta: StationIdx) -> bool {
        self.active.get(sta).copied().unwrap_or(false)
    }

    /// Re-writes one station's per-AC airtime weights (compiled policy
    /// output). Deficits are untouched — the scheduler picks the new
    /// weights up at the station's next replenishment — so applying a
    /// policy switch never disturbs stations whose weights are unchanged.
    /// A no-op under the non-airtime schemes.
    pub fn set_station_weights(&mut self, sta: StationIdx, weights: [u32; AccessCategory::COUNT]) {
        if let PathInner::Fq {
            sched: StaSched::Airtime(s),
            ..
        } = &mut self.inner
        {
            if s.is_registered(StationHandle(sta)) {
                s.set_ac_weights(StationHandle(sta), weights);
            }
        }
    }

    /// One station's current airtime weight at `ac` (test/telemetry
    /// probe); `None` under the non-airtime schemes or for an empty slot.
    pub fn station_ac_weight(&self, sta: StationIdx, ac: AccessCategory) -> Option<u32> {
        match &self.inner {
            PathInner::Fq {
                sched: StaSched::Airtime(s),
                ..
            } if s.is_registered(StationHandle(sta)) => {
                Some(s.ac_weight(StationHandle(sta), ac.index()))
            }
            _ => None,
        }
    }

    /// Number of station slots ever allocated (active + tombstoned).
    pub fn station_slots(&self) -> usize {
        self.codel.len()
    }

    /// Attaches a telemetry handle, propagating it to the MAC FQ structure
    /// (metrics under component "fq") and the per-station CoDel parameter
    /// switches (component "codel").
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        if let PathInner::Fq { fq, .. } = &mut self.inner {
            fq.set_telemetry(tele.clone(), "fq");
        }
        self.tele = tele;
    }

    /// The scheme this path implements.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Total packets queued at the AP (qdisc + driver, or MAC FQ),
    /// excluding stashed frames.
    pub fn backlog(&self) -> usize {
        match &self.inner {
            PathInner::Legacy {
                qdisc, buf_total, ..
            } => qdisc.len() + buf_total,
            PathInner::Fq { fq, .. } => fq.total_packets(),
        }
    }

    /// Packets live in the path's packet arena — the teardown audit's
    /// counterpart to [`ApTxPath::backlog`]. Stashed frames and driver
    /// FIFOs hold owned packets outside the arena, so after a full drain
    /// this must be exactly zero: any residue is a leaked arena slot.
    pub fn arena_live(&self) -> usize {
        match &self.inner {
            PathInner::Legacy { qdisc, .. } => qdisc.arena_live(),
            PathInner::Fq { fq, .. } => fq.arena_live(),
        }
    }

    fn tid_has_data(&self, tid: usize) -> bool {
        if self.stash[tid].is_some() {
            return true;
        }
        match &self.inner {
            PathInner::Legacy { bufq, .. } => !bufq[tid].is_empty(),
            PathInner::Fq { fq, .. } => fq.tid_has_data(TidHandle(tid)),
        }
    }

    /// Accepts a downlink packet from the IP layer. The packet must have
    /// `enqueued` stamped with the current time.
    pub fn enqueue(&mut self, pkt: Packet<M>, now: Nanos) {
        let sta = pkt.wireless_peer();
        let ac = pkt.ac;
        debug_assert!(self.active[sta], "enqueue for a removed station");
        match &mut self.inner {
            PathInner::Legacy { qdisc, .. } => {
                if qdisc.enqueue(pkt, now).is_some() {
                    self.queue_drops += 1;
                }
                self.pull_from_qdisc(now);
            }
            PathInner::Fq { fq, sched } => {
                let tid = tid_index(sta, ac);
                if fq.enqueue(pkt, TidHandle(tid), now).is_some() {
                    self.queue_drops += 1;
                }
                match sched {
                    StaSched::Rr { lists, listed } => {
                        if !listed[sta][ac.index()] {
                            listed[sta][ac.index()] = true;
                            lists[ac.index()].push_back(sta);
                        }
                    }
                    StaSched::Airtime(s) => s.notify_active(StationHandle(sta), ac.index()),
                }
            }
        }
    }

    /// Eagerly moves packets from the qdisc into the driver FIFOs while
    /// the shared frame budget allows — the unmanaged lower-layer
    /// queueing of Figure 2.
    fn pull_from_qdisc(&mut self, now: Nanos) {
        let PathInner::Legacy {
            qdisc,
            bufq,
            buf_total,
            buf_cap,
            rr,
            listed,
        } = &mut self.inner
        else {
            return;
        };
        while *buf_total < *buf_cap {
            let Some(pkt) = qdisc.dequeue(now) else { break };
            // The shared qdisc cannot be filtered on removal; frames for a
            // since-departed station are discarded as they surface.
            if !self.active[pkt.wireless_peer()] {
                self.queue_drops += 1;
                continue;
            }
            let tid = tid_index(pkt.wireless_peer(), pkt.ac);
            let ac = pkt.ac.index();
            bufq[tid].push_back(pkt);
            *buf_total += 1;
            if !listed[tid] {
                listed[tid] = true;
                rr[ac].push_back(tid);
            }
        }
    }

    /// Picks the station whose TID should build the next aggregate at
    /// access category `ac`, or `None` if nothing is pending there.
    ///
    /// `eligible` lets the driver veto stations this refill round (the
    /// AQL mechanism: a station whose hardware-queued airtime exceeds its
    /// budget is treated as having nothing to send, and is rotated out of
    /// the scheduling lists exactly like an empty station). It applies to
    /// the FQ paths only — AQL post-dates the legacy stack. A vetoed
    /// station with remaining traffic must be re-listed via
    /// [`reactivate`](Self::reactivate) once its hardware airtime drains.
    pub fn next_tx(
        &mut self,
        ac: AccessCategory,
        _now: Nanos,
        eligible: impl Fn(StationIdx) -> bool,
    ) -> Option<StationIdx> {
        let aci = ac.index();
        // Collect stash state first to avoid borrowing conflicts inside
        // the scheduler closures.
        match &mut self.inner {
            PathInner::Legacy {
                bufq, rr, listed, ..
            } => loop {
                let &tid = rr[aci].front()?;
                let has = self.stash[tid].is_some() || !bufq[tid].is_empty();
                if has {
                    return Some(tid / AccessCategory::COUNT);
                }
                rr[aci].pop_front();
                listed[tid] = false;
            },
            PathInner::Fq { fq, sched } => match sched {
                StaSched::Rr { lists, listed } => loop {
                    let &sta = lists[aci].front()?;
                    let tid = tid_index(sta, ac);
                    let has = (self.stash[tid].is_some() || fq.tid_has_data(TidHandle(tid)))
                        && eligible(sta);
                    if has {
                        return Some(sta);
                    }
                    lists[aci].pop_front();
                    listed[sta][aci] = false;
                },
                StaSched::Airtime(s) => {
                    let stash = &self.stash;
                    let fq_ref = &*fq;
                    s.next_station(aci, |sh| {
                        let tid = tid_index(sh.0, ac);
                        (stash[tid].is_some() || fq_ref.tid_has_data(TidHandle(tid)))
                            && eligible(sh.0)
                    })
                    .map(|sh| sh.0)
                }
            },
        }
    }

    /// Re-lists a station that still has queued traffic but was rotated
    /// out of the scheduling lists (AQL veto, or a race between drain and
    /// enqueue). Idempotent.
    ///
    /// Under the airtime scheduler this re-enters via the *new* list
    /// (sparse priority). That is benign for the stations AQL vetoes:
    /// they are heavy airtime users whose deficits are deeply negative,
    /// so the deficit check rotates them straight to the old list before
    /// any priority is realised.
    pub fn reactivate(&mut self, sta: StationIdx, ac: AccessCategory) {
        let tid = tid_index(sta, ac);
        if !self.tid_has_data(tid) {
            return;
        }
        let aci = ac.index();
        if let PathInner::Fq { sched, .. } = &mut self.inner {
            match sched {
                StaSched::Rr { lists, listed } => {
                    if !listed[sta][aci] {
                        listed[sta][aci] = true;
                        lists[aci].push_back(sta);
                    }
                }
                StaSched::Airtime(s) => s.notify_active(StationHandle(sta), aci),
            }
        }
    }

    /// Builds an aggregate for `(sta, ac)` and performs the scheme's
    /// post-build rotation (RR advance). Returns `None` if the TID turned
    /// out to be empty (e.g. CoDel dropped its remaining packets).
    pub fn build(
        &mut self,
        sta: StationIdx,
        ac: AccessCategory,
        now: Nanos,
    ) -> Option<Aggregate<M>> {
        let tid = tid_index(sta, ac);
        let rate = self.rates[sta];
        let codel_params = self.codel[sta].current();
        let stash_slot = &mut self.stash[tid];
        let frames_buf = self.frame_pool.pop().unwrap_or_default();

        let (built, leftover) = match &mut self.inner {
            PathInner::Legacy {
                bufq, buf_total, ..
            } => {
                let q = &mut bufq[tid];
                let mut taken = 0usize;
                let (built, leftover) = build_aggregate_into(sta, ac, rate, frames_buf, || {
                    if let Some(p) = stash_slot.take() {
                        return Some(p);
                    }
                    let p = q.pop_front();
                    if p.is_some() {
                        taken += 1;
                    }
                    p
                });
                *buf_total -= taken;
                (built, leftover)
            }
            PathInner::Fq { fq, .. } => build_aggregate_into(sta, ac, rate, frames_buf, || {
                if let Some(p) = stash_slot.take() {
                    return Some(p);
                }
                fq.dequeue(TidHandle(tid), now, &codel_params)
            }),
        };
        self.stash[tid] = leftover;
        let agg = match built {
            Ok(agg) => Some(agg),
            Err(buf) => {
                // Nothing to send: hand the untouched buffer back.
                if self.frame_pool.len() < FRAME_POOL_CAP && buf.capacity() > 0 {
                    self.frame_pool.push(buf);
                }
                None
            }
        };

        // Post-build rotation for the round-robin schemes; the airtime
        // scheduler rotates via deficits instead.
        let aci = ac.index();
        match &mut self.inner {
            PathInner::Legacy { rr, .. } => {
                if let Some(&front) = rr[aci].front() {
                    if front == tid {
                        rr[aci].pop_front();
                        rr[aci].push_back(tid);
                    }
                }
            }
            PathInner::Fq { sched, .. } => {
                if let StaSched::Rr { lists, .. } = sched {
                    if let Some(&front) = lists[aci].front() {
                        if front == sta {
                            lists[aci].pop_front();
                            lists[aci].push_back(sta);
                        }
                    }
                }
            }
        }

        // Refill the driver FIFOs from the qdisc after taking frames out.
        self.pull_from_qdisc(now);
        agg
    }

    /// Reports a completed transmission attempt's airtime (TX direction):
    /// charges the airtime scheduler and refreshes the station's CoDel
    /// parameters from `rate_estimate_bps` — the station's current
    /// throughput estimate, which is the configured rate under static
    /// rate control or the Minstrel estimate when rate control runs
    /// (§3.1.1: "obtained from the rate selection algorithm").
    pub fn on_tx_airtime(
        &mut self,
        sta: StationIdx,
        ac: AccessCategory,
        airtime: Nanos,
        now: Nanos,
        rate_estimate_bps: u64,
    ) {
        // An exchange can complete after its target departed (removal is
        // deferred past in-flight exchanges at the network layer, but a
        // retry chain may outlive that); the tombstoned slot takes no
        // charges.
        if !self.active[sta] {
            return;
        }
        if let PathInner::Fq {
            sched: StaSched::Airtime(s),
            ..
        } = &mut self.inner
        {
            s.charge(StationHandle(sta), ac.index(), airtime);
        }
        self.codel[sta].update_rate_observed(now, rate_estimate_bps, &self.tele, sta as u32);
    }

    /// The rate the next aggregate for `sta` will be built at.
    pub fn rate_of(&self, sta: StationIdx) -> PhyRate {
        self.rates[sta]
    }

    /// Whether the §3.1.1 slow-station CoDel parameters are currently
    /// active for `sta` (recovery tracking for fault injection).
    pub fn codel_degraded(&self, sta: StationIdx) -> bool {
        self.codel[sta].is_degraded()
    }

    /// Overrides the downlink rate for `sta` (driven by the rate
    /// controller between aggregates).
    pub fn set_rate(&mut self, sta: StationIdx, rate: PhyRate) {
        self.rates[sta] = rate;
    }

    /// Charges *received* airtime to a station's deficit (§3.2 point 2:
    /// "also accounting the airtime from received frames"), unless the
    /// scheduler is configured for TX-only accounting (ablation).
    pub fn on_rx_airtime(&mut self, sta: StationIdx, ac: AccessCategory, airtime: Nanos) {
        if !self.active[sta] {
            return;
        }
        if let PathInner::Fq {
            sched: StaSched::Airtime(s),
            ..
        } = &mut self.inner
        {
            if s.params().charge_rx {
                s.charge(StationHandle(sta), ac.index(), airtime);
            }
        }
    }

    /// Whether any TID at `ac` has pending data (stash included).
    pub fn has_data_at(&self, ac: AccessCategory) -> bool {
        let n_tids = self.stash.len();
        (0..n_tids)
            .filter(|t| t % AccessCategory::COUNT == ac.index())
            .any(|t| self.tid_has_data(t))
    }

    /// CoDel drop count accumulated in the MAC FQ (0 for legacy paths; the
    /// FQ-CoDel qdisc's own drops are internal to it).
    pub fn codel_drops(&self) -> u64 {
        match &self.inner {
            PathInner::Legacy { qdisc, .. } => match qdisc {
                LegacyQdisc::FqCodel(q) => q.codel_drops(),
                LegacyQdisc::Pfifo(_) => 0,
            },
            PathInner::Fq { fq, .. } => fq.stats.drops_codel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeAddr;

    type P = Packet<()>;

    fn cfg(scheme: SchemeKind) -> NetworkConfig {
        NetworkConfig::paper_testbed(scheme)
    }

    fn pkt(sta: StationIdx, flow: u64, now: Nanos) -> P {
        Packet {
            id: 0,
            src: NodeAddr::Server,
            dst: NodeAddr::Station(sta),
            flow,
            len: 1500,
            ac: AccessCategory::Be,
            created: now,
            enqueued: now,
            payload: (),
        }
    }

    fn drain_one(path: &mut ApTxPath<()>, now: Nanos) -> Option<Aggregate<()>> {
        let sta = path.next_tx(AccessCategory::Be, now, |_| true)?;
        path.build(sta, AccessCategory::Be, now)
    }

    #[test]
    fn all_schemes_pass_packets_through() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..10 {
                path.enqueue(pkt(0, 1, Nanos::from_micros(i)), now);
            }
            let agg = drain_one(&mut path, now).unwrap_or_else(|| panic!("{scheme}: no aggregate"));
            assert_eq!(agg.station, 0);
            assert!(!agg.frames.is_empty());
        }
    }

    #[test]
    fn legacy_driver_budget_is_shared() {
        // Fill with slow-station packets first; the driver budget (128)
        // should be consumed by station 2's TID, leaving the fast
        // station's packets in the qdisc.
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::Fifo));
        let now = Nanos::ZERO;
        for i in 0..500 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        for i in 0..100 {
            path.enqueue(pkt(0, 2, Nanos::from_nanos(1000 + i)), now);
        }
        // Driver holds 128 slow frames; fast station cannot transmit more
        // than what trickles in later — right now its bufq is empty, so
        // the only serviceable TID is the slow one.
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(agg.station, 2, "slow station hogs the driver buffer");
    }

    #[test]
    fn fq_mac_keeps_stations_separate() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        for i in 0..200 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        for i in 0..50 {
            path.enqueue(pkt(0, 2, Nanos::from_nanos(1000 + i)), now);
        }
        // RR alternates stations even though the slow one queued first.
        let a = drain_one(&mut path, now).unwrap();
        let b = drain_one(&mut path, now).unwrap();
        assert_ne!(a.station, b.station, "RR must alternate stations");
    }

    #[test]
    fn airtime_scheme_charges_affect_selection() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::AirtimeFair));
        let now = Nanos::ZERO;
        for i in 0..100 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
            path.enqueue(pkt(1, 2, Nanos::from_nanos(i)), now);
        }
        let first = path.next_tx(AccessCategory::Be, now, |_| true).unwrap();
        // Charge the first station heavily; the other must be selected.
        path.on_tx_airtime(
            first,
            AccessCategory::Be,
            Nanos::from_millis(5),
            now,
            144_000_000,
        );
        let second = path.next_tx(AccessCategory::Be, now, |_| true).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn stash_is_offered_first() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        // 50 packets for the slow station: the 4 ms cap means 2 frames per
        // aggregate and one stashed.
        for i in 0..50 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        let a = drain_one(&mut path, now).unwrap();
        assert_eq!(a.station, 2);
        assert_eq!(a.frames.len(), 2);
        // Total conservation across repeated builds.
        let mut total = a.frames.len();
        while let Some(agg) = drain_one(&mut path, now) {
            total += agg.frames.len();
        }
        assert_eq!(total, 50, "stashed packets must not be lost");
    }

    #[test]
    fn backlog_reports_queued_packets() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..20 {
                path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
            }
            assert_eq!(path.backlog(), 20, "{scheme}");
            assert!(path.has_data_at(AccessCategory::Be), "{scheme}");
            assert!(!path.has_data_at(AccessCategory::Vo), "{scheme}");
        }
    }

    #[test]
    fn eligibility_veto_and_reactivate() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::AirtimeFair));
        let now = Nanos::ZERO;
        for i in 0..20 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        // Vetoed: the scheduler treats station 0 as empty and, having no
        // other candidates, returns None (rotating it off the lists).
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| false), None);
        // Without reactivation the station stays invisible even though
        // its queue is non-empty.
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), None);
        // Reactivate re-lists it.
        path.reactivate(0, AccessCategory::Be);
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), Some(0));
        // Reactivating an empty station is a no-op.
        let mut drained = 0;
        while drain_one(&mut path, now).is_some() {
            drained += 1;
        }
        assert!(drained >= 1);
        path.reactivate(0, AccessCategory::Be);
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), None);
    }

    #[test]
    fn remove_then_readd_station_reuses_slot() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..30 {
                path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
                path.enqueue(pkt(1, 2, Nanos::from_nanos(i)), now);
            }
            path.remove_station(1, now);
            assert!(!path.station_active(1), "{scheme}");
            while let Some(agg) = drain_one(&mut path, now) {
                assert_ne!(agg.station, 1, "{scheme}: removed station was scheduled");
            }
            assert_eq!(path.backlog(), 0, "{scheme}: backlog left behind");
            let slot = path.add_station(&StationCfg::clean(PhyRate::fast_station()));
            assert_eq!(slot, 1, "{scheme}: LIFO slot reuse");
            assert_eq!(path.station_slots(), 3, "{scheme}: slot table grew");
            path.enqueue(pkt(1, 3, now), now);
            let agg = drain_one(&mut path, now).expect("readded station must transmit");
            assert_eq!(agg.station, 1, "{scheme}");
        }
    }

    #[test]
    fn remove_station_migrate_carries_queued_frames() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..30 {
                path.enqueue(pkt(1, 1, Nanos::from_nanos(i)), now);
                path.enqueue(pkt(0, 2, Nanos::from_nanos(i)), now);
            }
            // One build may park a leftover frame in station 1's stash;
            // the migrate must pick that up too.
            while let Some(agg) = drain_one(&mut path, now) {
                if agg.station == 1 {
                    break;
                }
            }
            let before = path.backlog()
                + (0..AccessCategory::COUNT)
                    .filter(|a| path.stash[AccessCategory::COUNT + a].is_some())
                    .count();
            let moved = path.remove_station_migrate(1);
            assert!(!path.station_active(1), "{scheme}");
            assert!(
                moved.iter().all(|p| p.wireless_peer() == 1),
                "{scheme}: migrated a bystander's frame"
            );
            // Under FQ-CoDel the shared qdisc keeps station 1's frames
            // (cannot be filtered); everywhere else the AP must hold no
            // frame for the roamer any more.
            if scheme != SchemeKind::FqCodelQdisc {
                assert_eq!(
                    path.backlog()
                        + (0..AccessCategory::COUNT)
                            .filter(|a| path.stash[AccessCategory::COUNT + a].is_some())
                            .count()
                        + moved.len(),
                    before,
                    "{scheme}: frames vanished in migration"
                );
                while let Some(agg) = drain_one(&mut path, now) {
                    assert_ne!(agg.station, 1, "{scheme}: roamer still scheduled");
                }
            }
            // The slot is reusable, exactly as after a plain removal.
            let slot = path.add_station(&StationCfg::clean(PhyRate::fast_station()));
            assert_eq!(slot, 1, "{scheme}: LIFO slot reuse after migrate");
        }
    }

    #[test]
    fn add_station_grows_roster() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            let slot = path.add_station(&StationCfg::clean(PhyRate::slow_station()));
            assert_eq!(slot, 3, "{scheme}: new slot appended");
            path.enqueue(pkt(3, 9, now), now);
            let agg = drain_one(&mut path, now).expect("new station must transmit");
            assert_eq!(agg.station, 3, "{scheme}");
        }
    }

    #[test]
    fn frame_pool_round_trip_reuses_buffers() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        for i in 0..10 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(path.frame_pool_len(), 0, "pool starts empty");
        let mut frames = agg.frames;
        frames.drain(..);
        let cap = frames.capacity();
        let ptr = frames.as_ptr();
        path.recycle_frames(frames);
        assert_eq!(path.frame_pool_len(), 1);
        // The next build must draw the recycled buffer, not allocate.
        for i in 0..5 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(100 + i)), now);
        }
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(agg.frames.as_ptr(), ptr);
        assert_eq!(agg.frames.capacity(), cap);
        assert_eq!(path.frame_pool_len(), 0);
        // A build that finds nothing returns the buffer to the pool.
        path.recycle_frames(agg.frames);
        assert!(path.build(0, AccessCategory::Be, now).is_none());
        assert_eq!(path.frame_pool_len(), 1, "empty build re-pools its buffer");
    }

    #[test]
    fn fifo_scheme_drops_past_qdisc_limit() {
        let mut c = cfg(SchemeKind::Fifo);
        c.pfifo_limit = 50;
        c.driver_buf_frames = 10;
        let mut path: ApTxPath<()> = ApTxPath::new(&c);
        let now = Nanos::ZERO;
        for i in 0..100 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        // 10 in driver + 50 in qdisc = 60 kept, 40 dropped.
        assert_eq!(path.backlog(), 60);
        assert_eq!(path.queue_drops, 40);
    }
}
