//! The access point's transmit path under each of the four queue
//! management schemes.
//!
//! The legacy path (FIFO / FQ-CoDel schemes) models the stock Linux stack
//! of Figure 2: a qdisc feeding unmanaged per-TID driver FIFOs under a
//! shared frame budget, eagerly refilled — the structure whose lower-layer
//! queueing defeats qdisc AQM and whose buffer-hogging by slow stations
//! starves fast stations' aggregation (§4.1.2).
//!
//! The FQ path (FQ-MAC / Airtime schemes) is the paper's structure of
//! Figure 3: the qdisc layer is bypassed and packets enter the MAC FQ
//! directly; stations are selected either round-robin (FQ-MAC) or by the
//! airtime-fairness scheduler (Airtime).
//!
//! Station state lives in a [`StationTable`] (DESIGN.md §14): the hot
//! per-round scheduler fields sit in the table's flat slabs, everything
//! the per-aggregate path needs (`ColdSta`) in its cold side table, and
//! the MAC FQ's TID handles in its per-slot TID stripe. All

//! station-keyed access goes through generational [`StaId`] handles; a
//! handle that outlives its station panics instead of addressing the
//! slot's next occupant.

use std::collections::VecDeque;

use wifiq_codel::{CodelParams, StationCodelParams};
use wifiq_core::fq::MacFq;
use wifiq_core::scheduler::AirtimeScheduler;
use wifiq_core::table::{StaId, StationTable};
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_qdisc::{FqCodelQdisc, PfifoFastQdisc, Qdisc};
use wifiq_sim::Nanos;
use wifiq_telemetry::Telemetry;

use crate::aggregation::{build_aggregate_into, Aggregate};
use crate::config::{NetworkConfig, SchemeKind, StationCfg};
use crate::packet::{Packet, StationIdx};

/// Upper bound on pooled frame buffers; enough to cover every hardware
/// queue slot plus in-flight recycling without holding memory forever.
const FRAME_POOL_CAP: usize = 32;

/// Dense TID index: one per (station, access category).
#[deprecated(
    since = "0.1.0",
    note = "station/TID state is keyed by generational handles now; read TID \
            handles from `StationTable::tid` instead of deriving indices \
            (DESIGN.md §14)"
)]
pub fn tid_index(sta: StationIdx, ac: AccessCategory) -> usize {
    sta * AccessCategory::COUNT + ac.index()
}

/// Driver FIFO index for the legacy path's per-TID buf_q array. This is
/// hardware-queue addressing (ath9k keys buf_q by TID number on the air),
/// not station-state access — the station store itself is only reached
/// through [`StationTable`] handles.
#[inline]
fn buf_index(slot: usize, ac: AccessCategory) -> usize {
    slot * AccessCategory::COUNT + ac.index()
}

enum LegacyQdisc<M> {
    Pfifo(PfifoFastQdisc<Packet<M>>),
    // Boxed: the FQ-CoDel qdisc is hundreds of bytes of flow state, the
    // pfifo variant a few pointers; one qdisc exists per network, so the
    // indirection is off the per-packet path.
    FqCodel(Box<FqCodelQdisc<Packet<M>>>),
}

/// `pfifo_fast`'s three-band 802.1d classification, by access category:
/// VO/VI → band 0, BE → band 1, BK → band 2.
fn pfifo_fast_band<M>(pkt: &Packet<M>) -> usize {
    match pkt.ac {
        AccessCategory::Vo | AccessCategory::Vi => 0,
        AccessCategory::Be => 1,
        AccessCategory::Bk => 2,
    }
}

impl<M> LegacyQdisc<M> {
    fn enqueue(&mut self, pkt: Packet<M>, now: Nanos) -> Option<Packet<M>> {
        match self {
            LegacyQdisc::Pfifo(q) => q.enqueue(pkt, now),
            LegacyQdisc::FqCodel(q) => q.enqueue(pkt, now),
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet<M>> {
        match self {
            LegacyQdisc::Pfifo(q) => q.dequeue(now),
            LegacyQdisc::FqCodel(q) => q.dequeue(now),
        }
    }

    fn len(&self) -> usize {
        match self {
            LegacyQdisc::Pfifo(q) => q.len(),
            LegacyQdisc::FqCodel(q) => q.len(),
        }
    }

    fn arena_live(&self) -> usize {
        match self {
            LegacyQdisc::Pfifo(q) => q.arena_live(),
            LegacyQdisc::FqCodel(q) => q.arena_live(),
        }
    }
}

enum StaSched {
    /// Per-AC round-robin over active stations (pre-airtime mainline).
    /// The lists hold station slots; `listed` is scheduler-internal
    /// bookkeeping keyed by slot, kept in step with the table's roster.
    Rr {
        lists: [VecDeque<usize>; AccessCategory::COUNT],
        listed: Vec<[bool; AccessCategory::COUNT]>,
    },
    /// The paper's airtime-fairness scheduler; all its per-station state
    /// (deficits, weights, DRR list links) lives in the station table.
    Airtime(AirtimeScheduler),
}

// One instance exists per network and the `fq` field sits on the
// per-packet path, so boxing to shrink the enum would trade a few
// hundred one-off bytes for an extra pointer chase per packet.
#[allow(clippy::large_enum_variant)]
enum PathInner<M> {
    Legacy {
        qdisc: LegacyQdisc<M>,
        /// Per-TID driver FIFOs (ath9k's buf_q), indexed by [`buf_index`].
        bufq: Vec<VecDeque<Packet<M>>>,
        buf_total: usize,
        buf_cap: usize,
        /// Per-AC round-robin of TIDs with queued frames.
        rr: [VecDeque<usize>; AccessCategory::COUNT],
        listed: Vec<bool>,
    },
    Fq {
        fq: MacFq<Packet<M>>,
        sched: StaSched,
    },
}

/// Per-station state off the per-round scheduling path, stored in the
/// station table's cold side table: the per-aggregate build path touches
/// it once per aggregate, not once per round.
struct ColdSta<M> {
    /// The rate the next aggregate for this station builds at.
    rate: PhyRate,
    /// Per-station CoDel parameter selection (§3.1.1).
    codel: StationCodelParams,
    /// One parked packet per AC: pulled for an aggregate but didn't fit
    /// (the retry_q head slot of Figure 3).
    stash: [Option<Packet<M>>; AccessCategory::COUNT],
}

/// The AP transmit path: scheme-specific queueing plus station selection
/// and aggregate construction.
pub struct ApTxPath<M> {
    kind: SchemeKind,
    inner: PathInner<M>,
    /// The station store: occupancy, generational handles, the airtime
    /// scheduler's hot slabs, the FQ TID-handle stripe, and `ColdSta`.
    table: StationTable<ColdSta<M>>,
    /// Remembered so stations added after construction get the same CoDel
    /// parameter policy as the initial roster.
    adaptive_codel: bool,
    /// Packets dropped at AP queueing layers (qdisc tail-drop, FQ
    /// overlimit; CoDel drops are counted by the FQ structures).
    pub queue_drops: u64,
    /// Recycled `Aggregate::frames` buffers: built aggregates draw from
    /// here and the network layer returns the emptied Vec after TX, so
    /// the steady state allocates no frame buffers at all.
    frame_pool: Vec<Vec<Packet<M>>>,
    tele: Telemetry,
}

/// What a station teardown yields: the drop count (churn) or the queued
/// frames themselves (roaming hand-off).
enum Teardown<M> {
    Dropped(usize),
    Moved(Vec<Packet<M>>),
}

/// CoDel parameter state for one station under the configured policy.
fn codel_params_for(adaptive: bool) -> StationCodelParams {
    if adaptive {
        StationCodelParams::new()
    } else {
        // Ablation: pin the global defaults regardless of rate.
        StationCodelParams::with_config(
            CodelParams::wifi_default(),
            CodelParams::wifi_default(),
            0,
            Nanos::ZERO,
        )
    }
}

impl<M: std::fmt::Debug> ApTxPath<M> {
    /// Builds the transmit path for the configured scheme.
    pub fn new(cfg: &NetworkConfig) -> ApTxPath<M> {
        let n = cfg.num_stations();
        let inner = match cfg.scheme {
            SchemeKind::Fifo | SchemeKind::FqCodelQdisc => PathInner::Legacy {
                qdisc: if cfg.scheme == SchemeKind::Fifo {
                    LegacyQdisc::Pfifo(PfifoFastQdisc::new(3, cfg.pfifo_limit, pfifo_fast_band))
                } else {
                    LegacyQdisc::FqCodel(Box::new(FqCodelQdisc::with_defaults()))
                },
                bufq: Vec::new(),
                buf_total: 0,
                buf_cap: cfg.driver_buf_frames,
                rr: Default::default(),
                listed: Vec::new(),
            },
            SchemeKind::FqMac | SchemeKind::AirtimeFair => {
                let fq = MacFq::new(cfg.fq);
                let sched = if cfg.scheme == SchemeKind::FqMac {
                    StaSched::Rr {
                        lists: Default::default(),
                        listed: Vec::new(),
                    }
                } else {
                    StaSched::Airtime(AirtimeScheduler::new(cfg.airtime))
                };
                PathInner::Fq { fq, sched }
            }
        };
        let mut path = ApTxPath {
            kind: cfg.scheme,
            inner,
            table: StationTable::with_capacity(n),
            adaptive_codel: cfg.adaptive_codel,
            queue_drops: 0,
            frame_pool: Vec::new(),
            tele: Telemetry::disabled(),
        };
        for station in &cfg.stations {
            path.add_station(station);
        }
        path
    }

    /// Returns an emptied `Aggregate::frames` buffer to the pool for the
    /// next [`build`](Self::build) to reuse. Buffers beyond the pool cap
    /// are simply dropped.
    pub fn recycle_frames(&mut self, mut frames: Vec<Packet<M>>) {
        frames.clear();
        if self.frame_pool.len() < FRAME_POOL_CAP && frames.capacity() > 0 {
            self.frame_pool.push(frames);
        }
    }

    /// Pooled frame buffers currently available (test probe).
    #[doc(hidden)]
    pub fn frame_pool_len(&self) -> usize {
        self.frame_pool.len()
    }

    /// Attaches a station to the transmit path, reusing the most recently
    /// removed slot when one is free (otherwise growing every per-slot
    /// table). Returns the generational handle for the new station.
    ///
    /// Slot reuse relies on the LIFO lockstep between the table's free
    /// list and the FQ structure's TID free list: both are pushed/popped
    /// only from here, so a reused slot always reclaims the TID set it
    /// released — and because the actual TID handles are stored in the
    /// table's stripe, nothing downstream depends on that arithmetic.
    pub fn add_station(&mut self, station: &StationCfg) -> StaId {
        let cold = ColdSta {
            rate: station.rate,
            codel: codel_params_for(self.adaptive_codel),
            stash: Default::default(),
        };
        let id = match &mut self.inner {
            PathInner::Fq {
                sched: StaSched::Airtime(s),
                ..
            } => {
                let id = s.register_station(&mut self.table, cold);
                self.table.set_weight(id, station.airtime_weight);
                id
            }
            _ => self.table.alloc(cold),
        };
        let slot = id.slot();
        match &mut self.inner {
            PathInner::Legacy { bufq, listed, .. } => {
                while bufq.len() < (slot + 1) * AccessCategory::COUNT {
                    bufq.push(VecDeque::new());
                    listed.push(false);
                }
            }
            PathInner::Fq { fq, sched } => {
                for ac in 0..AccessCategory::COUNT {
                    let tid = fq.register_tid();
                    debug_assert_eq!(
                        tid.slot() / AccessCategory::COUNT,
                        slot,
                        "TID free list out of lockstep with station slots"
                    );
                    self.table.set_tid(id, ac, tid);
                }
                if let StaSched::Rr { listed, .. } = sched {
                    while listed.len() <= slot {
                        listed.push([false; AccessCategory::COUNT]);
                    }
                    listed[slot] = [false; AccessCategory::COUNT];
                }
            }
        }
        id
    }

    /// Detaches a station: the single teardown path shared by churn
    /// removal and roaming hand-off. Drops or hands back every frame
    /// queued for the station at the AP (stash, driver FIFOs or FQ
    /// flows), pulls its TIDs/slot out of all scheduling lists mid-round
    /// without disturbing the survivors' rotation order or deficits, and
    /// frees the table slot — which bumps the generation, so every
    /// outstanding handle to the station goes stale.
    fn detach_station(&mut self, id: StaId, now: Nanos, migrate: bool) -> Teardown<M> {
        let mut moved: Vec<Packet<M>> = Vec::new();
        let mut dropped = 0usize;
        // `cold_mut` validates the handle (stale/double-free panics here).
        for ac in 0..AccessCategory::COUNT {
            if let Some(p) = self.table.cold_mut(id).stash[ac].take() {
                if migrate {
                    moved.push(p);
                } else {
                    dropped += 1;
                }
            }
        }
        let slot = id.slot();
        match &mut self.inner {
            PathInner::Legacy {
                qdisc,
                bufq,
                buf_total,
                rr,
                listed,
                ..
            } => {
                // Packets for the station may still sit in the shared
                // qdisc; those surface into bufq via pull_from_qdisc and
                // are only discarded when addressed to a freed slot at the
                // network layer. Here we clear the driver FIFOs, which
                // also releases the shared frame budget they pinned.
                for ac in AccessCategory::ALL {
                    let tid = buf_index(slot, ac);
                    *buf_total -= bufq[tid].len();
                    if migrate {
                        moved.extend(bufq[tid].drain(..));
                    } else {
                        dropped += bufq[tid].len();
                        bufq[tid].clear();
                    }
                    if listed[tid] {
                        rr[ac.index()].retain(|&t| t != tid);
                        listed[tid] = false;
                    }
                }
                // Only the pfifo qdisc can be filtered per-station; the
                // shared FQ-CoDel qdisc's stale frames surface and are
                // discarded later, exactly as under churn.
                if migrate {
                    if let LegacyQdisc::Pfifo(q) = qdisc {
                        moved.extend(q.drain_matching(|p| p.wireless_peer() == slot));
                    }
                }
            }
            PathInner::Fq { fq, sched } => {
                for ac in 0..AccessCategory::COUNT {
                    let tid = self.table.tid(id, ac);
                    if migrate {
                        moved.extend(fq.unregister_tid_migrate(tid));
                    } else {
                        dropped += fq.unregister_tid(tid, now);
                    }
                }
                if let StaSched::Rr { lists, listed } = sched {
                    for (aci, l) in lists.iter_mut().enumerate() {
                        if listed[slot][aci] {
                            l.retain(|&x| x != slot);
                            listed[slot][aci] = false;
                        }
                    }
                }
                // Airtime: `table.free` below unlinks the station from the
                // DRR lists without touching the survivors.
            }
        }
        self.table.free(id);
        if migrate {
            Teardown::Moved(moved)
        } else {
            Teardown::Dropped(dropped)
        }
    }

    /// Detaches a station under churn, dropping every frame queued for it
    /// at the AP. Returns the number of packets dropped. The handle goes
    /// stale; the slot is parked for reuse.
    pub fn remove_station(&mut self, id: StaId, now: Nanos) -> usize {
        match self.detach_station(id, now, false) {
            Teardown::Dropped(n) => n,
            Teardown::Moved(_) => unreachable!(),
        }
    }

    /// Detaches a station like [`remove_station`](Self::remove_station),
    /// but hands back every frame queued for it at the AP (stash, driver
    /// FIFOs, MAC FQ flows, and — for the pfifo qdiscs — the shared
    /// qdisc) so a roaming hand-off can carry them to the target BSS.
    pub fn remove_station_migrate(&mut self, id: StaId) -> Vec<Packet<M>> {
        match self.detach_station(id, Nanos::ZERO, true) {
            Teardown::Moved(v) => v,
            Teardown::Dropped(_) => unreachable!(),
        }
    }

    /// The current generational handle for the station at `slot`, or
    /// `None` if the slot is empty. Wire addressing (packets, aggregates)
    /// speaks slots; everything stateful speaks handles — this is the
    /// bridge.
    pub fn sta_id(&self, slot: StationIdx) -> Option<StaId> {
        self.table.id_at(slot)
    }

    /// Whether slot `sta` currently hosts a station.
    pub fn station_active(&self, sta: StationIdx) -> bool {
        self.table.id_at(sta).is_some()
    }

    /// Whether `id` still addresses a live station (i.e. the station has
    /// not been removed since the handle was issued).
    pub fn station_current(&self, id: StaId) -> bool {
        self.table.is_current(id)
    }

    /// Re-writes one station's per-AC airtime weights (compiled policy
    /// output). Deficits are untouched — the scheduler picks the new
    /// weights up at the station's next replenishment — so applying a
    /// policy switch never disturbs stations whose weights are unchanged.
    /// A no-op under the non-airtime schemes.
    pub fn set_station_weights(&mut self, id: StaId, weights: [u32; AccessCategory::COUNT]) {
        if let PathInner::Fq {
            sched: StaSched::Airtime(_),
            ..
        } = &self.inner
        {
            if self.table.is_current(id) {
                self.table.set_ac_weights(id, weights);
            }
        }
    }

    /// One station's current airtime weight at `ac` (test/telemetry
    /// probe); `None` under the non-airtime schemes or for a stale handle.
    pub fn station_ac_weight(&self, id: StaId, ac: AccessCategory) -> Option<u32> {
        match &self.inner {
            PathInner::Fq {
                sched: StaSched::Airtime(_),
                ..
            } if self.table.is_current(id) => Some(self.table.ac_weight(id, ac.index())),
            _ => None,
        }
    }

    /// Number of station slots ever allocated (active + tombstoned).
    pub fn station_slots(&self) -> usize {
        self.table.slots()
    }

    /// Attaches a telemetry handle, propagating it to the MAC FQ structure
    /// (metrics under component "fq") and the per-station CoDel parameter
    /// switches (component "codel").
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        if let PathInner::Fq { fq, .. } = &mut self.inner {
            fq.set_telemetry(tele.clone(), "fq");
        }
        self.tele = tele;
    }

    /// The scheme this path implements.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Total packets queued at the AP (qdisc + driver, or MAC FQ),
    /// excluding stashed frames.
    pub fn backlog(&self) -> usize {
        match &self.inner {
            PathInner::Legacy {
                qdisc, buf_total, ..
            } => qdisc.len() + buf_total,
            PathInner::Fq { fq, .. } => fq.total_packets(),
        }
    }

    /// Packets live in the path's packet arena — the teardown audit's
    /// counterpart to [`ApTxPath::backlog`]. Stashed frames and driver
    /// FIFOs hold owned packets outside the arena, so after a full drain
    /// this must be exactly zero: any residue is a leaked arena slot.
    pub fn arena_live(&self) -> usize {
        match &self.inner {
            PathInner::Legacy { qdisc, .. } => qdisc.arena_live(),
            PathInner::Fq { fq, .. } => fq.arena_live(),
        }
    }

    /// Whether `(id, ac)` has pending data (stash included).
    fn tid_has_data(&self, id: StaId, ac: AccessCategory) -> bool {
        if self.table.cold(id).stash[ac.index()].is_some() {
            return true;
        }
        match &self.inner {
            PathInner::Legacy { bufq, .. } => !bufq[buf_index(id.slot(), ac)].is_empty(),
            PathInner::Fq { fq, .. } => fq.tid_has_data(self.table.tid(id, ac.index())),
        }
    }

    /// Accepts a downlink packet from the IP layer. The packet must have
    /// `enqueued` stamped with the current time.
    pub fn enqueue(&mut self, pkt: Packet<M>, now: Nanos) {
        let slot = pkt.wireless_peer();
        let ac = pkt.ac;
        match &mut self.inner {
            PathInner::Legacy { qdisc, .. } => {
                debug_assert!(
                    self.table.id_at(slot).is_some(),
                    "enqueue for a removed station"
                );
                if qdisc.enqueue(pkt, now).is_some() {
                    self.queue_drops += 1;
                }
                self.pull_from_qdisc(now);
            }
            PathInner::Fq { fq, sched } => {
                let id = self
                    .table
                    .id_at(slot)
                    .expect("enqueue for a removed station");
                let tid = self.table.tid(id, ac.index());
                if fq.enqueue(pkt, tid, now).is_some() {
                    self.queue_drops += 1;
                }
                match sched {
                    StaSched::Rr { lists, listed } => {
                        if !listed[slot][ac.index()] {
                            listed[slot][ac.index()] = true;
                            lists[ac.index()].push_back(slot);
                        }
                    }
                    StaSched::Airtime(s) => s.notify_active(&mut self.table, id, ac.index()),
                }
            }
        }
    }

    /// Eagerly moves packets from the qdisc into the driver FIFOs while
    /// the shared frame budget allows — the unmanaged lower-layer
    /// queueing of Figure 2.
    fn pull_from_qdisc(&mut self, now: Nanos) {
        let PathInner::Legacy {
            qdisc,
            bufq,
            buf_total,
            buf_cap,
            rr,
            listed,
        } = &mut self.inner
        else {
            return;
        };
        while *buf_total < *buf_cap {
            let Some(pkt) = qdisc.dequeue(now) else { break };
            // The shared qdisc cannot be filtered on removal; frames for a
            // since-departed station are discarded as they surface.
            if self.table.id_at(pkt.wireless_peer()).is_none() {
                self.queue_drops += 1;
                continue;
            }
            let tid = buf_index(pkt.wireless_peer(), pkt.ac);
            let ac = pkt.ac.index();
            bufq[tid].push_back(pkt);
            *buf_total += 1;
            if !listed[tid] {
                listed[tid] = true;
                rr[ac].push_back(tid);
            }
        }
    }

    /// Picks the station whose TID should build the next aggregate at
    /// access category `ac`, or `None` if nothing is pending there.
    ///
    /// `eligible` lets the driver veto stations this refill round (the
    /// AQL mechanism: a station whose hardware-queued airtime exceeds its
    /// budget is treated as having nothing to send, and is rotated out of
    /// the scheduling lists exactly like an empty station). It applies to
    /// the FQ paths only — AQL post-dates the legacy stack. A vetoed
    /// station with remaining traffic must be re-listed via
    /// [`reactivate`](Self::reactivate) once its hardware airtime drains.
    pub fn next_tx(
        &mut self,
        ac: AccessCategory,
        _now: Nanos,
        eligible: impl Fn(StaId) -> bool,
    ) -> Option<StaId> {
        let aci = ac.index();
        match &mut self.inner {
            PathInner::Legacy {
                bufq, rr, listed, ..
            } => loop {
                let &tid = rr[aci].front()?;
                let slot = tid / AccessCategory::COUNT;
                let stashed = self
                    .table
                    .cold_at(slot)
                    .is_some_and(|c| c.stash[aci].is_some());
                if stashed || !bufq[tid].is_empty() {
                    // Teardown unlists a departing station's TIDs, so the
                    // slot at the front is always occupied.
                    return self.table.id_at(slot);
                }
                rr[aci].pop_front();
                listed[tid] = false;
            },
            PathInner::Fq { fq, sched } => match sched {
                StaSched::Rr { lists, listed } => loop {
                    let &slot = lists[aci].front()?;
                    let id = self.table.id_at(slot)?;
                    let tid = self.table.tid(id, aci);
                    let has = (self.table.cold(id).stash[aci].is_some() || fq.tid_has_data(tid))
                        && eligible(id);
                    if has {
                        return Some(id);
                    }
                    lists[aci].pop_front();
                    listed[slot][aci] = false;
                },
                StaSched::Airtime(s) => {
                    let fq_ref = &*fq;
                    s.next_station(&mut self.table, aci, |t, id| {
                        (t.cold(id).stash[aci].is_some() || fq_ref.tid_has_data(t.tid(id, aci)))
                            && eligible(id)
                    })
                }
            },
        }
    }

    /// Re-lists a station that still has queued traffic but was rotated
    /// out of the scheduling lists (AQL veto, or a race between drain and
    /// enqueue). Idempotent.
    ///
    /// Under the airtime scheduler this re-enters via the *new* list
    /// (sparse priority). That is benign for the stations AQL vetoes:
    /// they are heavy airtime users whose deficits are deeply negative,
    /// so the deficit check rotates them straight to the old list before
    /// any priority is realised.
    pub fn reactivate(&mut self, id: StaId, ac: AccessCategory) {
        if !self.tid_has_data(id, ac) {
            return;
        }
        let aci = ac.index();
        if let PathInner::Fq { sched, .. } = &mut self.inner {
            match sched {
                StaSched::Rr { lists, listed } => {
                    let slot = id.slot();
                    if !listed[slot][aci] {
                        listed[slot][aci] = true;
                        lists[aci].push_back(slot);
                    }
                }
                StaSched::Airtime(s) => s.notify_active(&mut self.table, id, aci),
            }
        }
    }

    /// Builds an aggregate for `(id, ac)` and performs the scheme's
    /// post-build rotation (RR advance). Returns `None` if the TID turned
    /// out to be empty (e.g. CoDel dropped its remaining packets).
    pub fn build(&mut self, id: StaId, ac: AccessCategory, now: Nanos) -> Option<Aggregate<M>> {
        let slot = id.slot();
        let rate = self.table.cold(id).rate;
        let codel_params = self.table.cold(id).codel.current();
        let fq_tid = match &self.inner {
            PathInner::Fq { .. } => self.table.tid(id, ac.index()),
            PathInner::Legacy { .. } => wifiq_core::table::TidId::NONE,
        };
        let stash_slot = &mut self.table.cold_mut(id).stash[ac.index()];
        let frames_buf = self.frame_pool.pop().unwrap_or_default();

        let (built, leftover) = match &mut self.inner {
            PathInner::Legacy {
                bufq, buf_total, ..
            } => {
                let q = &mut bufq[buf_index(slot, ac)];
                let mut taken = 0usize;
                let (built, leftover) = build_aggregate_into(slot, ac, rate, frames_buf, || {
                    if let Some(p) = stash_slot.take() {
                        return Some(p);
                    }
                    let p = q.pop_front();
                    if p.is_some() {
                        taken += 1;
                    }
                    p
                });
                *buf_total -= taken;
                (built, leftover)
            }
            PathInner::Fq { fq, .. } => build_aggregate_into(slot, ac, rate, frames_buf, || {
                if let Some(p) = stash_slot.take() {
                    return Some(p);
                }
                fq.dequeue(fq_tid, now, &codel_params)
            }),
        };
        self.table.cold_mut(id).stash[ac.index()] = leftover;
        let agg = match built {
            Ok(agg) => Some(agg),
            Err(buf) => {
                // Nothing to send: hand the untouched buffer back.
                if self.frame_pool.len() < FRAME_POOL_CAP && buf.capacity() > 0 {
                    self.frame_pool.push(buf);
                }
                None
            }
        };

        // Post-build rotation for the round-robin schemes; the airtime
        // scheduler rotates via deficits instead.
        let aci = ac.index();
        match &mut self.inner {
            PathInner::Legacy { rr, .. } => {
                let tid = buf_index(slot, ac);
                if let Some(&front) = rr[aci].front() {
                    if front == tid {
                        rr[aci].pop_front();
                        rr[aci].push_back(tid);
                    }
                }
            }
            PathInner::Fq { sched, .. } => {
                if let StaSched::Rr { lists, .. } = sched {
                    if let Some(&front) = lists[aci].front() {
                        if front == slot {
                            lists[aci].pop_front();
                            lists[aci].push_back(slot);
                        }
                    }
                }
            }
        }

        // Refill the driver FIFOs from the qdisc after taking frames out.
        self.pull_from_qdisc(now);
        agg
    }

    /// Reports a completed transmission attempt's airtime (TX direction):
    /// charges the airtime scheduler and refreshes the station's CoDel
    /// parameters from `rate_estimate_bps` — the station's current
    /// throughput estimate, which is the configured rate under static
    /// rate control or the Minstrel estimate when rate control runs
    /// (§3.1.1: "obtained from the rate selection algorithm").
    ///
    /// Callers resolve the handle from the aggregate's wire slot at
    /// completion time; an exchange completing after its target departed
    /// simply finds no current handle and never reaches this method.
    pub fn on_tx_airtime(
        &mut self,
        id: StaId,
        ac: AccessCategory,
        airtime: Nanos,
        now: Nanos,
        rate_estimate_bps: u64,
    ) {
        if let PathInner::Fq {
            sched: StaSched::Airtime(s),
            ..
        } = &mut self.inner
        {
            s.charge(&mut self.table, id, ac.index(), airtime);
        }
        let slot = id.slot() as u32;
        let tele = self.tele.clone();
        self.table
            .cold_mut(id)
            .codel
            .update_rate_observed(now, rate_estimate_bps, &tele, slot);
    }

    /// The rate the next aggregate for the station will be built at.
    pub fn rate_of(&self, id: StaId) -> PhyRate {
        self.table.cold(id).rate
    }

    /// Whether the §3.1.1 slow-station CoDel parameters are currently
    /// active for the station (recovery tracking for fault injection).
    pub fn codel_degraded(&self, id: StaId) -> bool {
        self.table.cold(id).codel.is_degraded()
    }

    /// Overrides the downlink rate for the station (driven by the rate
    /// controller between aggregates).
    pub fn set_rate(&mut self, id: StaId, rate: PhyRate) {
        self.table.cold_mut(id).rate = rate;
    }

    /// Charges *received* airtime to a station's deficit (§3.2 point 2:
    /// "also accounting the airtime from received frames"), unless the
    /// scheduler is configured for TX-only accounting (ablation).
    pub fn on_rx_airtime(&mut self, id: StaId, ac: AccessCategory, airtime: Nanos) {
        if let PathInner::Fq {
            sched: StaSched::Airtime(s),
            ..
        } = &mut self.inner
        {
            if s.params().charge_rx {
                s.charge(&mut self.table, id, ac.index(), airtime);
            }
        }
    }

    /// Whether any station at `ac` has pending data (stash included).
    pub fn has_data_at(&self, ac: AccessCategory) -> bool {
        self.table.iter().any(|id| self.tid_has_data(id, ac))
    }

    /// CoDel drop count accumulated in the MAC FQ (0 for legacy paths; the
    /// FQ-CoDel qdisc's own drops are internal to it).
    pub fn codel_drops(&self) -> u64 {
        match &self.inner {
            PathInner::Legacy { qdisc, .. } => match qdisc {
                LegacyQdisc::FqCodel(q) => q.codel_drops(),
                LegacyQdisc::Pfifo(_) => 0,
            },
            PathInner::Fq { fq, .. } => fq.stats.drops_codel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeAddr;

    type P = Packet<()>;

    fn cfg(scheme: SchemeKind) -> NetworkConfig {
        NetworkConfig::paper_testbed(scheme)
    }

    fn pkt(sta: StationIdx, flow: u64, now: Nanos) -> P {
        Packet {
            id: 0,
            src: NodeAddr::Server,
            dst: NodeAddr::Station(sta),
            flow,
            len: 1500,
            ac: AccessCategory::Be,
            created: now,
            enqueued: now,
            payload: (),
        }
    }

    fn drain_one(path: &mut ApTxPath<()>, now: Nanos) -> Option<Aggregate<()>> {
        let id = path.next_tx(AccessCategory::Be, now, |_| true)?;
        path.build(id, AccessCategory::Be, now)
    }

    /// Frames parked in a station slot's stash (test probe).
    fn stashed(path: &ApTxPath<()>, slot: usize) -> usize {
        path.table
            .cold_at(slot)
            .map_or(0, |c| c.stash.iter().filter(|s| s.is_some()).count())
    }

    #[test]
    fn all_schemes_pass_packets_through() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..10 {
                path.enqueue(pkt(0, 1, Nanos::from_micros(i)), now);
            }
            let agg = drain_one(&mut path, now).unwrap_or_else(|| panic!("{scheme}: no aggregate"));
            assert_eq!(agg.station, 0);
            assert!(!agg.frames.is_empty());
        }
    }

    #[test]
    fn legacy_driver_budget_is_shared() {
        // Fill with slow-station packets first; the driver budget (128)
        // should be consumed by station 2's TID, leaving the fast
        // station's packets in the qdisc.
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::Fifo));
        let now = Nanos::ZERO;
        for i in 0..500 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        for i in 0..100 {
            path.enqueue(pkt(0, 2, Nanos::from_nanos(1000 + i)), now);
        }
        // Driver holds 128 slow frames; fast station cannot transmit more
        // than what trickles in later — right now its bufq is empty, so
        // the only serviceable TID is the slow one.
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(agg.station, 2, "slow station hogs the driver buffer");
    }

    #[test]
    fn fq_mac_keeps_stations_separate() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        for i in 0..200 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        for i in 0..50 {
            path.enqueue(pkt(0, 2, Nanos::from_nanos(1000 + i)), now);
        }
        // RR alternates stations even though the slow one queued first.
        let a = drain_one(&mut path, now).unwrap();
        let b = drain_one(&mut path, now).unwrap();
        assert_ne!(a.station, b.station, "RR must alternate stations");
    }

    #[test]
    fn airtime_scheme_charges_affect_selection() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::AirtimeFair));
        let now = Nanos::ZERO;
        for i in 0..100 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
            path.enqueue(pkt(1, 2, Nanos::from_nanos(i)), now);
        }
        let first = path.next_tx(AccessCategory::Be, now, |_| true).unwrap();
        // Charge the first station heavily; the other must be selected.
        path.on_tx_airtime(
            first,
            AccessCategory::Be,
            Nanos::from_millis(5),
            now,
            144_000_000,
        );
        let second = path.next_tx(AccessCategory::Be, now, |_| true).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn stash_is_offered_first() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        // 50 packets for the slow station: the 4 ms cap means 2 frames per
        // aggregate and one stashed.
        for i in 0..50 {
            path.enqueue(pkt(2, 1, Nanos::from_nanos(i)), now);
        }
        let a = drain_one(&mut path, now).unwrap();
        assert_eq!(a.station, 2);
        assert_eq!(a.frames.len(), 2);
        // Total conservation across repeated builds.
        let mut total = a.frames.len();
        while let Some(agg) = drain_one(&mut path, now) {
            total += agg.frames.len();
        }
        assert_eq!(total, 50, "stashed packets must not be lost");
    }

    #[test]
    fn backlog_reports_queued_packets() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..20 {
                path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
            }
            assert_eq!(path.backlog(), 20, "{scheme}");
            assert!(path.has_data_at(AccessCategory::Be), "{scheme}");
            assert!(!path.has_data_at(AccessCategory::Vo), "{scheme}");
        }
    }

    #[test]
    fn eligibility_veto_and_reactivate() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::AirtimeFair));
        let now = Nanos::ZERO;
        for i in 0..20 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        let id0 = path.sta_id(0).unwrap();
        // Vetoed: the scheduler treats station 0 as empty and, having no
        // other candidates, returns None (rotating it off the lists).
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| false), None);
        // Without reactivation the station stays invisible even though
        // its queue is non-empty.
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), None);
        // Reactivate re-lists it.
        path.reactivate(id0, AccessCategory::Be);
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), Some(id0));
        // Reactivating an empty station is a no-op.
        let mut drained = 0;
        while drain_one(&mut path, now).is_some() {
            drained += 1;
        }
        assert!(drained >= 1);
        path.reactivate(id0, AccessCategory::Be);
        assert_eq!(path.next_tx(AccessCategory::Be, now, |_| true), None);
    }

    #[test]
    fn remove_then_readd_station_reuses_slot() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..30 {
                path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
                path.enqueue(pkt(1, 2, Nanos::from_nanos(i)), now);
            }
            let id1 = path.sta_id(1).unwrap();
            path.remove_station(id1, now);
            assert!(!path.station_active(1), "{scheme}");
            assert!(!path.station_current(id1), "{scheme}: handle not stale");
            while let Some(agg) = drain_one(&mut path, now) {
                assert_ne!(agg.station, 1, "{scheme}: removed station was scheduled");
            }
            assert_eq!(path.backlog(), 0, "{scheme}: backlog left behind");
            let readded = path.add_station(&StationCfg::clean(PhyRate::fast_station()));
            assert_eq!(readded.slot(), 1, "{scheme}: LIFO slot reuse");
            assert_ne!(readded, id1, "{scheme}: generation not bumped on reuse");
            assert_eq!(path.station_slots(), 3, "{scheme}: slot table grew");
            path.enqueue(pkt(1, 3, now), now);
            let agg = drain_one(&mut path, now).expect("readded station must transmit");
            assert_eq!(agg.station, 1, "{scheme}");
        }
    }

    #[test]
    #[should_panic(expected = "stale station handle")]
    fn stale_handle_panics_on_use() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::AirtimeFair));
        let now = Nanos::ZERO;
        let id1 = path.sta_id(1).unwrap();
        path.remove_station(id1, now);
        path.add_station(&StationCfg::clean(PhyRate::fast_station()));
        // The slot is occupied again, but this handle predates the churn.
        path.rate_of(id1);
    }

    #[test]
    fn remove_station_migrate_carries_queued_frames() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            for i in 0..30 {
                path.enqueue(pkt(1, 1, Nanos::from_nanos(i)), now);
                path.enqueue(pkt(0, 2, Nanos::from_nanos(i)), now);
            }
            // One build may park a leftover frame in station 1's stash;
            // the migrate must pick that up too.
            while let Some(agg) = drain_one(&mut path, now) {
                if agg.station == 1 {
                    break;
                }
            }
            let before = path.backlog() + stashed(&path, 1);
            let id1 = path.sta_id(1).unwrap();
            let moved = path.remove_station_migrate(id1);
            assert!(!path.station_active(1), "{scheme}");
            assert!(
                moved.iter().all(|p| p.wireless_peer() == 1),
                "{scheme}: migrated a bystander's frame"
            );
            // Under FQ-CoDel the shared qdisc keeps station 1's frames
            // (cannot be filtered); everywhere else the AP must hold no
            // frame for the roamer any more.
            if scheme != SchemeKind::FqCodelQdisc {
                assert_eq!(
                    path.backlog() + stashed(&path, 1) + moved.len(),
                    before,
                    "{scheme}: frames vanished in migration"
                );
                while let Some(agg) = drain_one(&mut path, now) {
                    assert_ne!(agg.station, 1, "{scheme}: roamer still scheduled");
                }
            }
            // The slot is reusable, exactly as after a plain removal.
            let readded = path.add_station(&StationCfg::clean(PhyRate::fast_station()));
            assert_eq!(readded.slot(), 1, "{scheme}: LIFO slot reuse after migrate");
        }
    }

    #[test]
    fn add_station_grows_roster() {
        for scheme in SchemeKind::ALL {
            let mut path: ApTxPath<()> = ApTxPath::new(&cfg(scheme));
            let now = Nanos::ZERO;
            let id = path.add_station(&StationCfg::clean(PhyRate::slow_station()));
            assert_eq!(id.slot(), 3, "{scheme}: new slot appended");
            path.enqueue(pkt(3, 9, now), now);
            let agg = drain_one(&mut path, now).expect("new station must transmit");
            assert_eq!(agg.station, 3, "{scheme}");
        }
    }

    #[test]
    fn frame_pool_round_trip_reuses_buffers() {
        let mut path: ApTxPath<()> = ApTxPath::new(&cfg(SchemeKind::FqMac));
        let now = Nanos::ZERO;
        for i in 0..10 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        let id0 = path.sta_id(0).unwrap();
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(path.frame_pool_len(), 0, "pool starts empty");
        let mut frames = agg.frames;
        frames.drain(..);
        let cap = frames.capacity();
        let ptr = frames.as_ptr();
        path.recycle_frames(frames);
        assert_eq!(path.frame_pool_len(), 1);
        // The next build must draw the recycled buffer, not allocate.
        for i in 0..5 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(100 + i)), now);
        }
        let agg = drain_one(&mut path, now).unwrap();
        assert_eq!(agg.frames.as_ptr(), ptr);
        assert_eq!(agg.frames.capacity(), cap);
        assert_eq!(path.frame_pool_len(), 0);
        // A build that finds nothing returns the buffer to the pool.
        path.recycle_frames(agg.frames);
        assert!(path.build(id0, AccessCategory::Be, now).is_none());
        assert_eq!(path.frame_pool_len(), 1, "empty build re-pools its buffer");
    }

    #[test]
    fn fifo_scheme_drops_past_qdisc_limit() {
        let mut c = cfg(SchemeKind::Fifo);
        c.pfifo_limit = 50;
        c.driver_buf_frames = 10;
        let mut path: ApTxPath<()> = ApTxPath::new(&c);
        let now = Nanos::ZERO;
        for i in 0..100 {
            path.enqueue(pkt(0, 1, Nanos::from_nanos(i)), now);
        }
        // 10 in driver + 50 in qdisc = 60 kept, 40 dropped.
        assert_eq!(path.backlog(), 60);
        assert_eq!(path.queue_drops, 40);
    }
}
