//! Discrete-event 802.11n MAC/driver substrate.
//!
//! This crate is the simulator standing in for the paper's physical
//! testbed: Atheros AR9580 radios, the ath9k driver, and the mac80211
//! queueing layers. It provides:
//!
//! - [`network::WifiNetwork`] — the event loop: CSMA/CA medium
//!   arbitration, wire hop to the server, per-AC hardware queues,
//!   airtime metering,
//! - [`scheme::ApTxPath`] — the AP transmit path under each of the four
//!   evaluated schemes (FIFO, FQ-CoDel, FQ-MAC, Airtime fair FQ),
//! - [`station::StationUplink`] — the unmodified client stack,
//! - [`aggregation`] — A-MPDU construction under the BlockAck-window,
//!   byte and airtime caps,
//! - [`app::App`] — the callback interface traffic generators implement.
//!
//! See DESIGN.md §2 for exactly which paper components each piece
//! substitutes and why the substitution preserves the evaluated
//! behaviour.

pub mod aggregation;
pub mod app;
pub mod builder;
pub mod config;
pub mod meter;
pub mod network;
pub mod packet;
pub mod ratectrl;
pub mod scheme;
pub mod station;
pub mod trace;

pub use aggregation::Aggregate;
pub use app::{App, Commands, Delivery};
pub use builder::{Preset, ScenarioBuilder};
pub use config::{ErrorModel, NetworkConfig, SchemeKind, StationCfg};
// Re-exported so scenario authors depend on one crate for the full
// builder vocabulary (targets, impairments, schedules).
pub use meter::{AirtimeMeter, StationMeter};
pub use network::{RoamHandoff, WifiNetwork};
pub use packet::{NodeAddr, Packet, StationIdx};
pub use ratectrl::Minstrel;
pub use trace::{AirtimeCapture, TxDirection, TxMonitor, TxRecord};
pub use wifiq_chaos::{ChaosInjector, FaultEntry, FaultSchedule, FaultTarget, Impairment};
pub use wifiq_core::{StaId, TidId};
pub use wifiq_policy::{PolicyNode, PolicySet, PolicySwitch, PolicyTimeline};
