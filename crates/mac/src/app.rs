//! The application-layer interface to the network simulator.
//!
//! Traffic generators and protocol endpoints live *outside* the MAC
//! simulator; they receive delivered packets and timer callbacks, and
//! respond by queueing commands (sends, timers). This inversion keeps the
//! simulator generic over what is being carried — the same network runs
//! UDP floods, TCP transfers, VoIP and web traffic.

use crate::packet::{Packet, StationIdx};
use wifiq_sim::Nanos;

/// Where a packet was delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Arrived at the wired server (uplink traffic).
    AtServer,
    /// Arrived at a wireless station (downlink traffic).
    AtStation(StationIdx),
}

/// Buffered actions an application wants the network to take.
///
/// Commands are applied after the callback returns, which avoids
/// re-entrancy: an application never mutates the network while the network
/// is mid-event.
#[derive(Debug)]
pub struct Commands<M> {
    // Kept private so applications must use `send`/`set_timer`; the
    // network drains them after each callback.
    pub(crate) sends: Vec<Packet<M>>,
    pub(crate) timers: Vec<(u64, Nanos)>,
}

impl<M> Default for Commands<M> {
    fn default() -> Self {
        Commands::new()
    }
}

impl<M> Commands<M> {
    /// Creates an empty command buffer.
    ///
    /// The network creates these for its callbacks; applications only
    /// need this directly when unit-testing components outside a
    /// [`WifiNetwork`](crate::network::WifiNetwork).
    pub fn new() -> Commands<M> {
        Commands {
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The buffered sends (for tests and inspection).
    pub fn sends(&self) -> &[Packet<M>] {
        &self.sends
    }

    /// The buffered timers as `(token, deadline)` pairs.
    pub fn timers(&self) -> &[(u64, Nanos)] {
        &self.timers
    }

    /// Sends a packet. Its origin is taken from `pkt.src`: packets from
    /// [`NodeAddr::Server`](crate::packet::NodeAddr::Server) traverse the
    /// wire to the AP and then the WiFi downlink; packets from a station
    /// enter that station's uplink queue.
    pub fn send(&mut self, pkt: Packet<M>) {
        self.sends.push(pkt);
    }

    /// Requests a timer callback (`on_timer(token)`) at absolute time
    /// `at`. Timers are not cancellable; applications that rearm a timer
    /// must ignore stale firings themselves (compare against their own
    /// deadline state).
    pub fn set_timer(&mut self, token: u64, at: Nanos) {
        self.timers.push((token, at));
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty()
    }
}

/// An application driving traffic through the simulated network.
pub trait App<M> {
    /// A packet reached its destination endpoint.
    fn on_packet(&mut self, at: Delivery, pkt: Packet<M>, now: Nanos, cmds: &mut Commands<M>);

    /// A previously set timer fired.
    fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<M>);
}
