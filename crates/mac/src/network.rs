//! The discrete-event 802.11n network: channel arbitration, the AP, the
//! stations, and the event loop.
//!
//! # Medium arbitration
//!
//! CSMA/CA is simulated at contention-round granularity: whenever the
//! medium goes idle, every node with a ready transmission draws a backoff
//! uniformly from its current contention window; the node whose
//! `AIFS + slots × slot_time` is smallest transmits, and ties collide
//! (all tied transmissions fail and the losers double their windows).
//! Backoff counters are redrawn each round rather than frozen — a common,
//! well-behaved simplification that preserves long-run access fairness
//! (every contender with the same CW has the same win probability each
//! round).
//!
//! # What is charged as airtime
//!
//! Each attempt occupies the medium for `data PPDU + SIFS + (Block)ACK`.
//! That duration is charged to the involved station's meter and — under
//! the airtime scheme — its scheduler deficit, for *both* directions and
//! including retries, exactly as §3.2 specifies.

use wifiq_chaos::ChaosInjector;
use wifiq_core::StaId;
use wifiq_phy::consts::SLOT_TIME;
use wifiq_phy::AccessCategory;
use wifiq_policy::{CompiledPolicy, NODE_NONE};
use wifiq_sim::{EventQueue, Nanos, SimRng};
use wifiq_telemetry::{DropReason, EventKind, GaugeHandle, HistHandle, Label, Telemetry};

use crate::aggregation::Aggregate;
use crate::app::{App, Commands, Delivery};
use crate::config::{NetworkConfig, SchemeKind};
use crate::meter::{AirtimeMeter, StationMeter};
use crate::packet::{NodeAddr, Packet, StationIdx};
use crate::ratectrl::Minstrel;
use crate::scheme::ApTxPath;
use crate::station::StationUplink;
use crate::trace::{TxDirection, TxMonitor, TxRecord};

enum Event<M> {
    /// A downlink packet reaches the AP from the wired side.
    WireToAp(Packet<M>),
    /// An uplink packet reaches the server from the AP.
    WireToServer(Packet<M>),
    /// The in-flight exchange (data + ack) completes.
    TxEnd,
    /// An application timer fires.
    AppTimer(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Participant {
    Ap { ac: AccessCategory },
    Station { idx: StationIdx, ac: AccessCategory },
}

/// Compiled airtime-policy state: the active weight table plus pending
/// runtime switches in ascending time order. Exists only when
/// `cfg.policy` is non-empty, so the no-policy path pays one `None`
/// branch per scheduling round and nothing else.
struct PolicyRuntime {
    /// The weight table currently applied to the scheduler (`None` until
    /// a timeline with no initial set reaches its first switch).
    active: Option<CompiledPolicy>,
    /// Remaining switches, strictly ascending; applied lazily at the
    /// first scheduler round boundary at or after their due time.
    switches: Vec<(Nanos, CompiledPolicy)>,
    /// Index of the next due switch in `switches`.
    next: usize,
    /// Switches applied so far (telemetry).
    applied: u64,
}

/// Flow state extracted from a departing roamer by
/// [`WifiNetwork::roam_out`], to be re-homed on the target BSS via
/// [`WifiNetwork::roam_in`].
#[derive(Debug)]
pub struct RoamHandoff<M> {
    /// Queued downlink frames carried to the target BSS (stash, driver
    /// FIFOs, MAC FQ flows, and pfifo-family shared qdiscs).
    pub packets: Vec<Packet<M>>,
    /// Frames that could not migrate (hardware-committed aggregates,
    /// uplink backlog), already counted in [`WifiNetwork::roam_drops`].
    pub dropped: u64,
    /// The station's exchange was on the air: teardown was deferred and
    /// nothing migrated (drops will surface as churn drops instead).
    pub deferred: bool,
}

/// An exclusive, disjoint slice of station uplinks handed to one
/// contention lane (phase A of [`WifiNetwork::try_contend`]).
struct LaneChunk<'a, M>(&'a mut [StationUplink<M>]);

// SAFETY: `StationUplink` is `!Send` only because its telemetry handles
// wrap `Rc` slots shared with the registry hub. Lanes are spawned solely
// from `scan_ready`, which collapses to the sequential path whenever
// telemetry is enabled; a disabled hub hands out the empty handle
// variant, so no `Rc` is ever live inside an uplink that crosses here.
// Everything else the uplink owns (queues, arena, private RNG fork) is
// exclusively held via this chunk's `&mut` slice, and chunks are
// disjoint by construction (`split_at_mut`).
unsafe impl<M: Send> Send for LaneChunk<'_, M> {}

/// The simulated WiFi network under one queue-management scheme.
///
/// `M` is the application payload type carried in packets.
pub struct WifiNetwork<M> {
    cfg: NetworkConfig,
    queue: EventQueue<Event<M>>,
    rng: SimRng,
    ap: ApTxPath<M>,
    /// Per-AC hardware queues of built aggregates (depth
    /// `cfg.hw_queue_depth`, normally 2).
    hw: [std::collections::VecDeque<Aggregate<M>>; AccessCategory::COUNT],
    ap_cw: [u32; AccessCategory::COUNT],
    stations: Vec<StationUplink<M>>,
    /// Per-station downlink rate controllers (only when
    /// `cfg.rate_control`; legacy-rate stations never adapt).
    ratectrl: Vec<Option<Minstrel>>,
    /// Fault injection (off — a `None` branch per query — unless
    /// `cfg.faults` has entries). Draws from a chaos-private stream, so
    /// the main RNG sequence is identical with chaos on or off.
    chaos: ChaosInjector,
    /// Airtime policy runtime (`None` unless `cfg.policy` is non-empty).
    policy: Option<PolicyRuntime>,
    /// Which station slots host an associated station. Departed slots stay
    /// in every per-station table as tombstones until a join reuses them.
    active: Vec<bool>,
    /// Stations removed while their exchange was on the air; detached as
    /// soon as that exchange completes. The handles stay current until
    /// [`detach_station`](Self::detach_station) frees the table slot, so
    /// a deferred slot can never be reused before its teardown runs.
    pending_detach: Vec<StaId>,
    /// One bit per station slot, set whenever an uplink enqueue may have
    /// made the slot ready to contend and cleared lazily when a
    /// contention scan finds the station completely idle. The scan only
    /// visits set bits, so a mostly-downlink 100k-station roster costs a
    /// few word tests per round instead of a full sweep.
    uplink_ready: Vec<u64>,
    /// Scratch for phase A of the contention round (reused every round):
    /// the stations that want the medium, in ascending slot order.
    ready_scratch: Vec<(StationIdx, AccessCategory)>,
    /// Monotonic join counter — gives every join (including slot reuse) a
    /// fresh RNG fork salt, so a rejoining station never replays its
    /// predecessor's stream.
    join_seq: u64,
    /// Packets discarded because their station departed (queued at
    /// removal, or committed to hardware and purged).
    churn_drops: u64,
    /// Packets lost to roaming hand-offs: hardware-committed frames and
    /// uplink backlog that [`roam_out`](Self::roam_out) could not migrate.
    roam_drops: u64,
    /// Packets discarded on arrival because they addressed a slot with no
    /// associated station.
    absent_drops: u64,
    /// Participants of the exchange currently on the air; empty when the
    /// medium is idle. The buffer is reused across exchanges.
    in_flight: Vec<Participant>,
    /// Scratch buffer for contention rounds (reused every round).
    contenders: Vec<(Participant, Nanos)>,
    meter: AirtimeMeter,
    /// Optional monitor-mode sink receiving every transmission record.
    monitor: Option<Box<dyn TxMonitor>>,
    tele: Telemetry,
    /// Pre-resolved handles for the hardware-depth metrics recorded on
    /// every refill round (hot path under enabled telemetry).
    hw_depth_gauge: GaugeHandle,
    hw_depth_hist: HistHandle,
    /// Total events processed (telemetry / runaway guard).
    pub events_processed: u64,
}

impl<M: std::fmt::Debug + Send> WifiNetwork<M> {
    /// Builds the network from a configuration.
    pub fn new(cfg: NetworkConfig) -> WifiNetwork<M> {
        let mut rng = SimRng::new(cfg.seed);
        let stations: Vec<StationUplink<M>> = cfg
            .stations
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut sta = StationUplink::new(i, s.rate, cfg.station_fifo_limit);
                if cfg.station_fq {
                    sta.enable_fq();
                }
                if cfg.rate_control {
                    sta.enable_rate_control(rng.fork(i as u64 + 1));
                }
                sta
            })
            .collect();
        // Burn one draw so seed 0's first backoff is not the raw seed.
        let _ = rng.gen_f64();
        let ratectrl = cfg
            .stations
            .iter()
            .map(|s| {
                if cfg.rate_control && matches!(s.rate, wifiq_phy::PhyRate::Ht { .. }) {
                    Some(Minstrel::new(s.rate))
                } else {
                    // Legacy and VHT rates keep their configured rate;
                    // the Minstrel table only spans the HT MCS set.
                    None
                }
            })
            .collect();
        let policy = if cfg.policy.is_none() {
            None
        } else {
            // The builder validates the timeline; a hand-rolled
            // NetworkConfig fails here with the same message.
            let compiled = cfg
                .policy
                .compile(cfg.stations.len())
                .unwrap_or_else(|msg| panic!("invalid policy: {msg}"));
            Some(PolicyRuntime {
                active: compiled.initial,
                switches: compiled.switches,
                next: 0,
                applied: 0,
            })
        };
        let mut net = WifiNetwork {
            ap: ApTxPath::new(&cfg),
            ratectrl,
            chaos: ChaosInjector::from_schedule(&cfg.faults, cfg.seed, cfg.stations.len()),
            policy,
            hw: Default::default(),
            ap_cw: AccessCategory::ALL.map(|ac| ac.edca().cw_min),
            active: vec![true; stations.len()],
            pending_detach: Vec::new(),
            uplink_ready: vec![0; stations.len().div_ceil(64)],
            ready_scratch: Vec::new(),
            join_seq: stations.len() as u64,
            churn_drops: 0,
            roam_drops: 0,
            absent_drops: 0,
            stations,
            in_flight: Vec::new(),
            contenders: Vec::new(),
            meter: AirtimeMeter::new(cfg.num_stations()),
            monitor: None,
            tele: Telemetry::disabled(),
            hw_depth_gauge: GaugeHandle::disabled(),
            hw_depth_hist: HistHandle::disabled(),
            queue: EventQueue::new(),
            rng,
            cfg,
            events_processed: 0,
        };
        if let Some(active) = net.policy.as_ref().and_then(|p| p.active.clone()) {
            net.apply_policy(&active);
        }
        net
    }

    /// Attaches a monitor-mode sink that receives a [`TxRecord`] for
    /// every transmission attempt (replacing any previous monitor).
    pub fn attach_monitor(&mut self, monitor: Box<dyn TxMonitor>) {
        self.monitor = Some(monitor);
    }

    /// Detaches and returns the monitor, if one was attached.
    pub fn take_monitor(&mut self) -> Option<Box<dyn TxMonitor>> {
        self.monitor.take()
    }

    /// Attaches a telemetry handle and propagates it through the stack:
    /// the AP transmit path (FQ/CoDel metrics), every station's FQ uplink,
    /// and the MAC-level counters recorded by the event loop itself.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.ap.set_telemetry(tele.clone());
        for sta in &mut self.stations {
            sta.set_telemetry(tele.clone());
        }
        self.hw_depth_gauge = tele.gauge_handle("mac", "hw_queue_depth", Label::Global);
        self.hw_depth_hist = tele.hist_handle("mac", "hw_queue_depth", Label::Global);
        self.chaos.set_telemetry(tele.clone());
        self.tele = tele;
        if let Some(active) = self.policy.as_ref().and_then(|p| p.active.as_ref()) {
            self.tele.gauge(
                "policy",
                "active_nodes",
                Label::Global,
                active.node_count() as f64,
            );
        }
    }

    /// Pushes a compiled policy's per-(station, AC) weights into the
    /// airtime scheduler. Deficits are untouched — a reweight changes
    /// only future refills, so switches never drain queues or reset
    /// credit already earned by unrelated nodes.
    fn apply_policy(&mut self, compiled: &CompiledPolicy) {
        // Policy trees address station *slots* (stable wire addressing);
        // resolve each occupied slot to its current handle.
        for slot in 0..self.stations.len() {
            if let Some(id) = self.ap.sta_id(slot) {
                self.ap
                    .set_station_weights(id, compiled.station_weights(slot));
            }
        }
    }

    /// Pops the next policy switch if its due time has arrived.
    fn due_policy_switch(&mut self, now: Nanos) -> Option<CompiledPolicy> {
        let pol = self.policy.as_mut()?;
        if pol.next < pol.switches.len() && pol.switches[pol.next].0 <= now {
            let compiled = pol.switches[pol.next].1.clone();
            pol.next += 1;
            pol.applied += 1;
            Some(compiled)
        } else {
            None
        }
    }

    /// Applies any policy switches that have come due. Called at the top
    /// of every scheduler round so a switch lands exactly at a round
    /// boundary: in-flight aggregates and queued packets are untouched.
    fn poll_policy(&mut self, now: Nanos) {
        while let Some(compiled) = self.due_policy_switch(now) {
            self.apply_policy(&compiled);
            self.tele.count("policy", "switches", Label::Global, 1);
            self.tele.gauge(
                "policy",
                "active_nodes",
                Label::Global,
                compiled.node_count() as f64,
            );
            if let Some(pol) = self.policy.as_mut() {
                pol.active = Some(compiled);
            }
        }
    }

    /// Number of policy switches applied so far.
    pub fn policy_switches_applied(&self) -> u64 {
        self.policy.as_ref().map_or(0, |p| p.applied)
    }

    /// The effective scheduler weight of `(sta, ac)` under the current
    /// scheme, or `None` when the scheme has no airtime scheduler or the
    /// handle is stale (the station departed).
    pub fn station_ac_weight(&self, sta: StaId, ac: AccessCategory) -> Option<u32> {
        self.ap.station_ac_weight(sta, ac)
    }

    /// The current handle of the station occupying `slot`, or `None` when
    /// the slot is vacant. This is the bridge from wire addressing
    /// (packets and aggregates carry slots) to the handle-keyed station
    /// table (DESIGN.md §14).
    pub fn sta_id(&self, slot: StationIdx) -> Option<StaId> {
        self.ap.sta_id(slot)
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// The scheme under test.
    pub fn scheme(&self) -> SchemeKind {
        self.cfg.scheme
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Per-station airtime / throughput meters.
    pub fn meter(&self) -> &AirtimeMeter {
        &self.meter
    }

    /// One station's meter.
    pub fn station_meter(&self, i: StationIdx) -> &StationMeter {
        self.meter.station(i)
    }

    /// Packets queued at the AP (all layers).
    pub fn ap_backlog(&self) -> usize {
        self.ap.backlog()
    }

    /// Packets live across every packet arena in the network — the AP
    /// path's plus each station uplink's. Backlogs count stashed and
    /// in-flight frames that live outside the arenas, so this is the
    /// stricter teardown check: once all queues report empty, any
    /// nonzero residue here is a leaked arena slot (a packet removed
    /// from every list but never freed).
    pub fn arena_live(&self) -> usize {
        self.ap.arena_live() + self.stations.iter().map(|s| s.arena_live()).sum::<usize>()
    }

    /// Packets dropped at AP queueing layers (tail/overlimit drops).
    pub fn ap_queue_drops(&self) -> u64 {
        self.ap.queue_drops
    }

    /// Packets dropped by CoDel in the AP's FQ structure or qdisc.
    pub fn ap_codel_drops(&self) -> u64 {
        self.ap.codel_drops()
    }

    /// Packets queued at one station's uplink (all layers).
    pub fn station_backlog(&self, sta: StationIdx) -> usize {
        self.stations[sta].backlog()
    }

    /// The AP's current throughput estimate for a station, in bits/s:
    /// the Minstrel estimate under rate control, else the configured
    /// rate.
    pub fn rate_estimate(&self, sta: StationIdx) -> u64 {
        match &self.ratectrl[sta] {
            Some(rc) => rc.estimated_throughput(),
            None => self.cfg.stations[sta].rate.bits_per_second(),
        }
    }

    /// Seeds an application timer before the run starts.
    pub fn seed_timer(&mut self, token: u64, at: Nanos) {
        self.queue.push(at, Event::AppTimer(token));
    }

    /// Associates a new station mid-run, reusing the most recently vacated
    /// slot when one exists (the station table's LIFO free list governs
    /// slot choice). Returns the station's generational handle; read the
    /// wire slot it occupies from [`StaId::slot`]. Safe to call between
    /// [`run`](Self::run) windows.
    pub fn add_station(&mut self, station: crate::config::StationCfg) -> StaId {
        let id = self.ap.add_station(&station);
        let sta = id.slot();
        self.join_seq += 1;
        let mut up = StationUplink::new(sta, station.rate, self.cfg.station_fifo_limit);
        if self.cfg.station_fq {
            up.enable_fq();
        }
        if self.cfg.rate_control {
            up.enable_rate_control(self.rng.fork(self.join_seq));
        }
        up.set_telemetry(self.tele.clone());
        let rc = if self.cfg.rate_control && matches!(station.rate, wifiq_phy::PhyRate::Ht { .. }) {
            Some(Minstrel::new(station.rate))
        } else {
            None
        };
        if sta == self.stations.len() {
            self.stations.push(up);
            self.ratectrl.push(rc);
            self.cfg.stations.push(station);
            self.active.push(true);
            if self.stations.len() > self.uplink_ready.len() * 64 {
                self.uplink_ready.push(0);
            }
        } else {
            self.stations[sta] = up;
            self.ratectrl[sta] = rc;
            self.cfg.stations[sta] = station;
            self.active[sta] = true;
            // The reused slot hosts a fresh, empty uplink.
            self.uplink_ready[sta / 64] &= !(1u64 << (sta % 64));
        }
        self.meter.ensure_station(sta);
        self.meter.reset_station(sta);
        self.chaos.ensure_station(sta);
        // A joining station inherits the weights of the policy in force;
        // a slot the roster never covered falls back to neutral.
        if let Some(active) = self.policy.as_ref().and_then(|p| p.active.as_ref()) {
            let weights = active.station_weights(sta);
            self.ap.set_station_weights(id, weights);
        }
        self.tele.count("mac", "station_joins", Label::Global, 1);
        id
    }

    /// Disassociates a station. It immediately stops contending and
    /// receiving; its queued packets (AP-side and uplink) are dropped and
    /// counted in [`churn_drops`](Self::churn_drops). If the station's
    /// exchange is on the air right now, the teardown is deferred until
    /// that exchange completes — aggregates already committed to hardware
    /// finish (or retry out) normally, as on real hardware.
    pub fn remove_station(&mut self, id: StaId) {
        let sta = id.slot();
        assert!(
            self.ap.station_current(id) && self.active.get(sta).copied().unwrap_or(false),
            "removing unknown or already-removed station {id:?}"
        );
        self.active[sta] = false;
        self.tele.count("mac", "station_leaves", Label::Global, 1);
        if self.station_in_flight(sta) {
            self.pending_detach.push(id);
        } else {
            self.detach_station(id);
        }
    }

    /// Whether the current in-flight exchange involves `sta`, either as
    /// the uplink transmitter or as the target of the AP's head-of-line
    /// aggregate.
    fn station_in_flight(&self, sta: StationIdx) -> bool {
        self.in_flight.iter().any(|p| match *p {
            Participant::Station { idx, .. } => idx == sta,
            Participant::Ap { ac } => self.hw[ac.index()].front().map(|a| a.station) == Some(sta),
        })
    }

    /// Tears down a departed station's state: purges its hardware-queued
    /// aggregates (sparing one that is on the air), detaches its TIDs and
    /// scheduler slot at the AP, and discards its uplink backlog.
    fn detach_station(&mut self, id: StaId) {
        let sta = id.slot();
        let now = self.queue.now();
        let mut inflight_ap = [false; AccessCategory::COUNT];
        for p in &self.in_flight {
            if let Participant::Ap { ac } = p {
                inflight_ap[ac.index()] = true;
            }
        }
        for (aci, &on_air) in inflight_ap.iter().enumerate() {
            let q = std::mem::take(&mut self.hw[aci]);
            for (i, agg) in q.into_iter().enumerate() {
                if agg.station != sta || (i == 0 && on_air) {
                    self.hw[aci].push_back(agg);
                } else {
                    self.churn_drops += agg.frames.len() as u64;
                }
            }
        }
        self.churn_drops += self.ap.remove_station(id, now) as u64;
        self.churn_drops += self.stations[sta].backlog() as u64;
        // Replacing the whole uplink discards its queues, stash and any
        // non-in-flight pending aggregate; `active` keeps the inert
        // replacement out of contention.
        self.stations[sta] = StationUplink::new(
            sta,
            self.cfg.stations[sta].rate,
            self.cfg.station_fifo_limit,
        );
        self.ratectrl[sta] = None;
        self.uplink_ready[sta / 64] &= !(1u64 << (sta % 64));
    }

    /// Whether slot `sta` currently hosts an associated station.
    pub fn station_active(&self, sta: StationIdx) -> bool {
        self.active.get(sta).copied().unwrap_or(false)
    }

    /// Number of currently associated stations.
    pub fn active_stations(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of station slots ever allocated (associated + tombstoned).
    pub fn station_slots(&self) -> usize {
        self.stations.len()
    }

    /// Packets dropped because their station departed while they were
    /// queued or committed to hardware.
    pub fn churn_drops(&self) -> u64 {
        self.churn_drops
    }

    /// Packets dropped on arrival for a slot with no associated station
    /// (traffic sources that have not yet noticed a departure).
    pub fn absent_drops(&self) -> u64 {
        self.absent_drops
    }

    /// Packets dropped during roaming hand-offs ([`roam_out`](Self::roam_out)):
    /// frames already committed to the hardware queue, plus the departing
    /// station's uplink backlog — the in-flight losses a real hand-off
    /// cannot save.
    pub fn roam_drops(&self) -> u64 {
        self.roam_drops
    }

    /// The leaf policy node owning `(sta, ac)` under the currently active
    /// policy, or `None` when no policy is in force or the tree does not
    /// cover the slot (a roamer landing there falls back to the neutral
    /// weight).
    pub fn policy_node_of(&self, sta: StationIdx, ac: AccessCategory) -> Option<u32> {
        let active = self.policy.as_ref()?.active.as_ref()?;
        let node = active.node_of(sta, ac.index());
        (node != NODE_NONE).then_some(node)
    }

    /// Disassociates a roaming station, extracting its queued downlink
    /// flow state so the hand-off can carry it to the target BSS instead
    /// of dropping it (the old AP forwards buffered frames over the
    /// distribution system, 802.11f-style). What cannot migrate — frames
    /// already committed to the hardware queue and the station's own
    /// uplink backlog — is dropped and counted in
    /// [`roam_drops`](Self::roam_drops).
    ///
    /// If the station's exchange is on the air right now the hand-off
    /// degrades to the churn-style deferred detach: nothing migrates, the
    /// teardown happens when the exchange completes, and its drops are
    /// counted as [`churn_drops`](Self::churn_drops). The returned
    /// hand-off is marked [`deferred`](RoamHandoff::deferred).
    pub fn roam_out(&mut self, id: StaId) -> RoamHandoff<M> {
        let sta = id.slot();
        assert!(
            self.ap.station_current(id) && self.active.get(sta).copied().unwrap_or(false),
            "roaming out unknown or already-removed station {id:?}"
        );
        self.active[sta] = false;
        self.tele.count("mac", "station_leaves", Label::Global, 1);
        if self.station_in_flight(sta) {
            self.pending_detach.push(id);
            return RoamHandoff {
                packets: Vec::new(),
                dropped: 0,
                deferred: true,
            };
        }
        // No aggregate of this station can be on the air (that would have
        // made it in-flight above), so every hardware-queued aggregate of
        // its is purgeable.
        let mut dropped = 0u64;
        for aci in 0..AccessCategory::COUNT {
            let q = std::mem::take(&mut self.hw[aci]);
            for agg in q {
                if agg.station == sta {
                    dropped += agg.frames.len() as u64;
                } else {
                    self.hw[aci].push_back(agg);
                }
            }
        }
        let packets = self.ap.remove_station_migrate(id);
        dropped += self.stations[sta].backlog() as u64;
        self.stations[sta] = StationUplink::new(
            sta,
            self.cfg.stations[sta].rate,
            self.cfg.station_fifo_limit,
        );
        self.ratectrl[sta] = None;
        self.uplink_ready[sta / 64] &= !(1u64 << (sta % 64));
        self.roam_drops += dropped;
        RoamHandoff {
            packets,
            dropped,
            deferred: false,
        }
    }

    /// Associates a roaming station arriving from another BSS, re-homing
    /// the carried flow state onto its new slot: each packet is
    /// re-addressed to the slot the roamer now occupies and re-enters the
    /// AP queueing path with a fresh enqueue stamp (CoDel sojourn restarts;
    /// end-to-end `created` timestamps survive, so latency metrics see the
    /// full hand-off cost). Returns the roamer's new handle.
    pub fn roam_in(
        &mut self,
        station: crate::config::StationCfg,
        carried: Vec<Packet<M>>,
    ) -> StaId {
        let id = self.add_station(station);
        let slot = id.slot();
        let now = self.queue.now();
        let mut acs = [false; AccessCategory::COUNT];
        for mut pkt in carried {
            pkt.dst = NodeAddr::Station(slot);
            pkt.enqueued = now;
            acs[pkt.ac.index()] = true;
            self.ap.enqueue(pkt, now);
        }
        for ac in AccessCategory::ALL {
            if acs[ac.index()] {
                self.ap_schedule(ac, now);
            }
        }
        self.try_contend(now);
        id
    }

    /// Runs the event loop until virtual time `until`, driving `app`.
    ///
    /// Returns at the first event time strictly greater than `until` (that
    /// event remains queued for a later `run` call).
    pub fn run<A: App<M>>(&mut self, until: Nanos, app: &mut A) {
        // One command buffer for the whole run: `apply` drains it after
        // each event, so the Vecs' capacity is reused instead of
        // reallocated per event.
        let mut cmds = Commands::new();
        // Same-tick events are drained in one `pop_tick` call and dispatched
        // from this batch buffer, so a burst of co-timed deliveries costs a
        // single wheel settle instead of one pop per event. Events a handler
        // pushes *at* the current tick are picked up by the next `pop_tick`;
        // they carry larger seqs than everything batched here, so dispatch
        // order is identical to the one-pop-at-a-time loop.
        let mut batch = Vec::new();
        while let Some(now) = self.queue.pop_tick(until, &mut batch) {
            for ev in batch.drain(..) {
                self.events_processed += 1;
                debug_assert!(cmds.is_empty(), "command buffer not drained");
                match ev {
                    Event::WireToAp(mut pkt) => {
                        if !self.station_active(pkt.wireless_peer()) {
                            // Addressed to a departed (or never-associated)
                            // station: the AP has no client to send it to.
                            self.absent_drops += 1;
                        } else {
                            pkt.enqueued = now;
                            let ac = pkt.ac;
                            self.ap.enqueue(pkt, now);
                            self.ap_schedule(ac, now);
                        }
                    }
                    Event::WireToServer(pkt) => {
                        app.on_packet(Delivery::AtServer, pkt, now, &mut cmds);
                    }
                    Event::AppTimer(token) => {
                        app.on_timer(token, now, &mut cmds);
                    }
                    Event::TxEnd => {
                        self.handle_tx_end(now, app, &mut cmds);
                    }
                }
                self.apply(&mut cmds, now);
                self.try_contend(now);
            }
        }
    }

    /// Applies and drains buffered application commands.
    fn apply(&mut self, cmds: &mut Commands<M>, now: Nanos) {
        if cmds.is_empty() {
            return;
        }
        for mut pkt in cmds.sends.drain(..) {
            match pkt.src {
                NodeAddr::Server => {
                    // Wire hop: propagation + 1 Gbps serialisation.
                    let delay = self.cfg.wire_delay + Nanos::for_bits(pkt.len * 8, 1_000_000_000);
                    self.queue.push(now + delay, Event::WireToAp(pkt));
                }
                NodeAddr::Station(i) => {
                    assert!(i < self.stations.len(), "send from unknown station {i}");
                    if !self.active[i] {
                        // An application timer outliving its departed
                        // station; nothing to transmit from.
                        self.absent_drops += 1;
                        continue;
                    }
                    pkt.enqueued = now;
                    self.stations[i].enqueue(pkt);
                    self.uplink_ready[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        for (token, at) in cmds.timers.drain(..) {
            self.queue.push(at.max(now), Event::AppTimer(token));
        }
    }

    /// Refills the hardware queue for `ac` — the paper's `schedule()`
    /// loop: "while the hardware queue is not full … build_aggregate".
    ///
    /// With AQL enabled, a station already holding its airtime budget in
    /// the hardware is skipped for this refill round (its frames stay in
    /// the MAC FQ, where CoDel and the scheduler govern them).
    fn ap_schedule(&mut self, ac: AccessCategory, now: Nanos) {
        // Policy switches land here, at the round boundary, before any
        // aggregate is built under the new weights.
        self.poll_policy(now);
        // A chaos backpressure spike narrows the effective depth; it can
        // never widen it past the configured hardware limit.
        let depth = match self.chaos.hw_depth_clamp(now) {
            Some(clamp) => clamp.min(self.cfg.hw_queue_depth),
            None => self.cfg.hw_queue_depth,
        };
        while self.hw[ac.index()].len() < depth {
            // AQL eligibility: stations at their hardware-airtime budget
            // are invisible to the scheduler this round.
            let sta = {
                let aql = self.cfg.aql;
                let hw = &self.hw[ac.index()];
                self.ap.next_tx(ac, now, |sta: StaId| match aql {
                    None => true,
                    Some(limit) => {
                        let slot = sta.slot();
                        let queued: Nanos = hw
                            .iter()
                            .filter(|a| a.station == slot)
                            .map(|a| a.exchange_airtime())
                            .sum();
                        queued < limit
                    }
                })
            };
            let Some(sta) = sta else { break };
            let slot = sta.slot();
            if let Some(rc) = self.ratectrl[slot].as_mut() {
                // The cap makes a chaos rate collapse visible to the
                // controller itself: it cannot probe above the collapsed
                // channel while the fault window is open.
                rc.set_cap(self.chaos.rate_override(slot, now));
                self.ap.set_rate(sta, rc.rate_for_next(&mut self.rng));
            } else if self.chaos.is_enabled() {
                match self.chaos.rate_override(slot, now) {
                    Some(rate) => {
                        self.ap.set_rate(sta, rate);
                        self.chaos.note_rate_override(slot);
                    }
                    // Restore the configured rate once the window closes
                    // (nothing else resets it without a controller).
                    None => self.ap.set_rate(sta, self.cfg.stations[slot].rate),
                }
            }
            match self.ap.build(sta, ac, now) {
                Some(agg) => self.hw[ac.index()].push_back(agg),
                // The TID drained (e.g. CoDel dropped the rest): loop and
                // ask the scheduler again; it will rotate the station out.
                None => continue,
            }
        }
        if self.tele.is_enabled() {
            let total: usize = self.hw.iter().map(|q| q.len()).sum();
            self.hw_depth_gauge.set(total as f64);
            self.hw_depth_hist.record(total as u64);
        }
    }

    /// Runs one contention round if the medium is idle and anyone has a
    /// frame ready.
    ///
    /// The round is split into two phases so the station sweep can run on
    /// parallel lanes ([`NetworkConfig::lanes`]) without perturbing the
    /// simulation (DESIGN.md §14):
    ///
    /// - **Phase A** asks every ready-flagged station for its best ready
    ///   access category. That call touches only the station's private
    ///   state and its private RNG fork, so lanes may sweep disjoint slot
    ///   ranges concurrently; candidates are folded back in slot order.
    /// - **Phase B** draws every backoff from the network's main RNG,
    ///   sequentially: the AP first, then the phase-A candidates in
    ///   ascending slot order — the exact draw order of a single-lane
    ///   sweep, so results are byte-identical at any lane count.
    fn try_contend(&mut self, now: Nanos) {
        if !self.in_flight.is_empty() {
            return;
        }

        // Phase A: collect the stations that want the medium.
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        self.scan_ready(now, &mut ready);

        let mut best = std::mem::take(&mut self.contenders);
        best.clear();
        // Phase B. The AP contends with its highest-priority non-empty hw
        // queue and draws first.
        if let Some(ac) = AccessCategory::ALL
            .into_iter()
            .find(|ac| !self.hw[ac.index()].is_empty())
        {
            let e = ac.edca();
            let t = e.aifs() + SLOT_TIME * self.rng.backoff_slots(self.ap_cw[ac.index()]) as u64;
            best.push((Participant::Ap { ac }, t));
        }
        // Each ready station contends with its highest-priority ready AC.
        for &(i, ac) in &ready {
            let e = ac.edca();
            let cw = self.stations[i].cw[ac.index()];
            let t = e.aifs() + SLOT_TIME * self.rng.backoff_slots(cw) as u64;
            best.push((Participant::Station { idx: i, ac }, t));
        }
        self.ready_scratch = ready;
        let Some(&(_, t_min)) = best.iter().min_by_key(|(_, t)| *t) else {
            self.contenders = best;
            return;
        };
        for &(p, t) in &best {
            if t == t_min {
                self.in_flight.push(p);
            }
        }
        self.contenders = best;

        // The exchange occupies the medium until the slowest tied
        // transmission (plus its ack slot) completes.
        let dur = self
            .in_flight
            .iter()
            .map(|p| self.participant_airtime(*p))
            .max()
            .expect("winners is non-empty");
        self.queue.push(now + t_min + dur, Event::TxEnd);
    }

    /// Phase A of a contention round: visits every slot whose
    /// `uplink_ready` bit is set, asks the station for its best ready
    /// access category, and clears the bit for stations found completely
    /// idle (only an uplink enqueue can make them ready again).
    ///
    /// With `cfg.lanes > 1` the sweep is split into word-aligned chunks
    /// scanned by scoped worker threads. Each visit mutates only the
    /// station's own state and private RNG fork, and lane outputs are
    /// concatenated in chunk order, so the resulting candidate list — and
    /// every per-station RNG stream — is identical at any lane count.
    ///
    /// Lanes engage only while telemetry is disabled: enabled telemetry
    /// threads `Rc`-based counter handles through every uplink, which
    /// must not cross threads. A disabled hub hands out empty handles, so
    /// the uplinks then hold no shared state at all (the basis of the
    /// `Send` assertion on [`LaneChunk`]); with telemetry on, the sweep
    /// silently falls back to one lane — same results, same RNG streams.
    fn scan_ready(&mut self, now: Nanos, ready: &mut Vec<(StationIdx, AccessCategory)>) {
        let mut lanes = self.cfg.lanes.max(1).min(self.uplink_ready.len().max(1));
        if self.tele.is_enabled() {
            lanes = 1;
        }
        if lanes <= 1 {
            for w in 0..self.uplink_ready.len() {
                let mut bits = self.uplink_ready[w];
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let i = w * 64 + bit;
                    if !self.active[i] {
                        continue;
                    }
                    match self.stations[i].best_ready_ac(now) {
                        Some(ac) => ready.push((i, ac)),
                        None => self.uplink_ready[w] &= !(1u64 << bit),
                    }
                }
            }
            return;
        }
        let per = self.uplink_ready.len().div_ceil(lanes);
        let active = &self.active;
        let mut outs: Vec<Vec<(StationIdx, AccessCategory)>> = Vec::with_capacity(lanes);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(lanes);
            let mut words: &mut [u64] = &mut self.uplink_ready;
            let mut stas: &mut [StationUplink<M>] = &mut self.stations;
            let mut base = 0usize;
            while !words.is_empty() {
                let take = per.min(words.len());
                let (w_chunk, w_rest) = words.split_at_mut(take);
                let split = (take * 64).min(stas.len());
                let (s_chunk, s_rest) = stas.split_at_mut(split);
                words = w_rest;
                stas = s_rest;
                let chunk = LaneChunk(s_chunk);
                let b = base;
                base += take * 64;
                handles.push(s.spawn(move || {
                    // Bind the whole wrapper so edition-2021 closure
                    // capture moves `LaneChunk` (the `Send` carrier), not
                    // the bare `chunk.0` slice path.
                    let chunk = chunk;
                    let s_chunk = chunk.0;
                    let mut out = Vec::new();
                    for (wi, word) in w_chunk.iter_mut().enumerate() {
                        let mut bits = *word;
                        while bits != 0 {
                            let bit = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let li = wi * 64 + bit;
                            if li >= s_chunk.len() || !active[b + li] {
                                continue;
                            }
                            match s_chunk[li].best_ready_ac(now) {
                                Some(ac) => out.push((b + li, ac)),
                                None => *word &= !(1u64 << bit),
                            }
                        }
                    }
                    out
                }));
            }
            for h in handles {
                outs.push(h.join().expect("contention lane panicked"));
            }
        });
        for out in outs {
            ready.extend(out);
        }
    }

    fn participant_airtime(&self, p: Participant) -> Nanos {
        match p {
            Participant::Ap { ac } => self.hw[ac.index()]
                .front()
                .expect("AP contended with empty hw queue")
                .exchange_airtime(),
            Participant::Station { idx, ac } => self.stations[idx]
                .pending(ac)
                .expect("station contended with no pending aggregate")
                .exchange_airtime(),
        }
    }

    fn handle_tx_end<A: App<M>>(&mut self, now: Nanos, app: &mut A, cmds: &mut Commands<M>) {
        let mut participants = std::mem::take(&mut self.in_flight);
        assert!(!participants.is_empty(), "TxEnd with nothing in flight");
        let collision = participants.len() > 1;
        if collision {
            self.tele.count(
                "mac",
                "collisions",
                Label::Global,
                participants.len() as u64,
            );
        }

        for p in participants.drain(..) {
            match p {
                Participant::Ap { ac } => self.finish_ap_attempt(ac, collision, now, app, cmds),
                Participant::Station { idx, ac } => {
                    self.finish_station_attempt(idx, ac, collision, now)
                }
            }
        }

        // Removals that waited for this exchange to clear the air.
        if !self.pending_detach.is_empty() {
            for sta in std::mem::take(&mut self.pending_detach) {
                self.detach_station(sta);
            }
        }
        // Hand the emptied buffer back for the next exchange.
        self.in_flight = participants;
    }

    fn finish_ap_attempt<A: App<M>>(
        &mut self,
        ac: AccessCategory,
        collision: bool,
        now: Nanos,
        app: &mut A,
        cmds: &mut Commands<M>,
    ) {
        let aci = ac.index();
        let sta = self.hw[aci]
            .front()
            .expect("AP attempt with empty hw queue")
            .station;
        let front = self.hw[aci].front().expect("checked");
        let airtime = front.exchange_airtime();
        let tx_rate = front.rate;
        let failed = collision
            || self
                .rng
                .chance(self.cfg.stations[sta].errors.exchange_error_prob(tx_rate))
            || self.chaos.exchange_lost(sta, now);

        // Airtime is consumed whether or not the exchange succeeded.
        self.meter.station_mut(sta).tx_airtime += airtime;
        if self.tele.is_enabled() {
            let front = self.hw[aci].front().expect("checked");
            let sl = Label::Station(sta as u32);
            self.tele
                .count("mac", "tx_airtime_ns", sl, airtime.as_nanos());
            // Achieved airtime rolled up to the policy node governing
            // this (station, AC) — the observable the ≤5% share gate
            // checks against the configured tree.
            if let Some(active) = self.policy.as_ref().and_then(|p| p.active.as_ref()) {
                let node = active.node_of(sta, aci);
                if node != NODE_NONE {
                    self.tele.count(
                        "policy",
                        "node_airtime_ns",
                        Label::Node(node),
                        airtime.as_nanos(),
                    );
                }
            }
            self.tele
                .observe_value("mac", "aggregate_frames", sl, front.frames.len() as u64);
            if front.retries > 0 {
                self.tele.count("mac", "retries", sl, 1);
            }
            self.tele.event(
                now,
                "mac",
                EventKind::Tx {
                    station: sta as u32,
                    ac: aci as u8,
                    frames: front.frames.len() as u32,
                    bytes: front.payload_bytes(),
                    airtime,
                    uplink: false,
                    success: !failed,
                    retry: front.retries > 0,
                },
            );
        }
        if let Some(mon) = self.monitor.as_mut() {
            let front = self.hw[aci].front().expect("checked");
            mon.on_tx(&TxRecord {
                at: now,
                station: sta,
                direction: TxDirection::Downlink,
                ac,
                rate: tx_rate,
                frames: front.frames.len(),
                payload_bytes: front.payload_bytes(),
                airtime,
                success: !failed,
                retry: front.retries,
            });
        }
        let rate_estimate = match self.ratectrl[sta].as_mut() {
            Some(rc) => {
                rc.report(tx_rate, !failed, now);
                rc.estimated_throughput()
            }
            None => self.cfg.stations[sta].rate.bits_per_second(),
        };
        // A collapsed channel must drive the §3.1.1 parameter switch:
        // while a chaos rate fault is active the estimate is the
        // impaired rate, not the configured/controller one.
        let rate_estimate = match self.chaos.rate_override(sta, now) {
            Some(rate) => rate.bits_per_second(),
            None => rate_estimate,
        };
        // Resolve the aggregate's wire slot to the station's current
        // handle. Removals of an on-air target are deferred until this
        // exchange has been torn down, so the handle is normally current;
        // a vacant slot (impossible today, but cheap to tolerate) simply
        // skips the per-station charge — the meter above already billed
        // the airtime.
        if let Some(id) = self.ap.sta_id(sta) {
            self.ap.on_tx_airtime(id, ac, airtime, now, rate_estimate);
            if self.chaos.is_enabled() {
                self.chaos
                    .observe_codel(sta, self.ap.codel_degraded(id), now);
            }
        }

        if failed {
            self.meter.station_mut(sta).failures += 1;
            self.ap_cw[aci] = ac.edca().next_cw(self.ap_cw[aci]);
            let drop = {
                let agg = self.hw[aci].front_mut().expect("checked");
                agg.retries += 1;
                // Retry chain: under rate control, each retry steps the
                // rate down the ladder (real drivers' MRR series).
                if let Some(rc) = self.ratectrl[sta].as_ref() {
                    let lower = rc.lower_rate(agg.rate);
                    if lower != agg.rate {
                        agg.retune(lower);
                    }
                }
                agg.retries > self.cfg.max_retries
            };
            if drop {
                let agg = self.hw[aci].pop_front().expect("checked");
                self.meter.station_mut(sta).retry_drops += agg.frames.len() as u64;
                if self.tele.is_enabled() {
                    let sl = Label::Station(sta as u32);
                    self.tele
                        .count("mac", "retry_drops", sl, agg.frames.len() as u64);
                    self.tele.event(
                        now,
                        "mac",
                        EventKind::Drop {
                            label: sl,
                            bytes: agg.payload_bytes() as u32,
                            reason: DropReason::RetryLimit,
                        },
                    );
                }
                self.ap_cw[aci] = ac.edca().cw_min;
                self.ap.recycle_frames(agg.frames);
            }
        } else {
            self.ap_cw[aci] = ac.edca().cw_min;
            let agg = self.hw[aci].pop_front().expect("checked");
            let m = self.meter.station_mut(sta);
            m.tx_aggregates += 1;
            m.tx_aggregate_frames += agg.frames.len() as u64;
            let mut frames = agg.frames;
            for pkt in frames.drain(..) {
                let m = self.meter.station_mut(sta);
                m.tx_frames += 1;
                m.tx_bytes += pkt.len;
                app.on_packet(Delivery::AtStation(sta), pkt, now, cmds);
            }
            self.ap.recycle_frames(frames);
        }
        // A station vetoed by AQL may have been rotated off the lists
        // while still holding traffic; now that hardware airtime drained,
        // re-list it.
        if let Some(id) = self.ap.sta_id(sta) {
            self.ap.reactivate(id, ac);
        }
        self.ap_schedule(ac, now);
    }

    fn finish_station_attempt(
        &mut self,
        idx: StationIdx,
        ac: AccessCategory,
        collision: bool,
        now: Nanos,
    ) {
        let airtime = self.stations[idx]
            .pending(ac)
            .expect("station attempt with no pending aggregate")
            .exchange_airtime();
        let up_rate = self.stations[idx]
            .pending(ac)
            .expect("station attempt with no pending aggregate")
            .rate;
        let failed = collision
            || self
                .rng
                .chance(self.cfg.stations[idx].errors.exchange_error_prob(up_rate))
            || self.chaos.exchange_lost(idx, now);

        self.meter.station_mut(idx).rx_airtime += airtime;
        if self.tele.is_enabled() {
            let agg = self.stations[idx]
                .pending(ac)
                .expect("station attempt with no pending aggregate");
            let sl = Label::Station(idx as u32);
            self.tele
                .count("mac", "rx_airtime_ns", sl, airtime.as_nanos());
            self.tele
                .observe_value("mac", "aggregate_frames", sl, agg.frames.len() as u64);
            if agg.retries > 0 {
                self.tele.count("mac", "retries", sl, 1);
            }
            self.tele.event(
                now,
                "mac",
                EventKind::Tx {
                    station: idx as u32,
                    ac: ac.index() as u8,
                    frames: agg.frames.len() as u32,
                    bytes: agg.payload_bytes(),
                    airtime,
                    uplink: true,
                    success: !failed,
                    retry: agg.retries > 0,
                },
            );
        }
        if let Some(mon) = self.monitor.as_mut() {
            let agg = self.stations[idx]
                .pending(ac)
                .expect("station attempt with no pending aggregate");
            mon.on_tx(&TxRecord {
                at: now,
                station: idx,
                direction: TxDirection::Uplink,
                ac,
                rate: up_rate,
                frames: agg.frames.len(),
                payload_bytes: agg.payload_bytes(),
                airtime,
                success: !failed,
                retry: agg.retries,
            });
        }
        // RX airtime is charged to the station's scheduler deficit so the
        // AP can compensate for upstream usage it cannot control (§3.2).
        // A contending station is associated, so its slot resolves.
        if let Some(id) = self.ap.sta_id(idx) {
            self.ap.on_rx_airtime(id, ac, airtime);
        }

        if failed {
            self.meter.station_mut(idx).failures += 1;
            if let Some(agg) = self.stations[idx].on_failure(ac, self.cfg.max_retries, now) {
                self.meter.station_mut(idx).retry_drops += agg.frames.len() as u64;
                if self.tele.is_enabled() {
                    let sl = Label::Station(idx as u32);
                    self.tele
                        .count("mac", "retry_drops", sl, agg.frames.len() as u64);
                    self.tele.event(
                        now,
                        "mac",
                        EventKind::Drop {
                            label: sl,
                            bytes: agg.payload_bytes() as u32,
                            reason: DropReason::RetryLimit,
                        },
                    );
                }
                self.stations[idx].recycle_frames(agg.frames);
            }
        } else {
            let agg = self.stations[idx].take_success(ac, now);
            let m = self.meter.station_mut(idx);
            m.rx_frames += agg.frames.len() as u64;
            let mut frames = agg.frames;
            for pkt in frames.drain(..) {
                // Station-to-station forwarding through the AP is not
                // modelled; every uplink frame terminates at the server.
                debug_assert!(
                    pkt.dst == NodeAddr::Server,
                    "uplink packet addressed to {:?}; peer-to-peer traffic is unsupported",
                    pkt.dst
                );
                self.meter.station_mut(idx).rx_bytes += pkt.len;
                // Forward across the wire to the server.
                let delay = self.cfg.wire_delay + Nanos::for_bits(pkt.len * 8, 1_000_000_000);
                self.queue.push(now + delay, Event::WireToServer(pkt));
            }
            self.stations[idx].recycle_frames(frames);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal app: the server floods UDP-like packets to each station on
    /// a timer; stations count deliveries.
    struct FloodApp {
        next_id: u64,
        interval: Nanos,
        per_station_bytes: Vec<u64>,
        latencies: Vec<Vec<Nanos>>,
        stations: usize,
    }

    impl FloodApp {
        fn new(stations: usize, interval: Nanos) -> FloodApp {
            FloodApp {
                next_id: 0,
                interval,
                per_station_bytes: vec![0; stations],
                latencies: vec![Vec::new(); stations],
                stations,
            }
        }
    }

    impl App<()> for FloodApp {
        fn on_packet(
            &mut self,
            at: Delivery,
            pkt: Packet<()>,
            now: Nanos,
            _cmds: &mut Commands<()>,
        ) {
            if let Delivery::AtStation(i) = at {
                self.per_station_bytes[i] += pkt.len;
                self.latencies[i].push(now - pkt.created);
            }
        }

        fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
            for i in 0..self.stations {
                self.next_id += 1;
                cmds.send(Packet {
                    id: self.next_id,
                    src: NodeAddr::Server,
                    dst: NodeAddr::Station(i),
                    flow: i as u64 + 1,
                    len: 1500,
                    ac: AccessCategory::Be,
                    created: now,
                    enqueued: now,
                    payload: (),
                });
            }
            cmds.set_timer(token, now + self.interval);
        }
    }

    fn run_flood(scheme: SchemeKind, secs: u64, interval: Nanos) -> (WifiNetwork<()>, FloodApp) {
        let cfg = NetworkConfig::paper_testbed(scheme);
        let mut net = WifiNetwork::new(cfg);
        let mut app = FloodApp::new(3, interval);
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_secs(secs), &mut app);
        (net, app)
    }

    #[test]
    fn light_traffic_flows_under_all_schemes() {
        for scheme in SchemeKind::ALL {
            // 1500 B per station every 10 ms = 1.2 Mbps each: no overload.
            let (net, app) = run_flood(scheme, 2, Nanos::from_millis(10));
            for i in 0..3 {
                let expect = 2_000 / 10 * 1500; // ~200 packets
                let got = app.per_station_bytes[i];
                assert!(
                    got as f64 > expect as f64 * 0.9,
                    "{scheme} station {i}: {got} of {expect} bytes"
                );
            }
            assert!(
                net.ap_queue_drops() == 0,
                "{scheme} dropped under light load"
            );
        }
    }

    #[test]
    fn light_traffic_latency_is_low() {
        for scheme in SchemeKind::ALL {
            let (_, app) = run_flood(scheme, 2, Nanos::from_millis(10));
            for i in 0..3 {
                let max = app.latencies[i].iter().max().unwrap();
                assert!(
                    *max < Nanos::from_millis(30),
                    "{scheme} station {i}: worst latency {max}"
                );
            }
        }
    }

    #[test]
    fn saturation_reveals_the_anomaly_under_fifo() {
        // Offered load far above capacity: 1500 B per station every 200 µs
        // = 60 Mbps each.
        let (net, _) = run_flood(SchemeKind::Fifo, 4, Nanos::from_micros(200));
        let shares = net.meter().airtime_shares();
        // The slow station (index 2) must dominate airtime — the 802.11
        // performance anomaly (~80% in the paper).
        assert!(
            shares[2] > 0.6,
            "anomaly absent under FIFO: shares {shares:?}"
        );
    }

    #[test]
    fn airtime_scheme_equalises_airtime() {
        let (net, _) = run_flood(SchemeKind::AirtimeFair, 4, Nanos::from_micros(200));
        let shares = net.meter().airtime_shares();
        for (i, s) in shares.iter().enumerate() {
            assert!(
                (s - 1.0 / 3.0).abs() < 0.05,
                "station {i} share {s:.3}: {shares:?}"
            );
        }
    }

    #[test]
    fn airtime_scheme_beats_fifo_on_total_throughput() {
        let (fifo, app_fifo) = run_flood(SchemeKind::Fifo, 4, Nanos::from_micros(200));
        let (air, app_air) = run_flood(SchemeKind::AirtimeFair, 4, Nanos::from_micros(200));
        let total_fifo: u64 = app_fifo.per_station_bytes.iter().sum();
        let total_air: u64 = app_air.per_station_bytes.iter().sum();
        assert!(
            total_air as f64 > total_fifo as f64 * 2.0,
            "expected big throughput win: FIFO {total_fifo}, airtime {total_air}"
        );
        let _ = (fifo, air);
    }

    #[test]
    fn aggregation_starvation_under_fifo() {
        // Under FIFO saturation, fast stations get only small aggregates
        // (the slow station hogs the driver buffer); under FQ-MAC they
        // aggregate well. Paper Table 1: 4.47 vs 18.44 mean frames.
        let (fifo, _) = run_flood(SchemeKind::Fifo, 4, Nanos::from_micros(200));
        let (fqmac, _) = run_flood(SchemeKind::FqMac, 4, Nanos::from_micros(200));
        let fast_fifo = fifo.station_meter(0).mean_aggregation();
        let fast_fqmac = fqmac.station_meter(0).mean_aggregation();
        assert!(
            fast_fqmac > fast_fifo * 2.0,
            "FQ-MAC should restore aggregation: FIFO {fast_fifo:.2}, FQ-MAC {fast_fqmac:.2}"
        );
    }

    #[test]
    fn hw_queue_depth_knob_works() {
        // Any depth ≥ 1 must carry traffic; deeper queues may pipeline
        // slightly better but never break.
        for depth in [1usize, 2, 8] {
            let mut cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
            cfg.hw_queue_depth = depth;
            let mut net = WifiNetwork::new(cfg);
            let mut app = FloodApp::new(3, Nanos::from_millis(1));
            net.seed_timer(0, Nanos::ZERO);
            net.run(Nanos::from_secs(1), &mut app);
            let total: u64 = app.per_station_bytes.iter().sum();
            assert!(total > 1_000_000, "depth {depth}: only {total} bytes");
        }
    }

    #[test]
    fn station_fifo_limit_causes_uplink_drops() {
        struct UpFlood;
        impl App<()> for UpFlood {
            fn on_packet(&mut self, _: Delivery, _: Packet<()>, _: Nanos, _: &mut Commands<()>) {}
            fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
                // 50 packets per ms: far beyond a tiny uplink queue.
                for i in 0..50 {
                    cmds.send(Packet {
                        id: i,
                        src: NodeAddr::Station(0),
                        dst: NodeAddr::Server,
                        flow: 1,
                        len: 1500,
                        ac: AccessCategory::Be,
                        created: now,
                        enqueued: now,
                        payload: (),
                    });
                }
                if now < Nanos::from_millis(100) {
                    cmds.set_timer(token, now + Nanos::from_millis(1));
                }
            }
        }
        let mut cfg = NetworkConfig::paper_testbed(SchemeKind::FqMac);
        cfg.station_fifo_limit = 4;
        let mut net = WifiNetwork::new(cfg);
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_millis(300), &mut UpFlood);
        assert!(net.station_backlog(0) <= 4 + 64, "backlog unbounded");
    }

    #[test]
    fn wire_delay_sets_the_latency_floor() {
        let mut cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
        cfg.wire_delay = Nanos::from_millis(25);
        let mut net = WifiNetwork::new(cfg);
        // One packet; its one-way delay must exceed the wire delay and
        // stay well under 2× it plus a couple of ms of WiFi time.
        struct OneShot {
            delay: Option<Nanos>,
        }
        impl App<()> for OneShot {
            fn on_packet(
                &mut self,
                _: Delivery,
                pkt: Packet<()>,
                now: Nanos,
                _: &mut Commands<()>,
            ) {
                self.delay = Some(now - pkt.created);
            }
            fn on_timer(&mut self, _: u64, now: Nanos, cmds: &mut Commands<()>) {
                cmds.send(Packet {
                    id: 0,
                    src: NodeAddr::Server,
                    dst: NodeAddr::Station(0),
                    flow: 1,
                    len: 1500,
                    ac: AccessCategory::Be,
                    created: now,
                    enqueued: now,
                    payload: (),
                });
            }
        }
        let mut app = OneShot { delay: None };
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_secs(1), &mut app);
        let d = app.delay.expect("packet delivered");
        assert!(d >= Nanos::from_millis(25), "{d} below the wire delay");
        assert!(d < Nanos::from_millis(28), "{d} far above wire + WiFi time");
    }

    #[test]
    fn aql_bounds_fast_station_hol_latency() {
        // One 1 Mbps legacy hog plus a fast station; the hog's 12.5 ms
        // frames otherwise occupy both hardware slots back to back. With
        // a 5 ms AQL budget only one can be queued, so the fast station's
        // frames interleave and its latency tightens. Compare the fast
        // station's mean delivery latency.
        let run = |aql: Option<Nanos>| {
            let cfg = NetworkConfig::builder()
                .station(wifiq_phy::PhyRate::fast_station())
                .station(wifiq_phy::PhyRate::Legacy(wifiq_phy::LegacyRate::Dsss1))
                .scheme(SchemeKind::AirtimeFair)
                .aql(aql)
                .build();
            let mut net = WifiNetwork::new(cfg);
            let mut app = FloodApp::new(2, Nanos::from_millis(2));
            net.seed_timer(0, Nanos::ZERO);
            net.run(Nanos::from_secs(5), &mut app);
            let lat: Vec<f64> = app.latencies[0].iter().map(|l| l.as_millis_f64()).collect();
            assert!(!lat.is_empty(), "fast station starved");
            (
                lat.iter().sum::<f64>() / lat.len() as f64,
                app.per_station_bytes[1],
            )
        };
        let (without, hog_bytes_without) = run(None);
        let (with, hog_bytes_with) = run(Some(Nanos::from_millis(5)));
        assert!(
            with < without,
            "AQL did not reduce fast-station latency: {with:.2} vs {without:.2} ms"
        );
        // The hog must not be starved outright: within 2x.
        assert!(
            hog_bytes_with * 2 >= hog_bytes_without,
            "AQL starved the slow station: {hog_bytes_with} vs {hog_bytes_without}"
        );
    }

    #[test]
    fn telemetry_airtime_matches_meter() {
        let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
        let mut net = WifiNetwork::new(cfg);
        let tele = Telemetry::enabled();
        net.set_telemetry(tele.clone());
        let mut app = FloodApp::new(3, Nanos::from_micros(500));
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_secs(2), &mut app);
        // The telemetry counters and the AirtimeMeter observe the same
        // exchanges; they must agree exactly.
        for i in 0..3 {
            assert_eq!(
                tele.counter("mac", "tx_airtime_ns", Label::Station(i as u32)),
                net.station_meter(i).tx_airtime.as_nanos(),
                "station {i} airtime mismatch"
            );
        }
        let fq_enqueued = tele
            .with_registry(|r| r.counter_total("fq", "enqueued"))
            .unwrap();
        assert!(
            fq_enqueued > 0,
            "MAC FQ saw no enqueues through the network path"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let (a, app_a) = run_flood(SchemeKind::AirtimeFair, 2, Nanos::from_micros(500));
        let (b, app_b) = run_flood(SchemeKind::AirtimeFair, 2, Nanos::from_micros(500));
        assert_eq!(app_a.per_station_bytes, app_b.per_station_bytes);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.meter().airtime_shares(), b.meter().airtime_shares());
    }

    #[test]
    fn lane_count_does_not_change_results() {
        // Phase A of the contention scan may run on parallel lanes; every
        // main-RNG draw stays sequential in phase B, so any lane count
        // must produce byte-identical results (DESIGN.md §14). 130
        // stations span three bitmap words, so lanes=4 really splits the
        // sweep.
        const N: usize = 130;
        struct ManyUp {
            received: u64,
        }
        impl App<()> for ManyUp {
            fn on_packet(&mut self, at: Delivery, _: Packet<()>, _: Nanos, _: &mut Commands<()>) {
                if at == Delivery::AtServer {
                    self.received += 1;
                }
            }
            fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
                for i in 0..N {
                    cmds.send(Packet {
                        id: i as u64,
                        src: NodeAddr::Station(i),
                        dst: NodeAddr::Server,
                        flow: i as u64,
                        len: 300,
                        ac: AccessCategory::Be,
                        created: now,
                        enqueued: now,
                        payload: (),
                    });
                }
                if now < Nanos::from_millis(20) {
                    cmds.set_timer(token, now + Nanos::from_millis(5));
                }
            }
        }
        let run = |lanes: usize| {
            let mut b = NetworkConfig::builder()
                .scheme(SchemeKind::AirtimeFair)
                .lanes(lanes);
            for _ in 0..N {
                b = b.station(wifiq_phy::PhyRate::fast_station());
            }
            let mut net = WifiNetwork::new(b.build());
            let mut app = ManyUp { received: 0 };
            net.seed_timer(0, Nanos::ZERO);
            net.run(Nanos::from_millis(100), &mut app);
            (
                app.received,
                net.events_processed,
                net.meter().airtime_shares(),
            )
        };
        let one = run(1);
        let four = run(4);
        assert!(one.0 > 0, "no uplink traffic flowed");
        assert_eq!(one, four, "lane count changed the simulation");
    }

    #[test]
    fn station_churn_mid_run() {
        for scheme in SchemeKind::ALL {
            let cfg = NetworkConfig::paper_testbed(scheme);
            let mut net = WifiNetwork::new(cfg);
            // The app keeps flooding all 3 slots throughout; it does not
            // know about the departure (exercises the absent-drop guard).
            let mut app = FloodApp::new(3, Nanos::from_micros(500));
            net.seed_timer(0, Nanos::ZERO);
            net.run(Nanos::from_secs(1), &mut app);
            let departing = net.sta_id(2).expect("slot 2 occupied");
            net.remove_station(departing);
            assert!(!net.station_active(2), "{scheme}");
            assert_eq!(net.active_stations(), 2, "{scheme}");
            let at_removal = app.per_station_bytes[2];
            let survivor = app.per_station_bytes[0];
            net.run(Nanos::from_secs(2), &mut app);
            // Only frames already committed to hardware may dribble out.
            assert!(
                app.per_station_bytes[2] - at_removal <= 64 * 1500,
                "{scheme}: departed station kept receiving"
            );
            assert!(
                app.per_station_bytes[0] > survivor,
                "{scheme}: survivors starved by the removal"
            );
            assert!(net.absent_drops() > 0, "{scheme}: no absent drops counted");
            // Rejoin reuses the vacated slot and traffic resumes.
            let rejoined = net.add_station(crate::config::StationCfg::clean(
                wifiq_phy::PhyRate::fast_station(),
            ));
            assert_eq!(rejoined.slot(), 2, "{scheme}: slot not reused");
            assert_ne!(
                rejoined, departing,
                "{scheme}: slot reuse must mint a fresh generation"
            );
            let at_rejoin = app.per_station_bytes[2];
            net.run(Nanos::from_secs(3), &mut app);
            assert!(
                app.per_station_bytes[2] > at_rejoin + 100 * 1500,
                "{scheme}: rejoined station starved"
            );
        }
    }

    #[test]
    fn churn_determinism_same_schedule_same_result() {
        let run = || {
            let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
            let mut net = WifiNetwork::new(cfg);
            let mut app = FloodApp::new(3, Nanos::from_micros(500));
            net.seed_timer(0, Nanos::ZERO);
            net.run(Nanos::from_millis(500), &mut app);
            let id = net.sta_id(1).expect("slot 1 occupied");
            net.remove_station(id);
            net.run(Nanos::from_secs(1), &mut app);
            net.add_station(crate::config::StationCfg::clean(
                wifiq_phy::PhyRate::slow_station(),
            ));
            net.run(Nanos::from_secs(2), &mut app);
            (app.per_station_bytes.clone(), net.events_processed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uplink_packets_reach_server() {
        struct UpApp {
            received: u64,
        }
        impl App<()> for UpApp {
            fn on_packet(
                &mut self,
                at: Delivery,
                _pkt: Packet<()>,
                _now: Nanos,
                _c: &mut Commands<()>,
            ) {
                if at == Delivery::AtServer {
                    self.received += 1;
                }
            }
            fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
                cmds.send(Packet {
                    id: token,
                    src: NodeAddr::Station(0),
                    dst: NodeAddr::Server,
                    flow: 9,
                    len: 200,
                    ac: AccessCategory::Be,
                    created: now,
                    enqueued: now,
                    payload: (),
                });
                if now < Nanos::from_millis(500) {
                    cmds.set_timer(token, now + Nanos::from_millis(1));
                }
            }
        }
        let cfg = NetworkConfig::paper_testbed(SchemeKind::FqMac);
        let mut net = WifiNetwork::new(cfg);
        let mut app = UpApp { received: 0 };
        net.seed_timer(1, Nanos::ZERO);
        net.run(Nanos::from_secs(1), &mut app);
        assert!(app.received > 480, "got {}", app.received);
        assert!(net.station_meter(0).rx_airtime > Nanos::ZERO);
    }

    #[test]
    fn channel_errors_cause_retries_but_traffic_still_flows() {
        let mut cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
        cfg.stations[0].errors = crate::config::ErrorModel::Fixed(0.3);
        let mut net = WifiNetwork::new(cfg);
        let mut app = FloodApp::new(3, Nanos::from_millis(5));
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_secs(2), &mut app);
        assert!(net.station_meter(0).failures > 0, "no failures injected?");
        assert!(
            app.per_station_bytes[0] > 0,
            "retries should still deliver traffic"
        );
        // The lossy station's airtime per delivered byte must exceed the
        // clean fast station's.
        let m0 = net.station_meter(0);
        let m1 = net.station_meter(1);
        let cost0 = m0.tx_airtime.as_nanos() as f64 / m0.tx_bytes.max(1) as f64;
        let cost1 = m1.tx_airtime.as_nanos() as f64 / m1.tx_bytes.max(1) as f64;
        assert!(
            cost0 > cost1,
            "retries must cost airtime: {cost0} vs {cost1}"
        );
    }

    #[test]
    fn rate_control_converges_in_situ() {
        // Stations start at MCS7 but their channels support MCS 12 / 2;
        // the controller should find the cliffs under live traffic.
        let start = wifiq_phy::PhyRate::ht(7, wifiq_phy::ChannelWidth::Ht20, true);
        let cfg = NetworkConfig::builder()
            .cliff_station(start, 12)
            .cliff_station(start, 2)
            .scheme(SchemeKind::AirtimeFair)
            .rate_control(true)
            .build();
        let mut net = WifiNetwork::new(cfg);
        let mut app = FloodApp::new(2, Nanos::from_micros(300));
        net.seed_timer(0, Nanos::ZERO);
        net.run(Nanos::from_secs(8), &mut app);
        let est0 = net.rate_estimate(0);
        let est1 = net.rate_estimate(1);
        // MCS12 = 86.7 Mbps, MCS2 = 21.7 Mbps (HT20 SGI).
        assert!(
            (60_000_000..95_000_000).contains(&est0),
            "station 0 estimate {est0}"
        );
        assert!(
            (12_000_000..26_000_000).contains(&est1),
            "station 1 estimate {est1}"
        );
        // Both stations actually received traffic at their channel's pace.
        assert!(app.per_station_bytes[0] > app.per_station_bytes[1]);
    }

    #[test]
    fn bidirectional_contention_works() {
        // Downlink flood + uplink flood from station 0 simultaneously.
        struct BiApp {
            inner: FloodApp,
            up_received: u64,
        }
        impl App<()> for BiApp {
            fn on_packet(
                &mut self,
                at: Delivery,
                pkt: Packet<()>,
                now: Nanos,
                cmds: &mut Commands<()>,
            ) {
                if at == Delivery::AtServer {
                    self.up_received += 1;
                }
                self.inner.on_packet(at, pkt, now, cmds);
            }
            fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
                if token == 0 {
                    self.inner.on_timer(token, now, cmds);
                } else {
                    cmds.send(Packet {
                        id: 0,
                        src: NodeAddr::Station(0),
                        dst: NodeAddr::Server,
                        flow: 77,
                        len: 1500,
                        ac: AccessCategory::Be,
                        created: now,
                        enqueued: now,
                        payload: (),
                    });
                    cmds.set_timer(token, now + Nanos::from_millis(1));
                }
            }
        }
        let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
        let mut net = WifiNetwork::new(cfg);
        let mut app = BiApp {
            inner: FloodApp::new(3, Nanos::from_millis(1)),
            up_received: 0,
        };
        net.seed_timer(0, Nanos::ZERO);
        net.seed_timer(1, Nanos::ZERO);
        net.run(Nanos::from_secs(2), &mut app);
        assert!(
            app.up_received > 1000,
            "uplink starved: {}",
            app.up_received
        );
        let down: u64 = app.inner.per_station_bytes.iter().sum();
        assert!(down > 0);
    }
}
