//! Property tests for the qdisc baselines.

use proptest::prelude::*;
use wifiq_codel::QueuedPacket;
use wifiq_core::packet::FqPacket;
use wifiq_qdisc::{FqCodelQdisc, PfifoFastQdisc, PfifoQdisc, Qdisc};
use wifiq_sim::Nanos;

#[derive(Debug, Clone)]
struct Pkt {
    flow: u64,
    band: usize,
    t: Nanos,
}

impl QueuedPacket for Pkt {
    fn enqueue_time(&self) -> Nanos {
        self.t
    }
    fn wire_len(&self) -> u64 {
        1000
    }
}

impl FqPacket for Pkt {
    fn flow_hash(&self) -> u64 {
        self.flow
    }
}

proptest! {
    /// pfifo never exceeds its limit and preserves FIFO order.
    #[test]
    fn pfifo_invariants(
        limit in 1usize..64,
        arrivals in proptest::collection::vec(0u64..100, 1..200)
    ) {
        let mut q = PfifoQdisc::new(limit);
        let mut accepted = Vec::new();
        for (i, flow) in arrivals.iter().enumerate() {
            let pkt = Pkt { flow: *flow, band: 0, t: Nanos::from_nanos(i as u64) };
            if q.enqueue(pkt, Nanos::ZERO).is_none() {
                accepted.push(i as u64);
            }
            prop_assert!(q.len() <= limit);
        }
        let mut popped = Vec::new();
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            popped.push(p.t.as_nanos());
        }
        prop_assert_eq!(popped, accepted, "FIFO order violated");
    }

    /// pfifo_fast: a higher-priority band always drains before a lower
    /// one, regardless of arrival order.
    #[test]
    fn pfifo_fast_strict_priority(
        arrivals in proptest::collection::vec((0usize..3, 0u64..50), 1..150)
    ) {
        let mut q = PfifoFastQdisc::new(3, 1000, |p: &Pkt| p.band);
        for (i, (band, flow)) in arrivals.iter().enumerate() {
            q.enqueue(
                Pkt { flow: *flow, band: *band, t: Nanos::from_nanos(i as u64) },
                Nanos::ZERO,
            );
        }
        let mut last_band = 0usize;
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            // Bands may only increase across the drain (strict priority
            // with no concurrent arrivals).
            prop_assert!(p.band >= last_band, "band {} after {}", p.band, last_band);
            last_band = p.band;
        }
    }

    /// FQ-CoDel qdisc conserves packets under arbitrary interleavings.
    #[test]
    fn fq_codel_conserves(
        ops in proptest::collection::vec((0u64..16, proptest::bool::ANY), 1..300)
    ) {
        let mut q: FqCodelQdisc<Pkt> = FqCodelQdisc::with_defaults();
        let mut now = Nanos::ZERO;
        let mut accepted = 0u64;
        let mut delivered = 0u64;
        for (flow, deq) in ops {
            now += Nanos::from_micros(200);
            if deq {
                if q.dequeue(now).is_some() {
                    delivered += 1;
                }
            } else if q.enqueue(Pkt { flow, band: 0, t: now }, now).is_none() {
                accepted += 1;
            }
        }
        while q.dequeue(now).is_some() {
            delivered += 1;
        }
        prop_assert_eq!(
            accepted,
            delivered + q.codel_drops(),
            "packets lost or duplicated"
        );
    }
}
