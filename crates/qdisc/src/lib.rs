//! Qdisc-layer queueing disciplines — the layer above the MAC in Figure 2.
//!
//! These are the two baselines the paper evaluates against:
//!
//! - [`PfifoQdisc`] — the default `pfifo` discipline (1000-packet tail-drop
//!   FIFO), the "FIFO" scheme,
//! - [`FqCodelQdisc`] — the FQ-CoDel qdisc with wired-link defaults
//!   (1024 flows, 5 ms target, 100 ms interval, 10240-packet limit), the
//!   "FQ-CoDel" scheme.
//!
//! Under the FQ-MAC and Airtime schemes, the qdisc layer is bypassed
//! entirely (Figure 3: "Qdisc layer (bypassed)").

use wifiq_codel::CodelParams;
use wifiq_core::fq::{FqParams, MacFq};
use wifiq_core::packet::{FqPacket, PacketArena, PacketFifo};
use wifiq_core::table::TidId;
use wifiq_sim::Nanos;

/// A queueing discipline installed on a network interface.
pub trait Qdisc<P> {
    /// Offers a packet to the qdisc. Returns a packet that had to be
    /// dropped to accept this one (possibly the offered packet itself).
    fn enqueue(&mut self, pkt: P, now: Nanos) -> Option<P>;

    /// Takes the next packet to hand to the driver.
    fn dequeue(&mut self, now: Nanos) -> Option<P>;

    /// Number of queued packets.
    fn len(&self) -> usize;

    /// True if no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The default Linux `pfifo` qdisc: a tail-drop FIFO with a packet limit.
///
/// Packets live in a generational [`PacketArena`]; the FIFO itself is an
/// intrusive list of slot links, so steady-state traffic recycles slots
/// instead of growing or reallocating a buffer.
#[derive(Debug)]
pub struct PfifoQdisc<P> {
    arena: PacketArena<P>,
    queue: PacketFifo,
    limit: usize,
    /// Packets dropped at the tail because the queue was full.
    pub tail_drops: u64,
}

impl<P> PfifoQdisc<P> {
    /// Creates a pfifo with the given packet limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> PfifoQdisc<P> {
        assert!(limit > 0, "pfifo limit must be positive");
        PfifoQdisc {
            arena: PacketArena::new(),
            queue: PacketFifo::new(),
            limit,
            tail_drops: 0,
        }
    }

    /// The Linux default: `txqueuelen` = 1000 packets.
    pub fn with_default_limit() -> PfifoQdisc<P> {
        PfifoQdisc::new(1000)
    }

    /// Live packets in the backing arena (equals [`Qdisc::len`]; exposed
    /// so teardown tests can assert no slots leak).
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Removes and returns every queued packet matching `keep_out`, in
    /// FIFO order, leaving the rest in their original order. Used by the
    /// roaming hand-off to pull a departing station's frames out of a
    /// shared qdisc so they can follow it to the target BSS.
    pub fn drain_matching(&mut self, mut keep_out: impl FnMut(&P) -> bool) -> Vec<P> {
        let mut out = Vec::new();
        let mut kept = PacketFifo::new();
        while let Some(pkt) = self.queue.pop_front(&mut self.arena) {
            if keep_out(&pkt) {
                out.push(pkt);
            } else {
                kept.push_back(&mut self.arena, pkt);
            }
        }
        self.queue = kept;
        out
    }
}

impl<P> Qdisc<P> for PfifoQdisc<P> {
    fn enqueue(&mut self, pkt: P, _now: Nanos) -> Option<P> {
        if self.queue.len() >= self.limit {
            self.tail_drops += 1;
            return Some(pkt);
        }
        self.queue.push_back(&mut self.arena, pkt);
        None
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<P> {
        self.queue.pop_front(&mut self.arena)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// The Linux default qdisc `pfifo_fast`: priority bands served strictly
/// in order, each a tail-drop FIFO.
///
/// This is the "FIFO" baseline's qdisc in the paper: VO/VI-marked packets
/// jump the best-effort bulk (which is why Table 2's FIFO/VO row still
/// scores a good MOS), while everything inside one band suffers the full
/// tail-drop bufferbloat.
#[derive(Debug)]
pub struct PfifoFastQdisc<P> {
    bands: Vec<PfifoQdisc<P>>,
    band_of: fn(&P) -> usize,
}

impl<P> PfifoFastQdisc<P> {
    /// Creates a `pfifo_fast`-style qdisc with `bands` priority bands of
    /// `limit` packets each, classifying packets with `band_of`
    /// (0 = highest priority).
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn new(bands: usize, limit: usize, band_of: fn(&P) -> usize) -> PfifoFastQdisc<P> {
        assert!(bands > 0, "need at least one band");
        PfifoFastQdisc {
            bands: (0..bands).map(|_| PfifoQdisc::new(limit)).collect(),
            band_of,
        }
    }

    /// Packets tail-dropped across all bands.
    pub fn tail_drops(&self) -> u64 {
        self.bands.iter().map(|b| b.tail_drops).sum()
    }

    /// Live packets across all band arenas (equals [`Qdisc::len`]).
    pub fn arena_live(&self) -> usize {
        self.bands.iter().map(|b| b.arena_live()).sum()
    }

    /// Removes and returns every queued packet matching `keep_out`, in
    /// band-then-FIFO order (the order [`Qdisc::dequeue`] would have
    /// surfaced them), leaving the rest untouched. The roaming hand-off
    /// uses this to carry a departing station's frames to its target BSS.
    pub fn drain_matching(&mut self, mut keep_out: impl FnMut(&P) -> bool) -> Vec<P> {
        let mut out = Vec::new();
        for band in &mut self.bands {
            out.extend(band.drain_matching(&mut keep_out));
        }
        out
    }
}

impl<P> Qdisc<P> for PfifoFastQdisc<P> {
    fn enqueue(&mut self, pkt: P, now: Nanos) -> Option<P> {
        let band = (self.band_of)(&pkt).min(self.bands.len() - 1);
        self.bands[band].enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<P> {
        self.bands.iter_mut().find_map(|b| b.dequeue(now))
    }

    fn len(&self) -> usize {
        self.bands.iter().map(|b| b.len()).sum()
    }
}

/// The FQ-CoDel qdisc (RFC 8290) with standard wired-link parameters.
///
/// Internally this reuses the MAC FQ structure from `wifiq-core` with a
/// single registered TID — the paper's MAC queueing scheme *is* FQ-CoDel
/// generalised to many TIDs, so the single-TID instantiation recovers the
/// classic qdisc.
#[derive(Debug)]
pub struct FqCodelQdisc<P> {
    fq: MacFq<P>,
    tid: TidId,
    codel: CodelParams,
}

impl<P: FqPacket> FqCodelQdisc<P> {
    /// Creates an FQ-CoDel qdisc with the Linux defaults: 1024 flows,
    /// 10240-packet limit, quantum 1514 bytes, CoDel target 5 ms /
    /// interval 100 ms.
    pub fn with_defaults() -> FqCodelQdisc<P> {
        FqCodelQdisc::new(
            FqParams {
                flows: 1024,
                limit: 10_240,
                quantum: 1514,
                ..FqParams::default()
            },
            CodelParams::wired_default(),
        )
    }

    /// Fully parameterised constructor.
    pub fn new(fq_params: FqParams, codel: CodelParams) -> FqCodelQdisc<P> {
        let mut fq = MacFq::new(fq_params);
        let tid = fq.register_tid();
        FqCodelQdisc { fq, tid, codel }
    }

    /// Packets dropped by the CoDel AQM so far.
    pub fn codel_drops(&self) -> u64 {
        self.fq.stats.drops_codel
    }

    /// Packets dropped on overlimit (from the longest queue) so far.
    pub fn overlimit_drops(&self) -> u64 {
        self.fq.stats.drops_overlimit
    }

    /// Live packets in the underlying FQ structure's arena (equals
    /// [`Qdisc::len`]).
    pub fn arena_live(&self) -> usize {
        self.fq.arena_live()
    }
}

impl<P: FqPacket> Qdisc<P> for FqCodelQdisc<P> {
    fn enqueue(&mut self, pkt: P, now: Nanos) -> Option<P> {
        self.fq.enqueue(pkt, self.tid, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<P> {
        self.fq.dequeue(self.tid, now, &self.codel)
    }

    fn len(&self) -> usize {
        self.fq.total_packets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_codel::QueuedPacket;

    #[derive(Debug, Clone, PartialEq)]
    struct Pkt {
        flow: u64,
        t: Nanos,
        seq: u32,
    }

    impl QueuedPacket for Pkt {
        fn enqueue_time(&self) -> Nanos {
            self.t
        }
        fn wire_len(&self) -> u64 {
            1500
        }
    }

    impl FqPacket for Pkt {
        fn flow_hash(&self) -> u64 {
            self.flow
        }
    }

    fn pkt(flow: u64, seq: u32) -> Pkt {
        Pkt {
            flow,
            t: Nanos::ZERO,
            seq,
        }
    }

    #[test]
    fn pfifo_is_fifo() {
        let mut q = PfifoQdisc::new(10);
        for seq in 0..5 {
            assert!(q.enqueue(pkt(0, seq), Nanos::ZERO).is_none());
        }
        for seq in 0..5 {
            assert_eq!(q.dequeue(Nanos::ZERO).unwrap().seq, seq);
        }
        assert!(q.dequeue(Nanos::ZERO).is_none());
    }

    #[test]
    fn pfifo_tail_drops_at_limit() {
        let mut q = PfifoQdisc::new(3);
        for seq in 0..3 {
            assert!(q.enqueue(pkt(0, seq), Nanos::ZERO).is_none());
        }
        // The offered packet itself is returned (tail drop).
        let dropped = q.enqueue(pkt(0, 99), Nanos::ZERO).unwrap();
        assert_eq!(dropped.seq, 99);
        assert_eq!(q.tail_drops, 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pfifo_default_limit_is_1000() {
        let mut q = PfifoQdisc::with_default_limit();
        for seq in 0..1000 {
            assert!(q.enqueue(pkt(0, seq), Nanos::ZERO).is_none());
        }
        assert!(q.enqueue(pkt(0, 1000), Nanos::ZERO).is_some());
    }

    #[test]
    fn fq_codel_interleaves_flows() {
        let mut q = FqCodelQdisc::with_defaults();
        for seq in 0..10 {
            q.enqueue(pkt(1, seq), Nanos::ZERO);
        }
        for seq in 0..10 {
            q.enqueue(pkt(2, seq), Nanos::ZERO);
        }
        let first_four: Vec<u64> = (0..4)
            .map(|_| q.dequeue(Nanos::ZERO).unwrap().flow)
            .collect();
        assert!(first_four.contains(&1) && first_four.contains(&2));
    }

    #[test]
    fn fq_codel_drops_on_overlimit_from_fattest_flow() {
        let mut q = FqCodelQdisc::new(
            FqParams {
                flows: 64,
                limit: 20,
                quantum: 1514,
                ..FqParams::default()
            },
            CodelParams::wired_default(),
        );
        // Flow 1 fills the queue; flow 2's arrival forces a drop from
        // flow 1.
        for seq in 0..20 {
            q.enqueue(pkt(1, seq), Nanos::ZERO);
        }
        let victim = q.enqueue(pkt(2, 0), Nanos::ZERO).unwrap();
        assert_eq!(victim.flow, 1);
        assert_eq!(q.overlimit_drops(), 1);
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn fq_codel_codel_engages_on_standing_queue() {
        let mut q = FqCodelQdisc::with_defaults();
        // Stuff a deep standing queue, then drain it slowly far in the
        // future: CoDel should drop.
        for seq in 0..2000 {
            q.enqueue(pkt(1, seq), Nanos::ZERO);
        }
        let mut now = Nanos::from_millis(200);
        let mut delivered = 0;
        while q.dequeue(now).is_some() {
            delivered += 1;
            now += Nanos::from_millis(1);
        }
        assert!(q.codel_drops() > 0, "CoDel never engaged");
        assert_eq!(delivered + q.codel_drops() as usize, 2000);
    }

    #[test]
    fn pfifo_fast_priority_bands() {
        // Band by flow id parity: even flows high priority.
        let mut q = PfifoFastQdisc::new(2, 10, |p: &Pkt| (p.flow % 2) as usize);
        q.enqueue(pkt(1, 0), Nanos::ZERO); // low priority
        q.enqueue(pkt(2, 1), Nanos::ZERO); // high priority
        q.enqueue(pkt(1, 2), Nanos::ZERO);
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().seq, 1, "high band first");
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().seq, 0);
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().seq, 2);
    }

    #[test]
    fn pfifo_fast_per_band_limits() {
        let mut q = PfifoFastQdisc::new(2, 2, |p: &Pkt| (p.flow % 2) as usize);
        for seq in 0..4 {
            q.enqueue(pkt(1, seq), Nanos::ZERO);
        }
        assert_eq!(q.tail_drops(), 2, "band 1 full at 2");
        // Band 0 still has room.
        assert!(q.enqueue(pkt(2, 9), Nanos::ZERO).is_none());
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pfifo_fast_band_clamped() {
        let mut q = PfifoFastQdisc::new(2, 10, |p: &Pkt| p.flow as usize);
        // flow 7 maps past the last band; must clamp, not panic.
        assert!(q.enqueue(pkt(7, 0), Nanos::ZERO).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pfifo_drain_matching_preserves_order() {
        let mut q = PfifoQdisc::new(10);
        for seq in 0..6 {
            q.enqueue(pkt(seq as u64 % 2, seq), Nanos::ZERO);
        }
        let odd = q.drain_matching(|p| p.flow == 1);
        assert_eq!(odd.iter().map(|p| p.seq).collect::<Vec<_>>(), [1, 3, 5]);
        // Survivors keep FIFO order and the queue stays usable.
        assert_eq!(q.len(), 3);
        assert_eq!(
            (0..3)
                .map(|_| q.dequeue(Nanos::ZERO).unwrap().seq)
                .collect::<Vec<_>>(),
            [0, 2, 4]
        );
    }

    #[test]
    fn pfifo_fast_drain_matching_spans_bands() {
        let mut q = PfifoFastQdisc::new(2, 10, |p: &Pkt| (p.flow % 2) as usize);
        q.enqueue(pkt(1, 0), Nanos::ZERO); // band 1
        q.enqueue(pkt(2, 1), Nanos::ZERO); // band 0
        q.enqueue(pkt(3, 2), Nanos::ZERO); // band 1
        let moved = q.drain_matching(|p| p.flow != 2);
        assert_eq!(moved.iter().map(|p| p.seq).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().flow, 2);
    }

    #[test]
    fn fq_codel_empty_dequeue() {
        let mut q: FqCodelQdisc<Pkt> = FqCodelQdisc::with_defaults();
        assert!(q.dequeue(Nanos::ZERO).is_none());
        assert!(q.is_empty());
    }
}
