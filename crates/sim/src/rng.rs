//! Deterministic random-number generation for simulations.
//!
//! Every simulation run is parameterised by a single `u64` seed; repetitions
//! of an experiment are seed sweeps. The wrapper also provides the handful of
//! distributions the workload generators need, so callers do not depend on
//! `rand` directly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with simulation-oriented helpers.
///
/// # Examples
///
/// ```
/// use wifiq_sim::rng::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.gen_range_u64(0, 100), b.gen_range_u64(0, 100));
/// ```
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; `salt` distinguishes siblings.
    ///
    /// Used to give each traffic source / station its own stream so that
    /// adding one source does not perturb the randomness of the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives a named side stream directly from a master seed without
    /// constructing (or advancing) the master's RNG: subsystems that
    /// must never perturb the main simulation stream — fault injection,
    /// shard splitting — fork their draws from here. The same
    /// `(seed, salt)` pair always yields the same stream.
    pub fn stream(seed: u64, salt: u64) -> SimRng {
        SimRng::new(seed).fork(salt)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n]` — the contention-window backoff draw.
    pub fn backoff_slots(&mut self, cw: u32) -> u32 {
        self.inner.gen_range(0..=cw)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean {mean}");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from empty slice");
        self.inner.gen_range(0..len)
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0, 1_000_000), b.gen_range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.gen_range_u64(0, u64::MAX - 1) == b.gen_range_u64(0, u64::MAX - 1))
            .count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.gen_range_u64(0, 1000), fb.gen_range_u64(0, 1000));

        let mut c = SimRng::new(42);
        let mut f1 = c.fork(1);
        let mut d = SimRng::new(42);
        let mut f2 = d.fork(2);
        // Different salts should (overwhelmingly) produce different streams.
        let matches = (0..32)
            .filter(|_| f1.gen_range_u64(0, u64::MAX - 1) == f2.gen_range_u64(0, u64::MAX - 1))
            .count();
        assert!(matches < 2);
    }

    #[test]
    fn backoff_within_cw() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.backoff_slots(15) <= 15);
        }
        assert_eq!(rng.backoff_slots(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.5,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).gen_range_u64(5, 5);
    }

    #[test]
    #[should_panic(expected = "cannot pick from empty slice")]
    fn empty_index_panics() {
        SimRng::new(0).index(0);
    }
}
