//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept in integer nanoseconds behind the [`Nanos`]
//! newtype. 802.11 timing constants are microsecond-scale, but rates such as
//! 144.4 Mbps produce sub-microsecond per-byte durations, so nanosecond
//! resolution keeps the arithmetic exact enough for airtime accounting while
//! `u64` still covers ~584 years of simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Nanos` is used both as an instant (time since simulation start) and as a
/// duration; the simulator never needs wall-clock anchoring, so a single
/// monotonic scalar type keeps the arithmetic honest and cheap.
///
/// # Examples
///
/// ```
/// use wifiq_sim::time::Nanos;
///
/// let t = Nanos::from_micros(34) + Nanos::from_micros(16);
/// assert_eq!(t.as_micros(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant (simulation start) / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time value from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time value from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time value from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time value from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large for `u64` nanoseconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite() && s < u64::MAX as f64 / 1e9,
            "invalid duration: {s}"
        );
        Nanos((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Multiplies the duration by a fractional factor, rounding to nanoseconds.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero instant / empty duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration of transmitting `bits` at `rate_bps` bits per second,
    /// rounded up to the next nanosecond.
    ///
    /// This is the workhorse of all airtime math; rounding up matches how
    /// real hardware pads transmissions to symbol boundaries (a separate,
    /// coarser symbol-rounding is applied by the PHY layer where relevant).
    #[inline]
    pub fn for_bits(bits: u64, rate_bps: u64) -> Nanos {
        assert!(rate_bps > 0, "rate must be positive");
        // bits * 1e9 may exceed u64 for huge aggregates; widen to u128.
        let ns = (bits as u128 * 1_000_000_000).div_ceil(rate_bps as u128);
        Nanos(ns as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div<Nanos> for Nanos {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Nanos> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Nanos::from_micros(2));
    }

    #[test]
    fn saturating_and_checked() {
        let a = Nanos::from_micros(1);
        let b = Nanos::from_micros(2);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(b.saturating_sub(a), Nanos::from_micros(1));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(Nanos::MAX.checked_add(Nanos(1)), None);
    }

    #[test]
    fn for_bits_rounds_up() {
        // 1500 bytes at 1 Mbps = 12 ms exactly.
        assert_eq!(Nanos::for_bits(1500 * 8, 1_000_000), Nanos::from_millis(12));
        // 1 bit at 3 bps = 333333333.33... ns, rounded up.
        assert_eq!(Nanos::for_bits(1, 3), Nanos(333_333_334));
        // Large aggregate at a high rate does not overflow.
        let d = Nanos::for_bits(65535 * 8, 144_400_000);
        assert!(d > Nanos::from_micros(3_600) && d < Nanos::from_micros(3_700));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(34)), "34.000us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = Nanos::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = Nanos(1);
        let b = Nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Nanos::from_micros(100).mul_f64(0.5), Nanos::from_micros(50));
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
