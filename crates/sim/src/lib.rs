//! Discrete-event simulation engine for the WiFi queueing testbed.
//!
//! This crate provides the three primitives every other crate builds on:
//!
//! - [`time::Nanos`] — integer-nanosecond virtual time,
//! - [`event::EventQueue`] — a deterministic, cancellable event queue,
//! - [`rng::SimRng`] — seeded randomness with workload-oriented helpers.
//!
//! The engine is deliberately unopinionated about *what* is being simulated:
//! the 802.11 world model lives in `wifiq-mac`, which owns an
//! `EventQueue<Event>` and dispatches on a domain event enum. Keeping the
//! engine this small makes its correctness obvious, which matters because a
//! subtly non-deterministic queue would invalidate every experiment result
//! built on top of it.

pub mod event;
pub mod rng;
pub mod time;

#[doc(hidden)]
pub use event::ReferenceQueue;
pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::Nanos;
