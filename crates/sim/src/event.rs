//! Time-ordered event queue with cancellation.
//!
//! The queue is the heart of the discrete-event engine: events are pushed
//! with an absolute firing time and popped in time order. Ties are broken by
//! insertion order (FIFO), which keeps runs deterministic regardless of heap
//! internals.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use crate::time::Nanos;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable priority queue of simulation events.
///
/// Internally the queue is two-lane: a FIFO *front lane* absorbs the event
/// loop's common case — a handler scheduling the very next thing to fire
/// (same-timestamp TX completion chains, monotonic timer trains) — as an
/// O(1) append/pop, while everything else takes the binary heap. The lanes
/// maintain the invariant that every front-lane event orders strictly
/// before every heap event, so pop order (time, then insertion order) is
/// byte-identical to the single-heap implementation.
///
/// # Examples
///
/// ```
/// use wifiq_sim::event::EventQueue;
/// use wifiq_sim::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_micros(20), "b");
/// q.push(Nanos::from_micros(10), "a");
/// let id = q.push(Nanos::from_micros(15), "cancelled");
/// q.cancel(id);
///
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "a")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// In-order lane: non-decreasing times, all strictly earlier than
    /// every heap entry, popped front-first with no heap churn.
    front: VecDeque<Entry<E>>,
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    /// Sequence numbers currently in the heap; guards `cancel` against
    /// tombstoning an event that already fired (which would corrupt
    /// `len()` forever).
    pending: HashSet<u64>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            front: VecDeque::new(),
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// The time of the most recently popped event (the current virtual time).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a scheduled event must never rewind
    /// the clock; doing so would silently corrupt causality.
    pub fn push(&mut self, at: Nanos, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        let entry = Entry {
            time: at,
            seq,
            payload,
        };
        // Front-lane admission: the push keeps the lane's times
        // non-decreasing (new seqs are larger, so an equal time preserves
        // FIFO) and must fire strictly before the earliest heap entry (an
        // equal-time heap entry holds an older seq and goes first).
        let after_front = self.front.back().is_none_or(|back| at >= back.time);
        let before_heap = self.heap.peek().is_none_or(|top| at < top.time);
        if after_front && before_heap {
            self.front.push_back(entry);
        } else {
            // Out-of-order push: spill the lane into the heap so the
            // two-lane invariant (front strictly before heap) survives,
            // then take the heap path.
            if !after_front {
                self.heap.extend(self.front.drain(..));
            }
            self.heap.push(entry);
        }
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: Nanos, payload: E) -> EventId {
        let at = self.now + delay;
        self.push(at, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation is lazy: the entry is skipped when it reaches the top of
    /// the heap.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.contains(&id.0) {
            // Unknown, already fired, or already cancelled: refuse, so a
            // stale handle can never tombstone a future event's counters.
            return false;
        }
        self.pending.remove(&id.0);
        self.cancelled.insert(id.0)
    }

    /// Pops the next pending event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        // Every front-lane event fires before every heap event, so drain
        // the lane first — the common case, with no heap churn at all.
        while let Some(entry) = self.front.pop_front() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        // Drop cancelled entries so the peek reflects a live event.
        while let Some(entry) = self.front.front() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.front.pop_front();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of scheduled events, including not-yet-skipped cancelled ones.
    pub fn len(&self) -> usize {
        self.front.len() + self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), 3);
        q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_in_past_panics() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        q.pop();
        q.push(Nanos(50), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_harmless() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        // The event already fired: cancelling must refuse and must not
        // corrupt the live-event count.
        assert!(!q.cancel(a));
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), 1);
        q.pop();
        q.push_after(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn monotonic_chain_stays_ordered() {
        // The front-lane fast path: each handler schedules the next event
        // in time order, interleaved with pops.
        let mut q = EventQueue::new();
        q.push(Nanos(10), 0);
        for i in 1..200u64 {
            let (t, got) = q.pop().unwrap();
            assert_eq!(got, i - 1);
            // Same-timestamp chain every 4th event, else strictly later.
            let at = if i % 4 == 0 { t } else { t + Nanos(7) };
            q.push(at, i);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(199));
        assert!(q.is_empty());
    }

    #[test]
    fn out_of_order_push_spills_front_lane() {
        let mut q = EventQueue::new();
        // Build a front lane, then push an earlier event: the earlier one
        // must still pop first.
        q.push(Nanos(50), "lane1");
        q.push(Nanos(60), "lane2");
        q.push(Nanos(10), "early");
        q.push(Nanos(55), "mid");
        assert_eq!(q.pop(), Some((Nanos(10), "early")));
        assert_eq!(q.pop(), Some((Nanos(50), "lane1")));
        assert_eq!(q.pop(), Some((Nanos(55), "mid")));
        assert_eq!(q.pop(), Some((Nanos(60), "lane2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_time_fifo_across_lanes() {
        let mut q = EventQueue::new();
        // "a" lands in the front lane; "b" at the same time would break
        // FIFO if it joined the lane after a heap entry arrived between.
        q.push(Nanos(20), "a");
        q.push(Nanos(5), "x");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(5), "x")));
        assert_eq!(q.pop(), Some((Nanos(20), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
    }

    #[test]
    fn cancel_front_lane_entry() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(10), 2);
        q.push(Nanos(20), 3);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos(10)));
        assert_eq!(q.pop(), Some((Nanos(10), 2)));
        assert_eq!(q.pop(), Some((Nanos(20), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn two_lane_order_matches_reference_model() {
        // Randomised push/pop/cancel workload cross-checked against a
        // plain sorted model: the two-lane queue must pop in exactly
        // (time, insertion-order) sequence.
        let mut q = EventQueue::new();
        let mut model: Vec<(Nanos, u64, EventId)> = Vec::new();
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = |span: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % span
        };
        let mut payload = 0u64;
        for _ in 0..5000 {
            match next(10) {
                0..=5 => {
                    // Jitter of 0 creates same-timestamp chains; larger
                    // jitter creates out-of-order pushes that force spills.
                    let at = q.now() + Nanos(next(5) * 10);
                    let id = q.push(at, payload);
                    model.push((at, payload, id));
                    payload += 1;
                }
                6..=8 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, (t, _, _))| (*t, *i))
                        .map(|(i, _)| i);
                    match expect {
                        None => assert_eq!(q.pop(), None),
                        Some(i) => {
                            let (t, p, _) = model.remove(i);
                            assert_eq!(q.pop(), Some((t, p)));
                        }
                    }
                }
                _ => {
                    if !model.is_empty() {
                        let i = next(model.len() as u64) as usize;
                        let (_, _, id) = model.remove(i);
                        assert!(q.cancel(id), "live event refused cancellation");
                    }
                }
            }
            assert_eq!(q.len(), model.len(), "live-event count drifted");
        }
        while let Some((t, p)) = q.pop() {
            let i = model
                .iter()
                .enumerate()
                .min_by_key(|(i, (t, _, _))| (*t, *i))
                .map(|(i, _)| i)
                .expect("queue outlived the model");
            let (mt, mp, _) = model.remove(i);
            assert_eq!((t, p), (mt, mp));
        }
        assert!(model.is_empty(), "model outlived the queue");
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
