//! Time-ordered event queue with cancellation.
//!
//! The queue is the heart of the discrete-event engine: events are pushed
//! with an absolute firing time and popped in time order. Ties are broken by
//! insertion order (FIFO), which keeps runs deterministic regardless of heap
//! internals.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Nanos;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable priority queue of simulation events.
///
/// # Examples
///
/// ```
/// use wifiq_sim::event::EventQueue;
/// use wifiq_sim::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_micros(20), "b");
/// q.push(Nanos::from_micros(10), "a");
/// let id = q.push(Nanos::from_micros(15), "cancelled");
/// q.cancel(id);
///
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "a")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    /// Sequence numbers currently in the heap; guards `cancel` against
    /// tombstoning an event that already fired (which would corrupt
    /// `len()` forever).
    pending: HashSet<u64>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// The time of the most recently popped event (the current virtual time).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a scheduled event must never rewind
    /// the clock; doing so would silently corrupt causality.
    pub fn push(&mut self, at: Nanos, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: Nanos, payload: E) -> EventId {
        let at = self.now + delay;
        self.push(at, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation is lazy: the entry is skipped when it reaches the top of
    /// the heap.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.contains(&id.0) {
            // Unknown, already fired, or already cancelled: refuse, so a
            // stale handle can never tombstone a future event's counters.
            return false;
        }
        self.pending.remove(&id.0);
        self.cancelled.insert(id.0)
    }

    /// Pops the next pending event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        // Drop cancelled entries so the peek reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of scheduled events, including not-yet-skipped cancelled ones.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), 3);
        q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_in_past_panics() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        q.pop();
        q.push(Nanos(50), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_harmless() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        // The event already fired: cancelling must refuse and must not
        // corrupt the live-event count.
        assert!(!q.cancel(a));
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), 1);
        q.pop();
        q.push_after(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
