//! Time-ordered event queue with cancellation.
//!
//! The queue is the heart of the discrete-event engine: events are pushed
//! with an absolute firing time and popped in time order. Ties are broken by
//! insertion order (FIFO), which keeps runs deterministic regardless of the
//! queue's internal structure.
//!
//! Internally the queue is a hierarchical timing wheel (see `EventQueue`),
//! replacing the earlier two-lane binary heap. The old implementation is kept
//! verbatim as [`ReferenceQueue`] so property tests can model-check the wheel
//! against it: both must produce byte-identical pop sequences.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

use crate::time::Nanos;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits of the fine level 0: 4096 one-nanosecond slots, so anything
/// scheduled within ~4 µs of the clock needs no cascade at all. The fine
/// bottom level is the same asymmetry the Linux timer wheel uses (a wide
/// first ring over narrower upper rings): almost all events are near-future,
/// so the bottom ring does almost all the work.
const L0_BITS: u32 = 12;
/// Level-0 slot count.
const L0_SLOTS: usize = 1 << L0_BITS;
/// Bits per upper wheel level: 64 slots each.
const UP_BITS: u32 = 6;
/// Slots per upper level.
const UP_SLOTS: usize = 1 << UP_BITS;
/// Upper levels (1..=UP_LEVELS). Level `l` slots span `2^(12+6(l-1))` ns,
/// so the whole wheel covers a `2^42` ns ≈ 73 min block of virtual time;
/// anything scheduled beyond the current block waits in the overflow heap.
const UP_LEVELS: usize = 5;
/// Total levels including the fine level 0.
const LEVELS: usize = 1 + UP_LEVELS;
/// Shift that selects an event's top-level block.
const TOP_SHIFT: u32 = L0_BITS + UP_BITS * UP_LEVELS as u32;
/// `up_min` value for an empty slot.
const EMPTY_MIN: u64 = u64::MAX;
/// Total bucket count across all levels (level 0 buckets come first).
const BUCKETS: usize = L0_SLOTS + UP_LEVELS * UP_SLOTS;

/// Low bit position of `level`'s slot index within an event time.
#[inline]
fn level_shift(level: usize) -> u32 {
    debug_assert!(level >= 1);
    L0_BITS + UP_BITS * (level as u32 - 1)
}

/// Level at which `t` is admitted relative to `reference`: the finest level
/// whose parent window contains both. `LEVELS` or more means overflow.
#[inline]
fn level_of(t: u64, reference: u64) -> usize {
    let x = t ^ reference;
    if x == 0 {
        return 0;
    }
    let msb = 63 - x.leading_zeros();
    if msb < L0_BITS {
        0
    } else {
        1 + ((msb - L0_BITS) / UP_BITS) as usize
    }
}

/// Bucket index for `t` at `level`.
#[inline]
fn bucket_of(t: u64, level: usize) -> usize {
    if level == 0 {
        (t & (L0_SLOTS as u64 - 1)) as usize
    } else {
        L0_SLOTS
            + (level - 1) * UP_SLOTS
            + ((t >> level_shift(level)) & (UP_SLOTS as u64 - 1)) as usize
    }
}

/// Null link in the wheel's intrusive node slab.
const NIL: u32 = u32::MAX;

/// One slab node: a scheduled event threaded into its bucket's singly
/// linked list, or a free-list node awaiting reuse (`payload: None`).
/// Keeping every node in one flat `Vec` (instead of a `VecDeque` per
/// bucket) is what makes the wheel fast in practice: pushes and cascades
/// are pointer swizzles inside a single allocation the cache already
/// holds, not traffic across hundreds of separate buffers.
struct Node<E> {
    time: u64,
    seq: u64,
    next: u32,
    payload: Option<E>,
}

/// A deterministic, cancellable priority queue of simulation events.
///
/// Internally the queue is a hierarchical timing wheel with an asymmetric
/// geometry: a fine level 0 of 4096 one-nanosecond slots (tracked by a
/// two-tier bitmap: one summary word over 64 slot words), then five upper
/// levels of 64 slots each, where an upper-level-`l` slot spans
/// `2^(12+6(l-1))` ns. An event is admitted to the finest level whose parent
/// window contains both the event time and the clock, so anything within
/// ~4 µs of now — the event loop's common case — lands directly in level 0
/// with no cascade ever needed, as an O(1) bucket append. Far-future events
/// (beyond the current ~73 min top-level block) wait in an overflow binary
/// heap and migrate into the wheel when the clock reaches their block.
/// Upper slots cascade toward level 0 lazily, only when the global minimum
/// lives inside them; level-0 slots span exactly 1 ns, so a slot is a
/// complete FIFO batch of one timestamp — this is what
/// [`EventQueue::pop_tick`] hands to the run loop. All level-0 residents
/// provably share one 4096 ns block (each entry's block contains the global
/// minimum), so their times are reconstructed from a single stored block
/// base and level 0 needs no per-slot minimum array. Exact (time, insertion
/// order) pop order is preserved and model-checked against
/// [`ReferenceQueue`].
///
/// # Examples
///
/// ```
/// use wifiq_sim::event::EventQueue;
/// use wifiq_sim::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_micros(20), "b");
/// q.push(Nanos::from_micros(10), "a");
/// let id = q.push(Nanos::from_micros(15), "cancelled");
/// q.cancel(id);
///
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "a")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Node slab: every wheel-resident event lives here, threaded into its
    /// bucket's list via `next`; freed nodes are recycled through
    /// `free_head`.
    nodes: Vec<Node<E>>,
    /// Head of the free-node list inside `nodes` (`NIL` when exhausted).
    free_head: u32,
    /// Per-bucket list heads/tails (level-0 buckets first, then upper
    /// levels). Within a bucket, equal-time entries are always in insertion
    /// (seq) order: pushes append monotonically increasing seqs, and
    /// cascades prepend entries that were necessarily pushed before
    /// anything already there.
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// Level-0 occupancy, tier 2: bit `w` set ⇔ `l0_words[w]` non-zero.
    l0_summary: u64,
    /// Level-0 occupancy, tier 1: bit `s` of word `w` set ⇔ slot
    /// `64w + s` non-empty.
    l0_words: [u64; L0_SLOTS / 64],
    /// High bits (`time >> 12`) shared by every level-0 resident; slot
    /// times are `(l0_block << 12) | slot`. Only meaningful while
    /// `l0_summary != 0`.
    l0_block: u64,
    /// Upper-level occupancy: bit `s` of word `l-1` set ⇔ level-`l` slot
    /// `s` non-empty.
    up_occupied: [u64; UP_LEVELS],
    /// Minimum event time per upper bucket (`EMPTY_MIN` when empty),
    /// indexed `(level-1) * 64 + slot`, so the pop path compares levels
    /// without scanning bucket contents.
    up_min: [u64; UP_LEVELS * UP_SLOTS],
    /// Events scheduled beyond the current top-level block, earliest first.
    overflow: BinaryHeap<Entry<E>>,
    /// Live entries resident in the wheel (excludes `overflow`).
    wheel_len: usize,
    /// Reusable buffer for cascade re-linking.
    scratch: Vec<u32>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free_head: NIL,
            heads: vec![NIL; BUCKETS],
            tails: vec![NIL; BUCKETS],
            l0_summary: 0,
            l0_words: [0; L0_SLOTS / 64],
            l0_block: 0,
            up_occupied: [0; UP_LEVELS],
            up_min: [EMPTY_MIN; UP_LEVELS * UP_SLOTS],
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            scratch: Vec::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// The time of the most recently popped event (the current virtual time).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Takes a node off the free list (or grows the slab) and fills it.
    #[inline]
    fn alloc_node(&mut self, time: u64, seq: u64, payload: E) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            let node = &mut self.nodes[i as usize];
            self.free_head = node.next;
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.payload = Some(payload);
            i
        } else {
            let i = u32::try_from(self.nodes.len()).expect("wheel slab fits u32 indices");
            self.nodes.push(Node {
                time,
                seq,
                next: NIL,
                payload: Some(payload),
            });
            i
        }
    }

    /// Returns a node to the free list and takes its payload.
    #[inline]
    fn free_node(&mut self, i: u32) -> E {
        let free_head = self.free_head;
        let node = &mut self.nodes[i as usize];
        node.next = free_head;
        self.free_head = i;
        node.payload.take().expect("freeing a live node")
    }

    /// Records a bucket's empty → non-empty transition in the occupancy
    /// bitmaps (and, for upper levels, the per-bucket minimum).
    #[inline]
    fn mark_occupied(&mut self, level: usize, bucket: usize, t: u64) {
        if level == 0 {
            let word = bucket >> 6;
            self.l0_words[word] |= 1 << (bucket & 63);
            self.l0_summary |= 1 << word;
            self.l0_block = t >> L0_BITS;
        } else {
            let up = bucket - L0_SLOTS;
            self.up_occupied[up >> 6] |= 1 << (up & 63);
            self.up_min[up] = t;
        }
    }

    /// Clears a bucket's occupancy bit (and upper-level minimum).
    #[inline]
    fn clear_occupied(&mut self, level: usize, bucket: usize) {
        if level == 0 {
            let word = bucket >> 6;
            self.l0_words[word] &= !(1 << (bucket & 63));
            if self.l0_words[word] == 0 {
                self.l0_summary &= !(1 << word);
            }
        } else {
            let up = bucket - L0_SLOTS;
            self.up_occupied[up >> 6] &= !(1 << (up & 63));
            self.up_min[up] = EMPTY_MIN;
        }
    }

    /// Appends a slab node to a bucket's list, maintaining bitmaps and min.
    #[inline]
    fn link_back(&mut self, level: usize, bucket: usize, i: u32, t: u64) {
        let tail = self.tails[bucket];
        if tail == NIL {
            self.heads[bucket] = i;
            self.mark_occupied(level, bucket, t);
        } else {
            self.nodes[tail as usize].next = i;
            if level != 0 {
                let min = &mut self.up_min[bucket - L0_SLOTS];
                if t < *min {
                    *min = t;
                }
            }
        }
        self.tails[bucket] = i;
    }

    /// Prepends a slab node to a bucket's list (the cascade path: cascaded
    /// entries carry smaller seqs than any equal-time resident).
    #[inline]
    fn link_front(&mut self, level: usize, bucket: usize, i: u32, t: u64) {
        let head = self.heads[bucket];
        self.nodes[i as usize].next = head;
        if head == NIL {
            self.tails[bucket] = i;
            self.mark_occupied(level, bucket, t);
        } else if level != 0 {
            let min = &mut self.up_min[bucket - L0_SLOTS];
            if t < *min {
                *min = t;
            }
        }
        self.heads[bucket] = i;
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a scheduled event must never rewind
    /// the clock; doing so would silently corrupt causality.
    pub fn push(&mut self, at: Nanos, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let level = level_of(at.0, self.now.0);
        if level >= LEVELS {
            self.overflow.push(Entry {
                time: at,
                seq,
                payload,
            });
        } else {
            let i = self.alloc_node(at.0, seq, payload);
            self.link_back(level, bucket_of(at.0, level), i, at.0);
            self.wheel_len += 1;
        }
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: Nanos, payload: E) -> EventId {
        let at = self.now + delay;
        self.push(at, payload)
    }

    /// Removes `id` from `bucket` if it lives there, fixing links, bitmaps
    /// and the bucket minimum.
    fn cancel_in_bucket(&mut self, level: usize, bucket: usize, id: EventId) -> bool {
        let mut prev = NIL;
        let mut i = self.heads[bucket];
        while i != NIL {
            let node = &self.nodes[i as usize];
            if node.seq != id.0 {
                prev = i;
                i = node.next;
                continue;
            }
            let next = node.next;
            let removed_time = node.time;
            if prev == NIL {
                self.heads[bucket] = next;
            } else {
                self.nodes[prev as usize].next = next;
            }
            if next == NIL {
                self.tails[bucket] = prev;
            }
            self.free_node(i);
            self.wheel_len -= 1;
            if self.heads[bucket] == NIL {
                self.clear_occupied(level, bucket);
            } else if level != 0 && removed_time == self.up_min[bucket - L0_SLOTS] {
                let mut min = EMPTY_MIN;
                let mut j = self.heads[bucket];
                while j != NIL {
                    let n = &self.nodes[j as usize];
                    min = min.min(n.time);
                    j = n.next;
                }
                self.up_min[bucket - L0_SLOTS] = min;
            }
            return true;
        }
        false
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation removes the entry directly — O(live events), which is
    /// fine because the simulator's hot path never cancels — so `len()` is
    /// always exact and pops pay nothing for the capability.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let mut summary = self.l0_summary;
        while summary != 0 {
            let word = summary.trailing_zeros() as usize;
            summary &= summary - 1;
            let mut bits = self.l0_words[word];
            while bits != 0 {
                let bucket = (word << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.cancel_in_bucket(0, bucket, id) {
                    return true;
                }
            }
        }
        for lm1 in 0..UP_LEVELS {
            let mut occ = self.up_occupied[lm1];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let bucket = L0_SLOTS + (lm1 << UP_BITS) + slot;
                if self.cancel_in_bucket(lm1 + 1, bucket, id) {
                    return true;
                }
            }
        }
        if self.overflow.iter().any(|e| e.seq == id.0) {
            let entries = mem::take(&mut self.overflow).into_vec();
            self.overflow = entries.into_iter().filter(|e| e.seq != id.0).collect();
            return true;
        }
        false
    }

    /// The earliest occupied (time, level, bucket), preferring the coarsest
    /// level on equal times: a coarse entry at the same timestamp was
    /// necessarily pushed earlier (its admission clock was further from the
    /// event), so it must cascade down first to keep FIFO order.
    fn best(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        if self.l0_summary != 0 {
            let word = self.l0_summary.trailing_zeros() as usize;
            let slot = (word << 6) | self.l0_words[word].trailing_zeros() as usize;
            best = Some(((self.l0_block << L0_BITS) | slot as u64, 0, slot));
        }
        // Ascending scan with `<=` so the coarsest level wins ties.
        for lm1 in 0..UP_LEVELS {
            let occ = self.up_occupied[lm1];
            if occ == 0 {
                continue;
            }
            let slot = occ.trailing_zeros() as usize;
            let min = self.up_min[(lm1 << UP_BITS) | slot];
            if best.is_none_or(|(t, _, _)| min <= t) {
                best = Some((min, lm1 + 1, L0_SLOTS + (lm1 << UP_BITS) + slot));
            }
        }
        best
    }

    /// Redistributes every entry of an upper-level slot one or more levels
    /// down, relative to the slot's own window start (all entries share it).
    ///
    /// Entries are *prepended* to their target buckets in order: anything
    /// already resident at an equal time was pushed while the clock sat
    /// inside a finer shared window — i.e. strictly later — so cascaded
    /// entries carry smaller seqs and must pop first.
    fn cascade(&mut self, level: usize, bucket: usize) {
        let shift = level_shift(level);
        // Singleton fast path: most cascades move one timer down.
        let head = self.heads[bucket];
        if head != NIL && self.nodes[head as usize].next == NIL {
            self.heads[bucket] = NIL;
            self.tails[bucket] = NIL;
            self.clear_occupied(level, bucket);
            let t = self.nodes[head as usize].time;
            let window_start = (t >> shift) << shift;
            let child = level_of(t, window_start);
            debug_assert!(child < level, "cascade must move entries down");
            self.link_front(child, bucket_of(t, child), head, t);
            return;
        }
        let mut scratch = mem::take(&mut self.scratch);
        scratch.clear();
        let mut i = self.heads[bucket];
        while i != NIL {
            scratch.push(i);
            i = self.nodes[i as usize].next;
        }
        self.heads[bucket] = NIL;
        self.tails[bucket] = NIL;
        self.clear_occupied(level, bucket);
        // Reverse iteration + push-front preserves the original order at
        // the front of every target bucket.
        for &i in scratch.iter().rev() {
            let t = self.nodes[i as usize].time;
            let window_start = (t >> shift) << shift;
            let child = level_of(t, window_start);
            debug_assert!(child < level, "cascade must move entries down");
            self.link_front(child, bucket_of(t, child), i, t);
        }
        self.scratch = scratch;
    }

    /// Moves the overflow head's entire top-level block into the (empty)
    /// wheel. Heap pops arrive in (time, seq) order, so equal-time entries
    /// land in their buckets already in FIFO order.
    fn promote_overflow(&mut self) {
        let head = self.overflow.peek().expect("promote on empty overflow");
        let reference = head.time.0;
        let block = reference >> TOP_SHIFT;
        debug_assert_eq!(self.wheel_len, 0, "promote into a non-empty wheel");
        while let Some(e) = self.overflow.peek() {
            if e.time.0 >> TOP_SHIFT != block {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            let t = entry.time.0;
            let level = level_of(t, reference);
            debug_assert!(level < LEVELS, "same block fits in the wheel");
            let i = self.alloc_node(t, entry.seq, entry.payload);
            self.link_back(level, bucket_of(t, level), i, t);
            self.wheel_len += 1;
        }
    }

    /// Cascades until the global minimum sits in a level-0 bucket and
    /// returns that bucket's index. Caller guarantees the queue is
    /// non-empty.
    ///
    /// Only one cross-level scan is needed: a cascade redistributes the
    /// bucket *containing* the minimum, so the minimum's time pins exactly
    /// which child bucket to settle next — no re-scan per step.
    fn settle_min(&mut self) -> usize {
        if self.wheel_len == 0 {
            self.promote_overflow();
        }
        let (min, mut level, mut bucket) = self.best().expect("queue non-empty");
        while level > 0 {
            self.cascade(level, bucket);
            let shift = level_shift(level);
            let window_start = (min >> shift) << shift;
            level = level_of(min, window_start);
            bucket = bucket_of(min, level);
        }
        bucket
    }

    /// Pops the next pending event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        if self.is_empty() {
            return None;
        }
        let bucket = self.settle_min();
        let i = self.heads[bucket];
        let next = self.nodes[i as usize].next;
        let time = Nanos(self.nodes[i as usize].time);
        self.heads[bucket] = next;
        if next == NIL {
            self.tails[bucket] = NIL;
            let word = bucket >> 6;
            self.l0_words[word] &= !(1 << (bucket & 63));
            if self.l0_words[word] == 0 {
                self.l0_summary &= !(1 << word);
            }
        }
        let payload = self.free_node(i);
        self.wheel_len -= 1;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        Some((time, payload))
    }

    /// Pops *all* events at the earliest pending timestamp, in FIFO order,
    /// appending their payloads to `out` — the batched same-tick dispatch
    /// path. Returns the tick's timestamp and advances the clock to it, or
    /// `None` (touching nothing) if the queue is empty or the next event
    /// fires after `until`.
    ///
    /// A level-0 bucket spans exactly 1 ns, so after cascading it *is* the
    /// complete batch: one bitmap settle per timestamp instead of one queue
    /// re-entry per event. Events the caller pushes at the same timestamp
    /// while processing the batch carry larger seqs and form the next batch.
    pub fn pop_tick(&mut self, until: Nanos, out: &mut Vec<E>) -> Option<Nanos> {
        let next = self.peek_time()?;
        if next > until {
            return None;
        }
        let bucket = self.settle_min();
        let mut i = self.heads[bucket];
        while i != NIL {
            debug_assert_eq!(
                self.nodes[i as usize].time, next.0,
                "level-0 slot spans 1 ns"
            );
            let after = self.nodes[i as usize].next;
            out.push(self.free_node(i));
            self.wheel_len -= 1;
            i = after;
        }
        self.heads[bucket] = NIL;
        self.tails[bucket] = NIL;
        self.clear_occupied(0, bucket);
        self.now = next;
        Some(next)
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        let mut best = EMPTY_MIN;
        if self.l0_summary != 0 {
            let word = self.l0_summary.trailing_zeros() as usize;
            let slot = (word << 6) | self.l0_words[word].trailing_zeros() as usize;
            best = (self.l0_block << L0_BITS) | slot as u64;
        }
        for lm1 in 0..UP_LEVELS {
            let occ = self.up_occupied[lm1];
            if occ == 0 {
                continue;
            }
            let slot = occ.trailing_zeros() as usize;
            best = best.min(self.up_min[(lm1 << UP_BITS) | slot]);
        }
        if let Some(head) = self.overflow.peek() {
            best = best.min(head.time.0);
        }
        (best != EMPTY_MIN).then_some(Nanos(best))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The pre-wheel two-lane implementation (FIFO front lane over a binary
/// heap), kept as the oracle for the event-order property tests: the wheel
/// must produce pop sequences byte-identical to this queue for every
/// schedule. Not part of the public API.
#[doc(hidden)]
pub struct ReferenceQueue<E> {
    /// In-order lane: non-decreasing times, all strictly earlier than
    /// every heap entry, popped front-first with no heap churn.
    front: VecDeque<Entry<E>>,
    heap: BinaryHeap<Entry<E>>,
    cancelled: std::collections::HashSet<u64>,
    /// Sequence numbers currently in the heap; guards `cancel` against
    /// tombstoning an event that already fired.
    pending: std::collections::HashSet<u64>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    pub fn new() -> Self {
        ReferenceQueue {
            front: VecDeque::new(),
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    pub fn push(&mut self, at: Nanos, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        let entry = Entry {
            time: at,
            seq,
            payload,
        };
        // Front-lane admission: the push keeps the lane's times
        // non-decreasing and must fire strictly before the earliest heap
        // entry (an equal-time heap entry holds an older seq and goes
        // first).
        let after_front = self.front.back().is_none_or(|back| at >= back.time);
        let before_heap = self.heap.peek().is_none_or(|top| at < top.time);
        if after_front && before_heap {
            self.front.push_back(entry);
        } else {
            if !after_front {
                self.heap.extend(self.front.drain(..));
            }
            self.heap.push(entry);
        }
        EventId(seq)
    }

    pub fn push_after(&mut self, delay: Nanos, payload: E) -> EventId {
        let at = self.now + delay;
        self.push(at, payload)
    }

    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.contains(&id.0) {
            return false;
        }
        self.pending.remove(&id.0);
        self.cancelled.insert(id.0)
    }

    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(entry) = self.front.pop_front() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    pub fn peek_time(&mut self) -> Option<Nanos> {
        while let Some(entry) = self.front.front() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.front.pop_front();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    pub fn len(&self) -> usize {
        self.front.len() + self.heap.len() - self.cancelled.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), 3);
        q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_in_past_panics() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), ());
        q.pop();
        q.push(Nanos(50), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_harmless() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        // The event already fired: cancelling must refuse and must not
        // corrupt the live-event count.
        assert!(!q.cancel(a));
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_overflow_entry() {
        let mut q = EventQueue::new();
        let far = q.push(Nanos(1 << (TOP_SHIFT + 1)), 1);
        q.push(Nanos(10), 2);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(far));
        assert!(!q.cancel(far));
        assert_eq!(q.pop(), Some((Nanos(10), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(Nanos(100), 1);
        q.pop();
        q.push_after(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn monotonic_chain_stays_ordered() {
        // The common fast path: each handler schedules the next event in
        // time order, interleaved with pops.
        let mut q = EventQueue::new();
        q.push(Nanos(10), 0);
        for i in 1..200u64 {
            let (t, got) = q.pop().unwrap();
            assert_eq!(got, i - 1);
            // Same-timestamp chain every 4th event, else strictly later.
            let at = if i % 4 == 0 { t } else { t + Nanos(7) };
            q.push(at, i);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(199));
        assert!(q.is_empty());
    }

    #[test]
    fn out_of_order_push_spills_front_lane() {
        let mut q = EventQueue::new();
        // The pattern that forced the old front lane to spill: later events
        // queued first, then an earlier one must still pop first.
        q.push(Nanos(50), "lane1");
        q.push(Nanos(60), "lane2");
        q.push(Nanos(10), "early");
        q.push(Nanos(55), "mid");
        assert_eq!(q.pop(), Some((Nanos(10), "early")));
        assert_eq!(q.pop(), Some((Nanos(50), "lane1")));
        assert_eq!(q.pop(), Some((Nanos(55), "mid")));
        assert_eq!(q.pop(), Some((Nanos(60), "lane2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_time_fifo_across_admission_levels() {
        let mut q = EventQueue::new();
        // "a" and "b" straddle an out-of-order push; FIFO at the shared
        // timestamp must survive whatever levels they landed on. The times
        // straddle a level-0 block boundary so "a" is admitted coarse.
        let t = Nanos(1 << (L0_BITS + 2));
        q.push(t, "a");
        q.push(Nanos(5), "x");
        q.push(t, "b");
        assert_eq!(q.pop(), Some((Nanos(5), "x")));
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
    }

    #[test]
    fn stale_coarse_entry_still_pops_before_fresh_fine_entry() {
        // Regression guard for the classic wheel hazard: an event admitted
        // long ago sits at a coarse level while the clock advances into its
        // window; a *later* event pushed nearby then lands at level 0. The
        // stale coarse entry has the earlier time and must still win.
        let mut q = EventQueue::new();
        // now = 0: t differs above bit 18 → an upper level.
        let coarse_t = Nanos((1 << 18) + 5);
        q.push(coarse_t, "stale-coarse");
        // Walk the clock close to the coarse entry's window.
        q.push(Nanos(1 << 18), "step");
        assert_eq!(q.pop(), Some((Nanos(1 << 18), "step")));
        // Fresh push, later time, admitted at level 0 relative to now.
        q.push(Nanos((1 << 18) + 40), "fresh-fine");
        assert_eq!(q.pop(), Some((coarse_t, "stale-coarse")));
        assert_eq!(q.pop(), Some((Nanos((1 << 18) + 40), "fresh-fine")));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_overflow_round_trip() {
        let mut q = EventQueue::new();
        let far_a = Nanos((1 << TOP_SHIFT) + 123);
        let far_b = Nanos((1 << TOP_SHIFT) + 123);
        let very_far = Nanos(3 << TOP_SHIFT);
        q.push(far_a, "far-a");
        q.push(very_far, "very-far");
        q.push(far_b, "far-b");
        q.push(Nanos(7), "near");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.pop(), Some((Nanos(7), "near")));
        // Equal-time far events keep FIFO order across the overflow heap.
        assert_eq!(q.pop(), Some((far_a, "far-a")));
        assert_eq!(q.pop(), Some((far_b, "far-b")));
        assert_eq!(q.pop(), Some((very_far, "very-far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_wheel_entry_keeps_structure_consistent() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(10), 2);
        q.push(Nanos(20), 3);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos(10)));
        assert_eq!(q.pop(), Some((Nanos(10), 2)));
        assert_eq!(q.pop(), Some((Nanos(20), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_upper_level_entry_keeps_structure_consistent() {
        let mut q = EventQueue::new();
        // Two entries share an upper-level slot; cancelling the earlier one
        // must recompute the slot minimum so the survivor still pops at the
        // right time relative to a level-0 entry in between.
        let a = q.push(Nanos((1 << 20) + 10), 1);
        q.push(Nanos((1 << 20) + 500), 2);
        q.push(Nanos(40), 3);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos(40)));
        assert_eq!(q.pop(), Some((Nanos(40), 3)));
        assert_eq!(q.pop(), Some((Nanos((1 << 20) + 500), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_tick_batches_one_timestamp() {
        let mut q = EventQueue::new();
        q.push(Nanos(10), 1);
        q.push(Nanos(10), 2);
        q.push(Nanos(10), 3);
        q.push(Nanos(20), 4);
        let mut batch = Vec::new();
        assert_eq!(q.pop_tick(Nanos(100), &mut batch), Some(Nanos(10)));
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(q.now(), Nanos(10));
        batch.clear();
        assert_eq!(q.pop_tick(Nanos(15), &mut batch), None, "beyond until");
        assert!(batch.is_empty());
        assert_eq!(q.now(), Nanos(10), "refused tick leaves the clock alone");
        assert_eq!(q.pop_tick(Nanos(20), &mut batch), Some(Nanos(20)));
        assert_eq!(batch, vec![4]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_tick_same_tick_repush_forms_next_batch() {
        let mut q = EventQueue::new();
        q.push(Nanos(10), 1);
        let mut batch = Vec::new();
        assert_eq!(q.pop_tick(Nanos(100), &mut batch), Some(Nanos(10)));
        assert_eq!(batch, vec![1]);
        // A handler reacting to the batch schedules more work at the same
        // timestamp: it must form a *new* batch, after the current one.
        q.push(Nanos(10), 2);
        q.push(Nanos(10), 3);
        batch.clear();
        assert_eq!(q.pop_tick(Nanos(100), &mut batch), Some(Nanos(10)));
        assert_eq!(batch, vec![2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_order_matches_reference_model() {
        // Randomised push/pop/cancel workload cross-checked against the
        // pre-wheel implementation: pop sequences must be byte-identical.
        let mut q = EventQueue::new();
        let mut r = ReferenceQueue::new();
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = |span: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % span
        };
        let mut payload = 0u64;
        let mut live: Vec<(EventId, EventId)> = Vec::new();
        for _ in 0..5000 {
            match next(10) {
                0..=5 => {
                    // Jitter of 0 creates same-timestamp chains; larger
                    // jitter creates out-of-order pushes; the huge stride
                    // exercises coarse levels and the overflow heap.
                    let jitter = match next(4) {
                        0 => 0,
                        1 => next(5) * 10,
                        2 => next(1 << 20),
                        _ => next(1 << 44),
                    };
                    let at = q.now() + Nanos(jitter);
                    let qid = q.push(at, payload);
                    let rid = r.push(at, payload);
                    live.push((qid, rid));
                    payload += 1;
                }
                6..=8 => {
                    let got = q.pop();
                    assert_eq!(got, r.pop());
                    if let Some((_, p)) = got {
                        // Both queues assign seqs in push order, so the
                        // payload (push index) identifies the fired ids.
                        live.retain(|(qid, _)| qid.0 != p);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let i = next(live.len() as u64) as usize;
                        let (qid, rid) = live.remove(i);
                        assert_eq!(q.cancel(qid), r.cancel(rid));
                    }
                }
            }
            assert_eq!(q.len(), r.len(), "live-event count drifted");
            assert_eq!(q.now(), r.now());
        }
        loop {
            let got = q.pop();
            assert_eq!(got, r.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos(10), 1);
        q.push(Nanos(20), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
