//! Property tests for the event queue's core guarantees: time ordering,
//! FIFO tie-breaking, and cancellation consistency.

use proptest::prelude::*;
use wifiq_sim::{EventQueue, Nanos};

#[derive(Debug, Clone)]
enum Op {
    /// Push an event `delta` ns after the current virtual time.
    Push(u64),
    /// Pop one event.
    Pop,
    /// Cancel the i-th still-remembered handle.
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Push),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of pushes, pops and cancels:
    /// - popped times never decrease,
    /// - equal-time events pop in insertion order,
    /// - cancelled events never pop,
    /// - `len()` matches the number of live events.
    #[test]
    fn queue_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut handles = Vec::new();
        let mut next_payload = 0u64;
        let mut cancelled_payloads = Vec::new();
        let mut live = 0usize;
        let mut last = (Nanos::ZERO, 0u64);

        for op in ops {
            match op {
                Op::Push(delta) => {
                    let at = q.now() + Nanos::from_nanos(delta);
                    next_payload += 1;
                    let id = q.push(at, next_payload);
                    handles.push((id, next_payload));
                    live += 1;
                }
                Op::Pop => {
                    let before = q.len();
                    if let Some((t, payload)) = q.pop() {
                        // Time order with FIFO tie-break: (time, payload)
                        // pairs are strictly increasing lexicographically
                        // because payloads are insertion-ordered.
                        prop_assert!(
                            (t, payload) > last,
                            "out of order: {:?} after {:?}", (t, payload), last
                        );
                        last = (t, payload);
                        prop_assert!(
                            !cancelled_payloads.contains(&payload),
                            "cancelled event {payload} popped"
                        );
                        live -= 1;
                        prop_assert_eq!(q.len(), before - 1);
                        handles.retain(|&(_, p)| p != payload);
                    } else {
                        prop_assert_eq!(before, 0);
                    }
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let (id, payload) = handles[i % handles.len()];
                        if q.cancel(id) {
                            cancelled_payloads.push(payload);
                            live -= 1;
                            handles.retain(|&(h, _)| h != id);
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), live, "len() diverged from live count");
        }

        // Drain: everything still live pops, nothing cancelled does.
        while let Some((_, payload)) = q.pop() {
            prop_assert!(!cancelled_payloads.contains(&payload));
            live -= 1;
        }
        prop_assert_eq!(live, 0);
    }

    /// Double-cancel and cancel-after-fire always report false and never
    /// disturb other events.
    #[test]
    fn cancel_is_idempotent(times in proptest::collection::vec(0u64..1000, 2..40)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(Nanos::from_nanos(t), i))
            .collect();
        // Cancel every other event, twice.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(q.cancel(*id));
                prop_assert!(!q.cancel(*id), "double cancel must be false");
            }
        }
        let mut popped = Vec::new();
        while let Some((_, p)) = q.pop() {
            popped.push(p);
        }
        // Exactly the odd-indexed events survive.
        let expect: Vec<usize> = (0..times.len()).filter(|i| i % 2 == 1).collect();
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, expect);
        // Cancelling after the fact is refused.
        for id in &ids {
            prop_assert!(!q.cancel(*id));
        }
        prop_assert_eq!(q.len(), 0);
    }
}
