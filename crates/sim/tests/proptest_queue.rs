//! Property tests for the event queue's core guarantees: time ordering,
//! FIFO tie-breaking, and cancellation consistency — plus the event-order
//! oracle that drives the timing wheel and the pre-wheel two-lane heap
//! (`ReferenceQueue`) through identical schedules and demands identical
//! behaviour.

use proptest::prelude::*;
use wifiq_sim::{EventQueue, Nanos, ReferenceQueue};

#[derive(Debug, Clone)]
enum Op {
    /// Push an event `delta` ns after the current virtual time.
    Push(u64),
    /// Pop one event.
    Pop,
    /// Cancel the i-th still-remembered handle.
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Push),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of pushes, pops and cancels:
    /// - popped times never decrease,
    /// - equal-time events pop in insertion order,
    /// - cancelled events never pop,
    /// - `len()` matches the number of live events.
    #[test]
    fn queue_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut handles = Vec::new();
        let mut next_payload = 0u64;
        let mut cancelled_payloads = Vec::new();
        let mut live = 0usize;
        let mut last = (Nanos::ZERO, 0u64);

        for op in ops {
            match op {
                Op::Push(delta) => {
                    let at = q.now() + Nanos::from_nanos(delta);
                    next_payload += 1;
                    let id = q.push(at, next_payload);
                    handles.push((id, next_payload));
                    live += 1;
                }
                Op::Pop => {
                    let before = q.len();
                    if let Some((t, payload)) = q.pop() {
                        // Time order with FIFO tie-break: (time, payload)
                        // pairs are strictly increasing lexicographically
                        // because payloads are insertion-ordered.
                        prop_assert!(
                            (t, payload) > last,
                            "out of order: {:?} after {:?}", (t, payload), last
                        );
                        last = (t, payload);
                        prop_assert!(
                            !cancelled_payloads.contains(&payload),
                            "cancelled event {payload} popped"
                        );
                        live -= 1;
                        prop_assert_eq!(q.len(), before - 1);
                        handles.retain(|&(_, p)| p != payload);
                    } else {
                        prop_assert_eq!(before, 0);
                    }
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let (id, payload) = handles[i % handles.len()];
                        if q.cancel(id) {
                            cancelled_payloads.push(payload);
                            live -= 1;
                            handles.retain(|&(h, _)| h != id);
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), live, "len() diverged from live count");
        }

        // Drain: everything still live pops, nothing cancelled does.
        while let Some((_, payload)) = q.pop() {
            prop_assert!(!cancelled_payloads.contains(&payload));
            live -= 1;
        }
        prop_assert_eq!(live, 0);
    }

    /// Double-cancel and cancel-after-fire always report false and never
    /// disturb other events.
    #[test]
    fn cancel_is_idempotent(times in proptest::collection::vec(0u64..1000, 2..40)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(Nanos::from_nanos(t), i))
            .collect();
        // Cancel every other event, twice.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(q.cancel(*id));
                prop_assert!(!q.cancel(*id), "double cancel must be false");
            }
        }
        let mut popped = Vec::new();
        while let Some((_, p)) = q.pop() {
            popped.push(p);
        }
        // Exactly the odd-indexed events survive.
        let expect: Vec<usize> = (0..times.len()).filter(|i| i % 2 == 1).collect();
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, expect);
        // Cancelling after the fact is refused.
        for id in &ids {
            prop_assert!(!q.cancel(*id));
        }
        prop_assert_eq!(q.len(), 0);
    }
}

/// One step of an oracle schedule. Deltas are drawn from a mix of ranges so
/// shrunk failures stay readable while full runs still reach every admission
/// path: zero (same-timestamp chains), small (level-0 churn), medium
/// (multi-level cascades), and beyond-horizon (the overflow heap).
#[derive(Debug, Clone)]
enum OracleOp {
    Push(u64),
    Pop,
    PopTick,
    Cancel(usize),
}

fn oracle_op_strategy() -> impl Strategy<Value = OracleOp> {
    fn delta() -> impl Strategy<Value = u64> {
        prop_oneof![
            Just(0u64),
            1u64..200,
            1u64..(1 << 22),
            (1u64 << 40)..(1 << 44),
        ]
    }
    // The vendored proptest has no weighted arms; repetition biases the mix
    // toward pushes so queues grow deep enough to exercise every level.
    prop_oneof![
        delta().prop_map(OracleOp::Push),
        delta().prop_map(OracleOp::Push),
        Just(OracleOp::Pop),
        Just(OracleOp::PopTick),
        (0usize..64).prop_map(OracleOp::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The event-order oracle: the timing wheel and the pre-wheel two-lane
    /// heap run the same interleaved push/pop/cancel schedule and must agree
    /// on every observable — pop sequence (time *and* payload, so FIFO
    /// tie-breaks match exactly), clock, live count, peeked head, and cancel
    /// outcomes. `PopTick` additionally checks that a wheel batch equals the
    /// reference queue popped one event at a time, including the
    /// front-lane-breaking pattern (out-of-order push after an in-order run)
    /// that forces the old implementation to spill.
    #[test]
    fn wheel_matches_reference_queue(
        ops in proptest::collection::vec(oracle_op_strategy(), 1..400),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut oracle: ReferenceQueue<u64> = ReferenceQueue::new();
        // Both queues see pushes in the same order, so the i-th push gets
        // the same internal seq in each; ids are paired by push index.
        let mut live_ids = Vec::new();
        let mut payload = 0u64;
        let mut batch = Vec::new();

        for op in ops {
            match op {
                OracleOp::Push(delta) => {
                    let at = wheel.now() + Nanos::from_nanos(delta);
                    let wid = wheel.push(at, payload);
                    let oid = oracle.push(at, payload);
                    live_ids.push((payload, wid, oid));
                    payload += 1;
                }
                OracleOp::Pop => {
                    let got = wheel.pop();
                    prop_assert_eq!(got, oracle.pop(), "pop sequence diverged");
                    if let Some((_, p)) = got {
                        live_ids.retain(|&(pl, _, _)| pl != p);
                    }
                }
                OracleOp::PopTick => {
                    batch.clear();
                    match wheel.pop_tick(Nanos(u64::MAX), &mut batch) {
                        None => prop_assert_eq!(oracle.peek_time(), None),
                        Some(t) => {
                            // The batch must be exactly what the oracle
                            // yields popping one event at a time at `t`.
                            for p in &batch {
                                prop_assert_eq!(oracle.pop(), Some((t, *p)));
                                live_ids.retain(|&(pl, _, _)| pl != *p);
                            }
                            prop_assert!(
                                oracle.peek_time() != Some(t),
                                "pop_tick left same-tick events behind"
                            );
                        }
                    }
                }
                OracleOp::Cancel(i) => {
                    if !live_ids.is_empty() {
                        let (_, wid, oid) = live_ids.remove(i % live_ids.len());
                        prop_assert_eq!(wheel.cancel(wid), oracle.cancel(oid));
                    }
                }
            }
            prop_assert_eq!(wheel.len(), oracle.len(), "live count diverged");
            prop_assert_eq!(wheel.now(), oracle.now(), "clock diverged");
            prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
        }

        // Drain both to the end: the tails must agree event for event.
        loop {
            let got = wheel.pop();
            prop_assert_eq!(got, oracle.pop());
            if got.is_none() {
                break;
            }
        }
    }

    /// The exact front-lane-breaking shape from the old unit suite
    /// (`out_of_order_push_spills_front_lane`), generalised: an in-order run
    /// followed by an earlier push, repeated — the wheel must interleave
    /// them exactly as the reference queue does.
    #[test]
    fn spill_patterns_match_reference(
        runs in proptest::collection::vec(
            (proptest::collection::vec(0u64..5_000, 1..8), 0u64..5_000),
            1..20,
        ),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut oracle: ReferenceQueue<u32> = ReferenceQueue::new();
        let mut payload = 0u32;
        for (in_order, early) in runs {
            // Ascending lane-friendly pushes...
            let mut at = wheel.now();
            for step in in_order {
                at += Nanos(step);
                wheel.push(at, payload);
                oracle.push(at, payload);
                payload += 1;
            }
            // ...then one push that lands before the lane's tail.
            let spill_at = wheel.now() + Nanos(early);
            wheel.push(spill_at, payload);
            oracle.push(spill_at, payload);
            payload += 1;
            // Drain a couple to advance the clock mid-pattern.
            for _ in 0..2 {
                prop_assert_eq!(wheel.pop(), oracle.pop());
            }
        }
        loop {
            let got = wheel.pop();
            prop_assert_eq!(got, oracle.pop());
            if got.is_none() {
                break;
            }
        }
    }
}
