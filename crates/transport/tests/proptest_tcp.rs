//! Property test: a finite TCP transfer completes correctly over an
//! adversarial network that drops, delays (reorders), and duplicates
//! segments — and the receiver's delivered byte count is exact.

use std::collections::BinaryHeap;

use proptest::prelude::*;
use wifiq_sim::{Nanos, SimRng};
use wifiq_transport::{TcpReceiver, TcpSegment, TcpSender, MSS};

#[derive(Debug, Clone, Copy)]
struct NetCfg {
    loss: f64,
    dup: f64,
    /// Extra random delay up to this many ms (reordering source).
    jitter_ms: u64,
    base_owd_ms: u64,
}

#[derive(PartialEq, Eq)]
struct Ev {
    at: Nanos,
    seq: u64,
    kind: Kind,
}

#[derive(PartialEq, Eq)]
enum Kind {
    Data(SegWrap),
    Ack(SegWrap),
    Rto,
    Delack,
}

#[derive(PartialEq, Eq)]
struct SegWrap(TcpSegment);

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the transfer; returns (completed, delivered_bytes, acks).
fn run(total: u64, cfg: NetCfg, seed: u64) -> (bool, u64) {
    let mut rng = SimRng::new(seed);
    let mut tx = TcpSender::finite(total);
    let mut rx = TcpReceiver::new();
    let mut heap = BinaryHeap::new();
    let mut evseq = 0u64;
    let mut rto_deadline;
    let mut delack_deadline = None;
    let mut now = Nanos::ZERO;

    macro_rules! push {
        ($at:expr, $kind:expr) => {{
            evseq += 1;
            heap.push(Ev {
                at: $at,
                seq: evseq,
                kind: $kind,
            });
        }};
    }

    // Sends a segment through the lossy/jittery pipe, possibly twice.
    macro_rules! transmit {
        ($seg:expr, $mk:expr) => {{
            let seg = $seg;
            let copies = 1 + usize::from(rng.chance(cfg.dup));
            for _ in 0..copies {
                if !rng.chance(cfg.loss) {
                    let delay = Nanos::from_millis(
                        cfg.base_owd_ms + rng.gen_range_u64(0, cfg.jitter_ms + 1),
                    );
                    push!(now + delay, $mk(SegWrap(seg)));
                }
            }
        }};
    }

    let out = tx.start(now);
    rto_deadline = out.rearm_rto;
    if let Some(d) = rto_deadline {
        push!(d, Kind::Rto);
    }
    for seg in out.segments {
        transmit!(seg, Kind::Data);
    }

    let mut steps = 0u64;
    while !tx.done() {
        steps += 1;
        if steps > 2_000_000 {
            return (false, rx.delivered_bytes);
        }
        let Some(ev) = heap.pop() else {
            return (false, rx.delivered_bytes);
        };
        now = ev.at;
        match ev.kind {
            Kind::Data(SegWrap(seg)) => {
                let o = rx.on_data(&seg, now);
                if let Some(ack) = o.ack {
                    transmit!(ack, Kind::Ack);
                }
                if let Some(d) = o.arm_delack {
                    delack_deadline = Some(d);
                    push!(d, Kind::Delack);
                }
            }
            Kind::Ack(SegWrap(ack)) => {
                let o = tx.on_ack(&ack, now);
                rto_deadline = o.rearm_rto;
                if let Some(d) = rto_deadline {
                    push!(d, Kind::Rto);
                }
                for seg in o.segments {
                    transmit!(seg, Kind::Data);
                }
            }
            Kind::Rto => {
                if rto_deadline == Some(now) {
                    let o = tx.on_rto(now);
                    rto_deadline = o.rearm_rto;
                    if let Some(d) = rto_deadline {
                        push!(d, Kind::Rto);
                    }
                    for seg in o.segments {
                        transmit!(seg, Kind::Data);
                    }
                }
            }
            Kind::Delack => {
                if delack_deadline == Some(now) {
                    delack_deadline = None;
                    if let Some(ack) = rx.on_delack_timer(now) {
                        transmit!(ack, Kind::Ack);
                    }
                }
            }
        }
    }
    (true, rx.delivered_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any combination of loss (≤30%), duplication (≤20%) and heavy
    /// reordering completes the transfer with an exact byte count.
    #[test]
    fn transfer_survives_adversarial_network(
        segments in 1u64..200,
        tail in 0u64..MSS,
        loss in 0.0f64..0.30,
        dup in 0.0f64..0.20,
        jitter_ms in 0u64..50,
        seed in 0u64..10_000,
    ) {
        let total = segments * MSS + tail;
        let cfg = NetCfg { loss, dup, jitter_ms, base_owd_ms: 5 };
        let (done, delivered) = run(total, cfg, seed);
        prop_assert!(done, "transfer did not complete (total={total}, loss={loss:.2}, dup={dup:.2}, jitter={jitter_ms})");
        prop_assert_eq!(delivered, total, "byte count mismatch");
    }

    /// A lossless but heavily reordering network never triggers an RTO
    /// storm: the transfer completes with delivered == total.
    #[test]
    fn pure_reordering_is_harmless(
        segments in 1u64..300,
        jitter_ms in 0u64..80,
        seed in 0u64..10_000,
    ) {
        let total = segments * MSS;
        let cfg = NetCfg { loss: 0.0, dup: 0.0, jitter_ms, base_owd_ms: 2 };
        let (done, delivered) = run(total, cfg, seed);
        prop_assert!(done);
        prop_assert_eq!(delivered, total);
    }
}
