//! CUBIC congestion avoidance (RFC 8312), the Linux default the paper's
//! endpoints ran.
//!
//! CUBIC matters for the reproduction because its window growth is
//! *time-based*, not RTT-based: a flow behind a bloated queue (RTT inflated
//! to hundreds of milliseconds) still regrows its window in seconds. With
//! Reno's one-MSS-per-RTT growth, the slow station's flow in the FIFO
//! scenario never rebuilds a standing queue and the 802.11 anomaly's
//! buffer-hogging feedback loop cannot establish itself.

use wifiq_sim::Nanos;

/// CUBIC's scaling constant `C` (window units per second cubed).
const C: f64 = 0.4;
/// CUBIC's multiplicative decrease factor `β_cubic`.
pub const BETA: f64 = 0.7;

/// Per-connection CUBIC state. All window values are in bytes.
#[derive(Debug, Clone, Default)]
pub struct CubicState {
    /// Window size before the last reduction.
    w_max: f64,
    /// Time offset of the cubic function's inflection point, seconds.
    k: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<Nanos>,
    /// Reno-friendly window estimate (bytes).
    w_est: f64,
}

impl CubicState {
    /// Fresh state for a new connection.
    pub fn new() -> CubicState {
        CubicState::default()
    }

    /// Registers a loss event; returns the new cwnd.
    ///
    /// Applies fast convergence: if the flow crests below its previous
    /// `w_max`, the saddle point is lowered further to release bandwidth
    /// to newer flows faster.
    pub fn on_loss(&mut self, cwnd: f64, mss: f64) -> f64 {
        if cwnd < self.w_max {
            self.w_max = cwnd * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = cwnd;
        }
        self.epoch_start = None;
        (cwnd * BETA).max(2.0 * mss)
    }

    /// Resets the epoch on a retransmission timeout.
    pub fn on_timeout(&mut self, cwnd: f64) {
        self.w_max = cwnd;
        self.epoch_start = None;
    }

    /// Per-ACK congestion-avoidance growth; returns the new cwnd.
    ///
    /// `srtt` is used for the TCP-friendly (Reno emulation) floor.
    pub fn on_ack(&mut self, cwnd: f64, mss: f64, now: Nanos, srtt: Option<Nanos>) -> f64 {
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // New epoch: compute K, the time to regain w_max.
                self.epoch_start = Some(now);
                let cwnd_u = cwnd / mss;
                let wmax_u = (self.w_max / mss).max(cwnd_u);
                self.w_max = wmax_u * mss;
                self.k = ((wmax_u - cwnd_u) / C).cbrt();
                self.w_est = cwnd;
                now
            }
        };
        let t = (now - epoch).as_secs_f64();

        // The cubic target window.
        let wmax_u = self.w_max / mss;
        let target_u = C * (t - self.k).powi(3) + wmax_u;

        // TCP-friendly region: emulate Reno's AIMD average rate so CUBIC
        // never underperforms Reno on short-RTT paths.
        if let Some(srtt) = srtt {
            let rtt_s = srtt.as_secs_f64().max(1e-4);
            self.w_est +=
                3.0 * (1.0 - BETA) / (1.0 + BETA) * mss * (mss / cwnd) * (t / rtt_s).min(1.0);
        }
        let target_u = target_u.max(self.w_est / mss);

        let cwnd_u = cwnd / mss;
        if target_u > cwnd_u {
            // Approach the target over roughly one RTT of ACKs, capped at
            // 50% growth per ACK to bound bursts.
            let step = ((target_u - cwnd_u) / cwnd_u).min(0.5);
            cwnd + step * mss
        } else {
            // Plateau region: probe very slowly.
            cwnd + mss * 0.01 / cwnd_u
        }
    }
}

/// Which congestion-avoidance algorithm a sender uses.
#[derive(Debug, Clone)]
pub enum CcAlgo {
    /// Classic Reno additive increase (1 MSS per RTT).
    Reno,
    /// CUBIC (RFC 8312) — the Linux default.
    Cubic(CubicState),
}

impl CcAlgo {
    /// A fresh CUBIC instance.
    pub fn cubic() -> CcAlgo {
        CcAlgo::Cubic(CubicState::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: f64 = 1448.0;

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = CubicState::new();
        let new = c.on_loss(100.0 * MSS, MSS);
        assert!((new - 70.0 * MSS).abs() < 1.0);
    }

    #[test]
    fn loss_floor_is_two_mss() {
        let mut c = CubicState::new();
        assert_eq!(c.on_loss(1.0 * MSS, MSS), 2.0 * MSS);
    }

    #[test]
    fn fast_convergence_lowers_wmax() {
        let mut c = CubicState::new();
        c.on_loss(100.0 * MSS, MSS); // w_max = 100
                                     // Second loss below w_max: w_max becomes 70 × 0.85 = 59.5.
        c.on_loss(70.0 * MSS, MSS);
        assert!((c.w_max / MSS - 59.5).abs() < 0.1, "{}", c.w_max / MSS);
    }

    #[test]
    fn growth_is_time_based_not_rtt_based() {
        // Two flows, same loss point, different ACK rates: after the same
        // wall-clock time their cubic targets coincide. The slower-ACKing
        // flow must have grown per-ack steps that compensate.
        let mut c = CubicState::new();
        let mut cwnd = c.on_loss(100.0 * MSS, MSS);
        let t0 = Nanos::from_secs(10);
        // One bloated 400 ms RTT delivers a full window of ACKs; run
        // 20 such RTTs (8 seconds).
        let mut now = t0;
        for _ in 0..20 {
            for _ in 0..(cwnd / MSS) as usize {
                cwnd = c.on_ack(cwnd, MSS, now, Some(Nanos::from_millis(400)));
            }
            now += Nanos::from_millis(400);
        }
        // After 8 s, the cubic function has passed K (≈4.2 s) and cwnd
        // should be recovering towards w_max = 100 despite few ACKs.
        assert!(
            cwnd / MSS > 80.0,
            "cwnd only {:.1} MSS after 8 s at long RTT",
            cwnd / MSS
        );
    }

    #[test]
    fn plateau_then_probe() {
        let mut c = CubicState::new();
        let mut cwnd = c.on_loss(100.0 * MSS, MSS);
        let t0 = Nanos::from_secs(1);
        let mut now = t0;
        let mut history = Vec::new();
        for _ in 0..600 {
            cwnd = c.on_ack(cwnd, MSS, now, Some(Nanos::from_millis(20)));
            now += Nanos::from_millis(20);
            history.push(cwnd / MSS);
        }
        // 12 s out: well past w_max into the probing region.
        assert!(
            *history.last().unwrap() > 110.0,
            "no max probing: {:.1}",
            history.last().unwrap()
        );
        // The curve is monotone non-decreasing.
        for w in history.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn friendly_region_tracks_reno_floor() {
        // Tiny w_max: the cubic term is minute, but the Reno-friendly
        // floor keeps the window growing at least Reno-fast.
        let mut c = CubicState::new();
        let mut cwnd = c.on_loss(4.0 * MSS, MSS);
        let mut now = Nanos::from_secs(1);
        let before = cwnd;
        for _ in 0..200 {
            cwnd = c.on_ack(cwnd, MSS, now, Some(Nanos::from_millis(10)));
            now += Nanos::from_millis(10);
        }
        assert!(cwnd > before + MSS, "window froze in friendly region");
    }
}
