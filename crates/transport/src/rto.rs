//! RTO estimation per RFC 6298, with Linux's 200 ms minimum.

use wifiq_sim::Nanos;

/// Smoothed RTT estimator and retransmission-timeout calculator.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
}

/// Linux's minimum RTO (200 ms). The RFC says 1 s; Linux's value shapes
/// real-world behaviour on WiFi paths, so we follow Linux.
pub const MIN_RTO: Nanos = Nanos::from_millis(200);

/// Upper bound on the RTO (60 s).
pub const MAX_RTO: Nanos = Nanos::from_secs(60);

/// Initial RTO before any RTT sample (1 s per RFC 6298).
pub const INITIAL_RTO: Nanos = Nanos::from_secs(1);

impl RtoEstimator {
    /// Creates an estimator with no samples yet.
    pub fn new() -> RtoEstimator {
        RtoEstimator {
            srtt: None,
            rttvar: Nanos::ZERO,
            rto: INITIAL_RTO,
        }
    }

    /// Feeds one RTT sample (RFC 6298 §2.2–2.3).
    pub fn sample(&mut self, rtt: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        let candidate = srtt + self.rttvar * 4;
        self.rto = candidate.max(MIN_RTO).min(MAX_RTO);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Exponential backoff after a retransmission timeout (RFC 6298 §5.5).
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(MAX_RTO);
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        RtoEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let e = RtoEstimator::new();
        assert_eq!(e.rto(), INITIAL_RTO);
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = RtoEstimator::new();
        e.sample(Nanos::from_millis(50));
        assert_eq!(e.srtt(), Some(Nanos::from_millis(50)));
        // rto = srtt + 4 * (srtt/2) = 150 ms < 200 ms floor.
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RtoEstimator::new();
        for _ in 0..100 {
            e.sample(Nanos::from_millis(30));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_millis_f64() - 30.0).abs() < 0.5,
            "srtt {srtt} should converge to 30 ms"
        );
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn large_rtt_raises_rto_above_floor() {
        let mut e = RtoEstimator::new();
        for _ in 0..20 {
            e.sample(Nanos::from_millis(400));
        }
        assert!(e.rto() > Nanos::from_millis(400));
    }

    #[test]
    fn jitter_inflates_rto() {
        let mut stable = RtoEstimator::new();
        let mut jittery = RtoEstimator::new();
        for i in 0..100 {
            stable.sample(Nanos::from_millis(300));
            let jitter = if i % 2 == 0 { 100 } else { 500 };
            jittery.sample(Nanos::from_millis(jitter));
        }
        assert!(
            jittery.rto() > stable.rto(),
            "jittery {} vs stable {}",
            jittery.rto(),
            stable.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RtoEstimator::new();
        e.backoff();
        assert_eq!(e.rto(), Nanos::from_secs(2));
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), MAX_RTO);
    }
}
