//! TCP receiver: cumulative ACK generation with delayed ACKs and
//! out-of-order buffering.

use std::collections::BTreeMap;

use wifiq_sim::Nanos;

use crate::segment::TcpSegment;

/// Linux's delayed-ACK timeout (40 ms).
pub const DELACK_TIMEOUT: Nanos = Nanos::from_millis(40);

/// Output of feeding a data segment to the receiver.
#[derive(Debug, Default)]
pub struct RecvOutcome {
    /// An ACK to send immediately, if any.
    pub ack: Option<TcpSegment>,
    /// Absolute deadline to arm the delayed-ACK timer at (cancel any
    /// previous delack timer if `ack` was produced).
    pub arm_delack: Option<Nanos>,
}

/// A TCP receiver for a single unidirectional transfer.
///
/// Implements the standard ACK policy: every second in-order full segment
/// is acknowledged immediately, a lone segment is acknowledged after the
/// 40 ms delayed-ACK timeout, and out-of-order data triggers an immediate
/// duplicate ACK (feeding the sender's fast retransmit).
#[derive(Debug)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Out-of-order ranges: start → end (exclusive), non-overlapping.
    ooo: BTreeMap<u64, u64>,
    delack_pending: bool,
    /// Timestamp to echo on the next ACK.
    pending_echo: Nanos,
    /// Total in-order bytes delivered to the application.
    pub delivered_bytes: u64,
    /// Count of ACKs generated (telemetry).
    pub acks_sent: u64,
}

impl TcpReceiver {
    /// Creates a receiver expecting a stream starting at sequence 0.
    pub fn new() -> TcpReceiver {
        TcpReceiver {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delack_pending: false,
            pending_echo: Nanos::ZERO,
            delivered_bytes: 0,
            acks_sent: 0,
        }
    }

    /// Next expected sequence number (== in-order bytes received).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    fn make_ack(&mut self, now: Nanos) -> TcpSegment {
        self.acks_sent += 1;
        self.delack_pending = false;
        // Report up to three out-of-order ranges as SACK blocks.
        let mut sack = [(0u64, 0u64); 3];
        for (slot, (&s, &e)) in sack.iter_mut().zip(self.ooo.iter()) {
            *slot = (s, e);
        }
        TcpSegment {
            seq: 0,
            len: 0,
            ack: self.rcv_nxt,
            sent_at: now,
            echo: self.pending_echo,
            retransmit: false,
            sack,
        }
    }

    /// Merges `[seq, end)` into the out-of-order store and advances
    /// `rcv_nxt` over any ranges it now covers.
    fn absorb(&mut self, seq: u64, end: u64) {
        if end <= self.rcv_nxt {
            return; // wholly duplicate
        }
        let seq = seq.max(self.rcv_nxt);
        if seq == self.rcv_nxt {
            self.rcv_nxt = end;
            // Pull any now-contiguous buffered ranges.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&s);
                self.rcv_nxt = self.rcv_nxt.max(e);
            }
        } else {
            // Buffer, merging overlaps conservatively (exact merging is
            // unnecessary: ranges come from MSS-aligned segments).
            let e = self.ooo.entry(seq).or_insert(end);
            *e = (*e).max(end);
        }
    }

    /// Processes a data segment, possibly producing an ACK.
    pub fn on_data(&mut self, seg: &TcpSegment, now: Nanos) -> RecvOutcome {
        let before = self.rcv_nxt;
        let had_gap = !self.ooo.is_empty();
        self.absorb(seg.seq, seg.end_seq());
        let advanced = self.rcv_nxt > before;
        if advanced {
            self.delivered_bytes += self.rcv_nxt - before;
        }
        self.pending_echo = seg.sent_at;

        let mut out = RecvOutcome::default();
        // RFC 5681: ACK immediately for out-of-order data (dupACKs) and
        // for segments that fill a gap.
        let out_of_order = !advanced || had_gap || !self.ooo.is_empty();
        if out_of_order {
            // Duplicate/gap-filling data: ACK immediately so the sender
            // sees dupACKs (or recovers promptly).
            out.ack = Some(self.make_ack(now));
        } else if self.delack_pending {
            // Second in-order segment: ACK now.
            out.ack = Some(self.make_ack(now));
        } else {
            // First in-order segment: delay the ACK.
            self.delack_pending = true;
            out.arm_delack = Some(now + DELACK_TIMEOUT);
        }
        out
    }

    /// Fires the delayed-ACK timer; returns the ACK if one was pending.
    pub fn on_delack_timer(&mut self, now: Nanos) -> Option<TcpSegment> {
        if self.delack_pending {
            Some(self.make_ack(now))
        } else {
            None
        }
    }
}

impl Default for TcpReceiver {
    fn default() -> Self {
        TcpReceiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MSS;

    fn data(seq: u64, len: u64, sent_at: Nanos) -> TcpSegment {
        TcpSegment {
            seq,
            len,
            ack: 0,
            sent_at,
            echo: Nanos::ZERO,
            retransmit: false,
            sack: [(0, 0); 3],
        }
    }

    #[test]
    fn acks_every_second_segment() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::from_millis(1);
        let o1 = rx.on_data(&data(0, MSS, t), t);
        assert!(o1.ack.is_none(), "first segment: delayed");
        assert!(o1.arm_delack.is_some());
        let o2 = rx.on_data(&data(MSS, MSS, t), t);
        let ack = o2.ack.expect("second segment acks immediately");
        assert_eq!(ack.ack, 2 * MSS);
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::from_millis(1);
        let o = rx.on_data(&data(0, MSS, t), t);
        let deadline = o.arm_delack.unwrap();
        assert_eq!(deadline, t + DELACK_TIMEOUT);
        let ack = rx.on_delack_timer(deadline).expect("pending ack");
        assert_eq!(ack.ack, MSS);
        // No double ack.
        assert!(rx.on_delack_timer(deadline).is_none());
    }

    #[test]
    fn out_of_order_triggers_immediate_dupack() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::from_millis(1);
        // Segment 0 lost; segments 1, 2, 3 arrive.
        for i in 1..4 {
            let o = rx.on_data(&data(i * MSS, MSS, t), t);
            let ack = o.ack.expect("OOO data must ack immediately");
            assert_eq!(ack.ack, 0, "dupack at the hole");
        }
        assert_eq!(rx.acks_sent, 3);
    }

    #[test]
    fn hole_fill_advances_over_buffered_data() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::from_millis(1);
        rx.on_data(&data(MSS, MSS, t), t);
        rx.on_data(&data(2 * MSS, MSS, t), t);
        // The retransmission arrives: cumulative ack jumps to 3 segments.
        let o = rx.on_data(&data(0, MSS, t), t);
        assert_eq!(o.ack.unwrap().ack, 3 * MSS);
        assert_eq!(rx.delivered_bytes, 3 * MSS);
    }

    #[test]
    fn duplicate_data_is_ignored_but_acked() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::from_millis(1);
        rx.on_data(&data(0, MSS, t), t);
        rx.on_data(&data(MSS, MSS, t), t);
        assert_eq!(rx.delivered_bytes, 2 * MSS);
        // Spurious retransmission of segment 0.
        let o = rx.on_data(&data(0, MSS, t), t);
        assert_eq!(rx.delivered_bytes, 2 * MSS, "no double delivery");
        assert_eq!(o.ack.unwrap().ack, 2 * MSS);
    }

    #[test]
    fn echo_carries_latest_segment_timestamp() {
        let mut rx = TcpReceiver::new();
        let t1 = Nanos::from_millis(10);
        let t2 = Nanos::from_millis(20);
        rx.on_data(&data(0, MSS, t1), t1);
        let o = rx.on_data(&data(MSS, MSS, t2), Nanos::from_millis(21));
        assert_eq!(o.ack.unwrap().echo, t2);
    }

    #[test]
    fn interleaved_ooo_ranges_merge() {
        let mut rx = TcpReceiver::new();
        let t = Nanos::ZERO;
        rx.on_data(&data(2 * MSS, MSS, t), t);
        rx.on_data(&data(4 * MSS, MSS, t), t);
        rx.on_data(&data(MSS, MSS, t), t);
        rx.on_data(&data(3 * MSS, MSS, t), t);
        // Fill the first hole: everything should flush.
        let o = rx.on_data(&data(0, MSS, t), t);
        assert_eq!(o.ack.unwrap().ack, 5 * MSS);
    }
}
