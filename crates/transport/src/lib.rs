//! Simulated transport protocols: a NewReno TCP and trivial UDP helpers.
//!
//! The endpoints are *pure state machines*: they consume segments and
//! timer expirations, and produce segments plus timer deadlines. The
//! network application layer (in `wifiq-experiments`) owns packetisation,
//! injection, and the actual timers. This keeps the protocol logic
//! independently testable — see the loopback tests in this crate — and
//! reusable against any network model.
//!
//! Why NewReno and not CUBIC: the evaluation depends on loss-based
//! congestion control *filling queues until drop* (bufferbloat) and
//! *adapting to AQM drops* (FQ-CoDel/FQ-MAC). NewReno reproduces both
//! feedback loops; the specific growth curve above ssthresh does not
//! change who wins in any of the paper's experiments.

pub mod cubic;
pub mod receiver;
pub mod rto;
pub mod segment;
pub mod sender;

pub use cubic::{CcAlgo, CubicState};
pub use receiver::{RecvOutcome, TcpReceiver, DELACK_TIMEOUT};
pub use rto::RtoEstimator;
pub use segment::{TcpSegment, MSS, TCP_HEADER};
pub use sender::{CaState, SendOutcome, SenderStats, TcpSender};

#[cfg(test)]
mod loopback {
    //! End-to-end sender/receiver tests over an in-memory "network" with
    //! configurable delay and deterministic loss.

    use std::collections::BinaryHeap;

    use wifiq_sim::Nanos;

    use crate::receiver::TcpReceiver;
    use crate::segment::{TcpSegment, MSS};
    use crate::sender::TcpSender;

    #[derive(PartialEq, Eq)]
    struct Ev {
        at: Nanos,
        seq: u64,
        kind: Kind,
    }

    #[derive(PartialEq, Eq)]
    enum Kind {
        DataArrives(TcpSegmentOrd),
        AckArrives(TcpSegmentOrd),
        RtoFires,
        DelackFires,
    }

    // TcpSegment doesn't implement Ord; wrap it opaquely for the heap.
    #[derive(PartialEq, Eq)]
    struct TcpSegmentOrd(TcpSegment);

    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
        }
    }
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    /// Runs a transfer over a fixed-delay pipe, dropping data segments
    /// whose index satisfies `lose(i)`. Returns (completion time, sender).
    fn run_transfer(
        total: u64,
        owd: Nanos,
        mut lose: impl FnMut(u64) -> bool,
    ) -> (Nanos, TcpSender) {
        let mut tx = TcpSender::finite(total);
        let mut rx = TcpReceiver::new();
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut evseq = 0u64;
        let mut data_idx = 0u64;
        let mut rto_deadline: Option<Nanos>;
        let mut delack_deadline: Option<Nanos> = None;
        let mut now = Nanos::ZERO;

        let push = |heap: &mut BinaryHeap<Ev>, evseq: &mut u64, at, kind| {
            *evseq += 1;
            heap.push(Ev {
                at,
                seq: *evseq,
                kind,
            });
        };

        let out = tx.start(now);
        rto_deadline = out.rearm_rto;
        if let Some(d) = rto_deadline {
            push(&mut heap, &mut evseq, d, Kind::RtoFires);
        }
        let start_segments = out.segments;
        for seg in start_segments {
            let idx = data_idx;
            data_idx += 1;
            if !lose(idx) {
                push(
                    &mut heap,
                    &mut evseq,
                    now + owd,
                    Kind::DataArrives(TcpSegmentOrd(seg)),
                );
            }
        }

        let mut guard = 0;
        while !tx.done() {
            guard += 1;
            assert!(guard < 1_000_000, "transfer did not complete");
            let ev = heap.pop().expect("deadlocked: no pending events");
            now = ev.at;
            match ev.kind {
                Kind::DataArrives(TcpSegmentOrd(seg)) => {
                    let o = rx.on_data(&seg, now);
                    if let Some(ack) = o.ack {
                        push(
                            &mut heap,
                            &mut evseq,
                            now + owd,
                            Kind::AckArrives(TcpSegmentOrd(ack)),
                        );
                    }
                    if let Some(d) = o.arm_delack {
                        delack_deadline = Some(d);
                        push(&mut heap, &mut evseq, d, Kind::DelackFires);
                    }
                }
                Kind::AckArrives(TcpSegmentOrd(ack)) => {
                    let o = tx.on_ack(&ack, now);
                    rto_deadline = o.rearm_rto;
                    if let Some(d) = rto_deadline {
                        push(&mut heap, &mut evseq, d, Kind::RtoFires);
                    }
                    for seg in o.segments {
                        let idx = data_idx;
                        data_idx += 1;
                        if !lose(idx) {
                            push(
                                &mut heap,
                                &mut evseq,
                                now + owd,
                                Kind::DataArrives(TcpSegmentOrd(seg)),
                            );
                        }
                    }
                }
                Kind::RtoFires => {
                    // Stale timer events are common (we push a new event
                    // per rearm); only honour the live deadline.
                    if rto_deadline == Some(now) {
                        let o = tx.on_rto(now);
                        rto_deadline = o.rearm_rto;
                        if let Some(d) = rto_deadline {
                            push(&mut heap, &mut evseq, d, Kind::RtoFires);
                        }
                        for seg in o.segments {
                            let idx = data_idx;
                            data_idx += 1;
                            if !lose(idx) {
                                push(
                                    &mut heap,
                                    &mut evseq,
                                    now + owd,
                                    Kind::DataArrives(TcpSegmentOrd(seg)),
                                );
                            }
                        }
                    }
                }
                Kind::DelackFires => {
                    if delack_deadline == Some(now) {
                        delack_deadline = None;
                        if let Some(ack) = rx.on_delack_timer(now) {
                            push(
                                &mut heap,
                                &mut evseq,
                                now + owd,
                                Kind::AckArrives(TcpSegmentOrd(ack)),
                            );
                        }
                    }
                }
            }
        }
        (now, tx)
    }

    #[test]
    fn lossless_transfer_completes_quickly() {
        let total = 500 * MSS;
        let owd = Nanos::from_millis(10);
        let (t, tx) = run_transfer(total, owd, |_| false);
        assert_eq!(tx.stats.timeouts, 0);
        assert_eq!(tx.stats.fast_retransmits, 0);
        // 500 segments, IW10, slow start doubling: ~6 RTTs ≈ 120 ms,
        // allow generous slack for delayed ACK interactions.
        assert!(t < Nanos::from_millis(400), "took {t} — slow start broken?");
    }

    #[test]
    fn single_loss_recovers_via_fast_retransmit() {
        let total = 500 * MSS;
        let (t, tx) = run_transfer(total, Nanos::from_millis(10), |i| i == 20);
        assert_eq!(tx.stats.timeouts, 0, "should not need an RTO");
        assert!(tx.stats.fast_retransmits >= 1);
        // NewReno recovers the loss without an RTO, then grows additively
        // from ~half the slow-start window: several hundred ms for the
        // remaining ~480 segments is the correct NewReno cost.
        assert!(t < Nanos::from_millis(1500), "took {t}");
    }

    #[test]
    fn burst_loss_recovers() {
        // NewReno handles multi-segment loss with one partial-ack
        // retransmission per RTT; it may need an RTO for edge cases, but
        // must complete either way.
        let total = 500 * MSS;
        let (t, tx) = run_transfer(total, Nanos::from_millis(10), |i| (20..24).contains(&i));
        assert!(tx.done());
        assert!(t < Nanos::from_secs(5), "took {t}");
    }

    #[test]
    fn loss_of_entire_initial_window_needs_rto() {
        let total = 100 * MSS;
        let (_, tx) = run_transfer(total, Nanos::from_millis(10), |i| i < 10);
        assert!(tx.stats.timeouts >= 1, "only an RTO can recover here");
        assert!(tx.done());
    }

    #[test]
    fn random_heavy_loss_still_completes() {
        // 10% deterministic-pattern loss.
        let total = 300 * MSS;
        let (_, tx) = run_transfer(total, Nanos::from_millis(5), |i| i % 10 == 7);
        assert!(tx.done());
    }

    #[test]
    fn throughput_scales_with_rtt() {
        // Same transfer, double the RTT → longer completion (sanity check
        // that the window feedback loop is RTT-bound, not rate-bound).
        let total = 1000 * MSS;
        let (t1, _) = run_transfer(total, Nanos::from_millis(5), |_| false);
        let (t2, _) = run_transfer(total, Nanos::from_millis(20), |_| false);
        assert!(t2 > t1, "RTT {t1} vs {t2}");
    }
}
