//! TCP segment representation used by the simulated endpoints.

use wifiq_sim::Nanos;

/// Maximum segment size used throughout the testbed (1448 payload bytes in
/// a 1500-byte IP packet, as on an Ethernet path with TCP timestamps).
pub const MSS: u64 = 1448;

/// TCP/IP header overhead added to the payload to get the on-wire length.
pub const TCP_HEADER: u64 = 52;

/// A simulated TCP segment.
///
/// Sequence and acknowledgement numbers are byte offsets from 0 (the
/// connection is modelled as already established). The `sent_at` /
/// `echo` pair models the TCP timestamp option, giving the sender safe RTT
/// samples even across retransmissions (Karn's problem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Payload length in bytes (0 for a pure ACK).
    pub len: u64,
    /// Cumulative acknowledgement number (next expected byte).
    pub ack: u64,
    /// Sender's clock when the segment was (re)transmitted.
    pub sent_at: Nanos,
    /// Echoed `sent_at` of the segment being acknowledged (TS echo reply).
    pub echo: Nanos,
    /// True if this segment is a retransmission (telemetry only).
    pub retransmit: bool,
    /// SACK blocks `[start, end)` carried on ACKs (the TCP SACK option,
    /// up to three blocks). Unused entries are `(0, 0)`.
    pub sack: [(u64, u64); 3],
}

impl TcpSegment {
    /// The valid SACK blocks on this segment.
    pub fn sack_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.sack.iter().copied().filter(|&(s, e)| e > s)
    }
}

impl TcpSegment {
    /// The segment's on-wire length in bytes (payload + TCP/IP headers).
    pub fn wire_len(&self) -> u64 {
        self.len + TCP_HEADER
    }

    /// True if this is a pure acknowledgement (no payload).
    pub fn is_pure_ack(&self) -> bool {
        self.len == 0
    }

    /// End of the payload range (`seq + len`).
    pub fn end_seq(&self) -> u64 {
        self.seq + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_headers() {
        let seg = TcpSegment {
            seq: 0,
            len: MSS,
            ack: 0,
            sent_at: Nanos::ZERO,
            echo: Nanos::ZERO,
            retransmit: false,
            sack: [(0, 0); 3],
        };
        assert_eq!(seg.wire_len(), 1500);
        assert!(!seg.is_pure_ack());
        assert_eq!(seg.end_seq(), MSS);
    }

    #[test]
    fn pure_ack() {
        let seg = TcpSegment {
            seq: 0,
            len: 0,
            ack: 100,
            sent_at: Nanos::ZERO,
            echo: Nanos::ZERO,
            retransmit: false,
            sack: [(0, 0); 3],
        };
        assert!(seg.is_pure_ack());
        assert_eq!(seg.wire_len(), TCP_HEADER);
    }
}
