//! NewReno TCP sender (RFC 5681 congestion control + RFC 6582 recovery).
//!
//! The sender is a pure state machine: it consumes ACKs and timer
//! expirations and produces segments plus an RTO deadline. The surrounding
//! application (in `wifiq-experiments`) owns the actual timer and the
//! network injection.

use std::collections::BTreeMap;

use wifiq_sim::Nanos;
use wifiq_telemetry::{Label, Telemetry};

use crate::cubic::{CcAlgo, BETA};
use crate::rto::RtoEstimator;
use crate::segment::{TcpSegment, MSS};

/// Congestion-control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaState {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Additive increase above `ssthresh`.
    CongestionAvoidance,
    /// NewReno fast recovery after a triple duplicate ACK.
    FastRecovery,
}

/// Output of a sender step: segments to transmit and the new RTO deadline.
#[derive(Debug, Default)]
pub struct SendOutcome {
    /// Segments to inject into the network, in order.
    pub segments: Vec<TcpSegment>,
    /// Absolute deadline to (re)arm the retransmission timer at, or `None`
    /// to cancel it (nothing outstanding).
    pub rearm_rto: Option<Nanos>,
}

/// Telemetry counters for a sender.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Fast retransmissions performed.
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Total data segments sent (including retransmissions).
    pub segments_sent: u64,
}

/// A NewReno TCP sender for a single unidirectional transfer.
///
/// The transfer is either *bulk* (unlimited data, models iperf/greedy
/// flows) or a fixed number of bytes (models a web object).
///
/// # Examples
///
/// ```
/// use wifiq_transport::sender::TcpSender;
/// use wifiq_sim::Nanos;
///
/// let mut tx = TcpSender::bulk();
/// let out = tx.start(Nanos::ZERO);
/// // Initial window: 10 segments.
/// assert_eq!(out.segments.len(), 10);
/// assert!(out.rearm_rto.is_some());
/// ```
#[derive(Debug)]
pub struct TcpSender {
    mss: u64,
    /// Total bytes to transfer; `None` for an unbounded bulk flow.
    total: Option<u64>,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    max_cwnd: f64,
    state: CaState,
    dupacks: u32,
    /// NewReno recovery point: highest sequence outstanding when fast
    /// recovery was last entered; `None` before the first loss event.
    recover: Option<u64>,
    /// SACK scoreboard: disjoint `[start, end)` ranges above `snd_una`
    /// reported received by the peer.
    sacked: BTreeMap<u64, u64>,
    /// Sequences below this have been retransmitted in the current
    /// recovery episode (hole-walking cursor).
    rtx_mark: u64,
    /// Bytes retransmitted this episode and not yet acknowledged —
    /// counted into the pipe estimate.
    rtx_out: u64,
    rto: RtoEstimator,
    cc: CcAlgo,
    /// Telemetry counters.
    pub stats: SenderStats,
    tele: Telemetry,
    /// Flow label under which this sender reports metrics.
    flow: u64,
}

impl TcpSender {
    /// Creates a bulk (unlimited) sender with Linux-like defaults
    /// (IW10, CUBIC, 4 MB window cap).
    pub fn bulk() -> TcpSender {
        TcpSender::new(None)
    }

    /// Creates a sender for a fixed-size transfer of `bytes`.
    pub fn finite(bytes: u64) -> TcpSender {
        TcpSender::new(Some(bytes))
    }

    /// Creates a bulk sender using Reno congestion avoidance instead of
    /// CUBIC (for ablations and protocol tests).
    pub fn bulk_reno() -> TcpSender {
        let mut tx = TcpSender::new(None);
        tx.cc = CcAlgo::Reno;
        tx
    }

    fn new(total: Option<u64>) -> TcpSender {
        TcpSender {
            mss: MSS,
            total,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (10 * MSS) as f64,
            ssthresh: f64::MAX,
            max_cwnd: 4.0 * 1024.0 * 1024.0,
            state: CaState::SlowStart,
            dupacks: 0,
            recover: None,
            sacked: BTreeMap::new(),
            rtx_mark: 0,
            rtx_out: 0,
            rto: RtoEstimator::new(),
            cc: CcAlgo::cubic(),
            stats: SenderStats::default(),
            tele: Telemetry::disabled(),
            flow: 0,
        }
    }

    /// Attaches a telemetry handle; the sender reports cwnd / sRTT gauges
    /// and retransmission counters under `Label::Flow(flow)`.
    pub fn set_telemetry(&mut self, tele: Telemetry, flow: u64) {
        self.tele = tele;
        self.flow = flow;
    }

    /// Overrides the receive-window cap (bytes). Mostly for tests and
    /// ablations; the default 4 MB never binds in the testbed scenarios.
    pub fn set_max_window(&mut self, bytes: u64) {
        self.max_cwnd = bytes as f64;
    }

    /// Bytes in flight (sent but not cumulatively acknowledged).
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current congestion-control state.
    pub fn state(&self) -> CaState {
        self.state
    }

    /// The smoothed RTT estimate, if any ACK has been timed.
    pub fn srtt(&self) -> Option<Nanos> {
        self.rto.srtt()
    }

    /// Bytes cumulatively acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// True once a finite transfer is fully acknowledged.
    pub fn done(&self) -> bool {
        match self.total {
            Some(t) => self.snd_una >= t,
            None => false,
        }
    }

    /// Begins the transfer: emits the initial window.
    pub fn start(&mut self, now: Nanos) -> SendOutcome {
        let mut out = SendOutcome::default();
        self.fill_window(now, &mut out);
        self.finish(now, &mut out);
        out
    }

    fn segment_len_at(&self, seq: u64) -> u64 {
        match self.total {
            Some(total) => self.mss.min(total.saturating_sub(seq)),
            None => self.mss,
        }
    }

    fn make_segment(&mut self, seq: u64, now: Nanos, retransmit: bool) -> TcpSegment {
        self.stats.segments_sent += 1;
        TcpSegment {
            seq,
            len: self.segment_len_at(seq),
            ack: 0,
            sent_at: now,
            echo: Nanos::ZERO,
            retransmit,
            sack: [(0, 0); 3],
        }
    }

    /// Sends as much new data as the window allows.
    fn fill_window(&mut self, now: Nanos, out: &mut SendOutcome) {
        let cwnd = self.cwnd.min(self.max_cwnd) as u64;
        loop {
            if self.flight() + self.mss > cwnd {
                break;
            }
            let len = self.segment_len_at(self.snd_nxt);
            if len == 0 {
                break; // finite transfer fully sent
            }
            let seg = self.make_segment(self.snd_nxt, now, false);
            self.snd_nxt += seg.len;
            out.segments.push(seg);
        }
    }

    /// Computes the RTO rearm decision after any state change.
    fn finish(&mut self, now: Nanos, out: &mut SendOutcome) {
        out.rearm_rto = if self.flight() > 0 {
            Some(now + self.rto.rto())
        } else {
            None
        };
        if self.tele.is_enabled() {
            let fl = Label::Flow(self.flow);
            self.tele.gauge("tcp", "cwnd_bytes", fl, self.cwnd);
            if let Some(srtt) = self.rto.srtt() {
                self.tele
                    .gauge("tcp", "srtt_ns", fl, srtt.as_nanos() as f64);
                self.tele.observe("tcp", "srtt_ns", fl, srtt);
            }
        }
    }

    /// Merges a SACK block into the scoreboard.
    fn sack_insert(&mut self, start: u64, end: u64) {
        if end <= start || end <= self.snd_una {
            return;
        }
        let mut start = start.max(self.snd_una);
        let mut end = end;
        // Absorb any ranges overlapping or adjacent to [start, end):
        // candidates start at or before `end`, and survive if they reach
        // `start`.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|&(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.sacked.remove(&s).expect("key just observed");
            start = start.min(s);
            end = end.max(e);
        }
        self.sacked.insert(start, end);
    }

    /// Drops scoreboard ranges at or below `snd_una`.
    fn sack_prune(&mut self) {
        let una = self.snd_una;
        let keys: Vec<u64> = self.sacked.range(..=una).map(|(&s, _)| s).collect();
        for s in keys {
            let e = self.sacked.remove(&s).expect("key just observed");
            if e > una {
                self.sacked.insert(una, e);
            }
        }
    }

    /// Total SACKed bytes above `snd_una`.
    fn sacked_bytes(&self) -> u64 {
        self.sacked
            .values()
            .zip(self.sacked.keys())
            .map(|(e, s)| e - s)
            .sum()
    }

    /// The first un-SACKed sequence in `[from, below)`, or `None`.
    fn next_hole(&self, from: u64, below: u64) -> Option<u64> {
        let mut x = from;
        while x < below {
            // Find a range covering x.
            match self.sacked.range(..=x).next_back() {
                Some((_, &e)) if e > x => x = e,
                _ => return Some(x),
            }
        }
        None
    }

    /// SACKed bytes within `[from, to)`.
    fn sacked_in(&self, from: u64, to: u64) -> u64 {
        self.sacked
            .iter()
            .map(|(&s, &e)| e.min(to).saturating_sub(s.max(from)))
            .sum()
    }

    /// Estimated bytes in the network (RFC 6675's `pipe`):
    /// in-flight originals, minus SACKed data, minus data presumed lost
    /// (holes we have already retransmitted), plus the retransmissions
    /// themselves.
    fn pipe(&self) -> u64 {
        let lost = self
            .rtx_mark
            .saturating_sub(self.snd_una)
            .saturating_sub(self.sacked_in(self.snd_una, self.rtx_mark));
        (self.flight() + self.rtx_out)
            .saturating_sub(self.sacked_bytes())
            .saturating_sub(lost)
    }

    /// SACK-based transmission during fast recovery: retransmit holes
    /// below the recovery point first, then new data, within the pipe
    /// budget (RFC 6675 in spirit).
    fn recovery_send(&mut self, now: Nanos, out: &mut SendOutcome, force_first: bool) {
        let cwnd = self.cwnd.min(self.max_cwnd) as u64;
        let rec = self.recover.expect("in recovery");
        let mut force = force_first;
        loop {
            let pipe = self.pipe();
            if !force && pipe + self.mss > cwnd {
                break;
            }
            force = false;
            let from = self.rtx_mark.max(self.snd_una);
            if let Some(hole) = self.next_hole(from, rec) {
                let seg = self.make_segment(hole, now, true);
                self.rtx_mark = hole + seg.len.max(1);
                self.rtx_out += seg.len;
                out.segments.push(seg);
            } else {
                // No holes left to retransmit: send new data.
                let len = self.segment_len_at(self.snd_nxt);
                if len == 0 {
                    break;
                }
                let seg = self.make_segment(self.snd_nxt, now, false);
                self.snd_nxt += seg.len;
                out.segments.push(seg);
            }
        }
    }

    /// Processes an incoming (pure) ACK segment.
    pub fn on_ack(&mut self, seg: &TcpSegment, now: Nanos) -> SendOutcome {
        let mut out = SendOutcome::default();
        let blocks: Vec<(u64, u64)> = seg.sack_blocks().collect();
        for (bs, be) in blocks {
            self.sack_insert(bs, be);
        }

        let new_ack = seg.ack > self.snd_una;
        if new_ack {
            if !seg.echo.is_zero() {
                self.rto.sample(now.saturating_sub(seg.echo));
            }
            let newly = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            // A late ACK can pass a post-RTO snd_nxt (we rewound it for
            // go-back-N); never let flight() underflow.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.rtx_mark = self.rtx_mark.max(self.snd_una);
            self.rtx_out = self.rtx_out.saturating_sub(newly);
            self.sack_prune();
        }

        let mut force_partial_rtx = false;
        match self.state {
            CaState::FastRecovery => {
                if new_ack && seg.ack >= self.recover.expect("in recovery") {
                    // Full ACK: leave recovery at the halved window.
                    self.cwnd = self.ssthresh;
                    self.state = CaState::CongestionAvoidance;
                    self.dupacks = 0;
                    self.rtx_out = 0;
                } else if new_ack && self.sacked.is_empty() {
                    // Partial ACK from a SACK-less peer: classic NewReno —
                    // the new front hole must be retransmitted now, since
                    // no scoreboard will ever point at it.
                    self.rtx_mark = self.snd_una;
                    force_partial_rtx = true;
                }
            }
            CaState::SlowStart if new_ack => {
                self.cwnd += self.mss as f64;
                if self.cwnd >= self.ssthresh {
                    self.state = CaState::CongestionAvoidance;
                }
                self.dupacks = 0;
            }
            CaState::CongestionAvoidance if new_ack => {
                match &mut self.cc {
                    CcAlgo::Reno => {
                        // Additive increase: one MSS per RTT.
                        self.cwnd += (self.mss * self.mss) as f64 / self.cwnd;
                    }
                    CcAlgo::Cubic(cubic) => {
                        self.cwnd = cubic.on_ack(self.cwnd, self.mss as f64, now, self.rto.srtt());
                    }
                }
                self.dupacks = 0;
            }
            _ => {}
        }

        // Loss detection (when not already recovering): three duplicate
        // ACKs, or — with SACK — three segments' worth of scoreboard
        // above a hole.
        if self.state != CaState::FastRecovery && self.flight() > 0 {
            if !new_ack && seg.is_pure_ack() {
                self.dupacks += 1;
            }
            let sack_loss = self.sacked_bytes() >= 3 * self.mss;
            // RFC 6582 "careful" variant: dupACKs that do not cover more
            // than the previous recovery point are echoes of our own
            // retransmissions; acting on them collapses the window.
            let past_recover = self.recover.is_none_or(|r| seg.ack > r);
            if (self.dupacks >= 3 || sack_loss) && past_recover {
                self.ssthresh = match &mut self.cc {
                    CcAlgo::Reno => (self.flight() as f64 / 2.0).max((2 * self.mss) as f64),
                    CcAlgo::Cubic(cubic) => cubic.on_loss(self.cwnd, self.mss as f64),
                };
                self.recover = Some(self.snd_nxt);
                self.cwnd = self.ssthresh;
                self.state = CaState::FastRecovery;
                self.dupacks = 0;
                self.rtx_mark = self.snd_una;
                self.rtx_out = 0;
                self.stats.fast_retransmits += 1;
                self.tele
                    .count("tcp", "fast_retransmits", Label::Flow(self.flow), 1);
                // Always retransmit the first hole immediately, even if
                // the pipe estimate says the window is full.
                self.recovery_send(now, &mut out, true);
                self.finish(now, &mut out);
                return out;
            }
        }

        if self.state == CaState::FastRecovery {
            self.recovery_send(now, &mut out, force_partial_rtx);
        } else {
            self.fill_window(now, &mut out);
        }
        self.finish(now, &mut out);
        out
    }

    /// Handles a retransmission-timeout expiry.
    pub fn on_rto(&mut self, now: Nanos) -> SendOutcome {
        let mut out = SendOutcome::default();
        if self.flight() == 0 {
            // Spurious (stale timer): nothing outstanding.
            self.finish(now, &mut out);
            return out;
        }
        self.stats.timeouts += 1;
        self.tele
            .count("tcp", "timeouts", Label::Flow(self.flow), 1);
        if let CcAlgo::Cubic(cubic) = &mut self.cc {
            cubic.on_timeout(self.cwnd);
        }
        self.ssthresh = (self.cwnd * BETA).max((2 * self.mss) as f64);
        // Go-back-N: collapse to one segment and re-enter slow start.
        // The scoreboard is discarded — the network state it described is
        // stale after a timeout.
        self.sacked.clear();
        self.rtx_out = 0;
        self.snd_nxt = self.snd_una;
        self.cwnd = self.mss as f64;
        self.state = CaState::SlowStart;
        self.dupacks = 0;
        self.rto.backoff();
        self.fill_window(now, &mut out);
        for seg in &mut out.segments {
            seg.retransmit = true;
        }
        self.finish(now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(ackno: u64, echo: Nanos) -> TcpSegment {
        TcpSegment {
            seq: 0,
            len: 0,
            ack: ackno,
            sent_at: Nanos::ZERO,
            echo,
            retransmit: false,
            sack: [(0, 0); 3],
        }
    }

    #[test]
    fn initial_window_is_ten_segments() {
        let mut tx = TcpSender::bulk();
        let out = tx.start(Nanos::ZERO);
        assert_eq!(out.segments.len(), 10);
        assert_eq!(tx.flight(), 10 * MSS);
        assert!(out.rearm_rto.is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut tx = TcpSender::bulk();
        let t0 = Nanos::ZERO;
        let out = tx.start(t0);
        let mut outstanding: Vec<TcpSegment> = out.segments;
        // One "RTT": ack everything that was sent; window should double.
        let now = Nanos::from_millis(50);
        let mut sent_next_rtt = 0;
        for seg in outstanding.drain(..) {
            let o = tx.on_ack(&ack(seg.end_seq(), seg.sent_at), now);
            sent_next_rtt += o.segments.len();
        }
        assert!(
            (19..=21).contains(&sent_next_rtt),
            "slow start should ~double the window, sent {sent_next_rtt}"
        );
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut tx = TcpSender::bulk_reno();
        tx.ssthresh = (12 * MSS) as f64; // force early CA
        let out = tx.start(Nanos::ZERO);
        let mut segs = out.segments;
        let mut now = Nanos::from_millis(10);
        // Drive a few RTTs.
        for _ in 0..3 {
            let mut next = Vec::new();
            for seg in segs.drain(..) {
                let o = tx.on_ack(&ack(seg.end_seq(), seg.sent_at), now);
                next.extend(o.segments);
            }
            segs = next;
            now += Nanos::from_millis(10);
        }
        assert_eq!(tx.state(), CaState::CongestionAvoidance);
        // After slow-start to 12 and ~2 CA RTTs, cwnd ≈ 14 MSS.
        let cwnd_segs = tx.cwnd() / MSS;
        assert!((13..=16).contains(&cwnd_segs), "cwnd {cwnd_segs} segments");
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut tx = TcpSender::bulk();
        let out = tx.start(Nanos::ZERO);
        assert_eq!(out.segments.len(), 10);
        let now = Nanos::from_millis(20);
        // First segment lost: receiver acks 0 repeatedly as later
        // segments arrive.
        for i in 0..2 {
            let o = tx.on_ack(&ack(0, Nanos::ZERO), now);
            assert!(o.segments.is_empty(), "dupack {i} must not retransmit");
        }
        let o = tx.on_ack(&ack(0, Nanos::ZERO), now);
        assert_eq!(o.segments.len(), 1, "third dupack retransmits");
        assert_eq!(o.segments[0].seq, 0);
        assert!(o.segments[0].retransmit);
        assert_eq!(tx.state(), CaState::FastRecovery);
        assert_eq!(tx.stats.fast_retransmits, 1);
    }

    #[test]
    fn full_ack_exits_fast_recovery_at_half_window() {
        let mut tx = TcpSender::bulk();
        let _ = tx.start(Nanos::ZERO);
        let now = Nanos::from_millis(20);
        let flight_before = tx.flight();
        for _ in 0..3 {
            tx.on_ack(&ack(0, Nanos::ZERO), now);
        }
        assert_eq!(tx.state(), CaState::FastRecovery);
        // Ack everything (past the recovery point).
        let o = tx.on_ack(
            &ack(tx.recover.unwrap(), Nanos::ZERO),
            Nanos::from_millis(40),
        );
        assert_eq!(tx.state(), CaState::CongestionAvoidance);
        assert!(tx.cwnd() as f64 >= flight_before as f64 / 2.0 - 1.0);
        assert!(tx.cwnd() <= flight_before, "window halved, not grown");
        let _ = o;
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut tx = TcpSender::bulk();
        tx.start(Nanos::ZERO);
        let now = Nanos::from_millis(20);
        for _ in 0..3 {
            tx.on_ack(&ack(0, Nanos::ZERO), now);
        }
        // Partial ack: first retransmit arrived but another hole remains.
        let o = tx.on_ack(&ack(MSS, Nanos::ZERO), Nanos::from_millis(40));
        assert_eq!(tx.state(), CaState::FastRecovery, "partial ack stays in FR");
        assert!(o.segments.iter().any(|s| s.seq == MSS && s.retransmit));
    }

    #[test]
    fn rto_collapses_window() {
        let mut tx = TcpSender::bulk();
        tx.start(Nanos::ZERO);
        let o = tx.on_rto(Nanos::from_secs(1));
        assert_eq!(tx.cwnd(), MSS);
        assert_eq!(tx.state(), CaState::SlowStart);
        assert_eq!(o.segments.len(), 1);
        assert_eq!(o.segments[0].seq, 0);
        assert!(o.segments[0].retransmit);
        assert_eq!(tx.stats.timeouts, 1);
    }

    #[test]
    fn spurious_rto_with_nothing_outstanding_is_noop() {
        let mut tx = TcpSender::finite(0);
        let o = tx.on_rto(Nanos::from_secs(1));
        assert!(o.segments.is_empty());
        assert!(o.rearm_rto.is_none());
        assert_eq!(tx.stats.timeouts, 0);
    }

    #[test]
    fn finite_transfer_completes() {
        let total = 10 * MSS + 100; // non-aligned tail
        let mut tx = TcpSender::finite(total);
        let out = tx.start(Nanos::ZERO);
        // 10 full segments fit the initial window; the 100-byte tail
        // needs headroom for a full MSS so it waits.
        assert_eq!(out.segments.len(), 10);
        let now = Nanos::from_millis(10);
        let mut all: Vec<TcpSegment> = out.segments;
        let mut acked = 0;
        while acked < total {
            let seg = all.remove(0);
            acked = acked.max(seg.end_seq());
            let o = tx.on_ack(&ack(acked, seg.sent_at), now);
            all.extend(o.segments);
        }
        assert!(tx.done());
        assert_eq!(tx.acked_bytes(), total);
    }

    #[test]
    fn rtt_sample_comes_from_echo() {
        let mut tx = TcpSender::bulk();
        let out = tx.start(Nanos::from_millis(100));
        let seg = out.segments[0];
        tx.on_ack(&ack(seg.end_seq(), seg.sent_at), Nanos::from_millis(130));
        assert_eq!(tx.srtt(), Some(Nanos::from_millis(30)));
    }

    #[test]
    fn window_cap_limits_flight() {
        let mut tx = TcpSender::bulk();
        tx.set_max_window(20 * MSS);
        let out = tx.start(Nanos::ZERO);
        let mut segs = out.segments;
        let mut now = Nanos::from_millis(10);
        for _ in 0..10 {
            let mut next = Vec::new();
            for seg in segs.drain(..) {
                let o = tx.on_ack(&ack(seg.end_seq(), seg.sent_at), now);
                next.extend(o.segments);
            }
            segs = next;
            now += Nanos::from_millis(10);
            assert!(tx.flight() <= 20 * MSS);
        }
    }
}
