//! Smoke tests for every experiment harness at miniature scale: each
//! module must run end to end and produce structurally sane results.
//! (Full-scale shape checks live in the workspace `tests/paper_claims.rs`
//! and in EXPERIMENTS.md.)

use wifiq_experiments::runner::RunCfg;
use wifiq_experiments::tcp_fair::TcpPattern;
use wifiq_experiments::{ablations, latency, sparse, table1, tcp_fair, thirty, udp_sat, voip, web};
use wifiq_mac::SchemeKind;
use wifiq_phy::AccessCategory;
use wifiq_sim::Nanos;
use wifiq_traffic::WebPage;

fn tiny() -> RunCfg {
    RunCfg {
        reps: 1,
        duration: Nanos::from_secs(3),
        warmup: Nanos::from_secs(1),
        base_seed: 42,
        ..RunCfg::new()
    }
}

#[test]
fn udp_sat_shares_sum_to_one() {
    let r = udp_sat::run_scheme(SchemeKind::AirtimeFair, &tiny());
    let sum: f64 = r.stations.iter().map(|s| s.airtime_share).sum();
    assert!((sum - 1.0).abs() < 1e-6, "shares sum {sum}");
    assert!(r.total_goodput() > 10e6, "implausibly low goodput");
    assert_eq!(r.rep_shares.len(), 1);
}

#[test]
fn latency_produces_samples_and_cdfs() {
    let r = latency::run_scheme(SchemeKind::FqMac, &tiny(), false);
    assert!(r.fast.summary.count > 10, "too few fast samples");
    assert!(r.slow.summary.count > 10);
    assert!(!r.fast.cdf.points.is_empty());
    // CDF covers the summary's median.
    let med = r.fast.cdf.quantile(0.5).expect("median in CDF");
    assert!((med - r.fast.summary.median).abs() < r.fast.summary.median * 0.5 + 1.0);
}

#[test]
fn tcp_fair_bidirectional_reports_uploads() {
    let r = tcp_fair::run_scheme(SchemeKind::AirtimeFair, TcpPattern::Bidirectional, &tiny());
    assert!(r.up_bps.iter().any(|&b| b > 0.0), "no upload measured");
    assert!(r.jain > 0.3 && r.jain <= 1.0 + 1e-9);
    assert!(r.total() > 10e6);
}

#[test]
fn table1_model_and_measurement_agree_roughly() {
    let t = table1::run(&tiny());
    // Model vs measured within a factor of two at miniature scale.
    for half in [&t.baseline, &t.fair] {
        let ratio = half.model_total / half.measured_total.max(1.0);
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: model {} vs measured {}",
            half.label,
            half.model_total,
            half.measured_total
        );
        assert_eq!(half.rows.len(), 3);
    }
    // The fair half must beat the baseline.
    assert!(t.fair.measured_total > t.baseline.measured_total * 1.5);
}

#[test]
fn sparse_cell_produces_distribution() {
    let c = sparse::run_cell(sparse::BulkKind::Udp, true, &tiny());
    assert!(c.summary.count > 5);
    assert!(c.enabled);
    assert_eq!(c.bulk, "UDP");
}

#[test]
fn thirty_station_harness_runs() {
    let r = thirty::run_scheme(SchemeKind::AirtimeFair, &tiny());
    assert!((0.0..=1.0).contains(&r.slow_share));
    assert!(r.jain > 0.5, "airtime scheme should be fair: {}", r.jain);
    assert!(r.total_goodput_bps > 1e6);
    assert!(r.sparse_latency.count > 0, "ping-only station starved");
}

#[test]
fn voip_cell_reports_mos_in_range() {
    let c = voip::run_cell(
        SchemeKind::FqMac,
        AccessCategory::Be,
        Nanos::from_millis(5),
        &tiny(),
    );
    assert!((1.0..=4.5).contains(&c.mos), "MOS {}", c.mos);
    assert!((0.0..=1.0).contains(&c.loss));
    assert!(c.throughput_bps > 1e6);
}

#[test]
fn web_cell_completes_small_page() {
    let c = web::run_cell(
        SchemeKind::AirtimeFair,
        &WebPage::small(),
        web::Fetcher::Fast,
        &tiny(),
    );
    assert_eq!(c.completed, 1, "page load did not finish");
    assert!(c.plt_secs > 0.0 && c.plt_secs < 10.0);
}

#[test]
fn ablation_cells_run() {
    let rx = ablations::rx_charging(true, &tiny());
    assert!(rx.jain > 0.3);
    let dp = ablations::drop_policy(wifiq_core::fq::DropPolicy::DropLongest, &tiny());
    assert!(dp.fast_goodput_bps > 1e6);
    let q = ablations::quantum(300, &tiny());
    assert!(q.sparse_median_ms > 0.0);
}

#[test]
fn run_cfg_env_is_respected() {
    // Doesn't touch the environment (tests run in parallel); checks the
    // defaults and the seeds contract instead.
    let cfg = RunCfg::new();
    assert_eq!(cfg.reps, 5);
    assert_eq!(cfg.window(), cfg.duration - cfg.warmup);
    assert_eq!(cfg.seeds().count(), 5);
}
