//! Result reporting: aligned console tables and JSON artifacts.

use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

/// A simple fixed-layout console table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[c]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The directory experiment artifacts are written to (`results/` at the
/// workspace root, overridable with `WIFIQ_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("WIFIQ_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // Walk up from the current directory to find the workspace root.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Serialises `value` as pretty JSON into `results/<name>.json`.
/// Failures are reported but not fatal — the console table is the primary
/// output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Renders a set of CDFs as an ASCII plot (probability 0–1 on the y axis,
/// log-scaled x axis), mirroring the paper's latency CDF figures.
///
/// Each series is `(label, points)` with points as `(value, probability)`
/// sorted by value. Returns the multi-line plot.
pub fn ascii_cdf(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let finite_min = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(v, _)| v))
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(v, _)| v))
        .fold(0.0f64, f64::max);
    if !finite_min.is_finite() || max <= finite_min {
        return String::from("(no data)\n");
    }
    let (lo, hi) = (finite_min.ln(), max.ln());
    let col_of = |v: f64| -> usize {
        if v <= finite_min {
            0
        } else {
            (((v.ln() - lo) / (hi - lo)) * (width - 1) as f64).round() as usize
        }
    };
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(v, p) in *pts {
            let col = col_of(v).min(width - 1);
            let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = mark;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let p = 1.0 - r as f64 / (height - 1) as f64;
        let _ = writeln!(out, "{p:4.2} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "     +{}", "-".repeat(width));
    // Log-scale tick labels at the ends and middle.
    let mid = (finite_min.ln() + (hi - lo) / 2.0).exp();
    let _ = writeln!(
        out,
        "      {:<.3}{:^w$.3}{:>.3}",
        finite_min,
        mid,
        max,
        w = width.saturating_sub(8)
    );
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "      {} {}", MARKS[si % MARKS.len()], label);
    }
    out
}

/// Writes labelled CDF series as a long-format CSV
/// (`series,value,probability`) under `results/<name>.csv` — directly
/// plottable with gnuplot/matplotlib for paper-style figures.
pub fn write_csv_cdf(name: &str, series: &[(String, &[(f64, f64)])]) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut csv = String::from("series,value,probability\n");
    for (label, pts) in series {
        for (v, p) in *pts {
            let _ = writeln!(csv, "{label},{v},{p}");
        }
    }
    let path = dir.join(format!("{name}.csv"));
    if std::fs::write(&path, csv).is_ok() {
        eprintln!("[wrote {}]", path.display());
    }
}

/// Convenience wrapper over [`ascii_cdf`] for owned labels, as the
/// figure binaries produce them.
pub fn ascii_cdf_labeled(
    series: &[(String, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    let refs: Vec<(&str, &[(f64, f64)])> = series.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    ascii_cdf(&refs, width, height)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats bits/s as Mbps with one decimal.
pub fn mbps(bps: f64) -> String {
    format!("{:.1}", bps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Scheme", "Value"]);
        t.row(vec!["FIFO", "1.0"]);
        t.row(vec!["Airtime fair FQ", "42.123"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scheme"));
        assert!(lines[3].starts_with("Airtime fair FQ"));
        // Columns align: "Value" column starts at the same offset.
        let col = lines[0].find("Value").unwrap();
        assert_eq!(lines[2].find("1.0").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn ascii_cdf_renders() {
        let a: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, i as f64 / 20.0)).collect();
        let b: Vec<(f64, f64)> = (1..=20)
            .map(|i| (i as f64 * 10.0, i as f64 / 20.0))
            .collect();
        let plot = ascii_cdf(&[("fast", &a), ("slow", &b)], 60, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("fast"));
        assert!(plot.contains("1.00 |"));
        assert!(plot.lines().count() >= 14);
    }

    #[test]
    fn ascii_cdf_empty() {
        assert_eq!(ascii_cdf(&[("x", &[])], 40, 8), "(no data)\n");
    }

    #[test]
    fn csv_cdf_writes_long_format() {
        let dir = std::env::temp_dir().join(format!("wifiq_csv_{}", std::process::id()));
        std::env::set_var("WIFIQ_RESULTS_DIR", &dir);
        let pts = [(1.0, 0.5), (2.0, 1.0)];
        write_csv_cdf("unit_test_cdf", &[("a".to_string(), &pts[..])]);
        let body = std::fs::read_to_string(dir.join("unit_test_cdf.csv")).unwrap();
        assert!(body.starts_with("series,value,probability\n"));
        assert!(body.contains("a,1,0.5"));
        assert!(body.contains("a,2,1"));
        std::env::remove_var("WIFIQ_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.333), "33.3%");
        assert_eq!(mbps(42_000_000.0), "42.0");
    }
}
