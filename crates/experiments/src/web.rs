//! The web page-load experiment (Figure 11): PLT for small and large
//! pages fetched through a busy network.

use serde::Serialize;
use wifiq_mac::{SchemeKind, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_traffic::{TrafficApp, WebPage};

use crate::runner::{mean, run_seeds, RunCfg};
use crate::scenario::{self, FAST1, FAST2, SLOW};

/// Which station does the fetching (the paper's two scenarios, §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fetcher {
    /// A fast station fetches while the slow station runs a bulk
    /// download (Figure 11).
    Fast,
    /// The slow station fetches while the fast stations run bulk
    /// downloads (the online-appendix variant).
    Slow,
}

impl Fetcher {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Fetcher::Fast => "fast station",
            Fetcher::Slow => "slow station",
        }
    }
}

/// Page size label.
fn page_label(page: &WebPage) -> &'static str {
    if page.sizes.len() <= 3 {
        "small"
    } else {
        "large"
    }
}

/// One Figure 11 cell.
#[derive(Debug, Clone, Serialize)]
pub struct WebCell {
    /// Scheme label.
    pub scheme: String,
    /// Page label ("small"/"large").
    pub page: String,
    /// Fetching-station label.
    pub fetcher: String,
    /// Mean page-load time, seconds.
    pub plt_secs: f64,
    /// Repetitions that completed within the cap.
    pub completed: usize,
    /// Total repetitions.
    pub reps: usize,
}

/// Wall-clock cap per page load; a page that hasn't finished counts at
/// the cap (the paper's worst case is ~35 s).
const PLT_CAP: Nanos = Nanos::from_secs(90);

/// Runs one cell: repeated page loads of `page` under `scheme`.
pub fn run_cell(scheme: SchemeKind, page: &WebPage, fetcher: Fetcher, cfg: &RunCfg) -> WebCell {
    let config = format!(
        "{}_{}",
        page_label(page),
        if fetcher == Fetcher::Fast {
            "fast"
        } else {
            "slow"
        }
    );
    // (PLT seconds, completed-within-cap) per repetition.
    let reps: Vec<(f64, bool)> = run_seeds("web", scheme.slug(), &config, cfg, |seed| {
        let net_cfg = scenario::testbed3(scheme, seed);
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let mut app = TrafficApp::new();
        // Bulk load starts first; the page load begins once the bulk
        // traffic has filled the queues.
        let start = Nanos::from_secs(3);
        let web = match fetcher {
            Fetcher::Fast => {
                app.add_tcp_down(SLOW, Nanos::ZERO);
                app.add_web(FAST1, page.clone(), start)
            }
            Fetcher::Slow => {
                app.add_tcp_down(FAST1, Nanos::ZERO);
                app.add_tcp_down(FAST2, Nanos::ZERO);
                app.add_web(SLOW, page.clone(), start)
            }
        };
        app.install(&mut net);
        // Run in slices until the page completes or the cap is reached.
        let mut t = start;
        while app.web(web).plt.is_none() && t < start + PLT_CAP {
            t += Nanos::from_secs(1);
            net.run(t, &mut app);
        }
        match app.web(web).plt {
            Some(plt) => (plt.as_secs_f64(), true),
            None => (PLT_CAP.as_secs_f64(), false),
        }
    });
    WebCell {
        scheme: scheme.label().to_string(),
        page: page_label(page).to_string(),
        fetcher: fetcher.label().to_string(),
        plt_secs: mean(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        completed: reps.iter().filter(|r| r.1).count(),
        reps: cfg.reps as usize,
    }
}

/// Runs Figure 11 (fast-station fetches) and the appendix variant
/// (slow-station fetches) across all schemes and both pages.
pub fn run_all(cfg: &RunCfg, include_slow_fetcher: bool) -> Vec<WebCell> {
    let mut cells = Vec::new();
    for fetcher in [Fetcher::Fast, Fetcher::Slow] {
        if fetcher == Fetcher::Slow && !include_slow_fetcher {
            continue;
        }
        for page in [WebPage::small(), WebPage::large()] {
            for scheme in SchemeKind::ALL {
                cells.push(run_cell(scheme, &page, fetcher, cfg));
            }
        }
    }
    cells
}
