//! JSON scenario files: declarative network + traffic descriptions for
//! the `wifiq` runner.
//!
//! ```json
//! {
//!   "version": 2,
//!   "scheme": "airtime",
//!   "secs": 30,
//!   "stations": [
//!     { "rate": "mcs15" },
//!     { "rate": "mcs15", "weight": 512 },
//!     { "rate": "1mbps", "error": 0.1 }
//!   ],
//!   "traffic": [
//!     { "kind": "tcp_down", "station": 0 },
//!     { "kind": "udp_down", "station": 2, "mbps": 10, "poisson": true },
//!     { "kind": "ping", "station": 0 },
//!     { "kind": "voip", "station": 2, "qos": "vo" },
//!     { "kind": "web", "station": 1, "page": "large" }
//!   ],
//!   "faults": [
//!     { "kind": "burst_loss", "from_secs": 5, "until_secs": 20,
//!       "station": 2, "bad_frac": 0.3, "burst_len": 12, "loss_bad": 0.9 },
//!     { "kind": "rate_collapse", "from_secs": 10, "until_secs": 15,
//!       "station": 1, "rate": "mcs0" }
//!   ],
//!   "churn": { "mean_interval_ms": 500, "min_stations": 2, "max_stations": 3 },
//!   "roaming": { "mean_dwell_ms": 2000, "reassoc_min_ms": 20,
//!                "reassoc_max_ms": 80, "rate_palette": ["mcs15", "mcs0"] },
//!   "policy": {
//!     "nodes": [
//!       { "name": "tenant-a", "weight": 2, "stations": [0, 1] },
//!       { "name": "tenant-b", "weight": 1, "stations": [2] }
//!     ],
//!     "switches": [
//!       { "at_secs": 10,
//!         "nodes": [
//!           { "name": "tenant-a", "weight": 1, "stations": [0, 1] },
//!           { "name": "tenant-b", "weight": 1, "stations": [2] }
//!         ] }
//!     ]
//!   }
//! }
//! ```
//!
//! Schema versions: `1` (implicit default) is the original network +
//! traffic description; `2` adds the `faults` array (a
//! [`wifiq_chaos`](wifiq_mac::FaultSchedule) schedule) and the optional
//! `churn` block; `3` adds the `policy` block (a
//! [`wifiq_policy`](wifiq_mac::PolicyTimeline) node tree plus timed
//! switches); `4` adds the `roaming` block (a [`wifiq_roam::SoloRoam`]
//! hand-off schedule replayed against the scenario network). Files using
//! a field their declared version does not gate in are rejected.

use serde_json::Json;
use wifiq_mac::{
    ErrorModel, FaultEntry, FaultSchedule, FaultTarget, Impairment, NetworkConfig, PolicyNode,
    PolicySet, PolicyTimeline, SchemeKind, StationCfg, WifiNetwork,
};
use wifiq_phy::{AccessCategory, ChannelWidth, LegacyRate, PhyRate, VhtWidth};
use wifiq_roam::{RoamCfg, SoloRoam};
use wifiq_scale::{ChurnCfg, ChurnDriver};
use wifiq_sim::Nanos;
use wifiq_traffic::{AppMsg, FlowHandle, TrafficApp, WebPage};

/// One station in a scenario file.
#[derive(Debug)]
pub struct StationSpec {
    /// Rate spec: `mcsN`, `vhtN` (2 streams, 80 MHz), or `<x>mbps`.
    pub rate: String,
    /// Per-exchange error probability (default 0).
    pub error: f64,
    /// MCS cliff for rate-control scenarios (overrides `error`).
    pub mcs_cliff: Option<u8>,
    /// Airtime weight (default 256 = neutral).
    pub weight: Option<u32>,
}

/// One traffic component in a scenario file.
#[derive(Debug)]
pub enum TrafficSpec {
    /// Bulk TCP download to `station`.
    TcpDown {
        /// Target station.
        station: usize,
    },
    /// Bulk TCP upload from `station`.
    TcpUp {
        /// Source station.
        station: usize,
    },
    /// Downstream UDP at `mbps`, optionally Poisson.
    UdpDown {
        /// Target station.
        station: usize,
        /// Mean offered rate in Mbps.
        mbps: u64,
        /// Exponential interarrivals instead of CBR.
        poisson: bool,
    },
    /// 10 Hz ping to `station`.
    Ping {
        /// Target station.
        station: usize,
    },
    /// G.711 VoIP stream to `station`.
    Voip {
        /// Target station.
        station: usize,
        /// QoS marking: "vo", "vi", "be", "bk" (default "be").
        qos: Option<String>,
    },
    /// Web page load from `station`.
    Web {
        /// Fetching station.
        station: usize,
        /// "small" (56 KB / 3 req) or "large" (3 MB / 110 req).
        page: Option<String>,
    },
}

/// One fault-schedule entry in a scenario file (schema version ≥ 2).
#[derive(Debug)]
pub struct FaultSpec {
    /// Window start in seconds of sim time (inclusive).
    pub from_secs: f64,
    /// Window end in seconds of sim time (exclusive).
    pub until_secs: f64,
    /// Target station slot; absent applies to every station.
    pub station: Option<usize>,
    /// The decoded impairment.
    pub impairment: Impairment,
}

/// Optional station churn (schema version ≥ 2): a seeded join/leave
/// schedule layered on the run via [`wifiq_scale::ChurnDriver`].
#[derive(Debug)]
pub struct ChurnSpec {
    /// Mean interval between churn events in ms (default 100).
    pub mean_interval_ms: u64,
    /// The roster never shrinks below this.
    pub min_stations: usize,
    /// The roster never grows beyond this.
    pub max_stations: usize,
}

/// Optional roaming (schema version ≥ 4): a seeded hand-off schedule
/// layered on the run via [`wifiq_roam::SoloRoam`]. Every station in the
/// scenario roster roams; a hand-off disassociates it mid-flow, carries
/// its queued downlink frames across the reassociation gap, and re-homes
/// it with a fresh rate drawn from the palette.
#[derive(Debug)]
pub struct RoamingSpec {
    /// Mean dwell time between a station's hand-offs in ms
    /// (exponentially distributed; default 5000).
    pub mean_dwell_ms: u64,
    /// Shortest reassociation gap in ms (default 20).
    pub reassoc_min_ms: u64,
    /// Longest reassociation gap in ms (default 80).
    pub reassoc_max_ms: u64,
    /// Rate specs re-drawn on each association; absent uses the
    /// default fast/slow palette.
    pub rate_palette: Option<Vec<String>>,
}

/// One node of a policy tree in a scenario file (schema version ≥ 3).
#[derive(Debug)]
pub struct PolicyNodeSpec {
    /// Node name (unique within the tree).
    pub name: String,
    /// Relative weight among siblings (default 1).
    pub weight: u32,
    /// Access classes this node covers: "vo"/"vi"/"be"/"bk" strings.
    /// Absent means all four.
    pub classes: Option<Vec<String>>,
    /// Member station slots (leaf nodes).
    pub stations: Option<Vec<usize>>,
    /// Child nodes (group nodes).
    pub nodes: Option<Vec<PolicyNodeSpec>>,
}

/// One timed policy switch in a scenario file (schema version ≥ 3).
#[derive(Debug)]
pub struct PolicySwitchSpec {
    /// When the replacement tree takes effect, in sim seconds.
    pub at_secs: f64,
    /// The replacement tree's root nodes.
    pub nodes: Vec<PolicyNodeSpec>,
}

/// The `policy` block (schema version ≥ 3): an initial tree plus timed
/// switches, compiled into a [`wifiq_policy`](wifiq_mac::PolicyTimeline)
/// timeline at build time.
#[derive(Debug)]
pub struct PolicySpec {
    /// Root nodes of the initial tree.
    pub nodes: Vec<PolicyNodeSpec>,
    /// Timed replacement trees, strictly ascending in `at_secs`.
    pub switches: Vec<PolicySwitchSpec>,
}

/// Provenance of a searcher-found counterexample (schema version ≥ 3):
/// how `wifiq-search` derived the file, so `scenarios/found/` entries are
/// self-describing regression artifacts. Ignored by [`ScenarioFile::build`]
/// — it documents the discovery, not the simulation.
#[derive(Debug, Clone)]
pub struct ProvenanceSpec {
    /// Master seed of the search run that found this counterexample.
    pub searcher_seed: u64,
    /// The violated objective: `jain_dip`, `latency_spike`, `codel_flap`
    /// or `convergence_blowout`.
    pub objective: String,
    /// Severity score of the minimal counterexample.
    pub score: f64,
    /// Accepted shrink steps between the first failing mutant and this
    /// minimal form.
    pub shrink_steps: u64,
    /// Encoded size of the first failing mutant, bytes.
    pub first_failing_bytes: Option<u64>,
    /// Encoded size of this minimal counterexample, bytes.
    pub minimal_bytes: Option<u64>,
}

/// Objective names a provenance block may cite.
pub const OBJECTIVE_KINDS: [&str; 6] = [
    "jain_dip",
    "latency_spike",
    "ac_p99_spike",
    "mos_collapse",
    "codel_flap",
    "convergence_blowout",
];

/// A complete scenario file.
#[derive(Debug)]
pub struct ScenarioFile {
    /// Schema version: 1 (legacy, implicit), 2 (faults + churn),
    /// 3 (airtime policy) or 4 (roaming).
    pub version: u64,
    /// Scheme: "fifo", "fqcodel", "fqmac", "airtime" (default "airtime").
    pub scheme: Option<String>,
    /// Simulated seconds (default 20).
    pub secs: Option<u64>,
    /// RNG seed (default 1).
    pub seed: Option<u64>,
    /// FQ-CoDel on client uplinks.
    pub station_fq: bool,
    /// Minstrel rate control at the AP.
    pub rate_control: bool,
    /// Airtime queue limit in ms (absent = off).
    pub aql_ms: Option<u64>,
    /// The stations.
    pub stations: Vec<StationSpec>,
    /// The traffic mix.
    pub traffic: Vec<TrafficSpec>,
    /// Scheduled impairments (version ≥ 2).
    pub faults: Vec<FaultSpec>,
    /// Station churn (version ≥ 2).
    pub churn: Option<ChurnSpec>,
    /// Airtime policy (version ≥ 3).
    pub policy: Option<PolicySpec>,
    /// Roaming schedule (version ≥ 4).
    pub roaming: Option<RoamingSpec>,
    /// Search provenance (version ≥ 3), present on `scenarios/found/`
    /// counterexamples.
    pub provenance: Option<ProvenanceSpec>,
}

// ---- manual JSON decoding -------------------------------------------------
//
// The vendored serde subset has no Deserialize derive, so scenario files are
// decoded by hand from the parsed `Json` value. The decoder keeps the old
// derive semantics: unknown fields are rejected by name, absent optional
// fields fall back to their defaults, and type mismatches name the field.

/// A decoding context: the fields of one JSON object plus a description of
/// where it sits, for error messages.
struct Fields<'a> {
    what: String,
    fields: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn of(value: &'a Json, what: impl Into<String>) -> Result<Fields<'a>, String> {
        let what = what.into();
        match value.as_object() {
            Some(fields) => Ok(Fields { what, fields }),
            None => Err(format!("{what}: expected a JSON object")),
        }
    }

    /// Rejects any field not in `allowed`, naming the offender.
    fn deny_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in self.fields {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("{}: unknown field `{k}`", self.what));
            }
        }
        Ok(())
    }

    fn raw(&self, name: &str) -> Option<&'a Json> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn u64_opt(&self, name: &str) -> Result<Option<u64>, String> {
        self.raw(name)
            .map(|v| {
                v.as_u64().ok_or_else(|| {
                    format!(
                        "{}: field `{name}` must be a non-negative integer",
                        self.what
                    )
                })
            })
            .transpose()
    }

    fn usize_req(&self, name: &str) -> Result<usize, String> {
        match self.u64_opt(name)? {
            Some(v) => Ok(v as usize),
            None => Err(format!("{}: missing field `{name}`", self.what)),
        }
    }

    fn f64_req(&self, name: &str) -> Result<f64, String> {
        match self.raw(name) {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("{}: field `{name}` must be a number", self.what)),
            None => Err(format!("{}: missing field `{name}`", self.what)),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        self.raw(name)
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("{}: field `{name}` must be a number", self.what))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    }

    fn bool_or(&self, name: &str, default: bool) -> Result<bool, String> {
        self.raw(name)
            .map(|v| {
                v.as_bool()
                    .ok_or_else(|| format!("{}: field `{name}` must be a boolean", self.what))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    }

    fn string_opt(&self, name: &str) -> Result<Option<String>, String> {
        self.raw(name)
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{}: field `{name}` must be a string", self.what))
            })
            .transpose()
    }

    fn string_req(&self, name: &str) -> Result<String, String> {
        self.string_opt(name)?
            .ok_or_else(|| format!("{}: missing field `{name}`", self.what))
    }

    fn array_req(&self, name: &str) -> Result<&'a [Json], String> {
        match self.raw(name) {
            Some(v) => v
                .as_array()
                .ok_or_else(|| format!("{}: field `{name}` must be an array", self.what)),
            None => Err(format!("{}: missing field `{name}`", self.what)),
        }
    }

    fn usize_array_opt(&self, name: &str) -> Result<Option<Vec<usize>>, String> {
        let Some(v) = self.raw(name) else {
            return Ok(None);
        };
        let arr = v
            .as_array()
            .ok_or_else(|| format!("{}: field `{name}` must be an array", self.what))?;
        arr.iter()
            .map(|x| {
                x.as_u64().map(|u| u as usize).ok_or_else(|| {
                    format!(
                        "{}: `{name}` entries must be non-negative integers",
                        self.what
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
    }
}

impl StationSpec {
    fn decode(value: &Json, index: usize) -> Result<StationSpec, String> {
        let f = Fields::of(value, format!("stations[{index}]"))?;
        f.deny_unknown(&["rate", "error", "mcs_cliff", "weight"])?;
        Ok(StationSpec {
            rate: f.string_req("rate")?,
            error: f.f64_or("error", 0.0)?,
            mcs_cliff: f.u64_opt("mcs_cliff")?.map(|v| v as u8),
            weight: f.u64_opt("weight")?.map(|v| v as u32),
        })
    }
}

impl TrafficSpec {
    fn decode(value: &Json, index: usize) -> Result<TrafficSpec, String> {
        let f = Fields::of(value, format!("traffic[{index}]"))?;
        let kind = f.string_req("kind")?;
        match kind.as_str() {
            "tcp_down" => {
                f.deny_unknown(&["kind", "station"])?;
                Ok(TrafficSpec::TcpDown {
                    station: f.usize_req("station")?,
                })
            }
            "tcp_up" => {
                f.deny_unknown(&["kind", "station"])?;
                Ok(TrafficSpec::TcpUp {
                    station: f.usize_req("station")?,
                })
            }
            "udp_down" => {
                f.deny_unknown(&["kind", "station", "mbps", "poisson"])?;
                Ok(TrafficSpec::UdpDown {
                    station: f.usize_req("station")?,
                    mbps: f
                        .u64_opt("mbps")?
                        .ok_or_else(|| format!("traffic[{index}]: missing field `mbps`"))?,
                    poisson: f.bool_or("poisson", false)?,
                })
            }
            "ping" => {
                f.deny_unknown(&["kind", "station"])?;
                Ok(TrafficSpec::Ping {
                    station: f.usize_req("station")?,
                })
            }
            "voip" => {
                f.deny_unknown(&["kind", "station", "qos"])?;
                Ok(TrafficSpec::Voip {
                    station: f.usize_req("station")?,
                    qos: f.string_opt("qos")?,
                })
            }
            "web" => {
                f.deny_unknown(&["kind", "station", "page"])?;
                Ok(TrafficSpec::Web {
                    station: f.usize_req("station")?,
                    page: f.string_opt("page")?,
                })
            }
            other => Err(format!("traffic[{index}]: unknown kind `{other}`")),
        }
    }
}

impl FaultSpec {
    fn decode(value: &Json, index: usize) -> Result<FaultSpec, String> {
        let f = Fields::of(value, format!("faults[{index}]"))?;
        let kind = f.string_req("kind")?;
        fn allow<'a>(extra: &[&'a str]) -> Vec<&'a str> {
            let mut v = vec!["kind", "from_secs", "until_secs", "station"];
            v.extend_from_slice(extra);
            v
        }
        let impairment = match kind.as_str() {
            "loss" => {
                f.deny_unknown(&allow(&["prob"]))?;
                Impairment::uniform_loss(f.f64_req("prob")?)
            }
            "burst_loss" => {
                f.deny_unknown(&allow(&["bad_frac", "burst_len", "loss_bad"]))?;
                let bad_frac = f.f64_req("bad_frac")?;
                let burst_len = f.f64_req("burst_len")?;
                if !(0.0..1.0).contains(&bad_frac) {
                    return Err(format!("faults[{index}]: bad_frac must be in [0, 1)"));
                }
                if burst_len < 1.0 {
                    return Err(format!("faults[{index}]: burst_len must be >= 1"));
                }
                Impairment::bursty_loss(bad_frac, burst_len, f.f64_or("loss_bad", 0.8)?)
            }
            "rate_collapse" => {
                f.deny_unknown(&allow(&["rate"]))?;
                Impairment::RateCollapse {
                    rate: parse_rate(&f.string_req("rate")?)?,
                }
            }
            "rate_oscillate" => {
                f.deny_unknown(&allow(&["low", "period_ms"]))?;
                Impairment::RateOscillate {
                    low: parse_rate(&f.string_req("low")?)?,
                    period: Nanos::from_millis(f.usize_req("period_ms")? as u64),
                }
            }
            "stall" => {
                f.deny_unknown(&allow(&[]))?;
                Impairment::Stall
            }
            "hw_backpressure" => {
                f.deny_unknown(&allow(&["depth"]))?;
                Impairment::HwBackpressure {
                    depth: f.usize_req("depth")?,
                }
            }
            "ack_loss" => {
                f.deny_unknown(&allow(&["prob"]))?;
                Impairment::AckLoss {
                    prob: f.f64_req("prob")?,
                }
            }
            other => return Err(format!("faults[{index}]: unknown kind `{other}`")),
        };
        Ok(FaultSpec {
            from_secs: f.f64_req("from_secs")?,
            until_secs: f.f64_req("until_secs")?,
            station: f.u64_opt("station")?.map(|v| v as usize),
            impairment,
        })
    }
}

impl PolicyNodeSpec {
    fn decode(value: &Json, path: String) -> Result<PolicyNodeSpec, String> {
        let f = Fields::of(value, path.clone())?;
        f.deny_unknown(&["name", "weight", "classes", "stations", "nodes"])?;
        let classes = match f.raw("classes") {
            None => None,
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| format!("{path}: field `classes` must be an array"))?;
                Some(
                    arr.iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| format!("{path}: `classes` entries must be strings"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
        };
        let nodes = match f.raw("nodes") {
            None => None,
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| format!("{path}: field `nodes` must be an array"))?;
                Some(
                    arr.iter()
                        .enumerate()
                        .map(|(i, v)| PolicyNodeSpec::decode(v, format!("{path}.nodes[{i}]")))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
        };
        Ok(PolicyNodeSpec {
            name: f.string_req("name")?,
            weight: f.u64_opt("weight")?.unwrap_or(1) as u32,
            classes,
            stations: f.usize_array_opt("stations")?,
            nodes,
        })
    }

    /// Converts the spec to a policy-tree node. Structural errors (a node
    /// with both children and stations, bad class names, …) surface here
    /// or in timeline validation, never as a panic.
    fn to_node(&self) -> Result<PolicyNode, String> {
        let mut node = match (&self.nodes, &self.stations) {
            (Some(children), None) => {
                let children = children
                    .iter()
                    .map(PolicyNodeSpec::to_node)
                    .collect::<Result<Vec<_>, _>>()?;
                PolicyNode::group(&self.name, self.weight, children)
            }
            (None, Some(stations)) => PolicyNode::leaf(&self.name, self.weight, stations.clone()),
            _ => {
                return Err(format!(
                    "policy node `{}` needs exactly one of `nodes` or `stations`",
                    self.name
                ))
            }
        };
        if let Some(classes) = &self.classes {
            let parsed = classes
                .iter()
                .map(|c| parse_qos(Some(c)))
                .collect::<Result<Vec<_>, _>>()?;
            node = node.classes(parsed);
        }
        Ok(node)
    }
}

impl PolicySwitchSpec {
    fn decode(value: &Json, index: usize) -> Result<PolicySwitchSpec, String> {
        let path = format!("policy.switches[{index}]");
        let f = Fields::of(value, path.clone())?;
        f.deny_unknown(&["at_secs", "nodes"])?;
        let nodes = f
            .array_req("nodes")?
            .iter()
            .enumerate()
            .map(|(i, v)| PolicyNodeSpec::decode(v, format!("{path}.nodes[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PolicySwitchSpec {
            at_secs: f.f64_req("at_secs")?,
            nodes,
        })
    }
}

impl PolicySpec {
    fn decode(value: &Json) -> Result<PolicySpec, String> {
        let f = Fields::of(value, "policy")?;
        f.deny_unknown(&["nodes", "switches"])?;
        let nodes = f
            .array_req("nodes")?
            .iter()
            .enumerate()
            .map(|(i, v)| PolicyNodeSpec::decode(v, format!("policy.nodes[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let switches = match f.raw("switches") {
            Some(_) => f
                .array_req("switches")?
                .iter()
                .enumerate()
                .map(|(i, v)| PolicySwitchSpec::decode(v, i))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(PolicySpec { nodes, switches })
    }

    /// Builds the policy timeline: the initial tree plus every switch.
    fn to_timeline(&self) -> Result<PolicyTimeline, String> {
        let roots = self
            .nodes
            .iter()
            .map(PolicyNodeSpec::to_node)
            .collect::<Result<Vec<_>, _>>()?;
        let mut timeline = PolicyTimeline::fixed(PolicySet::new(roots));
        for sw in &self.switches {
            let roots = sw
                .nodes
                .iter()
                .map(PolicyNodeSpec::to_node)
                .collect::<Result<Vec<_>, _>>()?;
            timeline =
                timeline.with_switch(Nanos::from_secs_f64(sw.at_secs), PolicySet::new(roots));
        }
        Ok(timeline)
    }
}

impl ProvenanceSpec {
    fn decode(value: &Json) -> Result<ProvenanceSpec, String> {
        let f = Fields::of(value, "provenance")?;
        f.deny_unknown(&[
            "searcher_seed",
            "objective",
            "score",
            "shrink_steps",
            "first_failing_bytes",
            "minimal_bytes",
        ])?;
        let objective = f.string_req("objective")?;
        if !OBJECTIVE_KINDS.contains(&objective.as_str()) {
            return Err(format!("provenance: unknown objective `{objective}`"));
        }
        let searcher_seed = f
            .u64_opt("searcher_seed")?
            .ok_or("provenance: missing field `searcher_seed`")?;
        let shrink_steps = f
            .u64_opt("shrink_steps")?
            .ok_or("provenance: missing field `shrink_steps`")?;
        Ok(ProvenanceSpec {
            searcher_seed,
            objective,
            score: f.f64_or("score", 0.0)?,
            shrink_steps,
            first_failing_bytes: f.u64_opt("first_failing_bytes")?,
            minimal_bytes: f.u64_opt("minimal_bytes")?,
        })
    }
}

impl RoamingSpec {
    fn decode(value: &Json) -> Result<RoamingSpec, String> {
        let f = Fields::of(value, "roaming")?;
        f.deny_unknown(&[
            "mean_dwell_ms",
            "reassoc_min_ms",
            "reassoc_max_ms",
            "rate_palette",
        ])?;
        let rate_palette = match f.raw("rate_palette") {
            None => None,
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or("roaming: field `rate_palette` must be an array")?;
                Some(
                    arr.iter()
                        .map(|r| {
                            r.as_str()
                                .map(str::to_string)
                                .ok_or("roaming: `rate_palette` entries must be strings".into())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                )
            }
        };
        Ok(RoamingSpec {
            mean_dwell_ms: f.u64_opt("mean_dwell_ms")?.unwrap_or(5000),
            reassoc_min_ms: f.u64_opt("reassoc_min_ms")?.unwrap_or(20),
            reassoc_max_ms: f.u64_opt("reassoc_max_ms")?.unwrap_or(80),
            rate_palette,
        })
    }
}

impl ChurnSpec {
    fn decode(value: &Json) -> Result<ChurnSpec, String> {
        let f = Fields::of(value, "churn")?;
        f.deny_unknown(&["mean_interval_ms", "min_stations", "max_stations"])?;
        Ok(ChurnSpec {
            mean_interval_ms: f.u64_opt("mean_interval_ms")?.unwrap_or(100),
            min_stations: f.usize_req("min_stations")?,
            max_stations: f.usize_req("max_stations")?,
        })
    }
}

/// A parsed rate spec (shared with the CLI's `--stations` grammar).
pub fn parse_rate(spec: &str) -> Result<PhyRate, String> {
    if let Some(mcs) = spec.strip_prefix("vht") {
        let mcs: u8 = mcs.parse().map_err(|_| format!("bad VHT MCS '{spec}'"))?;
        if mcs > 9 {
            return Err(format!("VHT MCS out of range: '{spec}'"));
        }
        Ok(PhyRate::vht(mcs, 2, VhtWidth::Mhz80, true))
    } else if let Some(mcs) = spec.strip_prefix("mcs") {
        let mcs: u8 = mcs.parse().map_err(|_| format!("bad MCS '{spec}'"))?;
        if mcs > 15 {
            return Err(format!("HT MCS out of range: '{spec}'"));
        }
        Ok(PhyRate::ht(mcs, ChannelWidth::Ht20, true))
    } else if let Some(m) = spec.strip_suffix("mbps") {
        let r = match m {
            "1" => LegacyRate::Dsss1,
            "2" => LegacyRate::Dsss2,
            "5.5" => LegacyRate::Dsss5_5,
            "11" => LegacyRate::Dsss11,
            "6" => LegacyRate::Ofdm6,
            "9" => LegacyRate::Ofdm9,
            "12" => LegacyRate::Ofdm12,
            "18" => LegacyRate::Ofdm18,
            "24" => LegacyRate::Ofdm24,
            "36" => LegacyRate::Ofdm36,
            "48" => LegacyRate::Ofdm48,
            "54" => LegacyRate::Ofdm54,
            other => return Err(format!("unsupported legacy rate '{other}mbps'")),
        };
        Ok(PhyRate::Legacy(r))
    } else {
        Err(format!("unrecognised rate spec '{spec}'"))
    }
}

fn parse_qos(s: Option<&str>) -> Result<AccessCategory, String> {
    Ok(match s.unwrap_or("be") {
        "vo" => AccessCategory::Vo,
        "vi" => AccessCategory::Vi,
        "be" => AccessCategory::Be,
        "bk" => AccessCategory::Bk,
        other => return Err(format!("unknown QoS '{other}'")),
    })
}

/// A traffic handle paired with what it is, for result reporting.
#[derive(Debug)]
pub enum InstalledTraffic {
    /// TCP transfer.
    Tcp(FlowHandle),
    /// UDP flood.
    Udp(FlowHandle),
    /// Ping flow.
    Ping(FlowHandle),
    /// VoIP stream.
    Voip(FlowHandle),
    /// Web session.
    Web(FlowHandle),
}

/// A scenario ready to run.
pub struct BuiltScenario {
    /// The simulated network.
    pub net: WifiNetwork<AppMsg>,
    /// The traffic application.
    pub app: TrafficApp,
    /// Handles in file order.
    pub traffic: Vec<InstalledTraffic>,
    /// Simulated duration.
    pub duration: Nanos,
    /// Churn driver, when the scenario declares one.
    pub churn: Option<ChurnDriver>,
    /// Roaming replayer, when the scenario declares one (version ≥ 4).
    pub roam: Option<SoloRoam<AppMsg>>,
}

impl BuiltScenario {
    /// Drives the network to `until`, applying any scheduled churn and
    /// roaming events along the way. With both drivers present their
    /// schedules interleave in time order; a roam move whose slot churn
    /// has vacated is skipped (counted in
    /// [`RoamStats::skipped`](wifiq_roam::RoamStats)).
    pub fn run_to(&mut self, until: Nanos) {
        loop {
            let tc = self.churn.as_ref().map_or(Nanos::MAX, |c| c.next_at());
            let tr = self.roam.as_ref().map_or(Nanos::MAX, |r| r.next_at());
            let t = tc.min(tr);
            if t >= until {
                break;
            }
            self.net.run(t, &mut self.app);
            // Roam actions before the churn event at the same instant:
            // a rejoin must land before churn can fill the free slot.
            if let Some(r) = &mut self.roam {
                if tr <= t {
                    r.catch_up(&mut self.net, t);
                }
            }
            if let Some(c) = &mut self.churn {
                if tc <= t {
                    c.step(&mut self.net);
                }
            }
        }
        self.net.run(until, &mut self.app);
    }
}

impl ScenarioFile {
    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<ScenarioFile, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("scenario parse error: {e}"))?;
        let f = Fields::of(&value, "scenario")?;
        f.deny_unknown(&[
            "version",
            "scheme",
            "secs",
            "seed",
            "station_fq",
            "rate_control",
            "aql_ms",
            "stations",
            "traffic",
            "faults",
            "churn",
            "policy",
            "provenance",
            "roaming",
        ])?;
        let version = f.u64_opt("version")?.unwrap_or(1);
        if !(1..=4).contains(&version) {
            return Err(format!(
                "unsupported scenario version {version} (this build understands 1 through 4)"
            ));
        }
        if version < 2 {
            for field in ["faults", "churn"] {
                if f.raw(field).is_some() {
                    return Err(format!("`{field}` requires \"version\": 2"));
                }
            }
        }
        if version < 3 {
            for field in ["policy", "provenance"] {
                if f.raw(field).is_some() {
                    return Err(format!("`{field}` requires \"version\": 3"));
                }
            }
        }
        if version < 4 && f.raw("roaming").is_some() {
            return Err("`roaming` requires \"version\": 4".into());
        }
        let stations = f
            .array_req("stations")?
            .iter()
            .enumerate()
            .map(|(i, v)| StationSpec::decode(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        let traffic = f
            .array_req("traffic")?
            .iter()
            .enumerate()
            .map(|(i, v)| TrafficSpec::decode(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        let faults = match f.raw("faults") {
            Some(_) => f
                .array_req("faults")?
                .iter()
                .enumerate()
                .map(|(i, v)| FaultSpec::decode(v, i))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let churn = f.raw("churn").map(ChurnSpec::decode).transpose()?;
        let policy = f.raw("policy").map(PolicySpec::decode).transpose()?;
        let roaming = f.raw("roaming").map(RoamingSpec::decode).transpose()?;
        let provenance = f
            .raw("provenance")
            .map(ProvenanceSpec::decode)
            .transpose()?;
        Ok(ScenarioFile {
            version,
            scheme: f.string_opt("scheme")?,
            secs: f.u64_opt("secs")?,
            seed: f.u64_opt("seed")?,
            station_fq: f.bool_or("station_fq", false)?,
            rate_control: f.bool_or("rate_control", false)?,
            aql_ms: f.u64_opt("aql_ms")?,
            stations,
            traffic,
            faults,
            churn,
            policy,
            roaming,
            provenance,
        })
    }

    /// Validates and builds the network + traffic application.
    pub fn build(&self) -> Result<BuiltScenario, String> {
        if self.stations.is_empty() {
            return Err("scenario needs at least one station".into());
        }
        let scheme = match self.scheme.as_deref().unwrap_or("airtime") {
            "fifo" => SchemeKind::Fifo,
            "fqcodel" => SchemeKind::FqCodelQdisc,
            "fqmac" => SchemeKind::FqMac,
            "airtime" => SchemeKind::AirtimeFair,
            s => return Err(format!("unknown scheme '{s}'")),
        };
        let mut stations = Vec::new();
        for spec in &self.stations {
            let rate = parse_rate(&spec.rate)?;
            let mut cfg = StationCfg::clean(rate);
            cfg.errors = match spec.mcs_cliff {
                Some(best_mcs) => ErrorModel::McsCliff {
                    best_mcs,
                    residual: 0.03,
                },
                None => ErrorModel::Fixed(spec.error),
            };
            if let Some(w) = spec.weight {
                if w == 0 {
                    return Err("station weight must be positive".into());
                }
                cfg.airtime_weight = w;
            }
            stations.push(cfg);
        }
        let n = stations.len();
        let mut schedule = FaultSchedule::none();
        for (i, spec) in self.faults.iter().enumerate() {
            if let Some(sta) = spec.station {
                if sta >= n {
                    return Err(format!(
                        "faults[{i}] references station {sta}, but there are only {n}"
                    ));
                }
            }
            schedule.push(FaultEntry::new(
                Nanos::from_secs_f64(spec.from_secs),
                Nanos::from_secs_f64(spec.until_secs),
                spec.station
                    .map_or(FaultTarget::AllStations, FaultTarget::Station),
                spec.impairment,
            ));
        }
        schedule
            .validate()
            .map_err(|e| format!("fault schedule: {e}"))?;
        if self.aql_ms == Some(0) {
            // A zero budget would make every station permanently
            // ineligible and silently starve all traffic.
            return Err("aql_ms must be positive (omit it to disable AQL)".into());
        }
        let mut builder = NetworkConfig::builder()
            .stations(stations)
            .scheme(scheme)
            .seed(self.seed.unwrap_or(1))
            .station_fq(self.station_fq)
            .rate_control(self.rate_control)
            .aql(self.aql_ms.map(Nanos::from_millis))
            .faults(schedule);
        if let Some(p) = &self.policy {
            let timeline = p.to_timeline()?;
            // Validate here so a bad file reports an error instead of
            // tripping the builder's panic.
            timeline.validate(n).map_err(|e| format!("policy: {e}"))?;
            builder = builder.policy_timeline(timeline);
        }
        let cfg = builder.build();
        let churn = match &self.churn {
            Some(c) => {
                if c.min_stations >= c.max_stations {
                    return Err("churn: min_stations must be below max_stations".into());
                }
                if c.mean_interval_ms == 0 {
                    return Err("churn: mean_interval_ms must be positive".into());
                }
                // Like ext_scale's churn shards: a dedicated RNG stream,
                // so churn never perturbs the network's own draws.
                Some(ChurnDriver::new(
                    ChurnCfg {
                        mean_interval: Nanos::from_millis(c.mean_interval_ms),
                        min_stations: c.min_stations,
                        max_stations: c.max_stations,
                        ..ChurnCfg::default()
                    },
                    cfg.seed ^ 0x00C0_FFEE,
                ))
            }
            None => None,
        };
        let roam = match &self.roaming {
            Some(r) => {
                if r.mean_dwell_ms == 0 {
                    return Err("roaming: mean_dwell_ms must be positive".into());
                }
                if r.reassoc_min_ms > r.reassoc_max_ms {
                    return Err("roaming: reassoc_min_ms must not exceed reassoc_max_ms".into());
                }
                let rate_palette = match &r.rate_palette {
                    Some(list) if list.is_empty() => {
                        return Err("roaming: rate_palette must not be empty".into())
                    }
                    Some(list) => list
                        .iter()
                        .map(|s| parse_rate(s))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| format!("roaming: {e}"))?,
                    None => RoamCfg::default().rate_palette,
                };
                // The driver salts its own RNG stream (ROAM_SEED_SALT),
                // so the master seed is passed through unmixed.
                Some(SoloRoam::new(
                    RoamCfg {
                        mean_dwell: Nanos::from_millis(r.mean_dwell_ms),
                        reassoc_min: Nanos::from_millis(r.reassoc_min_ms),
                        reassoc_max: Nanos::from_millis(r.reassoc_max_ms),
                        rate_palette,
                    },
                    cfg.seed,
                    n,
                ))
            }
            None => None,
        };

        let mut app = TrafficApp::with_seed(cfg.seed);
        let mut traffic = Vec::new();
        for t in &self.traffic {
            let sta = match t {
                TrafficSpec::TcpDown { station }
                | TrafficSpec::TcpUp { station }
                | TrafficSpec::UdpDown { station, .. }
                | TrafficSpec::Ping { station }
                | TrafficSpec::Voip { station, .. }
                | TrafficSpec::Web { station, .. } => *station,
            };
            if sta >= n {
                return Err(format!(
                    "traffic references station {sta}, but there are only {n}"
                ));
            }
            let installed = match t {
                TrafficSpec::TcpDown { station } => {
                    InstalledTraffic::Tcp(app.add_tcp_down(*station, Nanos::ZERO))
                }
                TrafficSpec::TcpUp { station } => {
                    InstalledTraffic::Tcp(app.add_tcp_up(*station, Nanos::ZERO))
                }
                TrafficSpec::UdpDown {
                    station,
                    mbps,
                    poisson,
                } => {
                    let h = if *poisson {
                        app.add_udp_down_poisson(*station, mbps * 1_000_000, Nanos::ZERO)
                    } else {
                        app.add_udp_down(*station, mbps * 1_000_000, Nanos::ZERO)
                    };
                    InstalledTraffic::Udp(h)
                }
                TrafficSpec::Ping { station } => {
                    InstalledTraffic::Ping(app.add_ping(*station, Nanos::ZERO))
                }
                TrafficSpec::Voip { station, qos } => InstalledTraffic::Voip(app.add_voip(
                    *station,
                    parse_qos(qos.as_deref())?,
                    Nanos::ZERO,
                )),
                TrafficSpec::Web { station, page } => {
                    let page = match page.as_deref().unwrap_or("small") {
                        "small" => WebPage::small(),
                        "large" => WebPage::large(),
                        other => return Err(format!("unknown page '{other}'")),
                    };
                    InstalledTraffic::Web(app.add_web(*station, page, Nanos::ZERO))
                }
            };
            traffic.push(installed);
        }

        let mut net = WifiNetwork::new(cfg);
        app.install(&mut net);
        Ok(BuiltScenario {
            net,
            app,
            traffic,
            duration: Nanos::from_secs(self.secs.unwrap_or(20)),
            churn,
            roam,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "scheme": "airtime",
        "secs": 2,
        "stations": [
            { "rate": "mcs15" },
            { "rate": "mcs0", "weight": 512 },
            { "rate": "1mbps", "error": 0.1 }
        ],
        "traffic": [
            { "kind": "tcp_down", "station": 0 },
            { "kind": "udp_down", "station": 1, "mbps": 5, "poisson": true },
            { "kind": "ping", "station": 2 },
            { "kind": "voip", "station": 1, "qos": "vo" },
            { "kind": "web", "station": 0, "page": "small" }
        ]
    }"#;

    #[test]
    fn good_scenario_parses_builds_and_runs() {
        let sc = ScenarioFile::from_json(GOOD).unwrap();
        let mut built = sc.build().unwrap();
        assert_eq!(built.traffic.len(), 5);
        let duration = built.duration;
        built.net.run(duration, &mut built.app);
        // Every component produced something.
        for t in &built.traffic {
            match t {
                InstalledTraffic::Tcp(h) => assert!(built.app.tcp(*h).delivered_bytes() > 0),
                InstalledTraffic::Udp(h) => assert!(built.app.udp(*h).delivered > 0),
                InstalledTraffic::Ping(h) => assert!(!built.app.ping(*h).rtts.is_empty()),
                InstalledTraffic::Voip(h) => assert!(!built.app.voip(*h).delays.is_empty()),
                InstalledTraffic::Web(h) => assert!(built.app.web(*h).plt.is_some()),
            }
        }
    }

    #[test]
    fn bad_station_reference_rejected() {
        let sc = ScenarioFile::from_json(
            r#"{ "stations": [{ "rate": "mcs15" }],
                 "traffic": [{ "kind": "ping", "station": 3 }] }"#,
        )
        .unwrap();
        let err = match sc.build() {
            Err(e) => e,
            Ok(_) => panic!("bad reference accepted"),
        };
        assert!(err.contains("station 3"), "{err}");
    }

    #[test]
    fn unknown_fields_rejected() {
        let err = ScenarioFile::from_json(
            r#"{ "stations": [{ "rate": "mcs15", "typo_field": 1 }], "traffic": [] }"#,
        )
        .unwrap_err();
        assert!(err.contains("typo_field"), "{err}");
    }

    #[test]
    fn bad_rate_and_qos_rejected() {
        assert!(parse_rate("warp9").is_err());
        assert!(parse_rate("mcs16").is_err());
        assert!(parse_rate("vht10").is_err());
        assert!(parse_qos(Some("turbo")).is_err());
        assert_eq!(parse_qos(None).unwrap(), AccessCategory::Be);
    }

    #[test]
    fn defaults_apply() {
        let sc = ScenarioFile::from_json(r#"{ "stations": [{ "rate": "mcs7" }], "traffic": [] }"#)
            .unwrap();
        let built = sc.build().unwrap();
        assert_eq!(built.duration, Nanos::from_secs(20));
        assert_eq!(built.net.scheme(), SchemeKind::AirtimeFair);
    }

    #[test]
    fn zero_aql_rejected() {
        let sc = ScenarioFile::from_json(
            r#"{ "aql_ms": 0, "stations": [{ "rate": "mcs7" }], "traffic": [] }"#,
        )
        .unwrap();
        let err = match sc.build() {
            Err(e) => e,
            Ok(_) => panic!("zero AQL accepted"),
        };
        assert!(err.contains("aql_ms"), "{err}");
    }

    const V2: &str = r#"{
        "version": 2,
        "scheme": "airtime",
        "secs": 2,
        "stations": [
            { "rate": "mcs15" },
            { "rate": "mcs15" },
            { "rate": "mcs0" }
        ],
        "traffic": [
            { "kind": "tcp_down", "station": 0 },
            { "kind": "tcp_down", "station": 2 },
            { "kind": "ping", "station": 0 }
        ],
        "faults": [
            { "kind": "burst_loss", "from_secs": 0.5, "until_secs": 1.5,
              "station": 2, "bad_frac": 0.3, "burst_len": 10, "loss_bad": 0.9 },
            { "kind": "rate_collapse", "from_secs": 1.0, "until_secs": 1.5,
              "station": 2, "rate": "mcs0" },
            { "kind": "ack_loss", "from_secs": 0.0, "until_secs": 2.0, "prob": 0.05 }
        ],
        "churn": { "mean_interval_ms": 200, "min_stations": 2, "max_stations": 3 }
    }"#;

    #[test]
    fn v2_scenario_with_faults_and_churn_runs() {
        let sc = ScenarioFile::from_json(V2).unwrap();
        assert_eq!(sc.version, 2);
        assert_eq!(sc.faults.len(), 3);
        let mut built = sc.build().unwrap();
        assert!(!built.net.config().faults.is_empty());
        assert!(built.churn.is_some());
        let duration = built.duration;
        built.run_to(duration);
        let churn = built.churn.as_ref().unwrap();
        assert!(churn.joins + churn.leaves > 0, "churn never fired");
    }

    #[test]
    fn v2_fields_rejected_in_v1() {
        let err = ScenarioFile::from_json(
            r#"{ "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "faults": [] }"#,
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
        let err = ScenarioFile::from_json(
            r#"{ "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "churn": { "min_stations": 1, "max_stations": 2 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
        let err = ScenarioFile::from_json(
            r#"{ "version": 9, "stations": [{ "rate": "mcs15" }], "traffic": [] }"#,
        )
        .unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    const V3: &str = r#"{
        "version": 3,
        "scheme": "airtime",
        "secs": 2,
        "stations": [
            { "rate": "mcs15" },
            { "rate": "mcs15" },
            { "rate": "mcs7" }
        ],
        "traffic": [
            { "kind": "udp_down", "station": 0, "mbps": 20 },
            { "kind": "udp_down", "station": 1, "mbps": 20 },
            { "kind": "udp_down", "station": 2, "mbps": 20 }
        ],
        "policy": {
            "nodes": [
                { "name": "gold", "weight": 2, "stations": [0, 1] },
                { "name": "bronze", "weight": 1, "stations": [2] }
            ],
            "switches": [
                { "at_secs": 1,
                  "nodes": [
                      { "name": "gold", "weight": 1, "stations": [0, 1] },
                      { "name": "bronze", "weight": 1, "stations": [2] }
                  ] }
            ]
        }
    }"#;

    #[test]
    fn v3_scenario_with_policy_switch_runs() {
        let sc = ScenarioFile::from_json(V3).unwrap();
        assert_eq!(sc.version, 3);
        let p = sc.policy.as_ref().expect("policy block");
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.switches.len(), 1);
        let mut built = sc.build().unwrap();
        assert!(!built.net.config().policy.is_none());
        let duration = built.duration;
        built.run_to(duration);
        assert_eq!(built.net.policy_switches_applied(), 1);
        // After the switch the tenants split 1:1 — gold's half is shared
        // by two stations (3/4 of neutral each), bronze's by one (3/2).
        use wifiq_phy::AccessCategory;
        for (sta, expect) in [(0, 192), (1, 192), (2, 384)] {
            let id = built.net.sta_id(sta).expect("slot occupied");
            assert_eq!(
                built.net.station_ac_weight(id, AccessCategory::Be),
                Some(expect),
                "station {sta} weight after equalising switch"
            );
        }
    }

    #[test]
    fn provenance_parses_and_is_inert() {
        let sc = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }],
                 "traffic": [{ "kind": "ping", "station": 0 }],
                 "provenance": { "searcher_seed": 99, "objective": "jain_dip",
                                 "score": 1.25, "shrink_steps": 7,
                                 "first_failing_bytes": 1400, "minimal_bytes": 300 } }"#,
        )
        .unwrap();
        let p = sc.provenance.as_ref().expect("provenance block");
        assert_eq!(p.searcher_seed, 99);
        assert_eq!(p.objective, "jain_dip");
        assert_eq!(p.shrink_steps, 7);
        // Build ignores provenance entirely.
        sc.build().unwrap();
    }

    #[test]
    fn bad_provenance_rejected() {
        // Unknown objective name.
        let err = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "provenance": { "searcher_seed": 1, "objective": "gremlins",
                                 "shrink_steps": 0 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("gremlins"), "{err}");
        // Missing searcher_seed.
        let err = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "provenance": { "objective": "jain_dip", "shrink_steps": 0 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("searcher_seed"), "{err}");
        // Version gate: provenance is a v3 field.
        let err = ScenarioFile::from_json(
            r#"{ "version": 2, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "provenance": { "searcher_seed": 1, "objective": "jain_dip",
                                 "shrink_steps": 0 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn v3_fields_rejected_in_v2() {
        let err = ScenarioFile::from_json(
            r#"{ "version": 2, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [{ "name": "all", "stations": [0] }] } }"#,
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn bad_policy_rejected() {
        // A node with both children and stations.
        let sc = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [
                   { "name": "x", "stations": [0],
                     "nodes": [{ "name": "y", "stations": [0] }] } ] } }"#,
        )
        .unwrap();
        assert!(build_err(&sc).contains("exactly one"));
        // Station out of range.
        let sc = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [{ "name": "x", "stations": [5] }] } }"#,
        )
        .unwrap();
        assert!(build_err(&sc).contains("out of range"));
        // Switches out of order.
        let sc = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [{ "name": "x", "stations": [0] }],
                   "switches": [
                     { "at_secs": 5, "nodes": [{ "name": "x", "stations": [0] }] },
                     { "at_secs": 2, "nodes": [{ "name": "x", "stations": [0] }] } ] } }"#,
        )
        .unwrap();
        assert!(build_err(&sc).contains("ascending"));
        // Unknown class name.
        let sc = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [
                   { "name": "x", "stations": [0], "classes": ["turbo"] } ] } }"#,
        )
        .unwrap();
        assert!(build_err(&sc).contains("turbo"));
        // Unknown field inside a node.
        let err = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "policy": { "nodes": [{ "name": "x", "stations": [0], "wight": 2 }] } }"#,
        )
        .unwrap_err();
        assert!(err.contains("wight"), "{err}");
    }

    fn build_err(sc: &ScenarioFile) -> String {
        match sc.build() {
            Err(e) => e,
            Ok(_) => panic!("invalid scenario accepted"),
        }
    }

    #[test]
    fn bad_faults_rejected() {
        let base = |fault: &str| {
            format!(
                r#"{{ "version": 2, "stations": [{{ "rate": "mcs15" }}],
                     "traffic": [], "faults": [{fault}] }}"#
            )
        };
        // Unknown kind.
        let err = ScenarioFile::from_json(&base(
            r#"{ "kind": "gremlins", "from_secs": 0, "until_secs": 1 }"#,
        ))
        .unwrap_err();
        assert!(err.contains("gremlins"), "{err}");
        // Probability out of range (caught by schedule validation).
        let sc = ScenarioFile::from_json(&base(
            r#"{ "kind": "ack_loss", "from_secs": 0, "until_secs": 1, "prob": 1.5 }"#,
        ))
        .unwrap();
        assert!(build_err(&sc).contains("probability"));
        // Station out of range.
        let sc = ScenarioFile::from_json(&base(
            r#"{ "kind": "stall", "from_secs": 0, "until_secs": 1, "station": 9 }"#,
        ))
        .unwrap();
        assert!(build_err(&sc).contains("station 9"));
        // Window ends before it starts.
        let sc = ScenarioFile::from_json(&base(
            r#"{ "kind": "stall", "from_secs": 2, "until_secs": 1 }"#,
        ))
        .unwrap();
        assert!(build_err(&sc).contains("window"));
        // Extraneous parameter for the kind.
        let err = ScenarioFile::from_json(&base(
            r#"{ "kind": "stall", "from_secs": 0, "until_secs": 1, "prob": 0.5 }"#,
        ))
        .unwrap_err();
        assert!(err.contains("prob"), "{err}");
    }

    #[test]
    fn bad_churn_rejected() {
        let sc = ScenarioFile::from_json(
            r#"{ "version": 2, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "churn": { "min_stations": 2, "max_stations": 2 } }"#,
        )
        .unwrap();
        assert!(build_err(&sc).contains("min_stations"));
    }

    const V4: &str = r#"{
        "version": 4,
        "scheme": "airtime",
        "secs": 3,
        "stations": [
            { "rate": "mcs15" },
            { "rate": "mcs15" },
            { "rate": "mcs7" }
        ],
        "traffic": [
            { "kind": "udp_down", "station": 0, "mbps": 10 },
            { "kind": "udp_down", "station": 1, "mbps": 10 },
            { "kind": "ping", "station": 2 }
        ],
        "roaming": { "mean_dwell_ms": 100, "reassoc_min_ms": 10,
                     "reassoc_max_ms": 40, "rate_palette": ["mcs15", "mcs3"] }
    }"#;

    #[test]
    fn v4_scenario_with_roaming_runs() {
        let sc = ScenarioFile::from_json(V4).unwrap();
        assert_eq!(sc.version, 4);
        let r = sc.roaming.as_ref().expect("roaming block");
        assert_eq!(r.mean_dwell_ms, 100);
        assert_eq!(r.rate_palette.as_ref().unwrap().len(), 2);
        let mut built = sc.build().unwrap();
        assert!(built.roam.is_some());
        let duration = built.duration;
        built.run_to(duration);
        let roam = built.roam.as_ref().unwrap();
        assert!(roam.stats.handoffs > 5, "roam schedule never fired");
        assert_eq!(built.net.roam_drops(), roam.stats.roam_drops);
        // Everyone not mid-transit is back on the air.
        assert_eq!(built.net.active_stations() + roam.in_transit(), 3);
    }

    #[test]
    fn v4_roaming_interleaves_with_churn() {
        let sc = ScenarioFile::from_json(
            r#"{ "version": 4, "secs": 3,
                 "stations": [{ "rate": "mcs15" }, { "rate": "mcs15" }, { "rate": "mcs7" }],
                 "traffic": [{ "kind": "udp_down", "station": 0, "mbps": 10 }],
                 "churn": { "mean_interval_ms": 150, "min_stations": 1, "max_stations": 3 },
                 "roaming": { "mean_dwell_ms": 120 } }"#,
        )
        .unwrap();
        let mut built = sc.build().unwrap();
        let duration = built.duration;
        built.run_to(duration);
        let churn = built.churn.as_ref().unwrap();
        let roam = built.roam.as_ref().unwrap();
        assert!(churn.joins + churn.leaves > 0, "churn never fired");
        assert!(
            roam.stats.handoffs + roam.stats.skipped > 0,
            "roam never fired"
        );
    }

    #[test]
    fn roaming_rejected_below_v4() {
        let err = ScenarioFile::from_json(
            r#"{ "version": 3, "stations": [{ "rate": "mcs15" }], "traffic": [],
                 "roaming": { "mean_dwell_ms": 100 } }"#,
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn bad_roaming_rejected() {
        let base = |roaming: &str| {
            format!(
                r#"{{ "version": 4, "stations": [{{ "rate": "mcs15" }}],
                     "traffic": [], "roaming": {roaming} }}"#
            )
        };
        let sc = ScenarioFile::from_json(&base(r#"{ "mean_dwell_ms": 0 }"#)).unwrap();
        assert!(build_err(&sc).contains("mean_dwell_ms"));
        let sc =
            ScenarioFile::from_json(&base(r#"{ "reassoc_min_ms": 50, "reassoc_max_ms": 10 }"#))
                .unwrap();
        assert!(build_err(&sc).contains("reassoc_min_ms"));
        let sc = ScenarioFile::from_json(&base(r#"{ "rate_palette": [] }"#)).unwrap();
        assert!(build_err(&sc).contains("rate_palette"));
        let sc = ScenarioFile::from_json(&base(r#"{ "rate_palette": ["warp9"] }"#)).unwrap();
        assert!(build_err(&sc).contains("warp9"));
        let err = ScenarioFile::from_json(&base(r#"{ "dwell": 5 }"#)).unwrap_err();
        assert!(err.contains("dwell"), "{err}");
    }

    #[test]
    fn shipped_scenario_files_validate() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("scenarios dir") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).unwrap();
            let sc = ScenarioFile::from_json(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            sc.build()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            seen += 1;
        }
        assert!(
            seen >= 5,
            "expected the shipped scenario files, found {seen}"
        );
    }

    #[test]
    fn zero_weight_rejected() {
        let sc = ScenarioFile::from_json(
            r#"{ "stations": [{ "rate": "mcs7", "weight": 0 }], "traffic": [] }"#,
        )
        .unwrap();
        assert!(sc.build().is_err());
    }
}
