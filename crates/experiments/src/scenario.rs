//! Scenario builders matching the paper's testbeds — thin wrappers over
//! [`NetworkConfig::builder`] presets.

use wifiq_mac::{NetworkConfig, Preset, SchemeKind};
use wifiq_sim::Nanos;

/// Index of the first fast station in the 3/4-station testbeds.
pub const FAST1: usize = 0;
/// Index of the second fast station.
pub const FAST2: usize = 1;
/// Index of the slow (MCS0) station.
pub const SLOW: usize = 2;
/// Index of the extra (virtual) fast station in 4-station scenarios.
pub const EXTRA: usize = 3;

/// The paper's main testbed: two fast stations (144.4 Mbps) and one slow
/// station (7.2 Mbps).
pub fn testbed3(scheme: SchemeKind, seed: u64) -> NetworkConfig {
    NetworkConfig::builder()
        .preset(Preset::PaperTestbed)
        .scheme(scheme)
        .seed(seed)
        .build()
}

/// The 4-station variant: testbed plus one additional (virtual) fast
/// station, used for the sparse-station and VoIP experiments (§4.1.4,
/// §4.2.1).
pub fn testbed4(scheme: SchemeKind, seed: u64) -> NetworkConfig {
    NetworkConfig::builder()
        .preset(Preset::PaperTestbed4)
        .scheme(scheme)
        .seed(seed)
        .build()
}

/// Disables the sparse-station optimisation (Figure 8's "Disabled" case).
pub fn without_sparse(mut cfg: NetworkConfig) -> NetworkConfig {
    cfg.airtime.sparse_stations = false;
    cfg
}

/// Sets the wired baseline one-way delay (the VoIP experiments use 5 ms
/// and 50 ms).
pub fn with_wire_delay(mut cfg: NetworkConfig, owd: Nanos) -> NetworkConfig {
    cfg.wire_delay = owd;
    cfg
}

/// In the 30-station testbed: index of the 1 Mbps legacy client.
pub const SLOW30: usize = 0;
/// In the 30-station testbed: index of the ping-only fast client.
pub const PINGONLY30: usize = 29;
/// Indices of the 28 bulk fast clients in the 30-station testbed.
pub fn bulk30() -> impl Iterator<Item = usize> {
    1..29
}

/// The third-party 30-station testbed (§4.1.5): 29 fast clients plus one
/// artificially limited to 1 Mbps (HT disabled — no aggregation), on a
/// 2.4 GHz HT20 channel.
pub fn testbed30(scheme: SchemeKind, seed: u64) -> NetworkConfig {
    NetworkConfig::builder()
        .preset(Preset::Testbed30)
        .scheme(scheme)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiq_phy::PhyRate;

    #[test]
    fn testbed_shapes() {
        let t3 = testbed3(SchemeKind::Fifo, 7);
        assert_eq!(t3.num_stations(), 3);
        assert_eq!(t3.seed, 7);
        let t4 = testbed4(SchemeKind::Fifo, 7);
        assert_eq!(t4.num_stations(), 4);
        assert_eq!(t4.stations[EXTRA].rate, PhyRate::fast_station());
        let t30 = testbed30(SchemeKind::AirtimeFair, 9);
        assert_eq!(t30.num_stations(), 30);
        assert!(!t30.stations[SLOW30].rate.supports_aggregation());
        assert_eq!(bulk30().count(), 28);
    }

    #[test]
    fn modifiers() {
        let cfg = without_sparse(testbed4(SchemeKind::AirtimeFair, 1));
        assert!(!cfg.airtime.sparse_stations);
        let cfg = with_wire_delay(cfg, Nanos::from_millis(50));
        assert_eq!(cfg.wire_delay, Nanos::from_millis(50));
    }
}
