//! TCP workloads over the 3-station testbed: per-station throughput
//! (Figure 7) and airtime fairness under TCP (Figure 6's TCP columns).

use serde::Serialize;
use wifiq_mac::{SchemeKind, StationMeter, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::jain_index;
use wifiq_traffic::TrafficApp;

use crate::runner::{export_metrics, mean, meter_delta, metrics_telemetry, shares_of, RunCfg};
use crate::scenario;

/// TCP traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TcpPattern {
    /// Bulk download to every station.
    Download,
    /// Simultaneous bulk upload and download for every station.
    Bidirectional,
}

impl TcpPattern {
    /// Label used in tables ("TCP dl" / "TCP bidir" as in Figure 6).
    pub fn label(self) -> &'static str {
        match self {
            TcpPattern::Download => "TCP dl",
            TcpPattern::Bidirectional => "TCP bidir",
        }
    }

    /// Filesystem-safe identifier for artifact names.
    pub fn slug(self) -> &'static str {
        match self {
            TcpPattern::Download => "dl",
            TcpPattern::Bidirectional => "bidir",
        }
    }
}

/// Result of one scheme × pattern run.
#[derive(Debug, Clone, Serialize)]
pub struct TcpRunResult {
    /// Scheme label.
    pub scheme: String,
    /// Pattern label.
    pub pattern: String,
    /// Mean per-station download goodput, bits/s.
    pub down_bps: Vec<f64>,
    /// Mean per-station upload goodput, bits/s (zero for Download).
    pub up_bps: Vec<f64>,
    /// Mean per-station airtime shares.
    pub airtime_shares: Vec<f64>,
    /// Median (across reps) Jain's index over station airtimes.
    pub jain: f64,
}

impl TcpRunResult {
    /// Mean of the per-station download goodputs (the "Average" group of
    /// Figure 7), bits/s.
    pub fn average_down(&self) -> f64 {
        mean(&self.down_bps)
    }

    /// Total goodput over all stations and directions, bits/s.
    pub fn total(&self) -> f64 {
        self.down_bps.iter().sum::<f64>() + self.up_bps.iter().sum::<f64>()
    }
}

/// Runs `pattern` under `scheme` on the 3-station testbed.
pub fn run_scheme(scheme: SchemeKind, pattern: TcpPattern, cfg: &RunCfg) -> TcpRunResult {
    let n = 3;
    let mut down_acc = vec![Vec::new(); n];
    let mut up_acc = vec![Vec::new(); n];
    let mut share_acc = vec![Vec::new(); n];
    let mut jain_acc = Vec::new();

    for seed in cfg.seeds() {
        let net_cfg = scenario::testbed3(scheme, seed);
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let tele = metrics_telemetry();
        net.set_telemetry(tele.clone());
        let mut app = TrafficApp::new();
        let downs: Vec<_> = (0..n).map(|s| app.add_tcp_down(s, Nanos::ZERO)).collect();
        let ups: Vec<_> = if pattern == TcpPattern::Bidirectional {
            (0..n).map(|s| app.add_tcp_up(s, Nanos::ZERO)).collect()
        } else {
            Vec::new()
        };
        app.set_telemetry(&tele);
        app.install(&mut net);

        net.run(cfg.warmup, &mut app);
        let before: Vec<StationMeter> = net.meter().all().to_vec();
        net.run(cfg.duration, &mut app);
        let window: Vec<StationMeter> = net
            .meter()
            .all()
            .iter()
            .zip(&before)
            .map(|(l, e)| meter_delta(l, e))
            .collect();

        let secs = cfg.window().as_secs_f64();
        for sta in 0..n {
            let b = app.tcp(downs[sta]).bytes_between(cfg.warmup, cfg.duration);
            down_acc[sta].push(b as f64 * 8.0 / secs);
            if let Some(up) = ups.get(sta) {
                let b = app.tcp(*up).bytes_between(cfg.warmup, cfg.duration);
                up_acc[sta].push(b as f64 * 8.0 / secs);
            }
        }
        let shares = shares_of(&window);
        for sta in 0..n {
            share_acc[sta].push(shares[sta]);
        }
        jain_acc.push(jain_index(&shares));
        export_metrics(
            &tele,
            &format!("tcp_{}_{}_seed{}", pattern.slug(), scheme.slug(), seed),
            seed,
        );
    }

    TcpRunResult {
        scheme: scheme.label().to_string(),
        pattern: pattern.label().to_string(),
        down_bps: down_acc.iter().map(|v| mean(v)).collect(),
        up_bps: if up_acc[0].is_empty() {
            vec![0.0; n]
        } else {
            up_acc.iter().map(|v| mean(v)).collect()
        },
        airtime_shares: share_acc.iter().map(|v| mean(v)).collect(),
        jain: crate::runner::median(&jain_acc),
    }
}

/// Runs a pattern under all four schemes.
pub fn run_all(pattern: TcpPattern, cfg: &RunCfg) -> Vec<TcpRunResult> {
    SchemeKind::ALL
        .into_iter()
        .map(|s| run_scheme(s, pattern, cfg))
        .collect()
}
