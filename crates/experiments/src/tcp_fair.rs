//! TCP workloads over the 3-station testbed: per-station throughput
//! (Figure 7) and airtime fairness under TCP (Figure 6's TCP columns).

use serde::Serialize;
use wifiq_mac::{SchemeKind, StationMeter, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::jain_index;
use wifiq_traffic::TrafficApp;

use crate::runner::{
    export_metrics, mean, meter_delta, metrics_telemetry, run_seeds, shares_of, RunCfg,
};
use crate::scenario;

/// TCP traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TcpPattern {
    /// Bulk download to every station.
    Download,
    /// Simultaneous bulk upload and download for every station.
    Bidirectional,
}

impl TcpPattern {
    /// Label used in tables ("TCP dl" / "TCP bidir" as in Figure 6).
    pub fn label(self) -> &'static str {
        match self {
            TcpPattern::Download => "TCP dl",
            TcpPattern::Bidirectional => "TCP bidir",
        }
    }

    /// Filesystem-safe identifier for artifact names.
    pub fn slug(self) -> &'static str {
        match self {
            TcpPattern::Download => "dl",
            TcpPattern::Bidirectional => "bidir",
        }
    }
}

/// Result of one scheme × pattern run.
#[derive(Debug, Clone, Serialize)]
pub struct TcpRunResult {
    /// Scheme label.
    pub scheme: String,
    /// Pattern label.
    pub pattern: String,
    /// Mean per-station download goodput, bits/s.
    pub down_bps: Vec<f64>,
    /// Mean per-station upload goodput, bits/s (zero for Download).
    pub up_bps: Vec<f64>,
    /// Mean per-station airtime shares.
    pub airtime_shares: Vec<f64>,
    /// Median (across reps) Jain's index over station airtimes.
    pub jain: f64,
}

impl TcpRunResult {
    /// Mean of the per-station download goodputs (the "Average" group of
    /// Figure 7), bits/s.
    pub fn average_down(&self) -> f64 {
        mean(&self.down_bps)
    }

    /// Total goodput over all stations and directions, bits/s.
    pub fn total(&self) -> f64 {
        self.down_bps.iter().sum::<f64>() + self.up_bps.iter().sum::<f64>()
    }
}

/// Runs `pattern` under `scheme` on the 3-station testbed.
pub fn run_scheme(scheme: SchemeKind, pattern: TcpPattern, cfg: &RunCfg) -> TcpRunResult {
    let n = 3;
    // (down bps, up bps, shares, jain) per repetition.
    type TcpRep = (Vec<f64>, Vec<f64>, Vec<f64>, f64);
    let reps: Vec<TcpRep> = run_seeds("tcp_fair", scheme.slug(), pattern.slug(), cfg, |seed| {
        let net_cfg = scenario::testbed3(scheme, seed);
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let tele = metrics_telemetry();
        net.set_telemetry(tele.clone());
        let mut app = TrafficApp::new();
        let downs: Vec<_> = (0..n).map(|s| app.add_tcp_down(s, Nanos::ZERO)).collect();
        let ups: Vec<_> = if pattern == TcpPattern::Bidirectional {
            (0..n).map(|s| app.add_tcp_up(s, Nanos::ZERO)).collect()
        } else {
            Vec::new()
        };
        app.set_telemetry(&tele);
        app.install(&mut net);

        net.run(cfg.warmup, &mut app);
        let before: Vec<StationMeter> = net.meter().all().to_vec();
        net.run(cfg.duration, &mut app);
        let window: Vec<StationMeter> = net
            .meter()
            .all()
            .iter()
            .zip(&before)
            .map(|(l, e)| meter_delta(l, e))
            .collect();

        let secs = cfg.window().as_secs_f64();
        let down: Vec<f64> = downs
            .iter()
            .map(|&d| app.tcp(d).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
            .collect();
        let up: Vec<f64> = ups
            .iter()
            .map(|&u| app.tcp(u).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
            .collect();
        let shares = shares_of(&window);
        let jain = jain_index(&shares);
        export_metrics(
            &tele,
            &format!("tcp_{}_{}_seed{}", pattern.slug(), scheme.slug(), seed),
            seed,
        );
        (down, up, shares, jain)
    });

    let per_sta = |pick: fn(&TcpRep) -> &Vec<f64>, sta: usize| {
        mean(
            &reps
                .iter()
                .filter_map(|r| pick(r).get(sta).copied())
                .collect::<Vec<_>>(),
        )
    };
    TcpRunResult {
        scheme: scheme.label().to_string(),
        pattern: pattern.label().to_string(),
        down_bps: (0..n).map(|sta| per_sta(|r| &r.0, sta)).collect(),
        up_bps: (0..n).map(|sta| per_sta(|r| &r.1, sta)).collect(),
        airtime_shares: (0..n).map(|sta| per_sta(|r| &r.2, sta)).collect(),
        jain: crate::runner::median(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

/// Runs a pattern under all four schemes.
pub fn run_all(pattern: TcpPattern, cfg: &RunCfg) -> Vec<TcpRunResult> {
    SchemeKind::ALL
        .into_iter()
        .map(|s| run_scheme(s, pattern, cfg))
        .collect()
}
