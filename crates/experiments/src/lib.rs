//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (Section 4).
//!
//! Each module implements one experiment; each `src/bin/` binary runs one
//! experiment, prints the same rows/series the paper reports, and writes
//! a JSON artifact under `results/`. See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured values.
//!
//! | Module      | Paper result | Binary |
//! |---|---|---|
//! | [`latency`]  | Figures 1 & 4 (+ appendix bidir variant) | `fig04_latency_tcp` |
//! | [`table1`]   | Table 1 | `table1_model_validation` |
//! | [`udp_sat`]  | Figure 5 | `fig05_airtime_udp` |
//! | [`tcp_fair`] | Figures 6 & 7 | `fig06_jain_index`, `fig07_tcp_throughput` |
//! | [`sparse`]   | Figure 8 | `fig08_sparse_station` |
//! | [`thirty`]   | Figures 9 & 10 + §4.1.5 observations | `fig09_30sta_airtime`, `fig10_30sta_latency` |
//! | [`voip`]     | Table 2 | `table2_voip_mos` |
//! | [`web`]      | Figure 11 (+ appendix variant) | `fig11_web_plt` |
//!
//! [`ablations`] holds the design-choice ablations (RX charging,
//! per-station CoDel parameters, the overlimit drop policy, and the
//! airtime quantum), driven by the `ablation_design_choices` binary.
//!
//! Repetition counts and durations are configurable through the
//! environment; see [`runner::RunCfg`].

pub mod ablations;
pub mod latency;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scenario_file;
pub mod sparse;
pub mod table1;
pub mod tcp_fair;
pub mod thirty;
pub mod udp_sat;
pub mod voip;
pub mod web;

pub use runner::RunCfg;
