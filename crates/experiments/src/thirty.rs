//! The 30-station scaling experiment (§4.1.5, Figures 9 and 10): 28 fast
//! bulk clients, one ping-only fast client, and one client pinned to
//! 1 Mbps legacy rate, under FQ-CoDel / FQ-MAC / Airtime.

use serde::Serialize;
use wifiq_mac::{SchemeKind, StationMeter, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::{jain_index, Cdf, Summary};
use wifiq_traffic::TrafficApp;

use crate::runner::{mean, meter_delta, run_seeds, shares_of, RunCfg};
use crate::scenario::{self, PINGONLY30, SLOW30};

/// The schemes the third-party testbed ran (no FIFO case).
pub const SCHEMES30: [SchemeKind; 3] = [
    SchemeKind::FqCodelQdisc,
    SchemeKind::FqMac,
    SchemeKind::AirtimeFair,
];

/// One scheme's results in the 30-station test.
#[derive(Debug, Clone, Serialize)]
pub struct ThirtyResult {
    /// Scheme label.
    pub scheme: String,
    /// Airtime share of the 1 Mbps station.
    pub slow_share: f64,
    /// Mean airtime share of the 28 bulk fast stations.
    pub fast_share_mean: f64,
    /// Jain's index over the 29 active stations' airtime.
    pub jain: f64,
    /// Total TCP goodput, bits/s.
    pub total_goodput_bps: f64,
    /// Ping RTT to the slow station, ms.
    pub slow_latency: Summary,
    /// Ping RTT to one of the bulk fast stations, ms.
    pub fast_latency: Summary,
    /// Ping RTT to the sparse (ping-only) station, ms.
    pub sparse_latency: Summary,
    /// CDFs for the Figure 10 plot.
    pub slow_cdf: Cdf,
    /// Fast-station CDF for the Figure 10 plot.
    pub fast_cdf: Cdf,
}

/// Runs one scheme of the 30-station experiment.
pub fn run_scheme(scheme: SchemeKind, cfg: &RunCfg) -> ThirtyResult {
    // (slow share, fast share mean, jain, goodput, slow/fast/sparse RTTs)
    // per repetition.
    type ThirtyRep = (f64, f64, f64, f64, Vec<f64>, Vec<f64>, Vec<f64>);
    let reps: Vec<ThirtyRep> = run_seeds("thirty", scheme.slug(), "", cfg, |seed| {
        let net_cfg = scenario::testbed30(scheme, seed);
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let mut app = TrafficApp::new();
        let ping_sparse = app.add_ping(PINGONLY30, Nanos::ZERO);
        let ping_slow = app.add_ping(SLOW30, Nanos::ZERO);
        let ping_fast = app.add_ping(1, Nanos::ZERO); // one bulk fast client
        let mut tcps = vec![app.add_tcp_down(SLOW30, Nanos::ZERO)];
        for sta in scenario::bulk30() {
            tcps.push(app.add_tcp_down(sta, Nanos::ZERO));
        }
        app.install(&mut net);

        net.run(cfg.warmup, &mut app);
        let before: Vec<StationMeter> = net.meter().all().to_vec();
        net.run(cfg.duration, &mut app);
        let window: Vec<StationMeter> = net
            .meter()
            .all()
            .iter()
            .zip(&before)
            .map(|(l, e)| meter_delta(l, e))
            .collect();

        // Airtime over the 29 stations that carry traffic (the ping-only
        // client is excluded from the share plot, as in Figure 9).
        let active: Vec<StationMeter> = window
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != PINGONLY30)
            .map(|(_, m)| *m)
            .collect();
        let shares = shares_of(&active);
        let secs = cfg.window().as_secs_f64();
        let goodput: f64 = tcps
            .iter()
            .map(|t| app.tcp(*t).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
            .sum();
        let rtts = |flow| -> Vec<f64> {
            app.ping(flow)
                .rtts_after(cfg.warmup)
                .iter()
                .map(|r| r.as_millis_f64())
                .collect()
        };
        (
            shares[SLOW30],
            mean(&shares[1..]),
            jain_index(&shares),
            goodput,
            rtts(ping_slow),
            rtts(ping_fast),
            rtts(ping_sparse),
        )
    });

    let slow_ms: Vec<f64> = reps.iter().flat_map(|r| r.4.iter().copied()).collect();
    let fast_ms: Vec<f64> = reps.iter().flat_map(|r| r.5.iter().copied()).collect();
    let sparse_ms: Vec<f64> = reps.iter().flat_map(|r| r.6.iter().copied()).collect();
    ThirtyResult {
        scheme: scheme.label().to_string(),
        slow_share: mean(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        fast_share_mean: mean(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
        jain: crate::runner::median(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
        total_goodput_bps: mean(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
        slow_latency: Summary::of(&slow_ms),
        fast_latency: Summary::of(&fast_ms),
        sparse_latency: Summary::of(&sparse_ms),
        slow_cdf: Cdf::of(&slow_ms, 150),
        fast_cdf: Cdf::of(&fast_ms, 150),
    }
}

/// Runs all three schemes of the 30-station experiment.
pub fn run_all(cfg: &RunCfg) -> Vec<ThirtyResult> {
    SCHEMES30.into_iter().map(|s| run_scheme(s, cfg)).collect()
}
