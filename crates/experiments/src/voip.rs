//! The VoIP experiment (Table 2): MOS and total throughput when a VoIP
//! stream to the slow station competes with bulk TCP, for VO vs BE
//! markings and 5 ms vs 50 ms baseline one-way delay.

use serde::Serialize;
use wifiq_mac::{SchemeKind, WifiNetwork};
use wifiq_phy::AccessCategory;
use wifiq_sim::Nanos;
use wifiq_stats::VoipMetrics;
use wifiq_traffic::TrafficApp;

use crate::runner::{mean, run_seeds, RunCfg};
use crate::scenario::{self, SLOW};

/// One Table 2 cell.
#[derive(Debug, Clone, Serialize)]
pub struct VoipCell {
    /// Scheme label.
    pub scheme: String,
    /// QoS marking label ("VO" / "BE").
    pub qos: String,
    /// Baseline one-way delay, ms.
    pub owd_ms: u64,
    /// Mean E-model MOS across repetitions.
    pub mos: f64,
    /// Mean total bulk TCP goodput, bits/s.
    pub throughput_bps: f64,
    /// Mean VoIP one-way delay, ms (diagnostic).
    pub delay_ms: f64,
    /// Mean VoIP loss fraction (diagnostic).
    pub loss: f64,
}

/// Runs one Table 2 cell: VoIP (+bulk) to the slow station, bulk TCP to
/// the three fast stations, under `scheme`.
pub fn run_cell(scheme: SchemeKind, ac: AccessCategory, owd: Nanos, cfg: &RunCfg) -> VoipCell {
    let config = format!("{}_{}ms", ac.label(), owd.as_millis());
    // (mos, throughput, delay, loss) per repetition.
    let reps: Vec<(f64, f64, f64, f64)> = run_seeds("voip", scheme.slug(), &config, cfg, |seed| {
        let net_cfg = scenario::with_wire_delay(scenario::testbed4(scheme, seed), owd);
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let mut app = TrafficApp::new();
        let voip = app.add_voip(SLOW, ac, Nanos::ZERO);
        // "the slow station receives both VoIP traffic and bulk traffic,
        // while the fast stations receive bulk traffic".
        let mut tcps = Vec::new();
        for sta in 0..4 {
            tcps.push(app.add_tcp_down(sta, Nanos::ZERO));
        }
        app.install(&mut net);
        net.run(cfg.duration, &mut app);

        let flow = app.voip(voip);
        let delays = flow.delays_after(cfg.warmup);
        // Frames sent within the window (20 ms spacing).
        let sent = (cfg.window().as_millis() / 20) as usize;
        let metrics = VoipMetrics::from_delays(&delays, sent.max(delays.len()));

        let secs = cfg.window().as_secs_f64();
        let thr: f64 = tcps
            .iter()
            .map(|t| app.tcp(*t).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
            .sum();
        (metrics.mos(), thr, metrics.mean_delay_ms, metrics.loss)
    });

    VoipCell {
        scheme: scheme.label().to_string(),
        qos: ac.label().to_string(),
        owd_ms: owd.as_millis(),
        mos: mean(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        throughput_bps: mean(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
        delay_ms: mean(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
        loss: mean(&reps.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

/// Runs the full Table 2 matrix: 4 schemes × {VO, BE} × {5 ms, 50 ms}.
pub fn run_all(cfg: &RunCfg) -> Vec<VoipCell> {
    let mut cells = Vec::new();
    for scheme in SchemeKind::ALL {
        for ac in [AccessCategory::Vo, AccessCategory::Be] {
            for owd in [Nanos::from_millis(5), Nanos::from_millis(50)] {
                cells.push(run_cell(scheme, ac, owd, cfg));
            }
        }
    }
    cells
}
