//! Table 1 reproduction: analytical model vs simulator measurements.
//!
//! Exactly as the paper does, the *measured* mean aggregation level from
//! the experiment feeds the model (eqs. 1–5); the model's predicted
//! per-station rate is then compared against the *measured* UDP goodput.

use serde::Serialize;
use wifiq_mac::SchemeKind;
use wifiq_model::{predict, ModelStation};
use wifiq_phy::PhyRate;

use crate::runner::RunCfg;
use crate::udp_sat::{self, UdpSatResult};

/// One Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Measured mean aggregation level (model input `n_i`).
    pub aggr: f64,
    /// Modelled airtime share `T(i)`.
    pub airtime_share: f64,
    /// PHY rate, bits/s.
    pub phy_bps: u64,
    /// Modelled base rate `R(n,l,r)`, bits/s.
    pub base_bps: f64,
    /// Modelled effective rate `R(i)`, bits/s.
    pub model_bps: f64,
    /// Measured UDP goodput, bits/s (the paper's "Exp" column).
    pub measured_bps: f64,
}

/// One half of Table 1 (baseline or airtime-fair).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Half {
    /// "Baseline (FIFO queue)" or "Airtime Fairness".
    pub label: String,
    /// The three station rows.
    pub rows: Vec<Table1Row>,
    /// Modelled total, bits/s.
    pub model_total: f64,
    /// Measured total, bits/s.
    pub measured_total: f64,
}

/// The full Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// FIFO half.
    pub baseline: Table1Half,
    /// Airtime-fair half.
    pub fair: Table1Half,
}

fn station_rates() -> [PhyRate; 3] {
    [
        PhyRate::fast_station(),
        PhyRate::fast_station(),
        PhyRate::slow_station(),
    ]
}

fn half_from(label: &str, sat: &UdpSatResult, fairness: bool) -> Table1Half {
    let rates = station_rates();
    let inputs: Vec<ModelStation> = sat
        .stations
        .iter()
        .zip(rates)
        .map(|(s, r)| ModelStation::new(s.aggregation.max(1.0), r))
        .collect();
    let preds = predict(&inputs, fairness);
    let rows: Vec<Table1Row> = preds
        .iter()
        .zip(&sat.stations)
        .zip(rates)
        .map(|((p, s), r)| Table1Row {
            aggr: s.aggregation,
            airtime_share: p.airtime_share,
            phy_bps: r.bits_per_second(),
            base_bps: p.base_rate,
            model_bps: p.rate,
            measured_bps: s.goodput_bps,
        })
        .collect();
    Table1Half {
        label: label.to_string(),
        model_total: rows.iter().map(|r| r.model_bps).sum(),
        measured_total: rows.iter().map(|r| r.measured_bps).sum(),
        rows,
    }
}

/// Regenerates Table 1: runs the UDP saturation workload under FIFO and
/// under the airtime-fair scheme, then evaluates the model on the
/// measured aggregation levels.
pub fn run(cfg: &RunCfg) -> Table1 {
    let fifo = udp_sat::run_scheme(SchemeKind::Fifo, cfg);
    let fair = udp_sat::run_scheme(SchemeKind::AirtimeFair, cfg);
    Table1 {
        baseline: half_from("Baseline (FIFO queue)", &fifo, false),
        fair: half_from("Airtime Fairness", &fair, true),
    }
}
