//! One-way UDP saturation runs — the workload behind Table 1 and
//! Figure 5, and the UDP column of Figure 6.

use serde::Serialize;
use wifiq_mac::{SchemeKind, StationMeter, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_traffic::TrafficApp;

use crate::runner::{
    export_metrics, mean, meter_delta, metrics_telemetry, run_seeds, shares_of, RunCfg,
};
use crate::scenario;

/// Offered UDP load per station (well above any station's capacity).
pub const SAT_RATE_BPS: u64 = 100_000_000;

/// Per-station measurements from one saturation run (averaged over
/// repetitions).
#[derive(Debug, Clone, Serialize)]
pub struct UdpStation {
    /// Airtime share (0–1).
    pub airtime_share: f64,
    /// Mean A-MPDU aggregation level (frames per aggregate).
    pub aggregation: f64,
    /// Delivered goodput, bits/s.
    pub goodput_bps: f64,
}

/// Result of running the saturation workload under one scheme.
#[derive(Debug, Clone, Serialize)]
pub struct UdpSatResult {
    /// Scheme label.
    pub scheme: String,
    /// Per-station results, station order as configured.
    pub stations: Vec<UdpStation>,
    /// Per-repetition airtime share vectors (for Jain's index).
    pub rep_shares: Vec<Vec<f64>>,
}

impl UdpSatResult {
    /// Total goodput across stations in bits/s.
    pub fn total_goodput(&self) -> f64 {
        self.stations.iter().map(|s| s.goodput_bps).sum()
    }
}

/// Runs one-way UDP saturation to every station of the 3-station testbed
/// under `scheme`.
pub fn run_scheme(scheme: SchemeKind, cfg: &RunCfg) -> UdpSatResult {
    let n = 3;
    // (shares, aggregation, goodput) per station, one tuple per repetition.
    let reps: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        run_seeds("udp_sat", scheme.slug(), "", cfg, |seed| {
            let net_cfg = scenario::testbed3(scheme, seed);
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let tele = metrics_telemetry();
            net.set_telemetry(tele.clone());
            let mut app = TrafficApp::new();
            let flows: Vec<_> = (0..n)
                .map(|sta| app.add_udp_down(sta, SAT_RATE_BPS, Nanos::ZERO))
                .collect();
            app.install(&mut net);

            net.run(cfg.warmup, &mut app);
            let before: Vec<StationMeter> = net.meter().all().to_vec();
            net.run(cfg.duration, &mut app);
            let window: Vec<StationMeter> = net
                .meter()
                .all()
                .iter()
                .zip(&before)
                .map(|(l, e)| meter_delta(l, e))
                .collect();

            let shares = shares_of(&window);
            let aggr: Vec<f64> = window.iter().map(StationMeter::mean_aggregation).collect();
            let thr: Vec<f64> = flows
                .iter()
                .map(|&flow| {
                    let bytes = app.udp(flow).bytes_between(cfg.warmup, cfg.duration);
                    bytes as f64 * 8.0 / cfg.window().as_secs_f64()
                })
                .collect();
            export_metrics(
                &tele,
                &format!("udp_sat_{}_seed{}", scheme.slug(), seed),
                seed,
            );
            (shares, aggr, thr)
        });

    UdpSatResult {
        scheme: scheme.label().to_string(),
        stations: (0..n)
            .map(|sta| UdpStation {
                airtime_share: mean(&reps.iter().map(|r| r.0[sta]).collect::<Vec<_>>()),
                aggregation: mean(&reps.iter().map(|r| r.1[sta]).collect::<Vec<_>>()),
                goodput_bps: mean(&reps.iter().map(|r| r.2[sta]).collect::<Vec<_>>()),
            })
            .collect(),
        rep_shares: reps.into_iter().map(|r| r.0).collect(),
    }
}

/// Runs the workload under all four schemes (Figure 5).
pub fn run_all(cfg: &RunCfg) -> Vec<UdpSatResult> {
    SchemeKind::ALL
        .into_iter()
        .map(|s| run_scheme(s, cfg))
        .collect()
}
