//! The sparse-station optimisation experiment (Figure 8): a fourth
//! station receives only a ping flow while the other three carry bulk
//! traffic; latency is compared with the optimisation enabled/disabled.

use serde::Serialize;
use wifiq_mac::{SchemeKind, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::{Cdf, Summary};
use wifiq_traffic::TrafficApp;

use crate::runner::{run_seeds, RunCfg};
use crate::scenario::{self, EXTRA};
use crate::udp_sat::SAT_RATE_BPS;

/// The bulk workload carried by the three busy stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BulkKind {
    /// Saturating downstream UDP.
    Udp,
    /// Bulk TCP download.
    Tcp,
}

impl BulkKind {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            BulkKind::Udp => "UDP",
            BulkKind::Tcp => "TCP",
        }
    }
}

/// Result of one (bulk kind × optimisation setting) cell.
#[derive(Debug, Clone, Serialize)]
pub struct SparseCell {
    /// Bulk workload label.
    pub bulk: String,
    /// Whether the sparse-station optimisation was enabled.
    pub enabled: bool,
    /// RTT summary for the ping-only station, ms.
    pub summary: Summary,
    /// RTT CDF, ms.
    pub cdf: Cdf,
}

/// Runs one cell of the Figure 8 matrix under the airtime-fair scheme.
pub fn run_cell(bulk: BulkKind, enabled: bool, cfg: &RunCfg) -> SparseCell {
    let config = if enabled { "on" } else { "off" };
    let cell = if bulk == BulkKind::Udp { "udp" } else { "tcp" };
    // Ping RTTs in ms, one vector per repetition.
    let reps: Vec<Vec<f64>> = run_seeds("sparse", cell, config, cfg, |seed| {
        let mut net_cfg = scenario::testbed4(SchemeKind::AirtimeFair, seed);
        if !enabled {
            net_cfg = scenario::without_sparse(net_cfg);
        }
        let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
        let mut app = TrafficApp::new();
        let ping = app.add_ping(EXTRA, Nanos::ZERO);
        for sta in 0..3 {
            match bulk {
                BulkKind::Udp => {
                    app.add_udp_down(sta, SAT_RATE_BPS, Nanos::ZERO);
                }
                BulkKind::Tcp => {
                    app.add_tcp_down(sta, Nanos::ZERO);
                }
            }
        }
        app.install(&mut net);
        net.run(cfg.duration, &mut app);
        app.ping(ping)
            .rtts_after(cfg.warmup)
            .iter()
            .map(|r| r.as_millis_f64())
            .collect()
    });
    let rtts_ms: Vec<f64> = reps.into_iter().flatten().collect();
    SparseCell {
        bulk: bulk.label().to_string(),
        enabled,
        summary: Summary::of(&rtts_ms),
        cdf: Cdf::of(&rtts_ms, 200),
    }
}

/// Runs the full 2×2 matrix (UDP/TCP × enabled/disabled).
pub fn run_all(cfg: &RunCfg) -> Vec<SparseCell> {
    let mut cells = Vec::new();
    for bulk in [BulkKind::Udp, BulkKind::Tcp] {
        for enabled in [true, false] {
            cells.push(run_cell(bulk, enabled, cfg));
        }
    }
    cells
}
