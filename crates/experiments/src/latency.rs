//! Latency under load (Figures 1 and 4): ICMP ping with simultaneous bulk
//! TCP traffic, per scheme, for a fast and the slow station.

use serde::Serialize;
use wifiq_mac::{SchemeKind, WifiNetwork};
use wifiq_stats::{Cdf, Summary};
use wifiq_traffic::TrafficApp;

use crate::runner::{run_seeds, RunCfg};
use crate::scenario::{self, FAST1, SLOW};

/// Latency distribution for one station class under one scheme.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyDist {
    /// Summary statistics in milliseconds.
    pub summary: Summary,
    /// Empirical CDF (ms, probability), downsampled.
    pub cdf: Cdf,
}

impl LatencyDist {
    fn of(samples_ms: &[f64]) -> LatencyDist {
        LatencyDist {
            summary: Summary::of(samples_ms),
            cdf: Cdf::of(samples_ms, 200),
        }
    }
}

/// One scheme's latency result.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeLatency {
    /// Scheme label.
    pub scheme: String,
    /// Fast-station ping RTT distribution.
    pub fast: LatencyDist,
    /// Slow-station ping RTT distribution.
    pub slow: LatencyDist,
}

/// Runs the Figure 4 workload (ping + TCP download to every station)
/// under one scheme; `bidir` adds simultaneous uploads (the online
/// appendix variant mentioned in §4.1.1).
pub fn run_scheme(scheme: SchemeKind, cfg: &RunCfg, bidir: bool) -> SchemeLatency {
    let config = if bidir { "bidir" } else { "down" };
    // (fast RTTs, slow RTTs) in ms, one tuple per repetition.
    let reps: Vec<(Vec<f64>, Vec<f64>)> =
        run_seeds("latency", scheme.slug(), config, cfg, |seed| {
            let net_cfg = scenario::testbed3(scheme, seed);
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let mut app = TrafficApp::new();
            let ping_fast = app.add_ping(FAST1, wifiq_sim::Nanos::ZERO);
            let ping_slow = app.add_ping(SLOW, wifiq_sim::Nanos::ZERO);
            for sta in 0..3 {
                app.add_tcp_down(sta, wifiq_sim::Nanos::ZERO);
                if bidir {
                    app.add_tcp_up(sta, wifiq_sim::Nanos::ZERO);
                }
            }
            app.install(&mut net);
            net.run(cfg.duration, &mut app);
            let rtts = |flow| -> Vec<f64> {
                app.ping(flow)
                    .rtts_after(cfg.warmup)
                    .iter()
                    .map(|r| r.as_millis_f64())
                    .collect()
            };
            (rtts(ping_fast), rtts(ping_slow))
        });
    let fast_ms: Vec<f64> = reps.iter().flat_map(|r| r.0.iter().copied()).collect();
    let slow_ms: Vec<f64> = reps.iter().flat_map(|r| r.1.iter().copied()).collect();
    SchemeLatency {
        scheme: scheme.label().to_string(),
        fast: LatencyDist::of(&fast_ms),
        slow: LatencyDist::of(&slow_ms),
    }
}

/// Runs all four schemes (Figure 4; Figure 1 is the FIFO-vs-modified
/// subset of the same data).
pub fn run_all(cfg: &RunCfg, bidir: bool) -> Vec<SchemeLatency> {
    SchemeKind::ALL
        .into_iter()
        .map(|s| run_scheme(s, cfg, bidir))
        .collect()
}
