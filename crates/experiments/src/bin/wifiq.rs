//! `wifiq` — a configurable scenario runner for the simulated testbed.
//!
//! Build any station mix, pick a queue-management scheme and a traffic
//! mix, and get airtime/latency/throughput summaries — without writing a
//! new experiment binary.
//!
//! ```text
//! wifiq --scheme airtime --stations mcs15,mcs15,mcs0 --traffic tcp --secs 30
//! wifiq --scheme fifo --stations mcs15x5,1mbps --traffic udp:50 --ping 0
//! wifiq --scheme fqmac --stations vht9x2 --traffic web
//! ```
//!
//! Argument parsing is hand-rolled: the workspace's dependency policy
//! (DESIGN.md §5) keeps external crates to the approved list, and the
//! grammar here is small enough that a parser dependency would outweigh
//! the code it replaces.

use wifiq_experiments::report::{pct, Table};
use wifiq_experiments::scenario_file::{InstalledTraffic, ScenarioFile};
use wifiq_mac::{NetworkConfig, SchemeKind, StationMeter, WifiNetwork};
use wifiq_phy::PhyRate;
use wifiq_sim::Nanos;
use wifiq_stats::{jain_index, Summary};
use wifiq_traffic::{TrafficApp, WebPage};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Traffic {
    TcpDown,
    TcpBidir,
    /// Mbps per station.
    Udp(u64),
    Web,
}

struct Args {
    scheme: SchemeKind,
    stations: Vec<PhyRate>,
    traffic: Traffic,
    secs: u64,
    seed: u64,
    ping: Option<usize>,
    station_fq: bool,
    rate_control: bool,
}

fn usage() -> ! {
    eprintln!(
        "wifiq — simulate a WiFi network under the paper's queue-management schemes

USAGE:
    wifiq [OPTIONS]

OPTIONS:
    --scheme <fifo|fqcodel|fqmac|airtime>   AP scheme (default: airtime)
    --stations <spec,spec,...>              station rates (default: mcs15,mcs15,mcs0)
                                            spec: mcsN | mcsNxK (K copies) | 1mbps..54mbps | vhtN | vhtNx2
    --traffic <tcp|tcp-bidir|udp[:MBPS]|web> workload (default: tcp)
    --secs <N>                              simulated seconds (default: 20)
    --seed <N>                              RNG seed (default: 1)
    --ping <STA>                            add a 10 Hz ping to station STA
    --station-fq                            FQ-CoDel on client uplinks
    --rate-control                          Minstrel rate control at the AP
    --config <FILE.json>                    run a scenario file instead
                                            (see crates/experiments/src/scenario_file.rs)
    --help                                  this text

EXAMPLES:
    wifiq --scheme fifo --stations mcs15,mcs15,mcs0 --traffic udp:100 --ping 0
    wifiq --scheme airtime --stations mcs15x28,1mbps --traffic tcp --secs 30"
    );
    std::process::exit(2);
}

fn parse_station(spec: &str) -> Result<Vec<PhyRate>, String> {
    let (base, count) = match spec.split_once('x') {
        Some((b, k)) => {
            let k: usize = k.parse().map_err(|_| format!("bad count in '{spec}'"))?;
            if k == 0 {
                return Err(format!("station count must be positive in '{spec}'"));
            }
            (b, k)
        }
        None => (spec, 1),
    };
    let rate = wifiq_experiments::scenario_file::parse_rate(base)?;
    Ok(vec![rate; count])
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scheme: SchemeKind::AirtimeFair,
        stations: vec![
            PhyRate::fast_station(),
            PhyRate::fast_station(),
            PhyRate::slow_station(),
        ],
        traffic: Traffic::TcpDown,
        secs: 20,
        seed: 1,
        ping: None,
        station_fq: false,
        rate_control: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => usage(),
            "--scheme" => {
                args.scheme = match value(&mut i)?.as_str() {
                    "fifo" => SchemeKind::Fifo,
                    "fqcodel" => SchemeKind::FqCodelQdisc,
                    "fqmac" => SchemeKind::FqMac,
                    "airtime" => SchemeKind::AirtimeFair,
                    s => return Err(format!("unknown scheme '{s}'")),
                }
            }
            "--stations" => {
                args.stations = value(&mut i)?
                    .split(',')
                    .map(parse_station)
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .flatten()
                    .collect();
                if args.stations.is_empty() {
                    return Err("need at least one station".into());
                }
            }
            "--traffic" => {
                let v = value(&mut i)?;
                args.traffic = if v == "tcp" {
                    Traffic::TcpDown
                } else if v == "tcp-bidir" {
                    Traffic::TcpBidir
                } else if v == "web" {
                    Traffic::Web
                } else if let Some(rest) = v.strip_prefix("udp") {
                    let mbps = match rest.strip_prefix(':') {
                        Some(m) => m.parse().map_err(|_| format!("bad UDP rate '{m}'"))?,
                        None => 100,
                    };
                    Traffic::Udp(mbps)
                } else {
                    return Err(format!("unknown traffic '{v}'"));
                };
            }
            "--secs" => args.secs = value(&mut i)?.parse().map_err(|_| "bad --secs")?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--ping" => args.ping = Some(value(&mut i)?.parse().map_err(|_| "bad --ping")?),
            "--station-fq" => args.station_fq = true,
            "--rate-control" => args.rate_control = true,
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
        i += 1;
    }
    if let Some(p) = args.ping {
        if p >= args.stations.len() {
            return Err(format!("--ping {p}: no such station"));
        }
    }
    Ok(args)
}

/// Runs a scenario file and prints per-component results.
fn run_config(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario = ScenarioFile::from_json(&text)?;
    let mut built = scenario.build()?;
    let duration = built.duration;
    let warmup = duration / 6;
    built.run_to(warmup);
    let before: Vec<StationMeter> = built.net.meter().all().to_vec();
    built.run_to(duration);

    println!(
        "wifiq: scenario {path} | {} | {} stations | {} s
",
        built.net.scheme(),
        built.net.config().num_stations(),
        duration.as_millis() / 1000
    );
    let n = built.net.config().num_stations();
    let deltas: Vec<StationMeter> = built
        .net
        .meter()
        .all()
        .iter()
        .zip(&before)
        .map(|(l, e)| wifiq_experiments::runner::meter_delta(l, e))
        .collect();
    let total_air: f64 = deltas
        .iter()
        .map(|m| m.total_airtime().as_nanos() as f64)
        .sum();
    let mut t = Table::new(vec!["Station", "Airtime share", "Mean aggr"]);
    let mut shares = Vec::new();
    for (sta, d) in deltas.iter().enumerate().take(n) {
        let share = if total_air > 0.0 {
            d.total_airtime().as_nanos() as f64 / total_air
        } else {
            0.0
        };
        shares.push(share);
        t.row(vec![
            sta.to_string(),
            pct(share),
            format!("{:.1}", d.mean_aggregation()),
        ]);
    }
    t.print();
    println!(
        "
Jain's airtime fairness index: {:.3}
",
        jain_index(&shares)
    );

    let secs = (duration - warmup).as_secs_f64();
    for (i, traffic) in built.traffic.iter().enumerate() {
        match traffic {
            InstalledTraffic::Tcp(h) => {
                let b = built.app.tcp(*h).bytes_between(warmup, duration);
                println!(
                    "traffic[{i}] tcp: {:.1} Mbps (station {})",
                    b as f64 * 8.0 / secs / 1e6,
                    built.app.tcp(*h).station
                );
            }
            InstalledTraffic::Udp(h) => {
                let b = built.app.udp(*h).bytes_between(warmup, duration);
                println!(
                    "traffic[{i}] udp: {:.1} Mbps delivered (station {})",
                    b as f64 * 8.0 / secs / 1e6,
                    built.app.udp(*h).station
                );
            }
            InstalledTraffic::Ping(h) => {
                let rtts: Vec<f64> = built
                    .app
                    .ping(*h)
                    .rtts_after(warmup)
                    .iter()
                    .map(|r| r.as_millis_f64())
                    .collect();
                let s = Summary::of(&rtts);
                println!(
                    "traffic[{i}] ping: median {:.1} ms, p95 {:.1} ms (station {})",
                    s.median,
                    s.p95,
                    built.app.ping(*h).station
                );
            }
            InstalledTraffic::Voip(h) => {
                let delays = built.app.voip(*h).delays_after(warmup);
                let sent = ((duration - warmup).as_millis() / 20) as usize;
                let m = wifiq_stats::VoipMetrics::from_delays(&delays, sent.max(delays.len()));
                println!(
                    "traffic[{i}] voip: MOS {:.2} (delay {:.1} ms, loss {:.1}%) (station {})",
                    m.mos(),
                    m.mean_delay_ms,
                    m.loss * 100.0,
                    built.app.voip(*h).station
                );
            }
            InstalledTraffic::Web(h) => match built.app.web(*h).plt {
                Some(plt) => println!(
                    "traffic[{i}] web: PLT {:.3} s (station {})",
                    plt.as_secs_f64(),
                    built.app.web(*h).station
                ),
                None => println!("traffic[{i}] web: did not complete"),
            },
        }
    }
    Ok(())
}

fn main() {
    // Scenario-file mode takes over entirely.
    let argv: Vec<String> = std::env::args().collect();
    if let Some(pos) = argv.iter().position(|a| a == "--config") {
        let Some(path) = argv.get(pos + 1) else {
            eprintln!("error: --config needs a file");
            std::process::exit(2);
        };
        if argv.len() != 3 {
            eprintln!(
                "error: --config replaces all other options (the scenario \
                 file carries the full configuration)"
            );
            std::process::exit(2);
        }
        if let Err(e) = run_config(path) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n(run with --help for usage)");
            std::process::exit(2);
        }
    };

    let mut builder = NetworkConfig::builder()
        .scheme(args.scheme)
        .seed(args.seed)
        .station_fq(args.station_fq)
        .rate_control(args.rate_control);
    for &r in &args.stations {
        builder = builder.station(r);
    }
    let cfg = builder.build();
    let n = cfg.num_stations();

    let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(cfg);
    let mut app = TrafficApp::with_seed(args.seed);
    let mut tcps = Vec::new();
    let mut udps = Vec::new();
    let mut webs = Vec::new();
    for sta in 0..n {
        match args.traffic {
            Traffic::TcpDown => tcps.push(app.add_tcp_down(sta, Nanos::ZERO)),
            Traffic::TcpBidir => {
                tcps.push(app.add_tcp_down(sta, Nanos::ZERO));
                tcps.push(app.add_tcp_up(sta, Nanos::ZERO));
            }
            Traffic::Udp(mbps) => udps.push(app.add_udp_down(sta, mbps * 1_000_000, Nanos::ZERO)),
            Traffic::Web => webs.push(app.add_web(sta, WebPage::small(), Nanos::ZERO)),
        }
    }
    let ping = args.ping.map(|sta| app.add_ping(sta, Nanos::ZERO));
    app.install(&mut net);

    let duration = Nanos::from_secs(args.secs);
    let warmup = duration / 6;
    net.run(warmup, &mut app);
    let before: Vec<StationMeter> = net.meter().all().to_vec();
    net.run(duration, &mut app);

    println!(
        "wifiq: {} | {} stations | {:?} | {} s (seed {})\n",
        args.scheme, n, args.traffic, args.secs, args.seed
    );
    let window_secs = (duration - warmup).as_secs_f64();
    let deltas: Vec<StationMeter> = net
        .meter()
        .all()
        .iter()
        .zip(&before)
        .map(|(l, e)| wifiq_experiments::runner::meter_delta(l, e))
        .collect();
    let total_air: f64 = deltas
        .iter()
        .map(|m| m.total_airtime().as_nanos() as f64)
        .sum();

    let mut t = Table::new(vec![
        "Station",
        "Rate",
        "Airtime",
        "Goodput (Mbps)",
        "Mean aggr",
    ]);
    let mut shares = Vec::new();
    for sta in 0..n {
        let share = if total_air > 0.0 {
            deltas[sta].total_airtime().as_nanos() as f64 / total_air
        } else {
            0.0
        };
        shares.push(share);
        let goodput = match args.traffic {
            Traffic::TcpDown => {
                app.tcp(tcps[sta]).bytes_between(warmup, duration) as f64 * 8.0 / window_secs
            }
            Traffic::TcpBidir => {
                (app.tcp(tcps[2 * sta]).bytes_between(warmup, duration)
                    + app.tcp(tcps[2 * sta + 1]).bytes_between(warmup, duration))
                    as f64
                    * 8.0
                    / window_secs
            }
            Traffic::Udp(_) => {
                app.udp(udps[sta]).bytes_between(warmup, duration) as f64 * 8.0 / window_secs
            }
            Traffic::Web => 0.0,
        };
        t.row(vec![
            sta.to_string(),
            args.stations[sta].to_string(),
            pct(share),
            format!("{:.1}", goodput / 1e6),
            format!("{:.1}", deltas[sta].mean_aggregation()),
        ]);
    }
    t.print();
    println!(
        "\nJain's airtime fairness index: {:.3}",
        jain_index(&shares)
    );

    if let Some(ping) = ping {
        let rtts: Vec<f64> = app
            .ping(ping)
            .rtts_after(warmup)
            .iter()
            .map(|r| r.as_millis_f64())
            .collect();
        let s = Summary::of(&rtts);
        println!(
            "Ping (station {}): median {:.1} ms, p95 {:.1} ms, n={}",
            args.ping.expect("checked"),
            s.median,
            s.p95,
            s.count
        );
    }
    if args.traffic == Traffic::Web {
        for (sta, w) in webs.iter().enumerate() {
            match app.web(*w).plt {
                Some(plt) => println!("Web PLT (station {sta}): {:.3} s", plt.as_secs_f64()),
                None => println!("Web PLT (station {sta}): did not complete"),
            }
        }
    }
}
