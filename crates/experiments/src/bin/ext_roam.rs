//! Extension experiment: inter-BSS roaming. What does mid-flow mobility
//! cost an airtime-fair shard set, and does the windowed-lockstep engine
//! keep its determinism guarantee under load?
//!
//! Sweeps hand-off rate (mean dwell) × roster size × rate asymmetry
//! (uniform fast palette vs the fast/slow mix that re-rolls each roamer's
//! MCS on arrival) through [`wifiq_roam::RoamSet`]: every BSS runs a
//! saturating downlink flood to whatever schedule stations currently sit
//! on it, and delivered bytes are attributed per *schedule station* so a
//! station's share follows it across BSS boundaries.
//!
//! Four gates back the roaming contract:
//!
//! - **Fairness survives mobility**: post-settle Jain over per-station
//!   delivered bytes ≥ 0.9 on every uniform-palette point (byte shares
//!   under an asymmetric palette are only fair time-averaged over many
//!   re-rolls, so those rows report but do not gate).
//! - **Reassociation is bounded**: the longest observed gap (including
//!   window quantisation) stays ≤ 1 s.
//! - **Nothing leaks**: after a dedicated ≥ 10k hand-off soak, schedule
//!   stations are conserved, every departure has reassociated, per-shard
//!   slot tables stay bounded by the roster, and the coordinator's
//!   `roam/*` telemetry mirrors its stats exactly.
//! - **Policy survives hand-offs**: on a policied single-BSS roster every
//!   roam lands back inside its slot's policy node with the exact
//!   pre-roam weight (the multi-BSS engine starts from empty rosters, so
//!   its landings all take the neutral-fallback path by construction).
//! - **Worker count is invisible**: the same run on 1 and 4 workers must
//!   produce byte-identical telemetry rollups
//!   (`results/roam_rollup_seq.json` vs `results/roam_rollup_par.json`;
//!   CI `cmp`s the artifacts this binary already compared).
//!
//! Results land in `results/BENCH_roam.json`.

use std::collections::BTreeMap;
use std::time::Instant;

use wifiq_experiments::report::{results_dir, write_json, Table};
use wifiq_experiments::runner::{mean, run_seeds};
use wifiq_experiments::RunCfg;
use wifiq_mac::{
    App, Commands, Delivery, NetworkConfig, NodeAddr, Packet, SchemeKind, StationIdx, WifiNetwork,
};
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_policy::PolicySet;
use wifiq_roam::{BssHost, RoamCfg, RoamRun, RoamSet, SoloRoam};
use wifiq_scale::ShardCtx;
use wifiq_sim::Nanos;
use wifiq_stats::jain_index;
use wifiq_telemetry::{Label, Registry, Telemetry};

const PKT_LEN: u64 = 1200;
const TICK: Nanos = Nanos::from_millis(1);

/// Downlink flood to whatever slots are currently associated, with
/// delivered bytes attributed to *schedule* stations (the identity that
/// survives hand-offs), not slots.
#[derive(Default)]
struct RoamFlood {
    /// slot → schedule station, maintained from roster notifications.
    slots: BTreeMap<StationIdx, u32>,
    /// schedule station → delivered bytes (cumulative).
    bytes: BTreeMap<u32, u64>,
    /// `bytes` frozen at the settle boundary.
    settled: Option<BTreeMap<u32, u64>>,
    pkts: u64,
    sent: u64,
}

impl App<()> for RoamFlood {
    fn on_packet(&mut self, at: Delivery, pkt: Packet<()>, _now: Nanos, _cmds: &mut Commands<()>) {
        if let Delivery::AtStation(slot) = at {
            // Attribute to the current occupant; a frame landing in the
            // gap after its addressee left is dropped by the MAC before
            // it reaches us, so the map lookup cannot misattribute.
            if let Some(&sta) = self.slots.get(&slot) {
                *self.bytes.entry(sta).or_insert(0) += pkt.len;
                self.pkts += 1;
            }
        }
    }

    fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
        for &slot in self.slots.keys() {
            self.sent += 1;
            cmds.send(Packet {
                id: self.sent,
                src: NodeAddr::Server,
                dst: NodeAddr::Station(slot),
                flow: slot as u64,
                len: PKT_LEN,
                ac: AccessCategory::Be,
                created: now,
                enqueued: now,
                payload: (),
            });
        }
        cmds.set_timer(token, now + TICK);
    }
}

struct Host {
    net: WifiNetwork<()>,
    app: RoamFlood,
    tele: Telemetry,
    settle: Nanos,
}

impl BssHost for Host {
    type M = ();
    fn net_mut(&mut self) -> &mut WifiNetwork<()> {
        &mut self.net
    }
    fn advance(&mut self, until: Nanos) {
        self.net.run(until, &mut self.app);
        // All shards cross the settle point at the same lockstep
        // boundary, so the per-shard snapshots are mutually consistent.
        if self.app.settled.is_none() && until >= self.settle {
            self.app.settled = Some(self.app.bytes.clone());
        }
    }
    fn station_arrived(&mut self, station: u32, slot: StationIdx) {
        self.app.slots.insert(slot, station);
    }
    fn station_departed(&mut self, _station: u32, slot: StationIdx) {
        self.app.slots.remove(&slot);
    }
}

/// One shard's contribution after a run.
#[derive(Debug, PartialEq)]
struct ShardOut {
    /// Post-settle delivered bytes per schedule station on this shard.
    bytes: BTreeMap<u32, u64>,
    total_bytes: u64,
    active: usize,
    /// Live slot-map entries at the end (must equal `active`).
    mapped: usize,
    slots: usize,
    roam_drops: u64,
}

fn build_host(ctx: &ShardCtx, settle: Nanos, metrics: bool) -> Host {
    // Engine-managed nets must start with an empty roster, and a policy
    // tree cannot reference stations that do not exist yet — so every
    // multi-BSS landing takes the neutral-fallback path here. The
    // policy-reattach path is exercised by `policy_check` on a
    // pre-populated single-BSS network.
    let cfg = NetworkConfig::builder()
        .scheme(SchemeKind::AirtimeFair)
        .seed(ctx.seed)
        .build();
    let mut net: WifiNetwork<()> = WifiNetwork::new(cfg);
    let tele = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    net.set_telemetry(tele.clone());
    net.seed_timer(0, Nanos::ZERO);
    Host {
        net,
        app: RoamFlood::default(),
        tele,
        settle,
    }
}

fn finish_host(_shard: u32, host: Host) -> (ShardOut, Option<Registry>) {
    let settled = host.app.settled.unwrap_or_default();
    let bytes = host
        .app
        .bytes
        .iter()
        .map(|(&sta, &b)| (sta, b - settled.get(&sta).copied().unwrap_or(0)))
        .collect();
    (
        ShardOut {
            bytes,
            total_bytes: host.app.bytes.values().sum(),
            active: host.net.active_stations(),
            mapped: host.app.slots.len(),
            slots: host.net.station_slots(),
            roam_drops: host.net.roam_drops(),
        },
        host.tele.take_registry(),
    )
}

/// Sums each schedule station's post-settle bytes across the shards it
/// visited, in schedule-station order over the whole roster.
fn station_shares(run: &RoamRun<ShardOut>, roster: usize) -> Vec<f64> {
    let mut per_sta = vec![0u64; roster];
    for out in &run.outputs {
        for (&sta, &b) in &out.bytes {
            per_sta[sta as usize] += b;
        }
    }
    per_sta.iter().map(|&b| b as f64).collect()
}

#[derive(serde::Serialize)]
struct Row {
    bss: u32,
    roster: usize,
    dwell_ms: u64,
    palette: &'static str,
    handoffs: u64,
    roam_drops: u64,
    migrated_frames: u64,
    deferred: u64,
    max_reassoc_ms: f64,
    policy_reattach: u64,
    neutral_fallback: u64,
    jain_post_settle: f64,
    throughput_mbps: f64,
    wall_ms: f64,
}

fn palette_rates(palette: &'static str) -> Vec<PhyRate> {
    match palette {
        "uniform" => vec![PhyRate::fast_station()],
        _ => vec![PhyRate::fast_station(), PhyRate::slow_station()],
    }
}

fn roam_set(
    bss: u32,
    roster: usize,
    dwell: Nanos,
    palette: &'static str,
    seed: u64,
    workers: usize,
) -> RoamSet {
    RoamSet::new(bss, seed)
        .with_roster(roster)
        .with_roam(RoamCfg {
            mean_dwell: dwell,
            rate_palette: palette_rates(palette),
            ..RoamCfg::default()
        })
        .with_window(Nanos::from_millis(50))
        .with_workers(workers)
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    bss: u32,
    roster: usize,
    dwell: Nanos,
    palette: &'static str,
    settle: Nanos,
    duration: Nanos,
    cfg: &RunCfg,
) -> Row {
    let cell = format!("{bss}bss_{roster}sta");
    let config = format!(
        "{}ms_{palette}_{}ms",
        dwell.as_millis(),
        duration.as_millis()
    );
    let workers = cfg.jobs.max(1);
    // (per-station post-settle bytes, handoffs, roam drops, migrated,
    //  deferred, max reassoc ns, reattach/fallback packed, wall ms).
    type Rep = (Vec<u64>, u64, u64, u64, u64, u64, Vec<u64>, f64);
    let reps: Vec<Rep> = run_seeds("ext_roam", &cell, &config, cfg, |seed| {
        let wall = Instant::now();
        let run = roam_set(bss, roster, dwell, palette, seed, workers).run(
            duration,
            |ctx| build_host(ctx, settle, false),
            finish_host,
        );
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let shares: Vec<u64> = station_shares(&run, roster)
            .iter()
            .map(|&b| b as u64)
            .collect();
        (
            shares,
            run.stats.handoffs,
            run.stats.roam_drops,
            run.stats.migrated_frames,
            run.stats.deferred,
            run.stats.max_reassoc.as_nanos(),
            vec![run.stats.policy_reattach, run.stats.neutral_fallback],
            wall_ms,
        )
    });
    let window = (duration - settle).as_secs_f64();
    let jains: Vec<f64> = reps
        .iter()
        .map(|r| jain_index(&r.0.iter().map(|&b| b as f64).collect::<Vec<_>>()))
        .collect();
    let mbps: Vec<f64> = reps
        .iter()
        .map(|r| r.0.iter().sum::<u64>() as f64 * 8.0 / window / 1e6)
        .collect();
    let n = reps.len() as u64;
    Row {
        bss,
        roster,
        dwell_ms: dwell.as_millis(),
        palette,
        handoffs: reps.iter().map(|r| r.1).sum::<u64>() / n,
        roam_drops: reps.iter().map(|r| r.2).sum::<u64>() / n,
        migrated_frames: reps.iter().map(|r| r.3).sum::<u64>() / n,
        deferred: reps.iter().map(|r| r.4).sum::<u64>() / n,
        max_reassoc_ms: reps.iter().map(|r| r.5).max().unwrap_or(0) as f64 / 1e6,
        policy_reattach: reps.iter().map(|r| r.6[0]).sum::<u64>() / n,
        neutral_fallback: reps.iter().map(|r| r.6[1]).sum::<u64>() / n,
        jain_post_settle: mean(&jains),
        throughput_mbps: mean(&mbps),
        wall_ms: mean(&reps.iter().map(|r| r.7).collect::<Vec<_>>()),
    }
}

/// The leak soak: hammer hand-offs until the coordinator has executed at
/// least `target` of them, then audit every conservation invariant.
fn leak_check(target: u64, seed: u64) -> (u64, bool) {
    let (bss, roster) = (4u32, 16usize);
    let dwell = Nanos::from_millis(20);
    let cfg = RoamCfg {
        mean_dwell: dwell,
        reassoc_min: Nanos::from_millis(5),
        reassoc_max: Nanos::from_millis(15),
        rate_palette: palette_rates("mixed"),
    };
    // Each station cycles in roughly dwell + reassoc + one lockstep
    // window; size the run from that rate with headroom to spare.
    let cycle_ms = 20 + 10 + 50;
    let secs = (target * cycle_ms).div_ceil(roster as u64 * 1000) * 2;
    let settle = Nanos::from_millis(200);
    let run = RoamSet::new(bss, seed)
        .with_roster(roster)
        .with_roam(cfg)
        .with_window(Nanos::from_millis(25))
        .with_workers(4)
        .run(
            Nanos::from_secs(secs.max(1)),
            |ctx| build_host(ctx, settle, false),
            finish_host,
        );

    let active: usize = run.outputs.iter().map(|o| o.active).sum();
    let mapped_ok = run.outputs.iter().all(|o| o.mapped == o.active);
    let slots_ok = run.outputs.iter().all(|o| o.slots <= roster);
    let drops: u64 = run.outputs.iter().map(|o| o.roam_drops).sum();
    let landed = run.stats.policy_reattach + run.stats.neutral_fallback;
    let tele_ok = run.registry.counter("roam", "handoffs", Label::Global) == run.stats.handoffs;

    let mut ok = true;
    let mut fail = |what: &str| {
        eprintln!("leak check FAILED: {what}");
        ok = false;
    };
    if run.stats.handoffs < target {
        fail(&format!(
            "soak too quiet: {} hand-offs < {target} target",
            run.stats.handoffs
        ));
    }
    if active != roster {
        fail(&format!("{active} active stations != roster {roster}"));
    }
    if !mapped_ok {
        fail("a shard's roster map disagrees with its network");
    }
    if !slots_ok {
        fail("a shard's slot table outgrew the roster (slots leaked)");
    }
    if landed != run.stats.handoffs {
        fail(&format!(
            "{} departures but {landed} reassociations — a station is lost in transit",
            run.stats.handoffs
        ));
    }
    if drops != run.stats.roam_drops {
        fail("shard-side roam_drops disagree with the coordinator's");
    }
    if !tele_ok {
        fail("roam/* telemetry does not mirror the coordinator stats");
    }
    println!(
        "leak soak: {} hand-offs over {}s sim — roster conserved, \
         slot tables bounded, telemetry mirrored: {}",
        run.stats.handoffs,
        secs.max(1),
        if ok { "ok" } else { "VIOLATED" }
    );
    (run.stats.handoffs, ok)
}

/// Steady downlink flood over a fixed slot range; sends to a slot whose
/// occupant is mid-hand-off are dropped (and counted) by the network.
struct SoloFlood {
    slots: usize,
    sent: u64,
}

impl App<()> for SoloFlood {
    fn on_packet(&mut self, _: Delivery, _: Packet<()>, _: Nanos, _: &mut Commands<()>) {}
    fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
        for slot in 0..self.slots {
            self.sent += 1;
            cmds.send(Packet {
                id: self.sent,
                src: NodeAddr::Server,
                dst: NodeAddr::Station(slot),
                flow: slot as u64,
                len: PKT_LEN,
                ac: AccessCategory::Be,
                created: now,
                enqueued: now,
                payload: (),
            });
        }
        cmds.set_timer(token, now + TICK);
    }
}

/// The policy-reattach path: on a single BSS whose roster carries an
/// asymmetric flat policy, every hand-off must land back inside its
/// slot's policy node with the slot's exact pre-roam weight — no
/// neutral fallbacks, no weight drift.
fn policy_check(seed: u64) -> bool {
    let roster = 6usize;
    let weights: Vec<u32> = (0..roster as u32).map(|i| 1 + 3 * (i % 2)).collect();
    let cfg = NetworkConfig::builder()
        .scheme(SchemeKind::AirtimeFair)
        .stations_at(roster, PhyRate::fast_station())
        .policy(PolicySet::flat(&weights))
        .seed(seed)
        .build();
    let mut net: WifiNetwork<()> = WifiNetwork::new(cfg);
    net.seed_timer(0, Nanos::ZERO);
    let expect: Vec<Option<u32>> = (0..roster)
        .map(|i| {
            net.sta_id(i)
                .and_then(|id| net.station_ac_weight(id, AccessCategory::Be))
        })
        .collect();
    let mut app = SoloFlood {
        slots: roster,
        sent: 0,
    };
    let mut roam = SoloRoam::new(
        RoamCfg {
            mean_dwell: Nanos::from_millis(100),
            ..RoamCfg::default()
        },
        seed,
        roster,
    );
    roam.run_until(&mut net, Nanos::from_secs(3), &mut app);

    let s = roam.stats;
    let landed_ok =
        s.policy_reattach + s.neutral_fallback + roam.in_transit() as u64 + s.skipped == s.handoffs;
    let weights_ok = (0..roster).all(|slot| {
        !net.station_active(slot)
            || net
                .sta_id(slot)
                .and_then(|id| net.station_ac_weight(id, AccessCategory::Be))
                == expect[slot]
    });
    let ok = s.handoffs >= 20
        && s.neutral_fallback == 0
        && s.policy_reattach > 0
        && landed_ok
        && weights_ok;
    println!(
        "policy reattach: {} hand-offs on a policied BSS — {} reattached, \
         {} neutral, slot weights restored: {}",
        s.handoffs,
        s.policy_reattach,
        s.neutral_fallback,
        if weights_ok { "ok" } else { "VIOLATED" }
    );
    if !ok {
        eprintln!("policy reattach check FAILED: {s:?}");
    }
    ok
}

/// The lockstep determinism guarantee, executed: the same roaming run on
/// one worker vs four must produce byte-identical rollups.
fn determinism_check(duration: Nanos, settle: Nanos, seed: u64) -> bool {
    let rollup = |workers: usize| {
        roam_set(4, 8, Nanos::from_millis(200), "mixed", seed, workers).run(
            duration,
            |ctx| build_host(ctx, settle, true),
            finish_host,
        )
    };
    let a = rollup(1);
    let b = rollup(4);
    let seq = a.registry.to_json().pretty();
    let par = b.registry.to_json().pretty();
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("roam_rollup_seq.json"), &seq).expect("write seq rollup");
    std::fs::write(dir.join("roam_rollup_par.json"), &par).expect("write par rollup");
    let identical = seq == par && a.stats == b.stats && a.outputs == b.outputs;
    if identical {
        println!(
            "determinism: 4 BSS / 8 roamers, {} hand-offs — 1-worker and \
             4-worker rollups byte-identical ({} bytes)",
            a.stats.handoffs,
            seq.len()
        );
    } else {
        eprintln!("determinism check FAILED: worker count leaked into the rollup");
    }
    identical
}

#[derive(serde::Serialize)]
struct Gates {
    jain_min_uniform: f64,
    jain_ok: bool,
    max_reassoc_ms: f64,
    reassoc_ok: bool,
    soak_handoffs: u64,
    leaks_ok: bool,
    policy_ok: bool,
    rollup_identical: bool,
}

#[derive(serde::Serialize)]
struct Bench {
    rows: Vec<Row>,
    gates: Gates,
}

fn main() {
    let cfg = RunCfg::from_env();
    let quick = std::env::var("WIFIQ_QUICK").is_ok_and(|v| v == "1");
    let (settle, duration, soak_target) = if quick {
        (Nanos::from_millis(500), Nanos::from_secs(2), 1_000)
    } else {
        (Nanos::from_secs(1), Nanos::from_secs(8), 10_000)
    };
    println!(
        "Extension: inter-BSS roaming — hand-off rate x roster x rate \
         asymmetry over the windowed-lockstep engine ({} reps x {}ms sim)\n",
        cfg.reps,
        duration.as_millis()
    );

    // (bss, roster, dwell, palette)
    let grid: &[(u32, usize, u64, &'static str)] = if quick {
        &[
            (2, 4, 500, "uniform"),
            (2, 4, 500, "mixed"),
            (4, 8, 250, "uniform"),
            (4, 8, 250, "mixed"),
        ]
    } else {
        &[
            (2, 4, 1000, "uniform"),
            (2, 4, 1000, "mixed"),
            (4, 8, 1000, "uniform"),
            (4, 8, 1000, "mixed"),
            (4, 8, 250, "uniform"),
            (4, 8, 250, "mixed"),
            (4, 16, 500, "uniform"),
            (8, 24, 500, "mixed"),
        ]
    };
    let rows: Vec<Row> = grid
        .iter()
        .map(|&(bss, roster, dwell_ms, palette)| {
            run_point(
                bss,
                roster,
                Nanos::from_millis(dwell_ms),
                palette,
                settle,
                duration,
                &cfg,
            )
        })
        .collect();

    let mut t = Table::new(vec![
        "BSS",
        "Roster",
        "Dwell (ms)",
        "Palette",
        "Hand-offs",
        "Drops",
        "Migrated",
        "Reassoc max (ms)",
        "Jain",
        "Mbps",
        "Wall (ms)",
    ]);
    for r in &rows {
        t.row(vec![
            r.bss.to_string(),
            r.roster.to_string(),
            r.dwell_ms.to_string(),
            r.palette.to_string(),
            r.handoffs.to_string(),
            r.roam_drops.to_string(),
            r.migrated_frames.to_string(),
            format!("{:.1}", r.max_reassoc_ms),
            format!("{:.3}", r.jain_post_settle),
            format!("{:.1}", r.throughput_mbps),
            format!("{:.0}", r.wall_ms),
        ]);
    }
    t.print();
    println!();

    let (soak_handoffs, leaks_ok) = leak_check(soak_target, cfg.base_seed);
    let policy_ok = policy_check(cfg.base_seed);
    let rollup_identical =
        determinism_check(duration.min(Nanos::from_secs(2)), settle, cfg.base_seed);

    let jain_min_uniform = rows
        .iter()
        .filter(|r| r.palette == "uniform")
        .map(|r| r.jain_post_settle)
        .fold(f64::INFINITY, f64::min);
    let jain_ok = jain_min_uniform >= 0.9;
    let max_reassoc_ms = rows.iter().map(|r| r.max_reassoc_ms).fold(0.0, f64::max);
    let reassoc_ok = max_reassoc_ms <= 1_000.0;

    let gates = Gates {
        jain_min_uniform,
        jain_ok,
        max_reassoc_ms,
        reassoc_ok,
        soak_handoffs,
        leaks_ok,
        policy_ok,
        rollup_identical,
    };
    let ok = gates.jain_ok
        && gates.reassoc_ok
        && gates.leaks_ok
        && gates.policy_ok
        && gates.rollup_identical;

    println!(
        "\nGates: Jain post-settle min {:.3} (>= 0.9: {}), reassoc max \
         {:.1} ms (<= 1000: {}), {} hand-off soak leak-free {}, policy \
         reattach {}, rollup byte-identical {}.",
        jain_min_uniform,
        jain_ok,
        max_reassoc_ms,
        reassoc_ok,
        soak_handoffs,
        leaks_ok,
        policy_ok,
        rollup_identical,
    );
    write_json("BENCH_roam", &Bench { rows, gates });
    if !ok {
        eprintln!("\next_roam: one or more gates violated (see above).");
        std::process::exit(1);
    }
}
