//! Extension experiment: hot-path cost trajectory.
//!
//! Times the per-operation cost of every structure on the packet hot
//! path — the MAC FQ enqueue/dequeue pair at several roster sizes, the
//! overload drop-from-longest regime, the telemetry-enabled pair (the
//! pre-resolved handle fast path), the simulator event queue's front-lane
//! and spill regimes, and the full network event loop — and writes them
//! to `results/BENCH_hotpath.json`, the repo's persistent perf-trajectory
//! artifact. CI re-emits the file on every run, archives it, and gates
//! the `fq_ns_per_pkt` row against the checked-in baseline
//! (`scripts/bench_hotpath_baseline.json`, compared by
//! `scripts/check_bench.py` with a 50% regression tolerance — wide
//! enough for cross-machine and shared-runner noise, tight enough to
//! catch a reintroduced linear scan).
//!
//! # Artifact schema
//!
//! `BENCH_hotpath.json` is a JSON array of rows, one per timed case:
//!
//! ```json
//! [{"case": "fq_ns_per_pkt", "ns_per_op": 64.8, "ops": 200000}, ...]
//! ```
//!
//! * `case` — stable identifier; new cases may be appended, existing
//!   names must keep their meaning so trajectories stay comparable.
//! * `ns_per_op` — wall-clock nanoseconds per operation: the mean over
//!   one repetition's operations, minimum across [`REPS`] repetitions.
//! * `ops` — operations timed in the reported repetition.
//!
//! Unlike the sim artifacts these numbers are wall-clock measurements and
//! are NOT expected to be byte-identical across runs; they are trend
//! data, not determinism fixtures. `run_all` may serve this cell's
//! *console output* from the harness cache, but CI's dedicated
//! benchmark step invokes the binary directly, so the archived artifact
//! is always a fresh measurement.

use std::time::Instant;

use wifiq_codel::CodelParams;
use wifiq_core::fq::{FqParams, MacFq};
use wifiq_experiments::report::{write_json, Table};
use wifiq_mac::{
    App, Commands, Delivery, NetworkConfig, NodeAddr, Packet, SchemeKind, WifiNetwork,
};
use wifiq_phy::AccessCategory;
use wifiq_sim::{EventQueue, Nanos};
use wifiq_telemetry::Telemetry;

const PKT_LEN: u64 = 1500;

fn pkt(flow: u64, id: u64, t: Nanos) -> Packet<()> {
    Packet {
        id,
        src: NodeAddr::Server,
        dst: NodeAddr::Station((flow as usize) % 4096),
        flow,
        len: PKT_LEN,
        ac: AccessCategory::Be,
        created: t,
        enqueued: t,
        payload: (),
    }
}

/// Steady-state FQ cost: one enqueue+dequeue pair per packet, packets
/// round-robined over one TID per station. The telemetry variant
/// exercises the pre-resolved handle fast path.
fn fq_pair_ns(stations: usize, pairs: usize, tele: Option<Telemetry>) -> (f64, u64) {
    let mut fq: MacFq<Packet<()>> = MacFq::new(FqParams {
        flows: 4096,
        limit: 16384,
        ..FqParams::default()
    });
    if let Some(t) = tele {
        fq.set_telemetry(t, "fq");
    }
    let tids: Vec<_> = (0..stations).map(|_| fq.register_tid()).collect();
    let params = CodelParams::wifi_default();
    let batch = 1024.min(pairs);
    let rounds = pairs.div_ceil(batch);
    let mut id = 0u64;
    let mut done = 0u64;
    let start = Instant::now();
    for r in 0..rounds {
        let base = r * batch;
        for k in 0..batch {
            let i = (base + k) % stations;
            id += 1;
            fq.enqueue(
                pkt(i as u64, id, Nanos::from_nanos(id)),
                tids[i],
                Nanos::from_nanos(id),
            );
        }
        for k in 0..batch {
            let i = (base + k) % stations;
            std::hint::black_box(fq.dequeue(tids[i], Nanos::from_nanos(id), &params));
        }
        done += batch as u64;
    }
    (start.elapsed().as_nanos() as f64 / done as f64, done)
}

/// Overload regime: the structure is pinned at its global limit, so every
/// enqueue triggers a drop-from-longest-queue — the paper's Algorithm 1
/// eviction, served by the intrusive longest-queue heap.
fn fq_overload_ns(ops: usize) -> (f64, u64) {
    const DISTINCT: u64 = 256;
    let mut fq: MacFq<Packet<()>> = MacFq::new(FqParams {
        flows: 1024,
        limit: 256,
        quantum: 300,
        ..FqParams::default()
    });
    let tid = fq.register_tid();
    let now = Nanos::ZERO;
    for i in 0..256u64 {
        fq.enqueue(pkt(i % DISTINCT, i, now), tid, now);
    }
    let mut id = 256u64;
    let start = Instant::now();
    for _ in 0..ops {
        id += 1;
        std::hint::black_box(fq.enqueue(pkt(id % DISTINCT, id, now), tid, now));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// Event queue cost per push+pop. `spill` = false keeps every push in
/// time order (the front-lane fast path of TX-completion chains);
/// `spill` = true jitters push times so the heap lane and the spill path
/// are exercised.
fn event_queue_ns(ops: usize, spill: bool) -> (f64, u64) {
    let mut q: EventQueue<u64> = EventQueue::new();
    // Keep ~64 events live so pops interleave with pushes.
    for i in 0..64u64 {
        q.push(Nanos::from_nanos(i * 100), i);
    }
    let start = Instant::now();
    for i in 0..ops as u64 {
        let (t, _) = q.pop().expect("queue kept non-empty");
        let at = if spill {
            // Deterministic jitter: pushes land out of order, forcing
            // front-lane spills into the heap.
            t + Nanos::from_nanos((i.wrapping_mul(2_654_435_761)) % 5_000)
        } else {
            // In-order: each push lands at/after every pending event
            // (the TX-completion-chain pattern), so the FIFO front lane
            // absorbs it without touching the heap.
            t + Nanos::from_nanos(64 * 100)
        };
        std::hint::black_box(q.push(at.max(q.now()), i));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// Downlink flood app for the end-to-end event-loop measurement.
struct Flood {
    next_id: u64,
    stations: usize,
}

impl App<()> for Flood {
    fn on_packet(
        &mut self,
        _at: Delivery,
        _pkt: Packet<()>,
        _now: Nanos,
        _cmds: &mut Commands<()>,
    ) {
    }

    fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
        for i in 0..self.stations {
            self.next_id += 1;
            cmds.send(Packet {
                id: self.next_id,
                src: NodeAddr::Server,
                dst: NodeAddr::Station(i),
                flow: i as u64 + 1,
                len: PKT_LEN,
                ac: AccessCategory::Be,
                created: now,
                enqueued: now,
                payload: (),
            });
        }
        cmds.set_timer(token, now + Nanos::from_micros(200));
    }
}

/// Full MAC event loop: ns of wall time per processed event on the
/// saturated paper testbed (covers contention, aggregation with the
/// recycled frame pool, and the reused command buffer).
fn mac_event_ns(sim: Nanos) -> (f64, u64) {
    let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
    let mut net: WifiNetwork<()> = WifiNetwork::new(cfg);
    let mut app = Flood {
        next_id: 0,
        stations: 3,
    };
    net.seed_timer(0, Nanos::ZERO);
    let start = Instant::now();
    net.run(sim, &mut app);
    let events = net.events_processed;
    (start.elapsed().as_nanos() as f64 / events as f64, events)
}

#[derive(serde::Serialize)]
struct Row {
    case: &'static str,
    ns_per_op: f64,
    ops: u64,
}

/// Repetitions per case; the minimum is reported. The min is the
/// standard noise floor for wall-clock microbenchmarks — scheduler
/// preemption and cache pollution only ever add time, so the fastest
/// repetition is the closest to the structure's true cost, which is
/// what the CI gate needs to compare stably across runs.
const REPS: usize = 3;

fn best_of(mut f: impl FnMut() -> (f64, u64)) -> (f64, u64) {
    let mut best = f();
    for _ in 1..REPS {
        let run = f();
        if run.0 < best.0 {
            best = run;
        }
    }
    best
}

fn main() {
    let quick = std::env::var("WIFIQ_QUICK").is_ok_and(|v| v == "1");
    let (pairs, ov_ops, eq_ops, sim) = if quick {
        (100_000, 50_000, 200_000, Nanos::from_millis(200))
    } else {
        (400_000, 200_000, 1_000_000, Nanos::from_secs(1))
    };
    println!(
        "Extension: hot-path cost trajectory ({} pairs per FQ case)\n",
        pairs
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut push = |case: &'static str, (ns, ops): (f64, u64)| {
        rows.push(Row {
            case,
            ns_per_op: ns,
            ops,
        });
    };

    // The CI-gated headline number: steady-state FQ pair cost at the
    // paper-scale roster.
    push("fq_ns_per_pkt", best_of(|| fq_pair_ns(256, pairs, None)));
    push(
        "fq_pair_16_stations",
        best_of(|| fq_pair_ns(16, pairs, None)),
    );
    push(
        "fq_pair_1024_stations",
        best_of(|| fq_pair_ns(1024, pairs, None)),
    );
    push(
        "fq_overload_drop_longest",
        best_of(|| fq_overload_ns(ov_ops)),
    );
    push(
        "fq_pair_telemetry_on",
        best_of(|| fq_pair_ns(256, pairs, Some(Telemetry::enabled()))),
    );
    push(
        "event_queue_front_lane",
        best_of(|| event_queue_ns(eq_ops, false)),
    );
    push(
        "event_queue_spill",
        best_of(|| event_queue_ns(eq_ops, true)),
    );
    push("mac_event_loop", best_of(|| mac_event_ns(sim)));

    let mut t = Table::new(vec!["Case", "ns/op", "Ops"]);
    for r in &rows {
        t.row(vec![
            r.case.to_string(),
            format!("{:.1}", r.ns_per_op),
            r.ops.to_string(),
        ]);
    }
    t.print();

    write_json("BENCH_hotpath", &rows);
    let headline = rows
        .iter()
        .find(|r| r.case == "fq_ns_per_pkt")
        .expect("headline row present");
    println!(
        "\nhotpath summary: cases={} fq_ns_per_pkt={:.1}",
        rows.len(),
        headline.ns_per_op
    );
}
