//! Extension experiment: hot-path cost trajectory.
//!
//! Times the per-operation cost of every structure on the packet hot
//! path — the MAC FQ enqueue/dequeue pair at several roster sizes, the
//! overload drop-from-longest regime, the telemetry-enabled pair (the
//! pre-resolved handle fast path), the simulator event queue's front-lane
//! and spill regimes, and the full network event loop — and writes them
//! to `results/BENCH_hotpath.json`, the repo's persistent perf-trajectory
//! artifact. CI re-emits the file on every run, archives it, and gates
//! the `fq_ns_per_pkt`, `event_wheel_*`, `event_queue_spill`, and
//! `pkts_wall_s` rows against the checked-in baseline
//! (`scripts/bench_hotpath_baseline.json`, compared by
//! `scripts/check_bench.py` with a 50% regression tolerance — wide
//! enough for cross-machine and shared-runner noise, tight enough to
//! catch a reintroduced linear scan), plus the in-binary
//! wheel-vs-reference-heap speedup floor on the spill schedule.
//!
//! # Artifact schema
//!
//! `BENCH_hotpath.json` is a JSON array of rows, one per timed case:
//!
//! ```json
//! [{"case": "fq_ns_per_pkt", "ns_per_op": 64.8, "ops": 200000}, ...]
//! ```
//!
//! * `case` — stable identifier; new cases may be appended, existing
//!   names must keep their meaning so trajectories stay comparable.
//! * `ns_per_op` — wall-clock nanoseconds per operation: the mean over
//!   one repetition's operations, minimum across [`REPS`] repetitions.
//!   `null` on rate rows.
//! * `rate_per_s` — operations per wall-clock second (higher is better);
//!   non-null only on throughput rows (`pkts_wall_s`).
//! * `ops` — operations timed in the reported repetition. Op counts are
//!   pinned per mode (quick/full), so a row's `ops` always matches the
//!   baseline capture at the same mode — ns/op comparisons are only
//!   meaningful at equal working-set sizes.
//!
//! Every case runs one discarded warmup repetition before the timed
//! ones: without it, the first repetition of each case paid the page
//! faults and cache displacement of whatever ran before it, and the
//! reported numbers shifted by double-digit percents when cases were
//! reordered.
//!
//! The `event_queue_spill_refheap` case times the pre-wheel two-lane
//! heap (`ReferenceQueue`, kept as the property-test oracle) on exactly
//! the jittered schedule `event_queue_spill` runs on the wheel — the
//! same binary, same pattern, same machine — so the wheel-vs-heap
//! speedup gate in `check_bench.py` is apples-to-apples rather than a
//! cross-machine comparison against a quoted number.
//!
//! Unlike the sim artifacts these numbers are wall-clock measurements and
//! are NOT expected to be byte-identical across runs; they are trend
//! data, not determinism fixtures. `run_all` may serve this cell's
//! *console output* from the harness cache, but CI's dedicated
//! benchmark step invokes the binary directly, so the archived artifact
//! is always a fresh measurement.

use std::time::Instant;

use wifiq_codel::CodelParams;
use wifiq_core::fq::{FqParams, MacFq};
use wifiq_experiments::report::{write_json, Table};
use wifiq_mac::{
    App, Commands, Delivery, NetworkConfig, NodeAddr, Packet, SchemeKind, WifiNetwork,
};
use wifiq_phy::AccessCategory;
use wifiq_sim::{EventQueue, Nanos, ReferenceQueue};
use wifiq_telemetry::Telemetry;

const PKT_LEN: u64 = 1500;

fn pkt(flow: u64, id: u64, t: Nanos) -> Packet<()> {
    Packet {
        id,
        src: NodeAddr::Server,
        dst: NodeAddr::Station((flow as usize) % 4096),
        flow,
        len: PKT_LEN,
        ac: AccessCategory::Be,
        created: t,
        enqueued: t,
        payload: (),
    }
}

/// Steady-state FQ cost: one enqueue+dequeue pair per packet, packets
/// round-robined over one TID per station. The telemetry variant
/// exercises the pre-resolved handle fast path.
fn fq_pair_ns(stations: usize, pairs: usize, tele: Option<Telemetry>) -> (f64, u64) {
    let mut fq: MacFq<Packet<()>> = MacFq::new(FqParams {
        flows: 4096,
        limit: 16384,
        ..FqParams::default()
    });
    if let Some(t) = tele {
        fq.set_telemetry(t, "fq");
    }
    let tids: Vec<_> = (0..stations).map(|_| fq.register_tid()).collect();
    let params = CodelParams::wifi_default();
    let batch = 1024.min(pairs);
    let rounds = pairs.div_ceil(batch);
    let mut id = 0u64;
    let mut done = 0u64;
    let start = Instant::now();
    for r in 0..rounds {
        let base = r * batch;
        for k in 0..batch {
            let i = (base + k) % stations;
            id += 1;
            fq.enqueue(
                pkt(i as u64, id, Nanos::from_nanos(id)),
                tids[i],
                Nanos::from_nanos(id),
            );
        }
        for k in 0..batch {
            let i = (base + k) % stations;
            std::hint::black_box(fq.dequeue(tids[i], Nanos::from_nanos(id), &params));
        }
        done += batch as u64;
    }
    (start.elapsed().as_nanos() as f64 / done as f64, done)
}

/// Overload regime: the structure is pinned at its global limit, so every
/// enqueue triggers a drop-from-longest-queue — the paper's Algorithm 1
/// eviction, served by the intrusive longest-queue heap.
fn fq_overload_ns(ops: usize) -> (f64, u64) {
    const DISTINCT: u64 = 256;
    let mut fq: MacFq<Packet<()>> = MacFq::new(FqParams {
        flows: 1024,
        limit: 256,
        quantum: 300,
        ..FqParams::default()
    });
    let tid = fq.register_tid();
    let now = Nanos::ZERO;
    for i in 0..256u64 {
        fq.enqueue(pkt(i % DISTINCT, i, now), tid, now);
    }
    let mut id = 256u64;
    let start = Instant::now();
    for _ in 0..ops {
        id += 1;
        std::hint::black_box(fq.enqueue(pkt(id % DISTINCT, id, now), tid, now));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// Event queue cost per push+pop. `spill` = false keeps every push in
/// time order (the front-lane fast path of TX-completion chains);
/// `spill` = true jitters push times so the heap lane and the spill path
/// are exercised.
fn event_queue_ns(ops: usize, spill: bool) -> (f64, u64) {
    let mut q: EventQueue<u64> = EventQueue::new();
    // Keep ~64 events live so pops interleave with pushes.
    for i in 0..64u64 {
        q.push(Nanos::from_nanos(i * 100), i);
    }
    let start = Instant::now();
    for i in 0..ops as u64 {
        let (t, _) = q.pop().expect("queue kept non-empty");
        let at = if spill {
            // Deterministic jitter: pushes land out of order, forcing
            // front-lane spills into the heap.
            t + Nanos::from_nanos((i.wrapping_mul(2_654_435_761)) % 5_000)
        } else {
            // In-order: each push lands at/after every pending event
            // (the TX-completion-chain pattern), so the FIFO front lane
            // absorbs it without touching the heap.
            t + Nanos::from_nanos(64 * 100)
        };
        std::hint::black_box(q.push(at.max(q.now()), i));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// The pre-wheel two-lane heap (kept as the oracle for the property
/// tests) on the identical jittered schedule as `event_queue_ns(_,
/// true)` — the in-binary baseline for the wheel-vs-heap speedup gate.
fn refheap_spill_ns(ops: usize) -> (f64, u64) {
    let mut q: ReferenceQueue<u64> = ReferenceQueue::new();
    for i in 0..64u64 {
        q.push(Nanos::from_nanos(i * 100), i);
    }
    let start = Instant::now();
    for i in 0..ops as u64 {
        let (t, _) = q.pop().expect("queue kept non-empty");
        let at = t + Nanos::from_nanos((i.wrapping_mul(2_654_435_761)) % 5_000);
        std::hint::black_box(q.push(at.max(q.now()), i));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// Same-tick burst regime: 64 co-timed events per tick, drained in one
/// `pop_tick` batch — the schedule shape of aggregate completions, where
/// the batched run loop settles the wheel once per tick instead of once
/// per event. ns/op counts each drained event as one op.
fn wheel_same_tick_ns(ops: usize) -> (f64, u64) {
    const BURST: u64 = 64;
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut batch: Vec<u64> = Vec::with_capacity(BURST as usize);
    let mut t = 0u64;
    let mut done = 0u64;
    let start = Instant::now();
    while done < ops as u64 {
        t += 100;
        for i in 0..BURST {
            q.push(Nanos::from_nanos(t), i);
        }
        batch.clear();
        q.pop_tick(Nanos::from_nanos(t), &mut batch);
        std::hint::black_box(&batch);
        done += batch.len() as u64;
    }
    (start.elapsed().as_nanos() as f64 / done as f64, done)
}

/// Deep-backlog spill regime: ~4096 live events (a full level-0 window,
/// so pops continually cross block boundaries and cascade from the upper
/// levels) with jittered pushes.
fn wheel_deep_spill_ns(ops: usize) -> (f64, u64) {
    const LIVE: u64 = 4096;
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..LIVE {
        q.push(Nanos::from_nanos(i * 37), i);
    }
    let start = Instant::now();
    for i in 0..ops as u64 {
        let (t, _) = q.pop().expect("queue kept non-empty");
        let at = t + Nanos::from_nanos((i.wrapping_mul(2_654_435_761)) % (LIVE * 40));
        std::hint::black_box(q.push(at.max(q.now()), i));
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops as u64)
}

/// Downlink flood app for the end-to-end event-loop measurement.
struct Flood {
    next_id: u64,
    stations: usize,
}

impl App<()> for Flood {
    fn on_packet(
        &mut self,
        _at: Delivery,
        _pkt: Packet<()>,
        _now: Nanos,
        _cmds: &mut Commands<()>,
    ) {
    }

    fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
        for i in 0..self.stations {
            self.next_id += 1;
            cmds.send(Packet {
                id: self.next_id,
                src: NodeAddr::Server,
                dst: NodeAddr::Station(i),
                flow: i as u64 + 1,
                len: PKT_LEN,
                ac: AccessCategory::Be,
                created: now,
                enqueued: now,
                payload: (),
            });
        }
        cmds.set_timer(token, now + Nanos::from_micros(200));
    }
}

/// Full MAC event loop on the saturated paper testbed (covers
/// contention, aggregation with the recycled frame pool, the batched
/// same-tick dispatch, and the reused command buffer). Returns
/// `(ns_per_event, events, pkts_per_wall_sec, pkts)` from one run; the
/// two reported rows come from the same run so they describe the same
/// execution.
fn mac_loop_stats(sim: Nanos) -> (f64, u64, f64, u64) {
    let cfg = NetworkConfig::paper_testbed(SchemeKind::AirtimeFair);
    let mut net: WifiNetwork<()> = WifiNetwork::new(cfg);
    let mut app = Flood {
        next_id: 0,
        stations: 3,
    };
    net.seed_timer(0, Nanos::ZERO);
    let start = Instant::now();
    net.run(sim, &mut app);
    let wall = start.elapsed();
    let events = net.events_processed;
    let pkts = app.next_id;
    (
        wall.as_nanos() as f64 / events as f64,
        events,
        pkts as f64 / wall.as_secs_f64(),
        pkts,
    )
}

/// One artifact row. Exactly one of `ns_per_op` / `rate_per_s` is set;
/// the other serialises as `null` (the vendored serde_derive has no
/// field-skipping, so consumers treat a null as "other-kind row").
#[derive(serde::Serialize)]
struct Row {
    case: &'static str,
    ns_per_op: Option<f64>,
    rate_per_s: Option<f64>,
    ops: u64,
}

/// Repetitions per case; the minimum is reported. The min is the
/// standard noise floor for wall-clock microbenchmarks — scheduler
/// preemption and cache pollution only ever add time, so the fastest
/// repetition is the closest to the structure's true cost, which is
/// what the CI gate needs to compare stably across runs.
const REPS: usize = 3;

fn best_of(mut f: impl FnMut() -> (f64, u64)) -> (f64, u64) {
    // One discarded warmup repetition per case: the first run otherwise
    // pays the page faults and cache displacement of whatever case ran
    // before it, so reordering cases in `main` shifted reported numbers
    // by double-digit percents.
    let _ = std::hint::black_box(f());
    let mut best = f();
    for _ in 1..REPS {
        let run = f();
        if run.0 < best.0 {
            best = run;
        }
    }
    best
}

fn main() {
    let quick = std::env::var("WIFIQ_QUICK").is_ok_and(|v| v == "1");
    let (pairs, ov_ops, eq_ops, sim) = if quick {
        (100_000, 50_000, 200_000, Nanos::from_millis(200))
    } else {
        (400_000, 200_000, 1_000_000, Nanos::from_secs(1))
    };
    println!(
        "Extension: hot-path cost trajectory ({} pairs per FQ case)\n",
        pairs
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut push = |case: &'static str, (ns, ops): (f64, u64)| {
        rows.push(Row {
            case,
            ns_per_op: Some(ns),
            rate_per_s: None,
            ops,
        });
    };

    // The CI-gated headline number: steady-state FQ pair cost at the
    // paper-scale roster.
    push("fq_ns_per_pkt", best_of(|| fq_pair_ns(256, pairs, None)));
    push(
        "fq_pair_16_stations",
        best_of(|| fq_pair_ns(16, pairs, None)),
    );
    push(
        "fq_pair_1024_stations",
        best_of(|| fq_pair_ns(1024, pairs, None)),
    );
    push(
        "fq_overload_drop_longest",
        best_of(|| fq_overload_ns(ov_ops)),
    );
    push(
        "fq_pair_telemetry_on",
        best_of(|| fq_pair_ns(256, pairs, Some(Telemetry::enabled()))),
    );
    push(
        "event_queue_front_lane",
        best_of(|| event_queue_ns(eq_ops, false)),
    );
    push(
        "event_queue_spill",
        best_of(|| event_queue_ns(eq_ops, true)),
    );
    push(
        "event_queue_spill_refheap",
        best_of(|| refheap_spill_ns(eq_ops)),
    );
    push(
        "event_wheel_same_tick",
        best_of(|| wheel_same_tick_ns(eq_ops)),
    );
    push(
        "event_wheel_deep_spill",
        best_of(|| wheel_deep_spill_ns(eq_ops)),
    );

    // The end-to-end rows share one execution: pick the repetition with
    // the best per-event cost and report its packet rate alongside.
    let mac = {
        let _ = std::hint::black_box(mac_loop_stats(sim));
        let mut best = mac_loop_stats(sim);
        for _ in 1..REPS {
            let run = mac_loop_stats(sim);
            if run.0 < best.0 {
                best = run;
            }
        }
        best
    };
    push("mac_event_loop", (mac.0, mac.1));
    rows.push(Row {
        case: "pkts_wall_s",
        ns_per_op: None,
        rate_per_s: Some(mac.2),
        ops: mac.3,
    });

    let mut t = Table::new(vec!["Case", "ns/op", "rate/s", "Ops"]);
    for r in &rows {
        t.row(vec![
            r.case.to_string(),
            r.ns_per_op
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            r.rate_per_s
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.ops.to_string(),
        ]);
    }
    t.print();

    write_json("BENCH_hotpath", &rows);
    let headline = rows
        .iter()
        .find(|r| r.case == "fq_ns_per_pkt")
        .and_then(|r| r.ns_per_op)
        .expect("headline row present");
    println!(
        "\nhotpath summary: cases={} fq_ns_per_pkt={:.1}",
        rows.len(),
        headline
    );
}
