//! Extension experiment: robustness under channel errors.
//!
//! The paper's model and clean-channel testbed assume essentially no
//! transmission errors; real deployments see plenty. This experiment
//! injects per-exchange error probabilities at the slow station and
//! checks that the airtime scheduler's fairness and latency advantages
//! survive — retries burn the lossy station's own airtime budget (§3.2:
//! deficits are charged "including any retries"), not everyone else's.
//!
//! Loss is injected through the `wifiq-chaos` fault schedule (a
//! whole-run uniform-loss window at the slow station) rather than the
//! old per-station `ErrorModel::Fixed` knob. Chaos draws its loss
//! decisions from a private RNG stream, so absolute numbers drift
//! slightly from results archived before the port; the qualitative
//! gates (flat fast-station latency under the airtime scheduler) are
//! unchanged.

use wifiq_experiments::report::{pct, write_json, Table};
use wifiq_experiments::runner::{mean, meter_delta, run_seeds, shares_of};
use wifiq_experiments::{scenario, RunCfg};
use wifiq_mac::{FaultEntry, FaultTarget, Impairment, SchemeKind, StationMeter, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::Summary;
use wifiq_traffic::TrafficApp;

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    error_pct: u32,
    slow_share: f64,
    fast_median_ms: f64,
    total_mbps: f64,
}

fn run(scheme: SchemeKind, err: f64, cfg: &RunCfg) -> Row {
    let error_pct = (err * 100.0).round() as u32;
    let config = format!("err{error_pct}");
    // (slow share, fast RTTs in ms, total Mbps) per repetition.
    let reps: Vec<(f64, Vec<f64>, f64)> =
        run_seeds("ext_lossy_channel", scheme.slug(), &config, cfg, |seed| {
            let mut net_cfg = scenario::testbed3(scheme, seed);
            if err > 0.0 {
                net_cfg.faults.push(FaultEntry::new(
                    Nanos::ZERO,
                    cfg.duration,
                    FaultTarget::Station(scenario::SLOW),
                    Impairment::uniform_loss(err),
                ));
            }
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let mut app = TrafficApp::new();
            let ping = app.add_ping(scenario::FAST1, Nanos::ZERO);
            let tcps: Vec<_> = (0..3).map(|s| app.add_tcp_down(s, Nanos::ZERO)).collect();
            app.install(&mut net);
            net.run(cfg.warmup, &mut app);
            let before: Vec<StationMeter> = net.meter().all().to_vec();
            net.run(cfg.duration, &mut app);
            let window: Vec<StationMeter> = net
                .meter()
                .all()
                .iter()
                .zip(&before)
                .map(|(l, e)| meter_delta(l, e))
                .collect();
            let fast_ms: Vec<f64> = app
                .ping(ping)
                .rtts_after(cfg.warmup)
                .iter()
                .map(|r| r.as_millis_f64())
                .collect();
            let secs = cfg.window().as_secs_f64();
            let total = tcps
                .iter()
                .map(|t| app.tcp(*t).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
                .sum::<f64>()
                / 1e6;
            (shares_of(&window)[scenario::SLOW], fast_ms, total)
        });
    let fast_ms: Vec<f64> = reps.iter().flat_map(|r| r.1.iter().copied()).collect();
    Row {
        scheme: scheme.label().to_string(),
        error_pct,
        slow_share: mean(&reps.iter().map(|r| r.0).collect::<Vec<_>>()),
        fast_median_ms: Summary::of(&fast_ms).median,
        total_mbps: mean(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
    }
}

fn main() {
    let cfg = RunCfg::from_env();
    println!(
        "Extension: channel errors at the slow station, TCP download \
         ({} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Fifo, SchemeKind::AirtimeFair] {
        for err in [0.0, 0.1, 0.3] {
            rows.push(run(scheme, err, &cfg));
        }
    }
    let mut t = Table::new(vec![
        "Scheme",
        "Slow error",
        "Slow airtime share",
        "Fast ping median (ms)",
        "Total (Mbps)",
    ]);
    for r in &rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{}%", r.error_pct),
            pct(r.slow_share),
            format!("{:.1}", r.fast_median_ms),
            format!("{:.1}", r.total_mbps),
        ]);
    }
    t.print();
    println!(
        "\nThe loss is internalised: retries are charged to the lossy\n\
         station's own deficit (and its TCP backs off when retries are\n\
         exhausted), so the fast stations' latency stays flat under the\n\
         airtime scheduler while FIFO's stays an order of magnitude worse\n\
         at every error rate."
    );
    write_json("ext_lossy_channel", &rows);
}
