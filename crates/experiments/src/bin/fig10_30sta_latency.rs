//! Figure 10: latency distributions in the 30-station TCP test.

use wifiq_experiments::report::{ascii_cdf_labeled, write_json, Table};
use wifiq_experiments::{thirty, RunCfg};

fn main() {
    let mut cfg = RunCfg::from_env();
    if std::env::var("WIFIQ_REPS").is_err() {
        cfg.reps = 3;
    }
    println!(
        "Figure 10: latency for the 30-station TCP test ({} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let results = thirty::run_all(&cfg);
    let mut t = Table::new(vec![
        "Scheme",
        "Station",
        "median(ms)",
        "p95(ms)",
        "mean(ms)",
    ]);
    for r in &results {
        for (label, s) in [("fast", &r.fast_latency), ("slow", &r.slow_latency)] {
            t.row(vec![
                r.scheme.clone(),
                label.to_string(),
                format!("{:.1}", s.median),
                format!("{:.1}", s.p95),
                format!("{:.1}", s.mean),
            ]);
        }
    }
    t.print();

    println!("\nLatency CDF (ms, log scale):\n");
    let series: Vec<(String, &[(f64, f64)])> = results
        .iter()
        .flat_map(|r| {
            [
                (format!("Fast - {}", r.scheme), r.fast_cdf.points.as_slice()),
                (format!("Slow - {}", r.scheme), r.slow_cdf.points.as_slice()),
            ]
        })
        .collect();
    print!("{}", ascii_cdf_labeled(&series, 72, 18));
    wifiq_experiments::report::write_csv_cdf("fig10_30sta_cdf", &series);

    println!(
        "\nPaper: airtime fairness improves fast-station latency, worsens the \
         slow station's by an order of magnitude, and halves the average."
    );
    write_json("fig10_30sta_latency", &results);
}
