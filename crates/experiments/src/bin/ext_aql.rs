//! Extension experiment: Airtime Queue Limits (AQL) — the mainline
//! (kernel 5.5) continuation of this paper's work.
//!
//! Even with the MAC FQ structure and the airtime scheduler, a slow
//! station's aggregates sitting in the two-deep hardware queue add
//! head-of-line latency for everyone else. AQL caps the airtime any one
//! station may hold in the hardware; frames past the cap wait in the MAC
//! FQ where CoDel and the scheduler govern them.

use wifiq_experiments::report::{write_json, Table};
use wifiq_experiments::RunCfg;
use wifiq_mac::{NetworkConfig, SchemeKind, WifiNetwork};
use wifiq_phy::{LegacyRate, PhyRate};
use wifiq_sim::Nanos;
use wifiq_stats::Summary;
use wifiq_traffic::TrafficApp;

#[derive(serde::Serialize)]
struct Row {
    aql_ms: Option<u64>,
    fast_median_ms: f64,
    fast_p95_ms: f64,
    slow_goodput_mbps: f64,
    total_mbps: f64,
}

fn run(aql: Option<Nanos>, cfg: &RunCfg) -> Row {
    let config = aql.map_or("off".to_string(), |a| format!("{}ms", a.as_millis()));
    // (fast RTTs in ms, slow Mbps, total Mbps) per repetition.
    let reps: Vec<(Vec<f64>, f64, f64)> =
        wifiq_experiments::runner::run_seeds("ext_aql", &config, "", cfg, |seed| {
            // Two fast stations and a 1 Mbps legacy device — the worst
            // hardware-queue hog the testbed family produces.
            let net_cfg = NetworkConfig::builder()
                .stations_at(2, PhyRate::fast_station())
                .station(PhyRate::Legacy(LegacyRate::Dsss1))
                .scheme(SchemeKind::AirtimeFair)
                .aql(aql)
                .seed(seed)
                .build();
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let mut app = TrafficApp::new();
            let ping = app.add_ping(0, Nanos::ZERO);
            let tcps: Vec<_> = (0..3).map(|s| app.add_tcp_down(s, Nanos::ZERO)).collect();
            app.install(&mut net);
            net.run(cfg.duration, &mut app);
            let fast_ms: Vec<f64> = app
                .ping(ping)
                .rtts_after(cfg.warmup)
                .iter()
                .map(|r| r.as_millis_f64())
                .collect();
            let secs = cfg.window().as_secs_f64();
            let per: Vec<f64> = tcps
                .iter()
                .map(|t| {
                    app.tcp(*t).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs / 1e6
                })
                .collect();
            (fast_ms, per[2], per.iter().sum())
        });
    let fast_ms: Vec<f64> = reps.iter().flat_map(|r| r.0.iter().copied()).collect();
    let s = Summary::of(&fast_ms);
    Row {
        aql_ms: aql.map(|a| a.as_millis()),
        fast_median_ms: s.median,
        fast_p95_ms: s.p95,
        slow_goodput_mbps: wifiq_experiments::runner::mean(
            &reps.iter().map(|r| r.1).collect::<Vec<_>>(),
        ),
        total_mbps: wifiq_experiments::runner::mean(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
    }
}

fn main() {
    let cfg = RunCfg::from_env();
    println!(
        "Extension: airtime queue limits (AQL), 2 fast + one 1 Mbps hog \
         under the airtime scheme ({} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let rows: Vec<Row> = [
        None,
        Some(Nanos::from_millis(12)),
        Some(Nanos::from_millis(5)),
    ]
    .into_iter()
    .map(|aql| run(aql, &cfg))
    .collect();
    let mut t = Table::new(vec![
        "AQL",
        "Fast ping median (ms)",
        "p95 (ms)",
        "Slow goodput (Mbps)",
        "Total (Mbps)",
    ]);
    for r in &rows {
        t.row(vec![
            r.aql_ms.map_or("off".to_string(), |ms| format!("{ms} ms")),
            format!("{:.1}", r.fast_median_ms),
            format!("{:.1}", r.fast_p95_ms),
            format!("{:.2}", r.slow_goodput_mbps),
            format!("{:.1}", r.total_mbps),
        ]);
    }
    t.print();
    println!(
        "\nAQL trims the residual head-of-line latency the hardware queue\n\
         adds behind a slow station's long frames, at no throughput cost —\n\
         the refinement that followed this machinery into kernel 5.5."
    );
    write_json("ext_aql", &rows);
}
