//! Extension experiment: scale-out. How far does the airtime-fair MAC
//! carry beyond the paper's 30-station testbed?
//!
//! Sweeps the roster from 10 to 100,000 stations, decomposed into 1–8
//! independent BSS shards run through [`wifiq_scale::ShardSet`], with and
//! without deterministic station churn ([`wifiq_scale::ChurnDriver`]).
//! Each sweep point records saturated downlink throughput, Jain's
//! fairness index over per-station delivered bytes, simulated packets
//! delivered per wall-clock second, and a per-packet FQ hot-path cost
//! (one enqueue+dequeue pair through [`MacFq`] at that roster size).
//!
//! Two artifact pairs back the determinism guarantees: the same shard
//! decomposition is executed on one worker and on four, and the merged
//! telemetry registries must be byte-identical
//! (`results/scale_rollup_seq.json` vs `results/scale_rollup_par.json`);
//! likewise one uplink-flooded BSS is run with 1 and with 4 intra-shard
//! contention lanes (`results/scale_lanes_seq.json` vs
//! `results/scale_lanes_par.json`). CI `cmp`s both pairs. Results land
//! in `results/BENCH_scale.json`.

use std::time::Instant;

use wifiq_codel::CodelParams;
use wifiq_core::fq::{FqParams, MacFq};
use wifiq_experiments::report::{results_dir, write_json, Table};
use wifiq_experiments::runner::{export_metrics, mean, metrics_enabled, run_seeds};
use wifiq_experiments::RunCfg;
use wifiq_mac::{
    App, Commands, Delivery, NetworkConfig, NodeAddr, Packet, SchemeKind, WifiNetwork,
};
use wifiq_phy::{AccessCategory, PhyRate};
use wifiq_scale::{ChurnCfg, ChurnDriver, ShardCtx, ShardSet};
use wifiq_sim::Nanos;
use wifiq_stats::jain_index;
use wifiq_telemetry::{Registry, Telemetry};

/// Offered-load pacing: a batch of MTU packets every tick, round-robined
/// over the roster. 8 × 1500 B / 500 µs ≈ 192 Mbps — saturating for the
/// fast-station PHY while keeping the event count independent of roster
/// size (per-station timers at 10k stations would swamp the event loop).
const TICK: Nanos = Nanos::from_micros(500);
const BATCH: usize = 8;
const PKT_LEN: u64 = 1500;

/// Downlink flood: server → stations, one flow per station slot, with
/// per-slot delivered-byte accounting. Sends to slots whose occupant has
/// churned away are dropped by the network (and counted there), so the
/// app never needs to track the roster.
struct FloodApp {
    slots: usize,
    cursor: usize,
    next_id: u64,
    bytes: Vec<u64>,
    pkts: u64,
}

impl FloodApp {
    fn new(slots: usize) -> FloodApp {
        FloodApp {
            slots,
            cursor: 0,
            next_id: 0,
            bytes: vec![0; slots],
            pkts: 0,
        }
    }
}

impl App<()> for FloodApp {
    fn on_packet(&mut self, at: Delivery, pkt: Packet<()>, _now: Nanos, _cmds: &mut Commands<()>) {
        if let Delivery::AtStation(i) = at {
            if i >= self.bytes.len() {
                self.bytes.resize(i + 1, 0);
            }
            self.bytes[i] += pkt.len;
            self.pkts += 1;
        }
    }

    fn on_timer(&mut self, _token: u64, now: Nanos, cmds: &mut Commands<()>) {
        for _ in 0..BATCH {
            let dst = self.cursor % self.slots;
            self.cursor += 1;
            self.next_id += 1;
            cmds.send(Packet {
                id: self.next_id,
                src: NodeAddr::Server,
                dst: NodeAddr::Station(dst),
                flow: dst as u64,
                len: PKT_LEN,
                ac: AccessCategory::Be,
                created: now,
                enqueued: now,
                payload: (),
            });
        }
        cmds.set_timer(0, now + TICK);
    }
}

/// One shard's measurement-window results.
struct ShardOut {
    /// Per-slot delivered bytes inside the measurement window.
    bytes: Vec<u64>,
    /// Packets delivered inside the measurement window.
    pkts: u64,
    /// Packets delivered over the whole run (wall-clock rate numerator).
    pkts_total: u64,
    joins: u64,
    leaves: u64,
    churn_drops: u64,
}

fn drive(
    net: &mut WifiNetwork<()>,
    churn: &mut Option<ChurnDriver>,
    until: Nanos,
    app: &mut FloodApp,
) {
    match churn {
        Some(d) => d.run_until(net, until, app),
        None => net.run(until, app),
    }
}

/// Runs one BSS shard: `stations` fast stations under the airtime-fair
/// scheme, flooded downlink, optionally churned. Returns the shard's
/// window stats plus its telemetry registry (when `metrics`).
fn run_shard(
    ctx: &ShardCtx,
    stations: usize,
    churn: bool,
    warmup: Nanos,
    duration: Nanos,
    metrics: bool,
    lanes: usize,
) -> (ShardOut, Option<Registry>) {
    let net_cfg = NetworkConfig::builder()
        .stations_at(stations, PhyRate::fast_station())
        .scheme(SchemeKind::AirtimeFair)
        .seed(ctx.seed)
        .lanes(lanes)
        .build();
    let mut net: WifiNetwork<()> = WifiNetwork::new(net_cfg);
    let tele = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    net.set_telemetry(tele.clone());

    // Start at the roster maximum so slot tables never grow past
    // `stations` (the first churn event is forced to be a leave).
    let mut driver = (churn && stations >= 2).then(|| {
        ChurnDriver::new(
            ChurnCfg {
                mean_interval: Nanos::from_millis(20),
                min_stations: (stations / 2).max(1),
                max_stations: stations,
                ..ChurnCfg::default()
            },
            ctx.seed ^ 0x00C0_FFEE,
        )
    });

    let mut app = FloodApp::new(stations);
    net.seed_timer(0, Nanos::ZERO);
    drive(&mut net, &mut driver, warmup, &mut app);
    let warm_bytes = app.bytes.clone();
    let warm_pkts = app.pkts;
    drive(&mut net, &mut driver, duration, &mut app);

    let bytes = app
        .bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| b - warm_bytes.get(i).copied().unwrap_or(0))
        .collect();
    (
        ShardOut {
            bytes,
            pkts: app.pkts - warm_pkts,
            pkts_total: app.pkts,
            joins: driver.as_ref().map_or(0, |d| d.joins),
            leaves: driver.as_ref().map_or(0, |d| d.leaves),
            churn_drops: net.churn_drops(),
        },
        tele.take_registry(),
    )
}

/// Splits `stations` over `shards` as evenly as possible (early shards
/// take the remainder).
fn split_stations(stations: usize, shards: u32) -> Vec<usize> {
    let shards = shards as usize;
    (0..shards)
        .map(|s| stations / shards + usize::from(s < stations % shards))
        .collect()
}

/// Per-packet FQ hot-path cost at this roster size: one TID per station,
/// packets round-robined over TIDs in batches, timed around the
/// enqueue+dequeue pair. Mirrors `benches/fq_hotpath.rs` but runs inline
/// so every sweep point carries its own number.
fn fq_hotpath_ns(stations: usize) -> f64 {
    let mut fq: MacFq<Packet<()>> = MacFq::new(FqParams {
        flows: 4096,
        limit: 16384,
        ..FqParams::default()
    });
    let tids: Vec<_> = (0..stations).map(|_| fq.register_tid()).collect();
    let params = CodelParams::wifi_default();
    let pkt = |i: usize, id: u64| Packet {
        id,
        src: NodeAddr::Server,
        dst: NodeAddr::Station(i),
        flow: i as u64,
        len: PKT_LEN,
        ac: AccessCategory::Be,
        created: Nanos::ZERO,
        enqueued: Nanos::ZERO,
        payload: (),
    };
    let target_pairs: usize = 200_000;
    let batch = 4096.min(target_pairs);
    let rounds = target_pairs.div_ceil(batch);
    let mut cursor = 0usize;
    let mut id = 0u64;
    let mut done = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        let base = cursor;
        for k in 0..batch {
            let tid = tids[(base + k) % tids.len()];
            id += 1;
            fq.enqueue(pkt((base + k) % tids.len(), id), tid, Nanos::from_nanos(id));
        }
        for k in 0..batch {
            let tid = tids[(base + k) % tids.len()];
            std::hint::black_box(fq.dequeue(tid, Nanos::from_nanos(id), &params));
        }
        cursor += batch;
        done += batch;
    }
    start.elapsed().as_nanos() as f64 / done as f64
}

#[derive(serde::Serialize)]
struct Row {
    stations: usize,
    shards: u32,
    churn: bool,
    throughput_mbps: f64,
    jain: f64,
    pkts_per_wall_sec: f64,
    fq_ns_per_pkt: f64,
    joins: u64,
    leaves: u64,
    churn_drops: u64,
    wall_ms: f64,
}

/// One sweep point: `reps` seeded repetitions of a sharded run (cached
/// and parallelised by the experiment harness), plus the inline FQ
/// hot-path measurement.
#[allow(clippy::too_many_arguments)]
fn run_point(
    stations: usize,
    shards: u32,
    churn: bool,
    warmup: Nanos,
    duration: Nanos,
    cfg: &RunCfg,
) -> Row {
    let cell = format!("{stations}sta");
    let config = format!(
        "{}shard{}_{}ms",
        shards,
        if churn { "_churn" } else { "" },
        duration.as_millis()
    );
    let per_shard = split_stations(stations, shards);
    let workers = cfg.jobs.max(1);
    // (window bytes across shards, window pkts, total pkts, joins,
    //  leaves, churn drops, wall ms) per repetition.
    type Rep = (Vec<u64>, u64, u64, u64, u64, u64, f64);
    let reps: Vec<Rep> = run_seeds("ext_scale", &cell, &config, cfg, |seed| {
        let wall = Instant::now();
        let run = ShardSet::new(shards, seed)
            .with_workers(workers)
            .run(|ctx| {
                // Sweep reps skip per-shard telemetry (the rollup is
                // exercised and exported by the determinism check).
                run_shard(
                    ctx,
                    per_shard[ctx.shard as usize],
                    churn,
                    warmup,
                    duration,
                    false,
                    1,
                )
            });
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let bytes: Vec<u64> = run.outputs.iter().flat_map(|o| o.bytes.clone()).collect();
        let sum = |f: fn(&ShardOut) -> u64| run.outputs.iter().map(f).sum::<u64>();
        (
            bytes,
            sum(|o| o.pkts),
            sum(|o| o.pkts_total),
            sum(|o| o.joins),
            sum(|o| o.leaves),
            sum(|o| o.churn_drops),
            wall_ms,
        )
    });
    let window = (duration - warmup).as_secs_f64();
    let mbps: Vec<f64> = reps
        .iter()
        .map(|r| r.0.iter().sum::<u64>() as f64 * 8.0 / window / 1e6)
        .collect();
    let jains: Vec<f64> = reps
        .iter()
        .map(|r| {
            let shares: Vec<f64> = r.0.iter().map(|&b| b as f64).collect();
            jain_index(&shares)
        })
        .collect();
    let rates: Vec<f64> = reps
        .iter()
        .map(|r| r.2 as f64 / (r.6 / 1e3).max(1e-9))
        .collect();
    Row {
        stations,
        shards,
        churn,
        throughput_mbps: mean(&mbps),
        jain: mean(&jains),
        pkts_per_wall_sec: mean(&rates),
        fq_ns_per_pkt: fq_hotpath_ns(stations),
        joins: reps.iter().map(|r| r.3).sum::<u64>() / reps.len() as u64,
        leaves: reps.iter().map(|r| r.4).sum::<u64>() / reps.len() as u64,
        churn_drops: reps.iter().map(|r| r.5).sum::<u64>() / reps.len() as u64,
        wall_ms: mean(&reps.iter().map(|r| r.6).collect::<Vec<_>>()),
    }
}

/// The sharding determinism guarantee, executed: the same decomposition
/// on one worker vs four must produce byte-identical telemetry rollups.
/// Writes both artifacts for CI to `cmp` and aborts on any divergence.
fn determinism_check(stations: usize, shards: u32, warmup: Nanos, duration: Nanos, seed: u64) {
    let per_shard = split_stations(stations, shards);
    let rollup = |workers: usize| {
        ShardSet::new(shards, seed)
            .with_workers(workers)
            .run(|ctx| {
                // Intra-shard lanes are requested here too; the network
                // collapses them to 1 while telemetry is live (DESIGN.md
                // §14), which is exactly the determinism contract — the
                // config knob must never change results either way. The
                // parallel lane path itself is exercised (telemetry off)
                // by `lanes_determinism_check`.
                run_shard(
                    ctx,
                    per_shard[ctx.shard as usize],
                    true,
                    warmup,
                    duration,
                    true,
                    4,
                )
            })
    };
    let seq_run = rollup(1);
    let seq = seq_run.registry.to_json().pretty();
    let par = rollup(4).registry.to_json().pretty();
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join("scale_rollup_seq.json"), &seq).expect("write seq rollup");
    std::fs::write(dir.join("scale_rollup_par.json"), &par).expect("write par rollup");
    if seq != par {
        eprintln!(
            "determinism check FAILED: {stations} stations / {shards} shards \
             rolled up differently on 1 vs 4 workers"
        );
        std::process::exit(1);
    }
    println!(
        "determinism: {stations} stations / {shards} shards, churned — \
         1-worker and 4-worker rollups byte-identical ({} bytes)",
        seq.len()
    );
    if metrics_enabled() {
        // Re-export the rollup in the standard snapshot format so
        // scripts/check_metrics.py validates the shard-labeled registry.
        let tele = Telemetry::enabled();
        tele.absorb_registry(&seq_run.registry, |l| l);
        export_metrics(&tele, "scale_rollup", seed);
    }
}

/// The intra-shard lane determinism guarantee, executed on the real
/// parallel path: one BSS, uplink-flooded so the contention scan has set
/// bits on every ready-bitmap word, run with 1 lane and then with 4.
/// Telemetry stays off (a live registry collapses lanes to 1, DESIGN.md
/// §14), so the rollup is the airtime meter plus delivered/event counts.
/// Both artifacts are written for CI to `cmp`
/// (`results/scale_lanes_seq.json` vs `results/scale_lanes_par.json`)
/// and any divergence aborts the run.
fn lanes_determinism_check(stations: usize, duration: Nanos, seed: u64) {
    struct UplinkApp {
        stations: usize,
        next_id: u64,
        received: u64,
    }
    impl App<()> for UplinkApp {
        fn on_packet(
            &mut self,
            at: Delivery,
            _pkt: Packet<()>,
            _now: Nanos,
            _cmds: &mut Commands<()>,
        ) {
            if at == Delivery::AtServer {
                self.received += 1;
            }
        }
        fn on_timer(&mut self, token: u64, now: Nanos, cmds: &mut Commands<()>) {
            for i in 0..self.stations {
                self.next_id += 1;
                cmds.send(Packet {
                    id: self.next_id,
                    src: NodeAddr::Station(i),
                    dst: NodeAddr::Server,
                    flow: i as u64,
                    len: 300,
                    ac: AccessCategory::Be,
                    created: now,
                    enqueued: now,
                    payload: (),
                });
            }
            cmds.set_timer(token, now + Nanos::from_millis(5));
        }
    }
    #[derive(serde::Serialize, PartialEq)]
    struct LaneRollup {
        received: u64,
        events: u64,
        airtime_shares: Vec<f64>,
    }
    let run = |lanes: usize| {
        let net_cfg = NetworkConfig::builder()
            .stations_at(stations, PhyRate::fast_station())
            .scheme(SchemeKind::AirtimeFair)
            .seed(seed)
            .lanes(lanes)
            .build();
        let mut net: WifiNetwork<()> = WifiNetwork::new(net_cfg);
        let mut app = UplinkApp {
            stations,
            next_id: 0,
            received: 0,
        };
        net.seed_timer(0, Nanos::ZERO);
        net.run(duration, &mut app);
        LaneRollup {
            received: app.received,
            events: net.events_processed,
            airtime_shares: net.meter().airtime_shares(),
        }
    };
    let seq = run(1);
    let par = run(4);
    write_json("scale_lanes_seq", &seq);
    write_json("scale_lanes_par", &par);
    if seq != par {
        eprintln!(
            "lane determinism check FAILED: {stations} stations produced \
             different results on 1 vs 4 intra-shard lanes"
        );
        std::process::exit(1);
    }
    println!(
        "determinism: {stations} stations, uplink-flooded — 1-lane and \
         4-lane runs byte-identical ({} pkts, {} events)",
        seq.received, seq.events
    );
}

fn main() {
    let cfg = RunCfg::from_env();
    let quick = std::env::var("WIFIQ_QUICK").is_ok_and(|v| v == "1");
    // Scale sweeps set their own (short) windows: the interesting axis is
    // roster size, not duration, and 10k stations at the default 30 s
    // would take hours on one core.
    let (warmup, duration) = if quick {
        (Nanos::from_millis(100), Nanos::from_millis(400))
    } else {
        (Nanos::from_millis(250), Nanos::from_secs(1))
    };
    println!(
        "Extension: scale-out — 10 → 100k stations across 1-8 BSS shards, \
         saturated downlink, with and without churn ({} reps x {}ms sim)\n",
        cfg.reps,
        duration.as_millis()
    );

    // (stations, shards, churn). Quick mode caps the sweep at 100
    // stations — the 100k point alone would dominate a smoke run.
    let grid: &[(usize, u32, bool)] = if quick {
        &[
            (10, 1, false),
            (10, 2, false),
            (100, 2, false),
            (100, 2, true),
        ]
    } else {
        &[
            (10, 1, false),
            (10, 2, false),
            (100, 1, false),
            // 100sta/2shard doubles as the quick-mode gate case, so the
            // full-grid baseline must carry it too.
            (100, 2, false),
            (100, 4, false),
            (1000, 4, false),
            (1000, 4, true),
            (5000, 4, false),
            (5000, 8, false),
            (10000, 8, false),
            (10000, 8, true),
            (100_000, 8, false),
        ]
    };
    let rows: Vec<Row> = grid
        .iter()
        .map(|&(stations, shards, churn)| {
            run_point(stations, shards, churn, warmup, duration, &cfg)
        })
        .collect();

    let mut t = Table::new(vec![
        "Stations",
        "Shards",
        "Churn",
        "Mbps",
        "Jain",
        "pkts/wall-s",
        "FQ ns/pkt",
        "Joins",
        "Leaves",
        "Wall (ms)",
    ]);
    for r in &rows {
        t.row(vec![
            r.stations.to_string(),
            r.shards.to_string(),
            if r.churn { "yes" } else { "no" }.to_string(),
            format!("{:.1}", r.throughput_mbps),
            format!("{:.3}", r.jain),
            format!("{:.0}", r.pkts_per_wall_sec),
            format!("{:.0}", r.fq_ns_per_pkt),
            r.joins.to_string(),
            r.leaves.to_string(),
            format!("{:.0}", r.wall_ms),
        ]);
    }
    t.print();
    println!();

    let (det_sta, det_shards) = if quick { (100, 2) } else { (5000, 4) };
    determinism_check(det_sta, det_shards, warmup, duration, cfg.base_seed);
    // 130+ stations span multiple ready-bitmap words, so 4 lanes really
    // split the contention scan.
    let lane_sta = if quick { 130 } else { 512 };
    let lane_dur = Nanos::from_millis(if quick { 100 } else { 200 });
    lanes_determinism_check(lane_sta, lane_dur, cfg.base_seed);

    write_json("BENCH_scale", &rows);
    let max = rows.iter().map(|r| r.stations).max().unwrap_or(0);
    println!(
        "\nscale summary: points={} max_stations={} churn_points={} det=ok",
        rows.len(),
        max,
        rows.iter().filter(|r| r.churn).count()
    );
}
