//! Figure 9 and the Section 4.1.5 observations: airtime shares and
//! throughput in the 30-station testbed.

use wifiq_experiments::report::{pct, write_json, Table};
use wifiq_experiments::{thirty, RunCfg};

fn main() {
    let mut cfg = RunCfg::from_env();
    // The third-party testbed ran 5 x 300 s; default to fewer, longer
    // runs than the small-testbed experiments.
    if std::env::var("WIFIQ_REPS").is_err() {
        cfg.reps = 3;
    }
    println!(
        "Figure 9: airtime share between stations, 30-station TCP test \
         ({} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let results = thirty::run_all(&cfg);
    let mut t = Table::new(vec![
        "Scheme",
        "Slow (1Mbps) share",
        "Mean fast share",
        "Jain",
        "Total (Mbps)",
    ]);
    for r in &results {
        t.row(vec![
            r.scheme.clone(),
            pct(r.slow_share),
            pct(r.fast_share_mean),
            format!("{:.3}", r.jain),
            format!("{:.1}", r.total_goodput_bps / 1e6),
        ]);
    }
    t.print();
    let fqc = &results[0];
    let air = &results[2];
    println!(
        "\nObservations (section 4.1.5):\n\
         1. slow-station share under FQ-CoDel: {} (paper: ~2/3)\n\
         2. throughput gain FQ-CoDel -> Airtime: {:.1}x (paper: 5.4x)\n\
         3. mean latency ratio FQ-CoDel/Airtime: {:.1}x (paper: ~2x better overall)\n\
         4. sparse-station median under Airtime: {:.1} ms vs fast bulk {:.1} ms",
        pct(fqc.slow_share),
        air.total_goodput_bps / fqc.total_goodput_bps.max(1.0),
        ((fqc.fast_latency.mean + fqc.slow_latency.mean) / 2.0)
            / ((air.fast_latency.mean + air.slow_latency.mean) / 2.0).max(0.001),
        air.sparse_latency.median,
        air.fast_latency.median,
    );
    write_json("fig09_30sta", &results);
}
