//! Extension experiment: the paper's remark that "WiFi client devices can
//! also benefit from the proposed queueing structure" (§3).
//!
//! A station runs a bulk TCP upload while pinging; with the stock FIFO
//! uplink, the ping replies queue behind the upload's standing queue at
//! the *client*. Enabling the FQ-CoDel structure on the station gives the
//! sparse ping flow its own queue and new-flow priority.

use wifiq_experiments::report::{write_json, Table};
use wifiq_experiments::{scenario, RunCfg};
use wifiq_mac::{SchemeKind, WifiNetwork};
use wifiq_sim::Nanos;
use wifiq_stats::Summary;
use wifiq_traffic::TrafficApp;

#[derive(serde::Serialize)]
struct Row {
    station_fq: bool,
    median_ms: f64,
    p95_ms: f64,
    upload_mbps: f64,
}

fn run(station_fq: bool, cfg: &RunCfg) -> Row {
    let config = if station_fq { "fq" } else { "fifo" };
    // (ping RTTs in ms, upload Mbps) per repetition.
    let reps: Vec<(Vec<f64>, f64)> =
        wifiq_experiments::runner::run_seeds("ext_client_fq", config, "", cfg, |seed| {
            let mut net_cfg = scenario::testbed3(SchemeKind::AirtimeFair, seed);
            net_cfg.station_fq = station_fq;
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let mut app = TrafficApp::new();
            // The ping crosses the same station's uplink as the bulk upload —
            // the reply is what queues at the client.
            let ping = app.add_ping(0, Nanos::ZERO);
            let up = app.add_tcp_up(0, Nanos::ZERO);
            app.install(&mut net);
            net.run(cfg.duration, &mut app);
            let rtts: Vec<f64> = app
                .ping(ping)
                .rtts_after(cfg.warmup)
                .iter()
                .map(|r| r.as_millis_f64())
                .collect();
            let b = app.tcp(up).bytes_between(cfg.warmup, cfg.duration);
            (rtts, b as f64 * 8.0 / cfg.window().as_secs_f64() / 1e6)
        });
    let rtts: Vec<f64> = reps.iter().flat_map(|r| r.0.iter().copied()).collect();
    let s = Summary::of(&rtts);
    Row {
        station_fq,
        median_ms: s.median,
        p95_ms: s.p95,
        upload_mbps: wifiq_experiments::runner::mean(&reps.iter().map(|r| r.1).collect::<Vec<_>>()),
    }
}

fn main() {
    let cfg = RunCfg::from_env();
    println!(
        "Extension: client-side FQ (ping + bulk upload from the same \
         station, {} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let rows = [run(false, &cfg), run(true, &cfg)];
    let mut t = Table::new(vec![
        "Client uplink",
        "Ping median (ms)",
        "p95 (ms)",
        "Upload (Mbps)",
    ]);
    for r in &rows {
        t.row(vec![
            if r.station_fq { "FQ-CoDel" } else { "FIFO" }.to_string(),
            format!("{:.1}", r.median_ms),
            format!("{:.1}", r.p95_ms),
            format!("{:.1}", r.upload_mbps),
        ]);
    }
    t.print();
    println!(
        "\nThe queueing structure is AP-side in the paper; applied at the\n\
         client it removes the client's own uplink bufferbloat without\n\
         costing upload throughput."
    );
    write_json("ext_client_fq", &rows);
}
