//! Extension experiment: the ath10k (802.11ac) side of the paper's
//! implementation. ath10k received the FQ-CoDel queueing structure but
//! not the airtime scheduler ("the ath10k driver lacks the required
//! scheduling hooks", §3.3) — so the comparison here is FIFO vs FQ-MAC
//! at VHT80 rates, showing the latency fix carries over to .11ac.

use wifiq_experiments::report::{write_json, Table};
use wifiq_experiments::RunCfg;
use wifiq_mac::{NetworkConfig, SchemeKind, WifiNetwork};
use wifiq_phy::{PhyRate, VhtWidth};
use wifiq_sim::Nanos;
use wifiq_stats::Summary;
use wifiq_traffic::TrafficApp;

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    fast_median_ms: f64,
    slow_median_ms: f64,
    total_mbps: f64,
}

fn run(scheme: SchemeKind, cfg: &RunCfg) -> Row {
    // (fast RTTs, slow RTTs, total Mbps) per repetition.
    let reps: Vec<(Vec<f64>, Vec<f64>, f64)> =
        wifiq_experiments::runner::run_seeds("ext_80211ac", scheme.slug(), "", cfg, |seed| {
            // Two 866.7 Mbps laptops and one 32.5 Mbps fringe device.
            let net_cfg = NetworkConfig::builder()
                .stations_at(2, PhyRate::vht(9, 2, VhtWidth::Mhz80, true))
                .station(PhyRate::vht(0, 1, VhtWidth::Mhz80, true))
                .scheme(scheme)
                .seed(seed)
                .build();
            let mut net: WifiNetwork<wifiq_traffic::AppMsg> = WifiNetwork::new(net_cfg);
            let mut app = TrafficApp::new();
            let ping_fast = app.add_ping(0, Nanos::ZERO);
            let ping_slow = app.add_ping(2, Nanos::ZERO);
            let tcps: Vec<_> = (0..3).map(|s| app.add_tcp_down(s, Nanos::ZERO)).collect();
            app.install(&mut net);
            net.run(cfg.duration, &mut app);
            let rtts = |flow| -> Vec<f64> {
                app.ping(flow)
                    .rtts_after(cfg.warmup)
                    .iter()
                    .map(|r| r.as_millis_f64())
                    .collect()
            };
            let secs = cfg.window().as_secs_f64();
            let total = tcps
                .iter()
                .map(|t| app.tcp(*t).bytes_between(cfg.warmup, cfg.duration) as f64 * 8.0 / secs)
                .sum::<f64>()
                / 1e6;
            (rtts(ping_fast), rtts(ping_slow), total)
        });
    let fast_ms: Vec<f64> = reps.iter().flat_map(|r| r.0.iter().copied()).collect();
    let slow_ms: Vec<f64> = reps.iter().flat_map(|r| r.1.iter().copied()).collect();
    Row {
        scheme: scheme.label().to_string(),
        fast_median_ms: Summary::of(&fast_ms).median,
        slow_median_ms: Summary::of(&slow_ms).median,
        total_mbps: wifiq_experiments::runner::mean(&reps.iter().map(|r| r.2).collect::<Vec<_>>()),
    }
}

fn main() {
    let cfg = RunCfg::from_env();
    println!(
        "Extension: 802.11ac (VHT80) network, FQ-MAC without the airtime \
         scheduler — the ath10k configuration ({} reps x {}s)\n",
        cfg.reps,
        cfg.duration.as_millis() / 1000
    );
    let rows: Vec<Row> = [
        SchemeKind::Fifo,
        SchemeKind::FqCodelQdisc,
        SchemeKind::FqMac,
    ]
    .into_iter()
    .map(|s| run(s, &cfg))
    .collect();
    let mut t = Table::new(vec![
        "Scheme",
        "Fast median (ms)",
        "Slow median (ms)",
        "Total (Mbps)",
    ]);
    for r in &rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{:.1}", r.fast_median_ms),
            format!("{:.1}", r.slow_median_ms),
            format!("{:.1}", r.total_mbps),
        ]);
    }
    t.print();
    println!(
        "\nThe bufferbloat fix is rate-family agnostic: FQ-MAC collapses\n\
         latency at VHT80 exactly as it does for HT20, even without the\n\
         airtime scheduler ath10k could not host."
    );
    write_json("ext_80211ac", &rows);
}
